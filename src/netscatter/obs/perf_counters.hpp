// Hardware performance counters via perf_event_open, wired into the
// deterministic observability layer.
//
// A perf_counter_group opens one per-thread counter group (CPU cycles
// as the leader; instructions, LLC loads/misses and branch misses as
// siblings) on the calling thread, and perf_scope attributes the
// deltas of a scope to registry counters (perf.<phase>.cycles, ...).
//
// Design constraints, in the same order as metrics.hpp:
//   1. Determinism. Counter values are host facts, never simulation
//      inputs: nothing in the simulator reads them back, and every
//      perf-derived metric name starts with "perf." so the shared
//      ns::obs::is_host_metric_name predicate keeps them out of
//      scenario reports and determinism diffs. Groups are confined to
//      one thread (the replica's), like the registry they feed.
//   2. Graceful degradation. perf_event_open is frequently unavailable
//      (CI containers, seccomp filters, kernel.perf_event_paranoid,
//      non-Linux hosts). open() then returns false, available() stays
//      false, read() returns all-zero readings and nothing ever
//      throws; NS_PERF_DISABLE=1 in the environment forces this path
//      so the fallback is testable everywhere. Sibling events that
//      fail individually (e.g. LLC events on a VM without an LLC PMU)
//      simply read zero while the rest of the group keeps counting.
//   3. Zero overhead when compiled out. Under -DNS_OBS=OFF every
//      method is an empty inline: no syscalls, no fds, no storage.
#pragma once

#include <cstdint>
#include <string_view>

#include "netscatter/obs/metrics.hpp"

namespace ns::obs {

/// One sample of the group's counters. All zero when the group is
/// unavailable; individual fields are zero when their event could not
/// be opened. Values are multiplex-scaled (time_enabled/time_running)
/// so long scopes stay comparable when the PMU is oversubscribed.
struct perf_readings {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_loads = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t branch_misses = 0;
};

/// Instructions retired per cycle; 0 when cycles is 0 (unavailable).
inline double perf_ipc(std::uint64_t instructions, std::uint64_t cycles) {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
}

/// Miss fraction in [0, 1]; 0 when the reference count is 0.
inline double perf_miss_rate(std::uint64_t misses, std::uint64_t references) {
    return references == 0 ? 0.0
                           : static_cast<double>(misses) /
                                 static_cast<double>(references);
}

#if NS_OBS_ENABLED

/// A per-thread hardware counter group. NOT thread-safe and pinned to
/// the opening thread by construction (perf_event_open with pid=0):
/// open() and every read() must happen on the same thread — the same
/// confinement rule as the metrics registry the readings feed.
class perf_counter_group {
public:
    perf_counter_group() = default;
    ~perf_counter_group() { close(); }
    perf_counter_group(const perf_counter_group&) = delete;
    perf_counter_group& operator=(const perf_counter_group&) = delete;

    /// Opens the group on the calling thread. Returns available():
    /// false — with no side effects beyond closed fds — when the
    /// syscall is missing/denied, the leader event cannot be opened,
    /// or NS_PERF_DISABLE is set in the environment.
    bool open();

    /// Closes every event fd; the group reads as unavailable again.
    void close();

    bool available() const { return available_; }

    /// Current counter values (one read syscall for the whole group).
    /// All-zero when unavailable — never throws, never blocks.
    perf_readings read() const;

private:
    static constexpr std::size_t num_events = 5;
    int fds_[num_events] = {-1, -1, -1, -1, -1};
    std::uint64_t ids_[num_events] = {0, 0, 0, 0, 0};
    bool available_ = false;
};

#else  // NS_OBS_ENABLED == 0: empty inlines, no storage, no syscalls.

class perf_counter_group {
public:
    bool open() { return false; }
    void close() {}
    bool available() const { return false; }
    perf_readings read() const { return {}; }
};

#endif  // NS_OBS_ENABLED

/// Registry counter handles of one attribution target (a round-loop
/// phase, the kernel-sum batch). Fetch once at construction time —
/// get_counter allocates on first use, and pre-fetching keeps the
/// instrumented hot loops allocation-free so the alloc.* determinism
/// counters stay bit-identical with profiling on or off.
struct perf_phase_counters {
    counter* cycles = nullptr;
    counter* instructions = nullptr;
    counter* llc_loads = nullptr;
    counter* llc_misses = nullptr;
    counter* branch_misses = nullptr;

    /// Handles named "perf.<phase>.cycles" etc. Null (inert) under
    /// NS_OBS=OFF so disabled builds neither allocate nor store names.
#if NS_OBS_ENABLED
    static perf_phase_counters from_registry(metrics_registry& registry,
                                             std::string_view phase);
#else
    static perf_phase_counters from_registry(metrics_registry&,
                                             std::string_view) {
        return {};
    }
#endif

    bool wired() const { return cycles != nullptr; }
};

/// RAII counter probe: attributes the scope's counter deltas to the
/// phase's registry counters on destruction. A null/unavailable group
/// or unwired destination makes it free — no syscalls, no stores.
class perf_scope {
public:
    perf_scope(perf_counter_group* group, const perf_phase_counters* dest) {
#if NS_OBS_ENABLED
        if (group != nullptr && group->available() && dest != nullptr &&
            dest->wired()) {
            group_ = group;
            dest_ = dest;
            start_ = group->read();
        }
#else
        (void)group;
        (void)dest;
#endif
    }
#if NS_OBS_ENABLED
    ~perf_scope();
#else
    ~perf_scope() = default;
#endif
    perf_scope(const perf_scope&) = delete;
    perf_scope& operator=(const perf_scope&) = delete;

private:
#if NS_OBS_ENABLED
    perf_counter_group* group_ = nullptr;
    const perf_phase_counters* dest_ = nullptr;
    perf_readings start_{};
#endif
};

/// Process-wide resource usage (getrusage). Zeros on hosts without it.
/// Host-execution data: emitted only in the --metrics "process"
/// section, which determinism comparisons already exclude.
struct process_usage {
    std::uint64_t peak_rss_bytes = 0;
    std::uint64_t minor_page_faults = 0;
    std::uint64_t major_page_faults = 0;
    std::uint64_t voluntary_ctx_switches = 0;
    std::uint64_t involuntary_ctx_switches = 0;
};

process_usage current_process_usage();

}  // namespace ns::obs
