// Round-event tracing: a bounded per-context event ring plus a
// Chrome/Perfetto trace_event JSON exporter.
//
// Each traced scope (a round, a synthesis phase, a decode) records one
// complete ("ph":"X") event: static name, start timestamp relative to a
// process-wide origin, duration, a track id (the scenario runner
// assigns the replica index, so replicas render as parallel tracks in
// the Perfetto UI) and an optional integer argument (the round index).
// The ring is bounded: past capacity, events are dropped and counted —
// a trace can cost memory, never correctness.
//
// Like the metrics registry, a trace_buffer is confined to one
// execution context (one replica, one thread) and the per-replica
// buffers are concatenated at replica boundaries in task order; the
// events carry host timestamps, so traces are inherently excluded from
// determinism comparisons (they are only emitted via --trace, never
// into scenario reports).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netscatter/obs/metrics.hpp"

namespace ns::obs {

/// One complete span. `name` must be a string literal (or otherwise
/// outlive every buffer holding the event).
struct trace_event {
    const char* name = "";
    std::uint64_t ts_ns = 0;   ///< start, relative to trace_origin_ns()
    std::uint64_t dur_ns = 0;  ///< duration
    std::uint32_t track = 0;   ///< Perfetto tid (replica index)
    std::int64_t arg = -1;     ///< e.g. round index; -1 = absent
};

/// Process-wide trace time origin (first call latches the steady
/// clock); all trace timestamps are relative to it so every track in an
/// exported file shares one timeline.
std::uint64_t trace_origin_ns();

/// Timestamp for trace events: now relative to the origin. The origin
/// is latched before the clock is sampled — with unspecified evaluation
/// order, `now_ns() - trace_origin_ns()` would underflow on the very
/// first call (the origin would latch a later instant than the sample).
inline std::uint64_t trace_now_ns() {
    const std::uint64_t origin = trace_origin_ns();
    return now_ns() - origin;
}

/// Bounded append-only event ring. NOT thread-safe: one buffer per
/// execution context.
class trace_buffer {
public:
    trace_buffer() = default;

    /// Enables recording with the given capacity and track id.
    void arm(std::size_t max_events, std::uint32_t track) {
        armed_ = max_events > 0 && compiled_in();
        max_events_ = max_events;
        track_ = track;
        events_.clear();
        dropped_ = 0;
    }

    bool armed() const { return armed_; }
    std::uint32_t track() const { return track_; }
    std::uint64_t dropped() const { return dropped_; }
    std::span<const trace_event> events() const { return events_; }

    void append(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                std::int64_t arg = -1) {
        if (!armed_) return;
        if (events_.size() >= max_events_) {
            ++dropped_;
            return;
        }
        events_.push_back({name, ts_ns, dur_ns, track_, arg});
    }

    /// Moves the recorded events out (the buffer stays armed but empty).
    std::vector<trace_event> take() {
        std::vector<trace_event> out = std::move(events_);
        events_ = {};
        return out;
    }

private:
    std::vector<trace_event> events_;
    std::size_t max_events_ = 0;
    std::uint32_t track_ = 0;
    std::uint64_t dropped_ = 0;
    bool armed_ = false;
};

/// RAII span probe: one scope, one trace event (and optionally one
/// histogram observation — the usual pairing for a simulator phase:
/// the histogram aggregates, the trace shows the timeline). A null
/// buffer/histogram (or NS_OBS=OFF) makes the probe free: it never
/// reads the clock.
class trace_span {
public:
    trace_span(const char* name, trace_buffer* buffer, histogram* hist = nullptr,
               std::int64_t arg = -1) {
#if NS_OBS_ENABLED
        const bool tracing = buffer != nullptr && buffer->armed();
        if (tracing || hist != nullptr) {
            name_ = name;
            buffer_ = tracing ? buffer : nullptr;
            hist_ = hist;
            arg_ = arg;
            start_ns_ = trace_now_ns();
        }
#else
        (void)name;
        (void)buffer;
        (void)hist;
        (void)arg;
#endif
    }

    ~trace_span() {
#if NS_OBS_ENABLED
        if (name_ == nullptr) return;
        const std::uint64_t dur = trace_now_ns() - start_ns_;
        if (hist_ != nullptr) hist_->record_ns(dur);
        if (buffer_ != nullptr) buffer_->append(name_, start_ns_, dur, arg_);
#endif
    }

    trace_span(const trace_span&) = delete;
    trace_span& operator=(const trace_span&) = delete;

private:
#if NS_OBS_ENABLED
    const char* name_ = nullptr;
    trace_buffer* buffer_ = nullptr;
    histogram* hist_ = nullptr;
    std::int64_t arg_ = -1;
    std::uint64_t start_ns_ = 0;
#endif
};

/// Writes events as Chrome trace-event JSON ("JSON Array Format" with a
/// traceEvents wrapper) loadable by Perfetto (ui.perfetto.dev) and
/// chrome://tracing. Timestamps/durations are microseconds with
/// nanosecond fractions; events need not be sorted (viewers sort).
void write_chrome_trace(std::span<const trace_event> events, std::ostream& out);

/// File overload; returns false when the file cannot be opened.
bool write_chrome_trace(std::span<const trace_event> events,
                        const std::string& path);

}  // namespace ns::obs
