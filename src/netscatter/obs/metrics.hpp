// Deterministic observability: named counters, gauges and log-scale
// latency histograms in a per-context metrics registry.
//
// Design constraints, in order:
//   1. The mc_runner's serial-vs-parallel bit-identity contract must
//      survive instrumentation. Every registry is therefore confined to
//      one execution context (one simulator replica, which runs entirely
//      on one thread) — increments are plain integer adds, no atomics,
//      no locks — and replica snapshots are merged at replica boundaries
//      in task order, never completion order. Merging sums counters and
//      histogram buckets name-wise, so the merged snapshot of N replicas
//      is a pure function of the N inputs, independent of thread count.
//   2. Zero overhead when compiled out. Configuring with -DNS_OBS=OFF
//      defines NS_OBS_ENABLED=0 and every record/add/timer collapses to
//      an empty inline function — no clock reads, no stores, no storage.
//   3. Deterministic bucketing. Histogram buckets are powers of two of a
//      nanosecond (bucket i spans [2^i, 2^(i+1)) ns), indexed through
//      integer bit_width — no std::log2, so the same value lands in the
//      same bucket on every platform. Counter merges are integer sums;
//      histogram `sum` is a double accumulated in merge order, which the
//      task-order merge rule keeps reproducible.
//
// The registry hands out stable pointers: instrument sites fetch their
// counter/histogram handle once (construction time) and the hot path
// touches only that handle.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#ifndef NS_OBS_ENABLED
#define NS_OBS_ENABLED 1
#endif

namespace ns::obs {

/// Whether the observability layer is compiled in (NS_OBS build option).
constexpr bool compiled_in() { return NS_OBS_ENABLED != 0; }

/// Shared timing-field predicate: the ONE place that decides whether a
/// metric/scalar name denotes host- or simulated-time data that must be
/// excluded from determinism comparisons (netscatter_sim
/// --strip-wallclock, the CI 1-vs-8-thread gates). Any field whose name
/// ends in a seconds-style unit suffix or mentions wall clock is
/// timing; new timers automatically satisfy it, so adding one can never
/// regress a determinism diff.
inline bool is_timing_name(std::string_view name) {
    const auto ends_with = [&](std::string_view suffix) {
        return name.size() >= suffix.size() &&
               name.substr(name.size() - suffix.size()) == suffix;
    };
    return ends_with("_s") || ends_with("_ms") || ends_with("_us") ||
           ends_with("_ns") || ends_with("_seconds") ||
           name.find("wall") != std::string_view::npos;
}

/// Broader host-execution predicate: timing names plus hardware
/// perf-counter metrics ("perf.*"), whose values depend on the host CPU
/// and scheduler rather than on (spec, seed). Scenario JSON reports
/// exclude these names unconditionally — that is what keeps
/// `netscatter_sim --json` bit-identical with and without --perf — and
/// --strip-wallclock strips them from --metrics output too.
inline bool is_host_metric_name(std::string_view name) {
    return is_timing_name(name) || name.substr(0, 5) == "perf.";
}

/// Monotonic clock in nanoseconds (steady_clock). Implemented out of
/// line so this header stays <chrono>-free for hot-path includers.
std::uint64_t now_ns();

// ---------------------------------------------------------------------
// Instruments. All mutators compile to nothing under NS_OBS=OFF.
// ---------------------------------------------------------------------

/// Monotonic event count.
class counter {
public:
    void add(std::uint64_t delta = 1) {
#if NS_OBS_ENABLED
        value_ += delta;
#else
        (void)delta;
#endif
    }

    std::uint64_t value() const {
#if NS_OBS_ENABLED
        return value_;
#else
        return 0;
#endif
    }

private:
#if NS_OBS_ENABLED
    std::uint64_t value_ = 0;
#endif
};

/// Last-written value plus the running maximum (queue depths, active
/// device counts). Merge keeps the max and the merge-order-last value.
class gauge {
public:
    void set(double value) {
#if NS_OBS_ENABLED
        last_ = value;
        max_ = written_ ? std::max(max_, value) : value;
        written_ = true;
#else
        (void)value;
#endif
    }

    double last() const {
#if NS_OBS_ENABLED
        return last_;
#else
        return 0.0;
#endif
    }
    double max() const {
#if NS_OBS_ENABLED
        return max_;
#else
        return 0.0;
#endif
    }

private:
#if NS_OBS_ENABLED
    double last_ = 0.0;
    double max_ = 0.0;
    bool written_ = false;
#endif
};

/// Fixed-bucket log2 histogram. Bucket i counts values in
/// [2^i, 2^(i+1)) nanoseconds (values recorded in seconds are scaled by
/// 1e9 first); 64 buckets cover 1 ns .. ~292 years, so no input is ever
/// out of range. Values are usually durations, but any non-negative
/// quantity works — per-round allocation counts use the same buckets
/// with "1 ns" read as "1 unit".
class histogram {
public:
    static constexpr std::size_t num_buckets = 64;

    /// Deterministic bucket index: floor(log2(value in ns)) via integer
    /// bit_width. Non-positive and sub-nanosecond values land in bucket
    /// 0; values beyond the last bucket clamp into it.
    static std::size_t bucket_index(double value) {
        if (!(value > 0.0)) return 0;
        const double scaled = value * 1e9;
        // 2^63 ns: everything at or above clamps to the last bucket
        // (also guards the double->uint64 conversion).
        if (scaled >= 9223372036854775808.0) return num_buckets - 1;
        const std::uint64_t n = static_cast<std::uint64_t>(scaled);
        if (n == 0) return 0;
        return static_cast<std::size_t>(std::bit_width(n)) - 1;
    }

    /// Inclusive lower bound of bucket i, in seconds.
    static double bucket_lower_bound_s(std::size_t i) {
        return static_cast<double>(std::uint64_t{1} << i) * 1e-9;
    }

    void record(double value) {
#if NS_OBS_ENABLED
        min_ = count_ == 0 ? value : std::min(min_, value);
        max_ = count_ == 0 ? value : std::max(max_, value);
        ++count_;
        sum_ += value;
        ++buckets_[bucket_index(value)];
#else
        (void)value;
#endif
    }

    void record_ns(std::uint64_t ns) { record(static_cast<double>(ns) * 1e-9); }

    std::uint64_t count() const {
#if NS_OBS_ENABLED
        return count_;
#else
        return 0;
#endif
    }
    double sum() const {
#if NS_OBS_ENABLED
        return sum_;
#else
        return 0.0;
#endif
    }

#if NS_OBS_ENABLED
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }
    const std::array<std::uint64_t, num_buckets>& buckets() const { return buckets_; }
#else
    double min() const { return 0.0; }
    double max() const { return 0.0; }
#endif

private:
#if NS_OBS_ENABLED
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::array<std::uint64_t, num_buckets> buckets_{};
#endif
};

// ---------------------------------------------------------------------
// Snapshot: the plain-data form carried in results and merged at
// replica boundaries. Entries are kept sorted by name so merge order
// and emission order are canonical.
// ---------------------------------------------------------------------

struct counter_sample {
    std::string name;
    std::uint64_t value = 0;
};

struct gauge_sample {
    std::string name;
    double last = 0.0;
    double max = 0.0;
};

struct histogram_sample {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, histogram::num_buckets> buckets{};

    double mean() const {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Percentile estimate (0..100) from the log2 buckets: the geometric
    /// midpoint of the bucket holding the p-th sample. Good to a factor
    /// of sqrt(2) — flamegraph-grade attribution, not a calibrated
    /// quantile.
    double percentile(double p) const;
};

/// Mergeable plain-data view of a registry. merge() is deterministic:
/// name-wise union with integer/bucket sums, performed in caller order
/// (the Monte-Carlo runner merges replica snapshots in task order).
struct metrics_snapshot {
    std::vector<counter_sample> counters;      ///< sorted by name
    std::vector<gauge_sample> gauges;          ///< sorted by name
    std::vector<histogram_sample> histograms;  ///< sorted by name

    void merge(const metrics_snapshot& other);

    const counter_sample* find_counter(std::string_view name) const;
    const gauge_sample* find_gauge(std::string_view name) const;
    const histogram_sample* find_histogram(std::string_view name) const;

    /// Counter value by name, 0 when absent.
    std::uint64_t counter_value(std::string_view name) const {
        const counter_sample* c = find_counter(name);
        return c == nullptr ? 0 : c->value;
    }
    /// Histogram sum by name, 0.0 when absent — the registry-backed
    /// replacement for hand-rolled wall-clock accumulators.
    double histogram_sum(std::string_view name) const {
        const histogram_sample* h = find_histogram(name);
        return h == nullptr ? 0.0 : h->sum;
    }

    /// Records one observation into the named histogram (creating it if
    /// needed) — for call sites that only have a snapshot, e.g. the
    /// scenario runner stamping replica.wall_s after the replica ran.
    void record_value(std::string_view name, double value);

    bool empty() const {
        return counters.empty() && gauges.empty() && histograms.empty();
    }
};

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Owner of one execution context's instruments. NOT thread-safe by
/// design: confine one registry to one thread (a simulator replica) and
/// merge snapshots at the boundaries. Handles returned by the get_*
/// calls are stable for the registry's lifetime.
class metrics_registry {
public:
    metrics_registry() = default;
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;
    metrics_registry(metrics_registry&&) = default;
    metrics_registry& operator=(metrics_registry&&) = default;

    /// Finds or creates the named instrument. Under NS_OBS=OFF these
    /// return a shared no-op dummy and store nothing.
    counter* get_counter(std::string_view name);
    gauge* get_gauge(std::string_view name);
    histogram* get_histogram(std::string_view name);

    /// Plain-data copy, entries sorted by name. Empty under NS_OBS=OFF.
    metrics_snapshot snapshot() const;

private:
#if NS_OBS_ENABLED
    template <typename T>
    struct named {
        std::string name;
        std::unique_ptr<T> value;
    };
    std::vector<named<counter>> counters_;
    std::vector<named<gauge>> gauges_;
    std::vector<named<histogram>> histograms_;
#endif
};

/// RAII wall-clock probe: records the scope's duration into a histogram
/// on destruction. Null histogram (or NS_OBS=OFF) makes it a no-op that
/// never reads the clock.
class scoped_timer {
public:
    explicit scoped_timer(histogram* hist) {
#if NS_OBS_ENABLED
        hist_ = hist;
        if (hist_ != nullptr) start_ns_ = now_ns();
#else
        (void)hist;
#endif
    }
    ~scoped_timer() {
#if NS_OBS_ENABLED
        if (hist_ != nullptr) hist_->record_ns(now_ns() - start_ns_);
#endif
    }
    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;

private:
#if NS_OBS_ENABLED
    histogram* hist_ = nullptr;
    std::uint64_t start_ns_ = 0;
#endif
};

// ---------------------------------------------------------------------
// Allocation metering
// ---------------------------------------------------------------------

/// Thread-local allocation tally. The counters only advance in binaries
/// that install a global operator new forwarding to record_allocation()
/// (the zero-alloc tests, netscatter_sim, bench_scenario_matrix); in
/// every other binary they read as zero. Thread-local — not a process
/// atomic — so a simulator replica, which runs entirely on one thread,
/// measures exactly its own allocations regardless of what other pool
/// threads do: per-round deltas stay bit-identical across thread
/// counts.
struct alloc_counters {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
};

void record_allocation(std::size_t bytes) noexcept;
alloc_counters thread_allocations() noexcept;

/// Per-simulator observability options (carried in sim_config).
struct options {
    /// Populate the metrics registry (counters, per-phase histograms).
    bool metrics = true;
    /// Record per-round trace spans into the bounded event ring.
    bool trace = false;
    /// Open a hardware perf-counter group per replica and attribute
    /// cycles/instructions/cache traffic to round-loop phases
    /// (perf.<phase>.* counters). Requires metrics; degrades to an
    /// unavailable no-op where perf_event_open is denied.
    bool perf = false;
    /// Event capacity of the per-replica trace ring; further spans are
    /// dropped (and counted) rather than grown without bound.
    std::size_t trace_max_events = 1 << 20;
    /// Perfetto track id of this context's spans (the scenario runner
    /// assigns the replica index, so replicas render as parallel
    /// tracks).
    std::uint32_t trace_track = 0;
    /// Rounds excluded from the alloc.steady_* counters while the
    /// workspaces warm up (capacity growth is expected there).
    std::size_t alloc_warmup_rounds = 4;
};

}  // namespace ns::obs
