#include "netscatter/obs/roofline.hpp"

namespace ns::obs {

kernel_loop_model kernel_loop_model_from(const metrics_snapshot& snapshot) {
    kernel_loop_model model;
    model.window_elems = snapshot.counter_value("phy.kernel_window_elems");
    return model;
}

std::uint64_t kernel_window_size(std::size_t num_bins, std::size_t padding,
                                 std::size_t radius_bins) {
    const std::uint64_t m_total =
        static_cast<std::uint64_t>(num_bins) * padding;
    std::uint64_t half = static_cast<std::uint64_t>(radius_bins) * padding;
    if (half > m_total / 2) {
        half = m_total / 2;
    }
    const std::uint64_t window = 2 * half + 1;
    return window < m_total ? window : m_total;
}

}  // namespace ns::obs
