// Non-owning bundle of observability handles handed to subsystems.
//
// The superposition combiners used to grow one workspace pointer per
// probe (metrics registry, perf group, pre-fetched perf handles, ...).
// obs_sink collapses that into a single handle the simulator constructs
// once and passes to both combiners; new attribution (e.g. per-symbol-
// block kernel-sum timing) plugs into the sink instead of widening every
// workspace struct again. All pointers are non-owning and follow the
// same thread-confinement rule as the registries themselves: one sink
// per simulator, used only from the simulator's thread.
#pragma once

#include "netscatter/obs/metrics.hpp"
#include "netscatter/obs/perf_counters.hpp"

namespace ns::obs {

struct obs_sink {
    /// Per-replica metrics registry; null disables all counting.
    metrics_registry* metrics = nullptr;
    /// Hardware counter group; null (or unopened) means zero syscalls.
    perf_counter_group* perf = nullptr;
    /// Pre-fetched perf.kernel_sum.* handles (fetched once so per-round
    /// probes never touch the registry's name map).
    perf_phase_counters perf_kernel_sum{};

    /// Builds a sink whose perf.kernel_sum handles are wired when both a
    /// registry and an available perf group are present.
    static obs_sink wire(metrics_registry* metrics, perf_counter_group* perf) {
        obs_sink sink;
        sink.metrics = metrics;
        sink.perf = perf;
        if (metrics != nullptr && perf != nullptr) {
            sink.perf_kernel_sum =
                perf_phase_counters::from_registry(*metrics, "kernel_sum");
        }
        return sink;
    }
};

}  // namespace ns::obs
