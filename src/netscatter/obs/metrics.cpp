#include "netscatter/obs/metrics.hpp"

#include <chrono>

namespace ns::obs {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double histogram_sample::percentile(double p) const {
    if (count == 0) return 0.0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    const std::uint64_t rank = static_cast<std::uint64_t>(
        clamped / 100.0 * static_cast<double>(count - 1));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative > rank) {
            // Geometric midpoint of [2^i, 2^(i+1)) ns, clamped into the
            // observed range so single-sample histograms report exactly.
            const double mid = histogram::bucket_lower_bound_s(i) * 1.5;
            return std::clamp(mid, min, max);
        }
    }
    return max;
}

namespace {

/// Sorted-by-name union merge shared by the three sample kinds.
/// `combine(mine, theirs)` folds a matching entry; unmatched entries
/// copy over. Inputs sorted -> output sorted, so repeated merges stay
/// canonical.
template <typename Sample, typename Combine>
void merge_sorted(std::vector<Sample>& mine, const std::vector<Sample>& theirs,
                  Combine&& combine) {
    std::vector<Sample> merged;
    merged.reserve(mine.size() + theirs.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < mine.size() || j < theirs.size()) {
        if (j >= theirs.size() ||
            (i < mine.size() && mine[i].name < theirs[j].name)) {
            merged.push_back(std::move(mine[i++]));
        } else if (i >= mine.size() || theirs[j].name < mine[i].name) {
            merged.push_back(theirs[j++]);
        } else {
            Sample s = std::move(mine[i++]);
            combine(s, theirs[j++]);
            merged.push_back(std::move(s));
        }
    }
    mine = std::move(merged);
}

template <typename Sample>
typename std::vector<Sample>::const_iterator find_sorted(
    const std::vector<Sample>& samples, std::string_view name) {
    const auto it = std::lower_bound(
        samples.begin(), samples.end(), name,
        [](const Sample& s, std::string_view key) { return s.name < key; });
    if (it == samples.end() || it->name != name) return samples.end();
    return it;
}

}  // namespace

void metrics_snapshot::merge(const metrics_snapshot& other) {
    merge_sorted(counters, other.counters,
                 [](counter_sample& mine, const counter_sample& theirs) {
                     mine.value += theirs.value;
                 });
    merge_sorted(gauges, other.gauges,
                 [](gauge_sample& mine, const gauge_sample& theirs) {
                     // Merge-order-last write wins for `last` (replica
                     // order is canonical), max is the running max.
                     mine.last = theirs.last;
                     mine.max = std::max(mine.max, theirs.max);
                 });
    merge_sorted(histograms, other.histograms,
                 [](histogram_sample& mine, const histogram_sample& theirs) {
                     if (theirs.count > 0) {
                         mine.min = mine.count > 0 ? std::min(mine.min, theirs.min)
                                                   : theirs.min;
                         mine.max = mine.count > 0 ? std::max(mine.max, theirs.max)
                                                   : theirs.max;
                     }
                     mine.count += theirs.count;
                     mine.sum += theirs.sum;
                     for (std::size_t b = 0; b < mine.buckets.size(); ++b) {
                         mine.buckets[b] += theirs.buckets[b];
                     }
                 });
}

const counter_sample* metrics_snapshot::find_counter(std::string_view name) const {
    const auto it = find_sorted(counters, name);
    return it == counters.end() ? nullptr : &*it;
}

const gauge_sample* metrics_snapshot::find_gauge(std::string_view name) const {
    const auto it = find_sorted(gauges, name);
    return it == gauges.end() ? nullptr : &*it;
}

const histogram_sample* metrics_snapshot::find_histogram(
    std::string_view name) const {
    const auto it = find_sorted(histograms, name);
    return it == histograms.end() ? nullptr : &*it;
}

void metrics_snapshot::record_value(std::string_view name, double value) {
    if (!compiled_in()) return;
    metrics_snapshot one;
    histogram_sample sample;
    sample.name = std::string(name);
    sample.count = 1;
    sample.sum = value;
    sample.min = value;
    sample.max = value;
    ++sample.buckets[histogram::bucket_index(value)];
    one.histograms.push_back(std::move(sample));
    merge(one);
}

#if NS_OBS_ENABLED

counter* metrics_registry::get_counter(std::string_view name) {
    for (auto& entry : counters_) {
        if (entry.name == name) return entry.value.get();
    }
    counters_.push_back({std::string(name), std::make_unique<counter>()});
    return counters_.back().value.get();
}

gauge* metrics_registry::get_gauge(std::string_view name) {
    for (auto& entry : gauges_) {
        if (entry.name == name) return entry.value.get();
    }
    gauges_.push_back({std::string(name), std::make_unique<gauge>()});
    return gauges_.back().value.get();
}

histogram* metrics_registry::get_histogram(std::string_view name) {
    for (auto& entry : histograms_) {
        if (entry.name == name) return entry.value.get();
    }
    histograms_.push_back({std::string(name), std::make_unique<histogram>()});
    return histograms_.back().value.get();
}

metrics_snapshot metrics_registry::snapshot() const {
    metrics_snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& entry : counters_) {
        snap.counters.push_back({entry.name, entry.value->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& entry : gauges_) {
        snap.gauges.push_back(
            {entry.name, entry.value->last(), entry.value->max()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& entry : histograms_) {
        histogram_sample sample;
        sample.name = entry.name;
        sample.count = entry.value->count();
        sample.sum = entry.value->sum();
        sample.min = entry.value->min();
        sample.max = entry.value->max();
        sample.buckets = entry.value->buckets();
        snap.histograms.push_back(std::move(sample));
    }
    const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
}

#else  // NS_OBS_ENABLED == 0: shared no-op dummies, nothing stored.

namespace {
counter g_dummy_counter;
gauge g_dummy_gauge;
histogram g_dummy_histogram;
}  // namespace

counter* metrics_registry::get_counter(std::string_view) { return &g_dummy_counter; }
gauge* metrics_registry::get_gauge(std::string_view) { return &g_dummy_gauge; }
histogram* metrics_registry::get_histogram(std::string_view) {
    return &g_dummy_histogram;
}
metrics_snapshot metrics_registry::snapshot() const { return {}; }

#endif  // NS_OBS_ENABLED

namespace {
// Zero-initialized PODs: safe to touch from operator new before any
// dynamic TLS initialization has run.
thread_local std::uint64_t t_alloc_count = 0;
thread_local std::uint64_t t_alloc_bytes = 0;
}  // namespace

void record_allocation(std::size_t bytes) noexcept {
#if NS_OBS_ENABLED
    ++t_alloc_count;
    t_alloc_bytes += bytes;
#else
    (void)bytes;
#endif
}

alloc_counters thread_allocations() noexcept {
    return {t_alloc_count, t_alloc_bytes};
}

}  // namespace ns::obs
