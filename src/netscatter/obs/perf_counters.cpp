#include "netscatter/obs/perf_counters.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#define NS_PERF_HAVE_LINUX 1
#else
#define NS_PERF_HAVE_LINUX 0
#endif

namespace ns::obs {

#if NS_OBS_ENABLED

namespace {

#if NS_PERF_HAVE_LINUX

long perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                             int group_fd, unsigned long flags) {
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 1;
    // Count user space only: works under kernel.perf_event_paranoid=2
    // (the common container default) and keeps the numbers about our
    // code rather than interrupt handlers.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return attr;
}

constexpr std::uint64_t hw_cache_config(std::uint64_t cache, std::uint64_t op,
                                        std::uint64_t result) {
    return cache | (op << 8) | (result << 16);
}

#endif  // NS_PERF_HAVE_LINUX

}  // namespace

bool perf_counter_group::open() {
    close();
    const char* disabled = std::getenv("NS_PERF_DISABLE");
    if (disabled != nullptr && disabled[0] != '\0' && disabled[0] != '0') {
        return false;
    }
#if NS_PERF_HAVE_LINUX
    // Event order matches perf_readings field order. The leader (index
    // 0, cycles) must open or the whole group is unavailable; siblings
    // are best-effort — a missing PMU event just reads zero.
    struct event_spec {
        std::uint32_t type;
        std::uint64_t config;
        std::uint64_t fallback_config;
        bool has_fallback;
    };
    const event_spec specs[num_events] = {
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, 0, false},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, 0, false},
        // Last-level-cache reads; VMs often lack the HW_CACHE PMU
        // mapping, so fall back to the generic reference/miss events.
        {PERF_TYPE_HW_CACHE,
         hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                         PERF_COUNT_HW_CACHE_RESULT_ACCESS),
         PERF_COUNT_HW_CACHE_REFERENCES, true},
        {PERF_TYPE_HW_CACHE,
         hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                         PERF_COUNT_HW_CACHE_RESULT_MISS),
         PERF_COUNT_HW_CACHE_MISSES, true},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, 0, false},
    };
    for (std::size_t i = 0; i < num_events; ++i) {
        const int group_fd = (i == 0) ? -1 : fds_[0];
        perf_event_attr attr = make_attr(specs[i].type, specs[i].config);
        int fd = static_cast<int>(
            perf_event_open_syscall(&attr, /*pid=*/0, /*cpu=*/-1, group_fd,
                                    PERF_FLAG_FD_CLOEXEC));
        if (fd < 0 && specs[i].has_fallback) {
            attr = make_attr(PERF_TYPE_HARDWARE, specs[i].fallback_config);
            fd = static_cast<int>(
                perf_event_open_syscall(&attr, 0, -1, group_fd,
                                        PERF_FLAG_FD_CLOEXEC));
        }
        if (fd < 0) {
            if (i == 0) {
                return false;  // no leader, no group
            }
            continue;  // sibling missing: reads stay zero
        }
        fds_[i] = fd;
        std::uint64_t id = 0;
        if (ioctl(fd, PERF_EVENT_IOC_ID, &id) == 0) {
            ids_[i] = id;
        } else {
            ::close(fd);
            fds_[i] = -1;
            if (i == 0) {
                close();
                return false;
            }
        }
    }
    if (ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
        close();
        return false;
    }
    available_ = true;
    return true;
#else
    return false;
#endif
}

void perf_counter_group::close() {
#if NS_PERF_HAVE_LINUX
    for (std::size_t i = 0; i < num_events; ++i) {
        if (fds_[i] >= 0) {
            ::close(fds_[i]);
        }
        fds_[i] = -1;
        ids_[i] = 0;
    }
#endif
    available_ = false;
}

perf_readings perf_counter_group::read() const {
    perf_readings out;
#if NS_PERF_HAVE_LINUX
    if (!available_) {
        return out;
    }
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // then {value, id} per event. Sized for the full group plus
    // slack in case the kernel reports extra events.
    struct {
        std::uint64_t nr;
        std::uint64_t time_enabled;
        std::uint64_t time_running;
        struct {
            std::uint64_t value;
            std::uint64_t id;
        } values[num_events + 2];
    } data;
    const ssize_t got = ::read(fds_[0], &data, sizeof(data));
    if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
        return out;
    }
    // Multiplex scaling: with more events than hardware counters the
    // kernel time-slices the group; scale by enabled/running to
    // estimate full-interval counts (the standard perf(1) correction).
    double scale = 1.0;
    if (data.time_running > 0 && data.time_enabled > data.time_running) {
        scale = static_cast<double>(data.time_enabled) /
                static_cast<double>(data.time_running);
    }
    std::uint64_t* fields[num_events] = {&out.cycles, &out.instructions,
                                         &out.llc_loads, &out.llc_misses,
                                         &out.branch_misses};
    const std::uint64_t nr =
        data.nr < num_events + 2 ? data.nr : num_events + 2;
    for (std::uint64_t v = 0; v < nr; ++v) {
        for (std::size_t i = 0; i < num_events; ++i) {
            if (fds_[i] >= 0 && ids_[i] == data.values[v].id) {
                *fields[i] = static_cast<std::uint64_t>(
                    static_cast<double>(data.values[v].value) * scale);
                break;
            }
        }
    }
#endif
    return out;
}

perf_phase_counters perf_phase_counters::from_registry(
    metrics_registry& registry, std::string_view phase) {
    const std::string prefix = "perf." + std::string(phase);
    perf_phase_counters out;
    out.cycles = registry.get_counter(prefix + ".cycles");
    out.instructions = registry.get_counter(prefix + ".instructions");
    out.llc_loads = registry.get_counter(prefix + ".llc_loads");
    out.llc_misses = registry.get_counter(prefix + ".llc_misses");
    out.branch_misses = registry.get_counter(prefix + ".branch_misses");
    return out;
}

perf_scope::~perf_scope() {
    if (group_ == nullptr) {
        return;
    }
    const perf_readings end = group_->read();
    // Saturating deltas: multiplex scaling estimates can regress a
    // hair between reads; clamp instead of wrapping to 2^64.
    const auto delta = [](std::uint64_t a, std::uint64_t b) {
        return b > a ? b - a : 0;
    };
    dest_->cycles->add(delta(start_.cycles, end.cycles));
    dest_->instructions->add(delta(start_.instructions, end.instructions));
    dest_->llc_loads->add(delta(start_.llc_loads, end.llc_loads));
    dest_->llc_misses->add(delta(start_.llc_misses, end.llc_misses));
    dest_->branch_misses->add(delta(start_.branch_misses, end.branch_misses));
}

process_usage current_process_usage() {
    process_usage out;
#if NS_PERF_HAVE_LINUX
    rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        // ru_maxrss is kilobytes on Linux.
        out.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
        out.minor_page_faults = static_cast<std::uint64_t>(ru.ru_minflt);
        out.major_page_faults = static_cast<std::uint64_t>(ru.ru_majflt);
        out.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
        out.involuntary_ctx_switches =
            static_cast<std::uint64_t>(ru.ru_nivcsw);
    }
#endif
    return out;
}

#else  // NS_OBS_ENABLED == 0

// Disabled builds still get the (host-only, never deterministic)
// process snapshot for the --metrics process section; it reads nothing
// from the obs machinery.
process_usage current_process_usage() {
    process_usage out;
#if NS_PERF_HAVE_LINUX
    rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        out.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
        out.minor_page_faults = static_cast<std::uint64_t>(ru.ru_minflt);
        out.major_page_faults = static_cast<std::uint64_t>(ru.ru_majflt);
        out.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
        out.involuntary_ctx_switches =
            static_cast<std::uint64_t>(ru.ru_nivcsw);
    }
#endif
    return out;
}

#endif  // NS_OBS_ENABLED

}  // namespace ns::obs
