// Analytic roofline model of the symbol-domain hot loop.
//
// The fast path's inner loop (`add_kernel_at` in superposition.cpp) is
//     spectrum[i] += kernel[w] * scalar;
// over std::complex<double> — per window element it reads the kernel
// tap (16 B) and the accumulator (16 B), writes the accumulator back
// (16 B), and performs one complex multiply-by-scalar (6 flops) plus
// one complex add (2 flops). The element count is observable and
// deterministic: combine_symbol_domain counts every summed window
// element into the `phy.kernel_window_elems` counter, so
//     bytes  = 48 * elems,   flops = 8 * elems,
//     arithmetic intensity = 8/48 = 1/6 flop/byte  (loop-invariant).
// Dividing by a measured phase time (phy.kernel_sum_s) yields achieved
// GB/s and GFLOP/s; dividing achieved GB/s by a measured STREAM-triad
// ceiling (bench_roofline) yields % of peak. At 1/6 flop/byte the loop
// sits far left on the roofline — memory-bound — which is exactly why
// ROADMAP item 1 pairs SoA/SIMD restructuring with this model.
//
// Determinism: the model itself (elems, bytes, flops, intensity) is a
// pure function of the workload and is safe to emit anywhere; only the
// time-derived rates (GB/s, GFLOP/s) are host facts and stay behind
// the is_host_metric_name/strip-wallclock fences.
#pragma once

#include <cstdint>

#include "netscatter/obs/metrics.hpp"

namespace ns::obs {

/// Traffic/work model of the kernel-accumulation loop.
struct kernel_loop_model {
    /// Total accumulated window elements (Σ window size over every
    /// kernel summed) — the phy.kernel_window_elems counter.
    std::uint64_t window_elems = 0;

    /// Per-element traffic: kernel tap read + accumulator read +
    /// accumulator write, all std::complex<double>.
    static constexpr double bytes_per_elem = 48.0;
    /// Per-element work: complex×complex multiply (6) + complex add (2).
    static constexpr double flops_per_elem = 8.0;

    double bytes() const {
        return static_cast<double>(window_elems) * bytes_per_elem;
    }
    double flops() const {
        return static_cast<double>(window_elems) * flops_per_elem;
    }
    /// flops/byte; constant 1/6 by construction, independent of the
    /// workload and of how many threads produced it.
    double arithmetic_intensity() const {
        return flops_per_elem / bytes_per_elem;
    }
    double achieved_gbps(double seconds) const {
        return seconds > 0.0 ? bytes() / seconds * 1e-9 : 0.0;
    }
    double achieved_gflops(double seconds) const {
        return seconds > 0.0 ? flops() / seconds * 1e-9 : 0.0;
    }
    /// Achieved bandwidth as a fraction of a measured ceiling
    /// (e.g. the STREAM triad from bench_roofline). Can exceed 1 when
    /// the working set is cache-resident — the triad ceiling is DRAM.
    double fraction_of_peak(double seconds, double peak_gbps) const {
        return peak_gbps > 0.0 ? achieved_gbps(seconds) / peak_gbps : 0.0;
    }
};

/// Builds the model from a merged metrics snapshot (reads
/// phy.kernel_window_elems; zero when the counter is absent, e.g.
/// sample-fidelity runs or NS_OBS=OFF).
kernel_loop_model kernel_loop_model_from(const metrics_snapshot& snapshot);

/// Expected window size of one truncated Dirichlet kernel — mirrors
/// the sizing in make_dechirped_tone_kernel (chirp.cpp) so tests can
/// hand-compute phy.kernel_window_elems:
///     half   = min(radius_bins * padding, num_bins * padding / 2)
///     window = min(2 * half + 1, num_bins * padding)
std::uint64_t kernel_window_size(std::size_t num_bins, std::size_t padding,
                                 std::size_t radius_bins);

}  // namespace ns::obs
