#include "netscatter/obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace ns::obs {

std::uint64_t trace_origin_ns() {
    // Latched on first use; thread-safe per the C++ static-local rule.
    static const std::uint64_t origin = now_ns();
    return origin;
}

void write_chrome_trace(std::span<const trace_event> events, std::ostream& out) {
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[64];
    for (std::size_t i = 0; i < events.size(); ++i) {
        const trace_event& e = events[i];
        out << (i == 0 ? "\n" : ",\n");
        // ts/dur are microseconds; print as <us>.<ns fraction> to keep
        // full nanosecond resolution without floating-point round trips.
        std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", e.ts_ns / 1000,
                      static_cast<unsigned>(e.ts_ns % 1000));
        out << "{\"name\":\"" << e.name
            << "\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.track
            << ",\"ts\":" << buf;
        std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", e.dur_ns / 1000,
                      static_cast<unsigned>(e.dur_ns % 1000));
        out << ",\"dur\":" << buf;
        if (e.arg >= 0) out << ",\"args\":{\"round\":" << e.arg << "}";
        out << "}";
    }
    out << "\n]}\n";
}

bool write_chrome_trace(std::span<const trace_event> events,
                        const std::string& path) {
    std::ofstream file(path);
    if (!file) return false;
    write_chrome_trace(events, file);
    return static_cast<bool>(file);
}

}  // namespace ns::obs
