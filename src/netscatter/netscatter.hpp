// NetScatter — public umbrella header.
//
// A C++20 reproduction of "NetScatter: Enabling Large-Scale Backscatter
// Networks" (Hessar, Najafi, Gollakota — NSDI 2019): distributed chirp
// spread spectrum coding that decodes hundreds of concurrent backscatter
// devices with a single FFT per symbol, plus the full supporting stack
// (PHY, channel, device model, MAC protocol, receiver, baselines and a
// network simulator).
//
// Include this header to get the entire public API, or include the
// individual module headers for finer-grained dependencies.
#pragma once

#include "netscatter/util/bits.hpp"
#include "netscatter/util/crc.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/table.hpp"
#include "netscatter/util/units.hpp"

#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/fir.hpp"
#include "netscatter/dsp/peak.hpp"
#include "netscatter/dsp/spectrogram.hpp"
#include "netscatter/dsp/vector_ops.hpp"

#include "netscatter/phy/aggregation.hpp"
#include "netscatter/phy/ask.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/phy/sensitivity.hpp"

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/fading.hpp"
#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/pathloss.hpp"
#include "netscatter/channel/superposition.hpp"

#include "netscatter/device/backscatter_device.hpp"
#include "netscatter/device/envelope_detector.hpp"
#include "netscatter/device/impedance.hpp"
#include "netscatter/device/power_budget.hpp"

#include "netscatter/faults/fault_injector.hpp"
#include "netscatter/faults/fault_spec.hpp"

#include "netscatter/mac/allocator.hpp"
#include "netscatter/mac/aloha.hpp"
#include "netscatter/mac/ap.hpp"
#include "netscatter/mac/query_message.hpp"
#include "netscatter/mac/scheduler.hpp"

#include "netscatter/rx/receiver.hpp"
#include "netscatter/rx/stream_receiver.hpp"

#include "netscatter/baseline/choir.hpp"
#include "netscatter/baseline/lora_link.hpp"

#include "netscatter/sim/association_sim.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/sim/round_hooks.hpp"
#include "netscatter/sim/timeline.hpp"

#include "netscatter/engine/fft_plan.hpp"
#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/engine/thread_pool.hpp"

#include "netscatter/scenario/churn.hpp"
#include "netscatter/scenario/interference.hpp"
#include "netscatter/scenario/mobility.hpp"
#include "netscatter/scenario/scenario_driver.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/scenario/traffic.hpp"
