// Control-plane fault model (declarative).
//
// Every control exchange the simulator runs — downlink queries,
// association ACKs, the regroup/ordering broadcasts — is perfect unless
// a fault_spec says otherwise. The spec describes the failure processes
// the paper's protocol is designed to survive (§3.3.3–§3.3.4): lossy
// downlink queries (iid or RSSI-coupled), lost association ACKs (the
// repeat-response-until-ACK path), device reboots/brownouts that lose
// shift + group state, stale-schedule desync after a missed regroup
// query, and whole-AP blackout windows — plus the recovery knobs the AP
// and devices use to converge back: membership leases, device-side
// missed-query counters, and a bounded ACK-replay window.
//
// All rates default to zero: a default fault_spec is inert (enabled()
// is false), the simulator constructs no injector, draws no random
// numbers and changes no behaviour — zero-fault runs stay bit-identical
// to a build without this subsystem.
#pragma once

#include <cstddef>

namespace ns::faults {

/// Declarative fault + recovery configuration. Plain aggregate so it
/// rides inside sim_config / scenario_spec like every other knob.
struct fault_spec {
    // --- Injection processes -------------------------------------------
    /// Per-device, per-round probability the downlink query is lost (the
    /// device hears nothing: it neither transmits nor learns schedule
    /// changes that round). Drawn statelessly per (round, device) from
    /// the split_seed stream, so the loss schedule is a pure function of
    /// the seed — identical at any thread count and call order.
    double query_loss = 0.0;
    /// RSSI coupling of the query loss: extra loss probability per dB of
    /// downlink RSSI below query_loss_ref_rssi_dbm (weak links miss more
    /// queries). 0 keeps the loss iid.
    double query_loss_rssi_slope = 0.0;
    /// Reference downlink RSSI for the slope term; at or above it only
    /// the iid floor applies.
    double query_loss_ref_rssi_dbm = -30.0;

    /// Probability each association-ACK transmission is lost at the AP.
    /// A lost ACK makes the AP repeat the piggybacked response on the
    /// next query (§3.3.4), delaying the handshake one round per loss.
    double ack_loss = 0.0;

    /// Mean device reboots (brownouts) per round, Poisson. A rebooted
    /// device loses its shift and group state, falls silent, and must
    /// rejoin through the slotted-Aloha association path; the AP keeps
    /// its stale table entry until the membership lease evicts it or the
    /// device's re-association request arrives.
    double reboot_rate_per_round = 0.0;

    /// Per-round probability a whole-AP blackout begins (when one is not
    /// already in progress). During a blackout no query is transmitted:
    /// no device transmits, association handshakes stall (grants are
    /// deferred), and scheduled devices count the missing queries toward
    /// their missed-query limit.
    double blackout_probability = 0.0;
    /// Rounds each blackout lasts.
    std::size_t blackout_rounds = 2;

    // --- Recovery knobs -------------------------------------------------
    /// Membership lease (AP side): a device silent for this many
    /// consecutive scheduled rounds is evicted — its table entry is
    /// dropped and its cyclic shift reclaimed through the allocator for
    /// reuse. 0 disables leases (stale entries linger forever).
    std::size_t lease_rounds = 0;
    /// Device side: after this many consecutive missed queries the
    /// device assumes it lost the schedule and re-initiates association
    /// (§3.3.4). 0 disables the counter.
    std::size_t missed_query_limit = 0;
    /// AP side: how many rounds the AP replays an un-ACKed association
    /// response before abandoning the handshake (the joiner must then
    /// re-request). Bounded backoff on the §3.3.4 repeat path.
    std::size_t ack_retry_limit = 8;

    /// Whether any fault process is active. When false the simulator
    /// builds no injector and every fault/recovery code path is skipped.
    bool enabled() const {
        return query_loss > 0.0 || ack_loss > 0.0 ||
               reboot_rate_per_round > 0.0 || blackout_probability > 0.0;
    }

    /// Throws ns::util::invalid_argument when a field is outside its
    /// domain (probabilities outside [0, 1], negative rates, a zero
    /// blackout duration with a non-zero blackout probability, ...).
    void validate() const;
};

}  // namespace ns::faults
