// Deterministic control-plane fault injector.
//
// One injector serves one simulator replica. All draws derive from the
// replica's fault seed through the same split_seed chain the Monte-Carlo
// runner uses, in two flavours:
//
//   * per-(round, device) query loss is STATELESS — a pure hash of
//     (round seed, device id) mapped to [0, 1) — so the loss schedule is
//     independent of iteration order and identical wherever it is
//     consulted (the regroup pass and the device loop agree on whether a
//     device heard a given round's query);
//   * round-scoped draws (ACK losses, reboot counts, victim picks,
//     blackout onsets) come from a per-round generator reseeded from
//     split_seed(base, round, ...) at begin_round(), consumed in the
//     replica's serial loop order.
//
// Replicas are the parallel unit and each replica's round loop is
// serial (intra-round threads only fan out symbol blocks), so every
// fault schedule is bit-identical at any --threads / --round-threads.
#pragma once

#include <cstddef>
#include <cstdint>

#include "netscatter/faults/fault_spec.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::faults {

/// Per-replica fault schedule generator. begin_round() must be called
/// once per round, in round order.
class fault_injector {
public:
    /// `seed` is the replica's fault stream base (the simulator splits
    /// it off its config seed). Validates `spec`.
    fault_injector(const fault_spec& spec, std::uint64_t seed);

    /// Starts a round: reseeds the round-scoped generator and advances
    /// the blackout state machine.
    void begin_round(std::size_t round);

    /// Whether the current round is inside an AP blackout window.
    bool blackout() const { return blackout_remaining_ > 0; }

    /// Whether `device_id` misses this round's downlink query.
    /// Stateless per (round, device): any number of calls, in any order,
    /// return the same answer for the same round. `query_rssi_dbm` is
    /// the device's downlink RSSI for the RSSI-coupled loss term.
    bool query_lost(std::uint32_t device_id, double query_rssi_dbm) const;

    /// Draws one association-ACK transmission loss (round stream).
    bool ack_lost() { return round_rng_.bernoulli(spec_.ack_loss); }

    /// Number of device reboots this round (round stream, Poisson).
    std::size_t reboots() {
        return static_cast<std::size_t>(
            round_rng_.poisson(spec_.reboot_rate_per_round));
    }

    /// Uniform victim index in [0, n) (round stream). Requires n >= 1.
    std::size_t pick(std::size_t n) {
        return static_cast<std::size_t>(
            round_rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }

    const fault_spec& spec() const { return spec_; }

private:
    fault_spec spec_;
    std::uint64_t base_seed_;
    std::uint64_t round_seed_ = 0;   ///< query-loss hash key of this round
    ns::util::rng round_rng_;        ///< round-scoped sequential draws
    std::size_t blackout_remaining_ = 0;
};

}  // namespace ns::faults
