#include "netscatter/faults/fault_injector.hpp"

#include <algorithm>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/util/error.hpp"

namespace ns::faults {

namespace {

bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }

/// Stream tags keeping the injector's split_seed children disjoint from
/// each other (arbitrary distinct constants).
constexpr std::uint64_t round_rng_stream = 0x0fa1;
constexpr std::uint64_t query_loss_stream = 0x0fa2;

}  // namespace

void fault_spec::validate() const {
    ns::util::require(is_probability(query_loss),
                      "fault_spec: query_loss must be in [0, 1]");
    ns::util::require(query_loss_rssi_slope >= 0.0,
                      "fault_spec: query_loss_rssi_slope must be >= 0");
    ns::util::require(is_probability(ack_loss),
                      "fault_spec: ack_loss must be in [0, 1]");
    ns::util::require(reboot_rate_per_round >= 0.0,
                      "fault_spec: reboot_rate_per_round must be >= 0");
    ns::util::require(is_probability(blackout_probability),
                      "fault_spec: blackout_probability must be in [0, 1]");
    if (blackout_probability > 0.0) {
        ns::util::require(blackout_rounds >= 1,
                          "fault_spec: blackout_rounds must be >= 1 when "
                          "blackouts are enabled");
    }
    if (ack_loss > 0.0) {
        ns::util::require(ack_retry_limit >= 1,
                          "fault_spec: ack_retry_limit must be >= 1 when "
                          "ACK loss is enabled");
    }
}

fault_injector::fault_injector(const fault_spec& spec, std::uint64_t seed)
    : spec_(spec), base_seed_(seed), round_rng_(seed) {
    spec_.validate();
}

void fault_injector::begin_round(std::size_t round) {
    const auto r = static_cast<std::uint64_t>(round);
    round_seed_ = ns::engine::split_seed(base_seed_, query_loss_stream, r);
    round_rng_ = ns::util::rng(ns::engine::split_seed(base_seed_, round_rng_stream, r));
    // Consume the previous round's blackout window, then (outside a
    // blackout) draw this round's onset. The onset round is the first
    // blacked-out round and each window lasts exactly blackout_rounds.
    if (blackout_remaining_ > 0) --blackout_remaining_;
    if (blackout_remaining_ == 0 && spec_.blackout_probability > 0.0 &&
        round_rng_.bernoulli(spec_.blackout_probability)) {
        blackout_remaining_ = spec_.blackout_rounds;
    }
}

bool fault_injector::query_lost(std::uint32_t device_id,
                                double query_rssi_dbm) const {
    double p = spec_.query_loss;
    if (spec_.query_loss_rssi_slope > 0.0 &&
        query_rssi_dbm < spec_.query_loss_ref_rssi_dbm) {
        p += spec_.query_loss_rssi_slope *
             (spec_.query_loss_ref_rssi_dbm - query_rssi_dbm);
    }
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    // Stateless uniform in [0, 1): hash (round seed, device id) through
    // the same splitmix chain split_seed uses, take the top 53 bits.
    const std::uint64_t h = ns::engine::split_seed(round_seed_, device_id, 1);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < p;
}

}  // namespace ns::faults
