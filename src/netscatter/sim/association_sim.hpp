// Association-phase simulation (§3.3.2, Fig. 10).
//
// The paper's deployment sequenced device joins manually ("turns ON the
// backscatter devices one at a time"); the suggested protocol for
// simultaneous joiners is slotted Aloha with binary exponential backoff
// on the two reserved association shifts. This module simulates that
// control plane: every unassociated device contends for its region's
// association shift; two simultaneous requests on the same shift collide
// (same FFT bin — undecodable, §2.2's constraint 3); winners receive
// piggybacked assignments and ACK in the following round.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netscatter/mac/allocator.hpp"
#include "netscatter/mac/aloha.hpp"
#include "netscatter/mac/ap.hpp"
#include "netscatter/sim/deployment.hpp"

namespace ns::sim {

/// Configuration of the association simulation.
struct association_sim_params {
    ns::mac::allocation_params allocation{
        .phy = ns::phy::deployed_params(), .skip = 2, .num_association_slots = 2};
    std::uint32_t aloha_initial_window = 2;
    std::uint32_t aloha_max_window = 64;
    std::size_t max_rounds = 10000;
    std::uint64_t seed = 1;
    /// Query RSSI below which a device chooses the low-SNR association
    /// region (mirrors device_params::low_rssi_threshold_dbm).
    double low_rssi_threshold_dbm = -38.0;
};

/// Outcome of the association phase.
struct association_result {
    std::size_t rounds_used = 0;        ///< query rounds until everyone joined
    std::size_t collisions = 0;         ///< same-shift simultaneous requests
    std::size_t requests_sent = 0;      ///< association requests transmitted
    std::vector<std::size_t> join_round;///< per-device round of successful ACK
    bool all_joined = false;
    std::unordered_map<std::uint32_t, std::uint32_t> shifts;  ///< final allocation
};

/// Runs the Aloha association phase for every device in `dep`.
association_result simulate_association(const deployment& dep,
                                        const association_sim_params& params);

}  // namespace ns::sim
