#include "netscatter/sim/association_sim.hpp"

#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::sim {

association_result simulate_association(const deployment& dep,
                                        const association_sim_params& params) {
    const auto& devices = dep.devices();
    ns::util::rng rng(params.seed);
    ns::mac::access_point ap(params.allocation);

    // Every device contends on its region's association shift through
    // the shared slotted-Aloha pool (mac/aloha) — the same machinery the
    // scenario churn process joins through.
    ns::mac::aloha_contention pool(params.aloha_initial_window,
                                   params.aloha_max_window);
    std::vector<ns::device::snr_region> region_of;
    std::unordered_map<std::uint32_t, std::size_t> index_of;
    region_of.reserve(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const bool weak = devices[i].query_rssi_dbm < params.low_rssi_threshold_dbm;
        const auto region =
            weak ? ns::device::snr_region::low : ns::device::snr_region::high;
        region_of.push_back(region);
        index_of[devices[i].id] = i;
        pool.add(devices[i].id, region, rng.fork());
    }

    association_result result;
    result.join_round.assign(devices.size(), 0);
    std::size_t joined = 0;
    // Only one assignment can ride per query (Fig. 11 carries a single
    // association response); a granted device ACKs in the following
    // round. (Sentinel index instead of std::optional to sidestep a GCC
    // 12 -Wmaybe-uninitialized false positive.)
    constexpr std::size_t no_grant = static_cast<std::size_t>(-1);
    std::size_t pending_grant = no_grant;

    for (std::size_t round = 1; round <= params.max_rounds && joined < devices.size();
         ++round) {
        result.rounds_used = round;

        // The pending grantee ACKs first (its request already succeeded).
        if (pending_grant != no_grant) {
            ap.handle_association_ack(devices[pending_grant].id);
            result.join_round[pending_grant] = round;
            ++joined;
            pending_grant = no_grant;
        }

        // Contention: every unassociated device draws its Aloha slot;
        // per region, one lone request decodes and at most one grant
        // rides the next query.
        const ns::mac::contention_round contention = pool.step(1);
        result.requests_sent += contention.requests;
        result.collisions += contention.collisions;
        if (!contention.granted.empty()) {
            const std::uint32_t id = contention.granted.front();
            const std::size_t index = index_of.at(id);
            ap.handle_association_request({.device_id = id,
                                           .region = region_of[index],
                                           .rx_power_dbm = devices[index].uplink_rx_dbm});
            pending_grant = index;
        }
    }

    // Final ACK if one grant is still in flight at the horizon.
    if (pending_grant != no_grant && result.rounds_used < params.max_rounds) {
        ap.handle_association_ack(devices[pending_grant].id);
        result.join_round[pending_grant] = ++result.rounds_used;
        ++joined;
    }

    result.all_joined = joined == devices.size();
    for (const auto& [id, record] : ap.devices()) {
        result.shifts[id] = record.cyclic_shift;
    }
    return result;
}

}  // namespace ns::sim
