#include "netscatter/sim/association_sim.hpp"

#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::sim {

association_result simulate_association(const deployment& dep,
                                        const association_sim_params& params) {
    const auto& devices = dep.devices();
    ns::util::rng rng(params.seed);
    ns::mac::access_point ap(params.allocation);

    struct contender {
        std::size_t index;                  // into dep.devices()
        ns::device::snr_region region;
        ns::mac::aloha_backoff backoff;
        bool joined = false;
        bool awaiting_ack = false;
    };
    std::vector<contender> contenders;
    contenders.reserve(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const bool weak = devices[i].query_rssi_dbm < params.low_rssi_threshold_dbm;
        contenders.push_back(contender{
            .index = i,
            .region = weak ? ns::device::snr_region::low : ns::device::snr_region::high,
            .backoff = ns::mac::aloha_backoff(params.aloha_initial_window,
                                              params.aloha_max_window, rng.fork()),
        });
    }

    association_result result;
    result.join_round.assign(devices.size(), 0);
    std::size_t joined = 0;
    // Only one assignment can ride per query (Fig. 11 carries a single
    // association response); a granted device ACKs in the next round.
    // (Sentinel index instead of std::optional to sidestep a GCC 12
    // -Wmaybe-uninitialized false positive.)
    constexpr std::size_t no_grant = static_cast<std::size_t>(-1);
    std::size_t pending_grant = no_grant;

    for (std::size_t round = 1; round <= params.max_rounds && joined < devices.size();
         ++round) {
        result.rounds_used = round;

        // The pending grantee ACKs first (its request already succeeded).
        if (pending_grant != no_grant) {
            contender& winner = contenders[pending_grant];
            ap.handle_association_ack(devices[winner.index].id);
            winner.joined = true;
            winner.awaiting_ack = false;
            result.join_round[winner.index] = round;
            ++joined;
            pending_grant = no_grant;
        }

        // Contention: every unassociated device draws its Aloha slot.
        std::vector<std::size_t> high_tx, low_tx;
        for (std::size_t c = 0; c < contenders.size(); ++c) {
            contender& dev = contenders[c];
            if (dev.joined || dev.awaiting_ack) continue;
            if (!dev.backoff.should_transmit()) continue;
            ++result.requests_sent;
            (dev.region == ns::device::snr_region::high ? high_tx : low_tx).push_back(c);
        }

        // Per region: exactly one request decodes; >=2 on the same shift
        // collide in the same FFT bin and all back off.
        for (auto* bucket : {&high_tx, &low_tx}) {
            if (bucket->empty()) continue;
            if (bucket->size() >= 2) {
                result.collisions += bucket->size();
                for (std::size_t c : *bucket) contenders[c].backoff.on_collision();
                continue;
            }
            const std::size_t c = bucket->front();
            if (pending_grant != no_grant) {
                // The query can only carry one response; the other
                // region's winner retries (no collision penalty).
                continue;
            }
            contender& dev = contenders[c];
            ap.handle_association_request(
                {.device_id = devices[dev.index].id,
                 .region = dev.region,
                 .rx_power_dbm = devices[dev.index].uplink_rx_dbm});
            dev.backoff.on_success();
            dev.awaiting_ack = true;
            pending_grant = c;
        }
    }

    // Final ACK if one grant is still in flight at the horizon.
    if (pending_grant != no_grant && result.rounds_used < params.max_rounds) {
        contender& winner = contenders[pending_grant];
        ap.handle_association_ack(devices[winner.index].id);
        winner.joined = true;
        result.join_round[winner.index] = ++result.rounds_used;
        ++joined;
    }

    result.all_joined = joined == devices.size();
    for (const auto& [id, record] : ap.devices()) {
        result.shifts[id] = record.cyclic_shift;
    }
    return result;
}

}  // namespace ns::sim
