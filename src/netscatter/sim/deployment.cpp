#include "netscatter/sim/deployment.hpp"

#include <cmath>

#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::sim {

deployment::deployment(deployment_params params, std::size_t num_devices,
                       std::uint64_t seed)
    : params_(params) {
    ns::util::require(params_.rooms_x >= 1 && params_.rooms_y >= 1,
                      "deployment: need at least one room");
    ns::util::rng rng(seed);
    devices_.reserve(num_devices);

    const double ax = ap_x_m();
    const double ay = ap_y_m();

    for (std::size_t i = 0; i < num_devices; ++i) {
        placed_device device;
        device.id = static_cast<std::uint32_t>(i);
        // Rejection-sample a position at least min_distance from the AP.
        for (int attempt = 0; attempt < 1000; ++attempt) {
            device.x_m = rng.uniform(0.0, params_.floor_width_m);
            device.y_m = rng.uniform(0.0, params_.floor_depth_m);
            const double dx = device.x_m - ax;
            const double dy = device.y_m - ay;
            if (std::hypot(dx, dy) >= params_.min_distance_m) break;
        }
        const double distance = std::hypot(device.x_m - ax, device.y_m - ay);
        device.walls = walls_between(device.x_m, device.y_m);
        device.oneway_loss_db =
            ns::channel::oneway_loss_db(params_.pathloss, distance, device.walls, rng);
        device.query_rssi_dbm = params_.ap_tx_dbm - device.oneway_loss_db;
        device.uplink_rx_dbm = params_.ap_tx_dbm -
                               (2.0 * device.oneway_loss_db + params_.conversion_loss_db);
        device.uplink_snr_db = device.uplink_rx_dbm - noise_floor_dbm(500e3);
        devices_.push_back(device);
    }
}

deployment::deployment(deployment_params params, std::vector<placed_device> devices)
    : params_(params), devices_(std::move(devices)) {}

double deployment::noise_floor_dbm(double bandwidth_hz) const {
    return ns::util::noise_floor_dbm(bandwidth_hz, params_.noise_figure_db);
}

int deployment::walls_between(double x_m, double y_m) const {
    const double ax = ap_x_m();
    const double ay = ap_y_m();
    int walls = 0;

    const double room_w = params_.floor_width_m / static_cast<double>(params_.rooms_x);
    const double room_h = params_.floor_depth_m / static_cast<double>(params_.rooms_y);

    // Vertical interior walls at x = k * room_w.
    for (std::size_t k = 1; k < params_.rooms_x; ++k) {
        const double wall_x = static_cast<double>(k) * room_w;
        if ((ax - wall_x) * (x_m - wall_x) < 0.0) ++walls;
    }
    // Horizontal interior walls at y = k * room_h.
    for (std::size_t k = 1; k < params_.rooms_y; ++k) {
        const double wall_y = static_cast<double>(k) * room_h;
        if ((ay - wall_y) * (y_m - wall_y) < 0.0) ++walls;
    }
    return walls;
}

}  // namespace ns::sim
