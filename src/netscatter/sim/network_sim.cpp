#include "netscatter/sim/network_sim.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/channel/superposition.hpp"
#include "netscatter/util/bits.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/units.hpp"

namespace ns::sim {

void sim_result::merge(const sim_result& other) {
    rounds.insert(rounds.end(), other.rounds.begin(), other.rounds.end());
    total_transmitting += other.total_transmitting;
    total_delivered += other.total_delivered;
    total_detected += other.total_detected;
    total_bit_errors += other.total_bit_errors;
    total_bits += other.total_bits;
}

double sim_result::delivery_rate() const {
    if (total_transmitting == 0) return 0.0;
    return static_cast<double>(total_delivered) / static_cast<double>(total_transmitting);
}

double sim_result::ber() const {
    if (total_bits == 0) return 0.0;
    return static_cast<double>(total_bit_errors) / static_cast<double>(total_bits);
}

double sim_result::mean_delivered_per_round() const {
    ns::util::running_stats stats;
    for (const auto& r : rounds) stats.add(static_cast<double>(r.delivered));
    return stats.mean();
}

double sim_result::variance_delivered_per_round() const {
    ns::util::running_stats stats;
    for (const auto& r : rounds) stats.add(static_cast<double>(r.delivered));
    return stats.variance();
}

namespace {

ns::device::device_params make_device_params(const sim_config& config) {
    ns::device::device_params params;
    params.phy = config.phy;
    params.delay_model = config.delay_model;
    if (!config.model_timing_jitter) {
        params.delay_model.mean_us = 0.0;
        params.delay_model.sigma_us = 0.0;
        params.delay_model.max_us = 0.0;
    }
    params.crystal = config.crystal;
    if (!config.model_cfo) {
        params.crystal.tolerance_ppm = 0.0;
        params.crystal.drift_sigma_hz = 0.0;
    }
    return params;
}

}  // namespace

network_simulator::network_simulator(const deployment& dep, sim_config config)
    : deployment_(&dep),
      config_(config),
      rng_(config.seed),
      receiver_(ns::rx::receiver_params{.phy = config.phy,
                                        .zero_padding_factor = config.zero_padding,
                                        .detection_factor = config.detection_factor,
                                        .skip = config.skip,
                                        .frame = config.frame}) {
    const auto& placed = dep.devices();
    const ns::device::device_params dev_params = make_device_params(config_);
    const double noise_floor = dep.noise_floor_dbm(config_.phy.bandwidth_hz);

    // --- Association phase (devices join one at a time, §3.3.2) ---------
    // Determine each device's association-time gain by the same rule the
    // device applies, then run the power-aware batch allocation the AP
    // would have converged to.
    ns::device::switch_network network;
    std::vector<ns::mac::device_power> powers;
    powers.reserve(placed.size());
    association_snr_db_.reserve(placed.size());

    std::vector<std::size_t> gain_levels(placed.size());
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const bool weak = placed[i].query_rssi_dbm < dev_params.low_rssi_threshold_dbm;
        gain_levels[i] = weak ? network.max_level() : network.middle_level();
        const double gain_db = network.gain_db(gain_levels[i]);
        const double uplink_dbm = placed[i].uplink_rx_dbm + gain_db;
        powers.push_back({placed[i].id, uplink_dbm});
        association_snr_db_.push_back(uplink_dbm - noise_floor);
    }

    ns::mac::allocation_params alloc_params{
        .phy = config_.phy, .skip = config_.skip, .num_association_slots = 0};
    ns::mac::shift_allocator allocator(alloc_params);
    if (config_.power_aware_allocation) {
        allocation_ = allocator.allocate(powers).shifts;
    } else {
        // Ablation: power-agnostic assignment — same spreading stride, but
        // slots are handed out in device-id order, so strong and weak
        // devices land next to each other.
        std::vector<ns::mac::device_power> by_id = powers;
        for (auto& p : by_id) p.rx_power_dbm = 0.0;  // identical keys: id order
        allocation_ = allocator.allocate(by_id).shifts;
    }

    // --- Instantiate devices -------------------------------------------
    slots_.reserve(placed.size());
    std::vector<std::uint32_t> shifts;
    shifts.reserve(placed.size());
    const double ap_x = dep.ap_x_m();
    const double ap_y = dep.ap_y_m();
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const std::uint32_t shift = allocation_.at(placed[i].id);
        shifts.push_back(shift);
        device_slot slot{
            .placement = placed[i],
            .device = ns::device::backscatter_device(placed[i].id, dev_params, rng_()),
            .modulator = ns::phy::distributed_modulator(config_.phy, shift),
            .fading = ns::channel::gauss_markov_fading(config_.fading_sigma_db,
                                                       config_.fading_rho, rng_.fork()),
            .tof_s = std::hypot(placed[i].x_m - ap_x, placed[i].y_m - ap_y) /
                     ns::util::speed_of_light_mps,
        };
        slot.device.force_associate(shift, placed[i].query_rssi_dbm, gain_levels[i]);
        slots_.push_back(std::move(slot));
    }
    receiver_.set_registered_shifts(shifts);
}

sim_result network_simulator::run() {
    sim_result result;
    const double noise_floor =
        deployment_->noise_floor_dbm(config_.phy.bandwidth_hz);
    const std::size_t sps = config_.phy.samples_per_symbol();
    const std::size_t packet_samples =
        (config_.frame.preamble_symbols + config_.frame.payload_plus_crc_bits()) * sps;

    for (std::size_t round = 0; round < config_.rounds; ++round) {
        round_outcome outcome;
        std::vector<ns::channel::tx_contribution> contributions;
        // shift -> sent bits, for accounting.
        std::unordered_map<std::uint32_t, std::vector<bool>> sent_bits;

        for (auto& slot : slots_) {
            const double fade_db = slot.fading.next_db();
            const double query_rssi = slot.placement.query_rssi_dbm + fade_db;

            ns::device::transmit_intent intent;
            if (config_.power_adaptation) {
                intent = slot.device.handle_query(query_rssi, std::nullopt);
                if (intent.action == ns::device::device_action::association_request) {
                    // The device fell persistently out of tolerance and
                    // re-initiated association. The AP reassigns (here: the
                    // same shift, with a fresh RSSI baseline and gain) and
                    // the device resumes next round (§3.2.3 / §3.3.4).
                    const ns::device::switch_network network;
                    const bool weak = query_rssi <
                                      slot.device.params().low_rssi_threshold_dbm;
                    slot.device.force_associate(
                        slot.device.cyclic_shift(), query_rssi,
                        weak ? network.max_level() : network.middle_level());
                    ++outcome.skipped;
                    continue;
                }
                if (intent.action == ns::device::device_action::skip) {
                    ++outcome.skipped;
                    continue;
                }
                if (intent.action != ns::device::device_action::transmit_data) continue;
            } else {
                // Ablation: always transmit at maximum gain.
                intent.action = ns::device::device_action::transmit_data;
                intent.cyclic_shift = slot.device.cyclic_shift();
                intent.gain_db = 0.0;
                intent.hardware_delay_s = config_.model_timing_jitter
                                              ? config_.delay_model.sample_s(rng_)
                                              : 0.0;
                intent.frequency_offset_hz =
                    config_.model_cfo ? slot.device.static_frequency_offset_hz() : 0.0;
            }

            // Build this device's packet.
            std::vector<bool> payload = rng_.bits(config_.frame.payload_bits);
            const std::vector<bool> frame_bits =
                ns::phy::build_frame_bits(config_.frame, payload);
            sent_bits[intent.cyclic_shift] = frame_bits;

            ns::channel::tx_contribution tx;
            tx.waveform = slot.modulator.modulate_packet(frame_bits);
            const double uplink_dbm =
                slot.placement.uplink_rx_dbm + intent.gain_db + 2.0 * fade_db;
            tx.snr_db = uplink_dbm - noise_floor;
            // The AP's preamble synchronization absorbs the fleet-common
            // latency; only the deviation from the mean hardware delay
            // (plus this device's round-trip flight time) is residual
            // (§3.2.1 / Fig. 14b).
            const double sync_point_s =
                config_.model_timing_jitter ? config_.delay_model.mean_us * 1e-6 : 0.0;
            tx.timing_offset_s =
                intent.hardware_delay_s - sync_point_s + 2.0 * slot.tof_s;
            tx.frequency_offset_hz = intent.frequency_offset_hz;
            contributions.push_back(std::move(tx));
            ++outcome.transmitting;
        }

        // Superpose and decode.
        ns::channel::channel_config chan;
        chan.noise_power = 1.0;
        const ns::dsp::cvec received = ns::channel::combine(
            contributions, packet_samples, config_.phy, chan, rng_);
        const ns::rx::decode_result decoded = receiver_.decode(received, 0);

        for (const auto& report : decoded.reports) {
            const auto it = sent_bits.find(report.cyclic_shift);
            if (it == sent_bits.end()) continue;  // device did not transmit
            if (report.detected) {
                ++outcome.detected;
                outcome.bits_sent += it->second.size();
                outcome.bit_errors += ns::util::hamming_distance(report.bits, it->second);
                if (report.crc_ok && report.bits == it->second) ++outcome.delivered;
            } else {
                // Missed preamble: every bit of the packet is lost.
                outcome.bits_sent += it->second.size();
                std::size_t ones = 0;
                for (bool b : it->second) ones += b ? 1 : 0;
                outcome.bit_errors += ones;
            }
        }

        result.rounds.push_back(outcome);
        result.total_transmitting += outcome.transmitting;
        result.total_delivered += outcome.delivered;
        result.total_detected += outcome.detected;
        result.total_bit_errors += outcome.bit_errors;
        result.total_bits += outcome.bits_sent;
    }
    return result;
}

}  // namespace ns::sim
