#include "netscatter/sim/network_sim.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>

#include "netscatter/channel/superposition.hpp"
#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/util/bits.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/stats.hpp"
#include "netscatter/util/units.hpp"

namespace ns::sim {

void sim_config::validate() const {
    ns::util::require(rounds > 0, "sim_config: rounds must be > 0");
    ns::util::require(skip >= 1, "sim_config: skip must be >= 1");
    ns::util::require(skip < phy.num_bins(),
                      "sim_config: skip must be < the number of FFT bins");
    ns::util::require(detection_factor > 0.0,
                      "sim_config: detection_factor must be > 0");
    ns::util::require(zero_padding >= 1, "sim_config: zero_padding must be >= 1");
    ns::util::require(fading_sigma_db >= 0.0,
                      "sim_config: fading_sigma_db must be >= 0");
    ns::util::require(fading_rho >= 0.0 && fading_rho < 1.0,
                      "sim_config: fading_rho must be in [0, 1)");
    ns::util::require(frame.payload_bits > 0, "sim_config: payload_bits must be > 0");
    ns::util::require(symbol_kernel_radius_bins >= 1,
                      "sim_config: symbol_kernel_radius_bins must be >= 1");
    ns::util::require(intra_round_threads >= 1,
                      "sim_config: intra_round_threads must be >= 1");
    ns::util::require(multipath_rho >= 0.0 && multipath_rho < 1.0,
                      "sim_config: multipath_rho must be in [0, 1)");
    if (model_multipath) {
        ns::util::require(multipath.num_taps >= 0,
                          "sim_config: multipath.num_taps must be >= 0");
    }
    if (grouping.enabled) {
        ns::util::require(grouping.group_capacity >= 1,
                          "sim_config: grouping.group_capacity must be >= 1");
        ns::util::require(grouping.max_dynamic_range_db > 0.0,
                          "sim_config: grouping.max_dynamic_range_db must be > 0");
        if (grouping.policy == regroup_policy::periodic) {
            ns::util::require(grouping.regroup_period_rounds >= 1,
                              "sim_config: regroup_period_rounds must be >= 1");
        }
        if (grouping.policy == regroup_policy::load_triggered) {
            ns::util::require(grouping.load_trigger_misfits >= 1,
                              "sim_config: load_trigger_misfits must be >= 1");
        }
    }
    faults.validate();
}

void sim_result::merge(const sim_result& other) {
    rounds.insert(rounds.end(), other.rounds.begin(), other.rounds.end());
    total_transmitting += other.total_transmitting;
    total_delivered += other.total_delivered;
    total_detected += other.total_detected;
    total_bit_errors += other.total_bit_errors;
    total_bits += other.total_bits;
    total_skipped += other.total_skipped;
    total_idle += other.total_idle;
    total_active_rounds += other.total_active_rounds;
    total_joins += other.total_joins;
    total_leaves += other.total_leaves;
    total_rejected_joins += other.total_rejected_joins;
    total_reassociations += other.total_reassociations;
    total_realloc_events += other.total_realloc_events;
    total_full_reassignments += other.total_full_reassignments;
    total_regroups += other.total_regroups;
    total_cross_tx += other.total_cross_tx;
    total_cross_collisions += other.total_cross_collisions;
    total_cross_collided_delivered += other.total_cross_collided_delivered;
    total_query_losses += other.total_query_losses;
    total_ack_losses += other.total_ack_losses;
    total_ack_timeouts += other.total_ack_timeouts;
    total_reboots += other.total_reboots;
    total_down_events += other.total_down_events;
    total_lease_evictions += other.total_lease_evictions;
    total_desyncs += other.total_desyncs;
    total_resyncs += other.total_resyncs;
    total_recoveries += other.total_recoveries;
    total_orphan_tx += other.total_orphan_tx;
    total_orphan_collisions += other.total_orphan_collisions;
    total_blackout_rounds += other.total_blackout_rounds;
    devices_down_at_end += other.devices_down_at_end;
    fast_path_rounds += other.fast_path_rounds;
    synth_wall_s += other.synth_wall_s;
    decode_wall_s += other.decode_wall_s;
    metrics.merge(other.metrics);
    trace.insert(trace.end(), other.trace.begin(), other.trace.end());
    trace_dropped += other.trace_dropped;
    if (groups.size() < other.groups.size()) groups.resize(other.groups.size());
    for (std::size_t g = 0; g < other.groups.size(); ++g) {
        group_metrics& mine = groups[g];
        const group_metrics& theirs = other.groups[g];
        if (theirs.members > 0) {
            mine.min_power_dbm = mine.members > 0
                                     ? std::min(mine.min_power_dbm, theirs.min_power_dbm)
                                     : theirs.min_power_dbm;
            mine.max_power_dbm = mine.members > 0
                                     ? std::max(mine.max_power_dbm, theirs.max_power_dbm)
                                     : theirs.max_power_dbm;
        }
        mine.members += theirs.members;
        mine.scheduled_rounds += theirs.scheduled_rounds;
        mine.transmitting += theirs.transmitting;
        mine.delivered += theirs.delivered;
        mine.bits_sent += theirs.bits_sent;
        mine.bit_errors += theirs.bit_errors;
    }
    num_groups = std::max(num_groups, other.num_groups);
}

double sim_result::delivery_rate() const {
    if (total_transmitting == 0) return 0.0;
    return static_cast<double>(total_delivered) / static_cast<double>(total_transmitting);
}

double sim_result::ber() const {
    if (total_bits == 0) return 0.0;
    return static_cast<double>(total_bit_errors) / static_cast<double>(total_bits);
}

double sim_result::mean_delivered_per_round() const {
    ns::util::running_stats stats;
    for (const auto& r : rounds) stats.add(static_cast<double>(r.delivered));
    return stats.mean();
}

double sim_result::variance_delivered_per_round() const {
    ns::util::running_stats stats;
    for (const auto& r : rounds) stats.add(static_cast<double>(r.delivered));
    return stats.variance();
}

double sim_result::skip_rate() const {
    if (total_active_rounds == 0) return 0.0;
    return static_cast<double>(total_skipped) / static_cast<double>(total_active_rounds);
}

double sim_result::idle_rate() const {
    if (total_active_rounds == 0) return 0.0;
    return static_cast<double>(total_idle) / static_cast<double>(total_active_rounds);
}

namespace {

ns::device::device_params make_device_params(const sim_config& config) {
    ns::device::device_params params;
    params.phy = config.phy;
    params.delay_model = config.delay_model;
    if (!config.model_timing_jitter) {
        params.delay_model.mean_us = 0.0;
        params.delay_model.sigma_us = 0.0;
        params.delay_model.max_us = 0.0;
    }
    params.crystal = config.crystal;
    if (!config.model_cfo) {
        params.crystal.tolerance_ppm = 0.0;
        params.crystal.drift_sigma_hz = 0.0;
    }
    return params;
}

}  // namespace

network_simulator::network_simulator(const deployment& dep, sim_config config,
                                     round_hooks* hooks)
    : deployment_(&dep),
      config_(config),
      hooks_(hooks),
      rng_(config.seed),
      allocator_(ns::mac::allocation_params{
          .phy = config.phy, .skip = config.skip, .num_association_slots = 0}),
      receiver_(ns::rx::receiver_params{.phy = config.phy,
                                        .zero_padding_factor = config.zero_padding,
                                        .detection_factor = config.detection_factor,
                                        .skip = config.skip,
                                        .frame = config.frame}) {
    config_.validate();
    if (config_.faults.enabled()) {
        // Dedicated fault seed stream, split off the replica seed with
        // its own tag so enabling faults never perturbs the channel /
        // traffic draws of the shared rng_ chain.
        fault_injector_.emplace(config_.faults,
                                ns::engine::split_seed(config_.seed, 0xfa17, 0));
    }
    const auto& placed = dep.devices();
    const ns::device::device_params dev_params = make_device_params(config_);
    const double noise_floor = dep.noise_floor_dbm(config_.phy.bandwidth_hz);

    // Which devices start associated: the hooks' initial set (a scenario
    // may deploy a larger universe than fits one concurrency group and
    // rotate membership through churn), or everyone.
    std::vector<bool> initially_active(placed.size(), true);
    if (hooks_) {
        if (const auto initial = hooks_->initial_active()) {
            std::fill(initially_active.begin(), initially_active.end(), false);
            for (std::uint32_t id : *initial) {
                for (std::size_t i = 0; i < placed.size(); ++i) {
                    if (placed[i].id == id) initially_active[i] = true;
                }
            }
        }
    }

    // --- Association phase (devices join one at a time, §3.3.2) ---------
    // Determine each device's association-time gain by the same rule the
    // device applies, then run the power-aware batch allocation the AP
    // would have converged to over the initially-active population.
    ns::device::switch_network network;
    std::vector<ns::mac::device_power> powers;
    powers.reserve(placed.size());
    association_snr_db_.reserve(placed.size());

    std::vector<std::size_t> gain_levels(placed.size());
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const bool weak = placed[i].query_rssi_dbm < dev_params.low_rssi_threshold_dbm;
        gain_levels[i] = weak ? network.max_level() : network.middle_level();
        const double gain_db = network.gain_db(gain_levels[i]);
        const double uplink_dbm = placed[i].uplink_rx_dbm + gain_db;
        if (initially_active[i]) powers.push_back({placed[i].id, uplink_dbm});
        association_snr_db_.push_back(uplink_dbm - noise_floor);
    }

    // --- Instantiate devices -------------------------------------------
    // Slots are built before the shift allocation so partition_into_groups
    // can cache each device's group index directly on its slot.
    slots_.reserve(placed.size());
    const double ap_x = dep.ap_x_m();
    const double ap_y = dep.ap_y_m();
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const bool active = initially_active[i];
        device_slot slot{
            .placement = placed[i],
            .device = ns::device::backscatter_device(placed[i].id, dev_params, rng_()),
            .modulator = std::nullopt,  // built lazily on first transmission
            .fading = ns::channel::gauss_markov_fading(config_.fading_sigma_db,
                                                       config_.fading_rho, rng_.fork()),
            .tof_s = std::hypot(placed[i].x_m - ap_x, placed[i].y_m - ap_y) /
                     ns::util::speed_of_light_mps,
            .active = active,
        };
        if (config_.model_multipath) {
            slot.taps.emplace(config_.multipath, config_.phy.bandwidth_hz,
                              config_.multipath_rho, rng_.fork());
        }
        if (active) ++active_count_;
        slot_index_[placed[i].id] = slots_.size();
        slots_.push_back(std::move(slot));
    }
    // Reserved to the universe size so churn never reallocates the list
    // inside a steady-state round.
    active_slots_.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].active) active_slots_.push_back(i);
    }

    if (grouped()) {
        // §3.3.3: partition the initially-active population into
        // signal-strength groups with per-group shift allocations.
        partition_into_groups(powers);
    } else if (config_.power_aware_allocation) {
        allocation_ = allocator_.allocate(powers).shifts;
    } else {
        // Ablation: power-agnostic assignment — same spreading stride, but
        // slots are handed out in device-id order, so strong and weak
        // devices land next to each other.
        std::vector<ns::mac::device_power> by_id = powers;
        for (auto& p : by_id) p.rx_power_dbm = 0.0;  // identical keys: id order
        allocation_ = allocator_.allocate(by_id).shifts;
    }

    for (std::size_t i = 0; i < placed.size(); ++i) {
        if (!initially_active[i]) continue;
        slots_[i].device.force_associate(allocation_.at(placed[i].id),
                                         placed[i].query_rssi_dbm, gain_levels[i]);
    }
    register_active_shifts();

    // --- Observability --------------------------------------------------
    // Handles fetched once; the round loop only dereferences them. With
    // runtime metrics off they stay null, which also keeps every probe
    // from reading the clock.
    if (config_.obs.metrics && ns::obs::compiled_in()) {
        probes_.round_total = metrics_.get_histogram("round.total_s");
        probes_.plan = metrics_.get_histogram("round.plan_s");
        probes_.grouping = metrics_.get_histogram("round.grouping_s");
        probes_.synth = metrics_.get_histogram("round.synth_s");
        probes_.superpose = metrics_.get_histogram("round.superpose_s");
        probes_.decode = metrics_.get_histogram("round.decode_s");
        probes_.round_allocs = metrics_.get_histogram("round.allocs");
        probes_.rounds = metrics_.get_counter("sim.rounds");
        probes_.fast_rounds = metrics_.get_counter("sim.fast_path_rounds");
        probes_.sample_rounds = metrics_.get_counter("sim.sample_path_rounds");
        probes_.tx_packets = metrics_.get_counter("sim.tx_packets");
        probes_.detected = metrics_.get_counter("sim.detected");
        probes_.delivered = metrics_.get_counter("sim.delivered");
        probes_.cross_tx = metrics_.get_counter("sim.cross_tx");
        probes_.cross_collisions = metrics_.get_counter("sim.cross_collisions");
        probes_.alloc_warmup_count = metrics_.get_counter("alloc.warmup_count");
        probes_.alloc_steady_count = metrics_.get_counter("alloc.steady_count");
        probes_.alloc_steady_bytes = metrics_.get_counter("alloc.steady_bytes");
        probes_.alloc_steady_rounds = metrics_.get_counter("alloc.steady_rounds");
        probes_.active_devices = metrics_.get_gauge("sim.active_devices");
        probes_.num_groups = metrics_.get_gauge("sim.num_groups");
        if (config_.faults.enabled()) {
            // fault.* instruments exist only when a fault process is
            // active, so fault-free runs publish the exact metric set
            // they always have (snapshot bit-identity).
            probes_.fault_query_losses = metrics_.get_counter("fault.query_losses");
            probes_.fault_ack_losses = metrics_.get_counter("fault.ack_losses");
            probes_.fault_ack_timeouts = metrics_.get_counter("fault.ack_timeouts");
            probes_.fault_reboots = metrics_.get_counter("fault.reboots");
            probes_.fault_down_events = metrics_.get_counter("fault.down_events");
            probes_.fault_lease_evictions =
                metrics_.get_counter("fault.lease_evictions");
            probes_.fault_desyncs = metrics_.get_counter("fault.desyncs");
            probes_.fault_resyncs = metrics_.get_counter("fault.resyncs");
            probes_.fault_recoveries = metrics_.get_counter("fault.recoveries");
            probes_.fault_orphan_tx = metrics_.get_counter("fault.orphan_tx");
            probes_.fault_orphan_collisions =
                metrics_.get_counter("fault.orphan_collisions");
            probes_.fault_blackout_rounds =
                metrics_.get_counter("fault.blackout_rounds");
            probes_.fault_recovery_rounds =
                metrics_.get_histogram("fault.recovery_rounds");
            probes_.fault_resync_rounds =
                metrics_.get_histogram("fault.resync_rounds");
        }
        chan_ws_.obs.metrics = &metrics_;
        receiver_.set_metrics(&metrics_);
        if (config_.obs.perf) {
            // Hardware counters for phase attribution. Opened here, on
            // the replica's thread (the Monte-Carlo runner constructs
            // each simulator inside its task). The availability gauge is
            // a perf.* name — a host fact, excluded from scenario JSON
            // and determinism diffs like every other perf metric — so a
            // denied perf_event_open shows up as available=0 instead of
            // silently-zero counters.
            const bool opened = perf_group_.open();
            metrics_.get_gauge("perf.available")->set(opened ? 1.0 : 0.0);
            if (opened) {
                using ns::obs::perf_phase_counters;
                probes_.perf_plan =
                    perf_phase_counters::from_registry(metrics_, "plan");
                probes_.perf_grouping =
                    perf_phase_counters::from_registry(metrics_, "grouping");
                probes_.perf_synth =
                    perf_phase_counters::from_registry(metrics_, "synth");
                probes_.perf_superpose =
                    perf_phase_counters::from_registry(metrics_, "superpose");
                probes_.perf_decode =
                    perf_phase_counters::from_registry(metrics_, "decode");
                chan_ws_.obs = ns::obs::obs_sink::wire(&metrics_, &perf_group_);
            }
        }
    }
    if (config_.obs.trace) {
        trace_.arm(config_.obs.trace_max_events, config_.obs.trace_track);
    }
    if (config_.intra_round_threads > 1) {
        round_pool_.emplace(config_.intra_round_threads);
        chan_ws_.block_pool = &*round_pool_;
    }
}

void network_simulator::register_active_shifts(std::optional<std::size_t> group) {
    shift_scratch_.clear();
    shift_scratch_.reserve(active_count_);
    for (const std::size_t i : active_slots_) {
        const device_slot& slot = slots_[i];
        if (group && slot.group != *group) continue;
        shift_scratch_.push_back(slot.device.cyclic_shift());
    }
    receiver_.set_registered_shifts(std::span<const std::uint32_t>(shift_scratch_));
    membership_dirty_ = false;
}

void network_simulator::mark_active(std::size_t slot_index) {
    const auto it =
        std::lower_bound(active_slots_.begin(), active_slots_.end(), slot_index);
    active_slots_.insert(it, slot_index);
}

void network_simulator::mark_inactive(std::size_t slot_index) {
    const auto it =
        std::lower_bound(active_slots_.begin(), active_slots_.end(), slot_index);
    if (it != active_slots_.end() && *it == slot_index) active_slots_.erase(it);
}

std::optional<std::size_t> network_simulator::group_of(std::uint32_t device_id) const {
    const auto it = slot_index_.find(device_id);
    if (it == slot_index_.end()) return std::nullopt;
    const std::size_t g = slots_[it->second].group;
    if (g == device_slot::no_group) return std::nullopt;
    return g;
}

ns::mac::group_scheduler network_simulator::make_scheduler() const {
    return ns::mac::group_scheduler(ns::mac::scheduler_params{
        .group_capacity =
            std::min(config_.grouping.group_capacity, allocator_.num_data_slots()),
        .max_dynamic_range_db = config_.grouping.max_dynamic_range_db});
}

void network_simulator::partition_into_groups(
    const std::vector<ns::mac::device_power>& powers) {
    std::unordered_map<std::uint32_t, double> power_of;
    power_of.reserve(powers.size());
    for (const auto& p : powers) power_of[p.device_id] = p.rx_power_dbm;

    const std::vector<ns::mac::device_group> partition =
        make_scheduler().partition(powers);
    ns::util::require(partition.size() <= max_groups,
                      "grouping: population needs more groups than the 8-bit "
                      "group-id field can address; raise group_capacity or "
                      "max_dynamic_range_db");

    allocation_.clear();
    for (auto& slot : slots_) slot.group = device_slot::no_group;
    group_spans_.clear();
    group_spans_.reserve(partition.size());
    for (std::size_t g = 0; g < partition.size(); ++g) {
        const ns::mac::device_group& group = partition[g];
        group_spans_.push_back({.members = group.size(),
                                .min_power_dbm = group.min_power_dbm,
                                .max_power_dbm = group.max_power_dbm});
        // Shifts are allocated per group: one group transmits per query,
        // so devices of different groups may share a shift.
        std::vector<ns::mac::device_power> members;
        members.reserve(group.size());
        for (std::uint32_t id : group.device_ids) {
            slots_[slot_index_.at(id)].group = g;
            members.push_back({id, power_of.at(id)});
        }
        const auto shifts = allocator_.allocate(members).shifts;
        for (std::uint32_t id : group.device_ids) allocation_[id] = shifts.at(id);
    }
    if (group_acc_.size() < group_spans_.size()) group_acc_.resize(group_spans_.size());
}

void network_simulator::regroup(round_outcome& outcome, std::size_t round) {
    std::vector<ns::mac::device_power> powers;
    powers.reserve(active_count_);
    for (const std::size_t i : active_slots_) {
        const device_slot& slot = slots_[i];
        powers.push_back({slot.placement.id,
                          slot.placement.uplink_rx_dbm + slot.device.current_gain_db()});
    }
    partition_into_groups(powers);
    // Every active device takes its freshly-allocated shift — if it hears
    // the ordering query. A device that misses it keeps transmitting on
    // the shift it last learned (§3.3.3 stale-schedule desync) until the
    // next regroup broadcast it hears resynchronizes it, or the lease
    // evicts it as silent. The stateless query-loss hash guarantees the
    // device loop sees the same heard/missed answer this round.
    for (const std::size_t i : active_slots_) {
        device_slot& slot = slots_[i];
        const std::uint32_t old_shift =
            slot.desynced ? slot.stale_shift : slot.device.cyclic_shift();
        const std::uint32_t new_shift = allocation_.at(slot.placement.id);
        associate_slot(i, new_shift, slot.placement.query_rssi_dbm);
        if (!fault_injector_ || slot.down) continue;
        const bool heard = !fault_injector_->query_lost(
            slot.placement.id, slot.placement.query_rssi_dbm);
        if (heard) {
            if (slot.desynced) {
                ++outcome.resyncs;
                if (probes_.fault_resync_rounds != nullptr) {
                    probes_.fault_resync_rounds->record(
                        static_cast<double>(round - slot.desync_round));
                }
                slot.desynced = false;
            }
        } else if (!slot.desynced && new_shift != old_shift) {
            slot.desynced = true;
            slot.stale_shift = old_shift;
            slot.desync_round = round;
            ++outcome.desyncs;
        }
    }
    misfits_since_regroup_ = 0;
    outcome.realloc_events += powers.size();
    ++outcome.regroups;
    membership_dirty_ = true;
}

std::vector<std::pair<std::uint32_t, double>> network_simulator::occupied_powers(
    std::optional<std::uint32_t> excluded_id, std::optional<std::size_t> group) const {
    std::vector<std::pair<std::uint32_t, double>> occupied;
    occupied.reserve(active_count_);
    for (const std::size_t i : active_slots_) {
        const device_slot& slot = slots_[i];
        if (excluded_id && slot.placement.id == *excluded_id) continue;
        if (group && slot.group != *group) continue;
        occupied.emplace_back(slot.device.cyclic_shift(),
                              slot.placement.uplink_rx_dbm + slot.device.current_gain_db());
    }
    return occupied;
}

void network_simulator::associate_slot(std::size_t slot_index, std::uint32_t shift,
                                       double baseline_rssi_dbm) {
    device_slot& slot = slots_[slot_index];
    const ns::device::switch_network network;
    const bool weak = baseline_rssi_dbm < slot.device.params().low_rssi_threshold_dbm;
    const std::size_t gain_level =
        weak ? network.max_level() : network.middle_level();
    slot.modulator.reset();  // rebuilt lazily at the new shift on first use
    slot.device.force_associate(shift, baseline_rssi_dbm, gain_level);
    allocation_[slot.placement.id] = shift;
}

bool network_simulator::admit_grouped(std::size_t slot_index, double join_power,
                                      round_outcome& outcome) {
    device_slot& slot = slots_[slot_index];
    const ns::mac::group_scheduler scheduler = make_scheduler();
    const auto best = scheduler.admit(group_spans_, join_power);
    std::size_t target;
    if (best) {
        target = *best;
    } else {
        // No existing group fits this power within the dynamic-range
        // limit (or all groups are full): open a fresh group. Repeated
        // misfits are the signal the load_triggered policy regroups on.
        // The query's group-id field is 8 bits (Fig. 11), so the AP can
        // address at most 256 groups — past that the join is refused.
        if (group_spans_.size() >= max_groups) {
            ++outcome.rejected_joins;
            return false;
        }
        target = group_spans_.size();
        group_spans_.push_back(
            {.members = 0, .min_power_dbm = join_power, .max_power_dbm = join_power});
        if (group_acc_.size() < group_spans_.size()) {
            group_acc_.resize(group_spans_.size());
        }
        ++misfits_since_regroup_;
    }

    const auto incremental = allocator_.assign_incremental(
        join_power, occupied_powers(std::nullopt, target));
    if (incremental) {
        associate_slot(slot_index, *incremental, slot.placement.query_rssi_dbm);
        ++outcome.realloc_events;
    } else {
        // Group-local full reassignment (§3.3.3): reallocate only the
        // target group's shifts around the newcomer.
        std::vector<ns::mac::device_power> members;
        for (const std::size_t i : active_slots_) {
            const device_slot& s = slots_[i];
            if (s.group != target) continue;
            members.push_back({s.placement.id,
                               s.placement.uplink_rx_dbm + s.device.current_gain_db()});
        }
        members.push_back({slot.placement.id, join_power});
        const auto shifts = allocator_.allocate(members).shifts;
        for (const auto& member : members) {
            associate_slot(slot_index_.at(member.device_id), shifts.at(member.device_id),
                           slots_[slot_index_.at(member.device_id)].placement.query_rssi_dbm);
        }
        outcome.realloc_events += members.size();
        ++outcome.full_reassignments;
    }

    ns::mac::group_span& span = group_spans_[target];
    span.min_power_dbm =
        span.members > 0 ? std::min(span.min_power_dbm, join_power) : join_power;
    span.max_power_dbm =
        span.members > 0 ? std::max(span.max_power_dbm, join_power) : join_power;
    ++span.members;
    slot.group = target;
    return true;
}

void network_simulator::deactivate_slot(std::size_t slot_index) {
    device_slot& slot = slots_[slot_index];
    slot.active = false;
    mark_inactive(slot_index);
    allocation_.erase(slot.placement.id);
    if (slot.group != device_slot::no_group) {
        // The span stays stretched until the next regroup re-tightens
        // it — the AP only learns the true spread when it repartitions.
        --group_spans_[slot.group].members;
        slot.group = device_slot::no_group;
    }
    --active_count_;
    membership_dirty_ = true;
}

void network_simulator::go_down(std::size_t slot_index, std::size_t round,
                                member_loss_reason reason, round_outcome& outcome) {
    device_slot& slot = slots_[slot_index];
    if (slot.down) return;  // an episode is already in progress
    slot.down = true;
    slot.down_round = round;
    slot.desynced = false;
    slot.missed_queries = 0;
    ++outcome.down_events;
    if (hooks_) hooks_->on_member_lost(round, slot.placement.id, reason);
}

void network_simulator::apply_ack_faults(std::vector<std::uint32_t>& joins,
                                         std::size_t round, round_outcome& outcome) {
    // Each granted join needs its association ACK through; every loss
    // delays the handshake one round (the AP replays the piggybacked
    // response, §3.3.4) up to the bounded retry window.
    std::size_t kept = 0;
    for (const std::uint32_t id : joins) {
        std::size_t losses = 0;
        while (losses < config_.faults.ack_retry_limit &&
               fault_injector_->ack_lost()) {
            ++losses;
        }
        outcome.ack_losses += losses;
        if (losses >= config_.faults.ack_retry_limit) {
            // Every replay lost: the AP abandons the handshake and the
            // joiner must contend again through the Aloha path.
            ++outcome.ack_timeouts;
            const auto it = slot_index_.find(id);
            if (it != slot_index_.end()) {
                go_down(it->second, round, member_loss_reason::ack_timeout,
                        outcome);
            }
        } else if (losses > 0) {
            pending_acks_.push_back({id, round + losses});
        } else {
            joins[kept++] = id;
        }
    }
    joins.resize(kept);
    // Handshakes whose replayed response finally lands this round.
    std::size_t kept_pending = 0;
    for (const auto& pending : pending_acks_) {
        if (pending.second <= round) {
            joins.push_back(pending.first);
        } else {
            pending_acks_[kept_pending++] = pending;
        }
    }
    pending_acks_.resize(kept_pending);
}

void network_simulator::apply_lease(std::optional<std::size_t> scheduled_group,
                                    std::size_t round, round_outcome& outcome) {
    if (config_.faults.lease_rounds == 0) return;
    // Collect first: deactivate_slot mutates active_slots_ mid-walk.
    fault_scratch_.clear();
    for (const std::size_t i : active_slots_) {
        const device_slot& slot = slots_[i];
        if (scheduled_group && slot.group != *scheduled_group) continue;
        if (slot.silent_rounds >= config_.faults.lease_rounds) {
            fault_scratch_.push_back(i);
        }
    }
    for (const std::size_t i : fault_scratch_) {
        deactivate_slot(i);
        slots_[i].silent_rounds = 0;
        ++outcome.lease_evictions;
        // A live device evicted here is disassociated without knowing it
        // — from its side this starts a down episode it must rejoin from.
        // For a zombie (already down) the episode simply continues; the
        // eviction is what reclaims its shift for reuse.
        go_down(i, round, member_loss_reason::lease_eviction, outcome);
    }
}

void network_simulator::apply_round_plan(const round_plan& plan, round_outcome& outcome,
                                         std::size_t round, bool blackout) {
    // Mobility first: joins below must see this round's link budget.
    for (const link_update& update : plan.link_updates) {
        const auto it = slot_index_.find(update.device_id);
        if (it == slot_index_.end()) continue;
        device_slot& slot = slots_[it->second];
        slot.placement.query_rssi_dbm = update.query_rssi_dbm;
        slot.placement.uplink_rx_dbm = update.uplink_rx_dbm;
        slot.tof_s = update.tof_s;
        slot.doppler_hz = update.doppler_hz;
    }

    for (std::uint32_t id : plan.leaves) {
        const auto it = slot_index_.find(id);
        if (it == slot_index_.end() || !slots_[it->second].active) continue;
        deactivate_slot(it->second);
        ++outcome.leaves;
    }

    // Fault plumbing of the join stream: a blacked-out AP transmits no
    // grants (joins are parked until it returns), and with ACK loss on,
    // completed contentions still need the handshake's ACK through.
    const std::vector<std::uint32_t>* joins = &plan.joins;
    if (fault_injector_) {
        join_scratch_.assign(plan.joins.begin(), plan.joins.end());
        if (blackout) {
            deferred_joins_.insert(deferred_joins_.end(), join_scratch_.begin(),
                                   join_scratch_.end());
            join_scratch_.clear();
        } else {
            if (!deferred_joins_.empty()) {
                join_scratch_.insert(join_scratch_.begin(), deferred_joins_.begin(),
                                     deferred_joins_.end());
                deferred_joins_.clear();
            }
            if (config_.faults.ack_loss > 0.0) {
                apply_ack_faults(join_scratch_, round, outcome);
            }
        }
        joins = &join_scratch_;
    }

    for (std::uint32_t id : *joins) {
        const auto it = slot_index_.find(id);
        if (it == slot_index_.end()) continue;
        if (slots_[it->second].active) {
            if (!slots_[it->second].down) continue;
            // §3.3.4 re-association of a device the AP still lists as a
            // member: drop the stale entry (reclaiming its old shift)
            // and re-admit it like any joiner.
            deactivate_slot(it->second);
        }
        if (!grouped() && active_count_ >= allocator_.num_data_slots()) {
            ++outcome.rejected_joins;
            continue;
        }
        device_slot& slot = slots_[it->second];
        const ns::device::switch_network network;
        const bool weak = slot.placement.query_rssi_dbm <
                          slot.device.params().low_rssi_threshold_dbm;
        const double join_power =
            slot.placement.uplink_rx_dbm +
            network.gain_db(weak ? network.max_level() : network.middle_level());

        if (grouped()) {
            // §3.3.3: best-fit group admission with per-group allocation.
            if (!admit_grouped(it->second, join_power, outcome)) continue;
        } else {
            const auto incremental =
                allocator_.assign_incremental(join_power, occupied_powers());
            if (incremental) {
                associate_slot(it->second, *incremental, slot.placement.query_rssi_dbm);
                ++outcome.realloc_events;
            } else {
                // The incremental allocator cannot fit the newcomer next to
                // power-compatible neighbours: full reassignment (§3.3.3).
                std::vector<ns::mac::device_power> powers;
                powers.reserve(active_count_ + 1);
                for (const std::size_t i : active_slots_) {
                    const device_slot& s = slots_[i];
                    powers.push_back(
                        {s.placement.id,
                         s.placement.uplink_rx_dbm + s.device.current_gain_db()});
                }
                powers.push_back({id, join_power});
                const auto shifts = allocator_.allocate(powers).shifts;
                for (const std::size_t i : active_slots_) {
                    associate_slot(i, shifts.at(slots_[i].placement.id),
                                   slots_[i].placement.query_rssi_dbm);
                }
                associate_slot(it->second, shifts.at(id), slot.placement.query_rssi_dbm);
                outcome.realloc_events += powers.size();
                ++outcome.full_reassignments;
            }
        }
        slot.active = true;
        mark_active(it->second);
        ++active_count_;
        ++outcome.joins;
        membership_dirty_ = true;
        if (slot.down) {
            // The re-association completed: the down episode ends and its
            // length (in rounds) is the protocol's recovery latency.
            ++outcome.recoveries;
            if (probes_.fault_recovery_rounds != nullptr) {
                probes_.fault_recovery_rounds->record(
                    static_cast<double>(round - slot.down_round));
            }
            slot.down = false;
            slot.desynced = false;
            slot.missed_queries = 0;
            slot.silent_rounds = 0;
        }
    }
}

sim_result network_simulator::run() {
    sim_result result;
    result.rounds.reserve(config_.rounds);
    const double noise_floor =
        deployment_->noise_floor_dbm(config_.phy.bandwidth_hz);
    const std::size_t sps = config_.phy.samples_per_symbol();
    const std::size_t frame_bits = config_.frame.payload_plus_crc_bits();
    const std::size_t packet_samples =
        (config_.frame.preamble_symbols + frame_bits) * sps;
    sent_row_of_shift_.assign(config_.phy.num_bins(), -1);

    for (std::size_t round = 0; round < config_.rounds; ++round) {
        const auto round_arg = static_cast<std::int64_t>(round);
        const ns::obs::alloc_counters allocs_before = ns::obs::thread_allocations();
        // Outermost probe: constructed first, destroyed last, so its span
        // covers every phase below (and the round's bookkeeping).
        ns::obs::trace_span round_span("round", &trace_, probes_.round_total,
                                       round_arg);

        round_outcome outcome;
        bool round_blackout = false;
        if (fault_injector_) {
            // Advance the fault schedule. Every draw below derives from
            // the replica's fault seed stream, so the schedule is a pure
            // function of (spec, replica) at any thread count.
            fault_injector_->begin_round(round);
            round_blackout = fault_injector_->blackout();
            outcome.blackout = round_blackout;
        }
        round_plan plan;
        {
            ns::obs::trace_span span("plan", &trace_, probes_.plan, round_arg);
            ns::obs::perf_scope perf(&perf_group_, &probes_.perf_plan);
            if (hooks_) plan = hooks_->plan_round(round);
            apply_round_plan(plan, outcome, round, round_blackout);
            if (fault_injector_ && config_.faults.reboot_rate_per_round > 0.0) {
                // Brownouts strike uniformly among the live members; a
                // victim loses its shift + group state and must rejoin
                // through the Aloha path while the AP's entry lingers.
                std::size_t reboots = fault_injector_->reboots();
                if (reboots > 0) {
                    fault_scratch_.clear();
                    for (const std::size_t i : active_slots_) {
                        if (!slots_[i].down) fault_scratch_.push_back(i);
                    }
                    for (; reboots > 0 && !fault_scratch_.empty(); --reboots) {
                        const std::size_t pick =
                            fault_injector_->pick(fault_scratch_.size());
                        const std::size_t victim = fault_scratch_[pick];
                        fault_scratch_[pick] = fault_scratch_.back();
                        fault_scratch_.pop_back();
                        go_down(victim, round, member_loss_reason::reboot, outcome);
                        ++outcome.reboots;
                    }
                }
            }
        }

        // Pick this round's synthesis domain (§3.2 fast path). Multipath
        // rides the fast path as a spectral envelope on the kernel and
        // co-channel packets are symbol-domain representable by
        // construction, so the only sample-level effect that disqualifies
        // a round is injected interference (foreign non-CSS waveforms,
        // arbitrary sample delays).
        bool fast_path = false;
        switch (config_.fidelity) {
            case phy_fidelity::sample:
                break;
            case phy_fidelity::symbol:
                ns::util::require(plan.interference.empty(),
                                  "phy_fidelity::symbol cannot represent "
                                  "sample-level interference; use automatic or "
                                  "sample fidelity");
                fast_path = true;
                break;
            case phy_fidelity::automatic:
                fast_path = plan.interference.empty();
                break;
        }

        std::size_t scheduled_group = 0;
        {
            ns::obs::trace_span span("grouping", &trace_, probes_.grouping,
                                     round_arg);
            ns::obs::perf_scope perf(&perf_group_, &probes_.perf_grouping);
            // §3.3.3 adaptive control: recompute the partition when the
            // policy says the current one has drifted from the population.
            if (grouped()) {
                const auto& grouping = config_.grouping;
                const bool periodic_due =
                    grouping.policy == regroup_policy::periodic && round > 0 &&
                    round % grouping.regroup_period_rounds == 0;
                const bool load_due =
                    grouping.policy == regroup_policy::load_triggered &&
                    misfits_since_regroup_ >= grouping.load_trigger_misfits;
                // A blacked-out AP broadcasts no ordering query: a due
                // regroup waits for the next round it is back on the air
                // (load_triggered re-fires on the persisted misfit count;
                // a periodic edge that falls inside a blackout is skipped).
                if ((periodic_due || load_due) && !round_blackout) {
                    regroup(outcome, round);
                }
            }

            // One group transmits per query, round-robin (§3.3.3); the
            // receiver only watches the scheduled group's shifts. (Full-width
            // modulo — the 8-bit group_for_round is safe only because group
            // creation is capped at max_groups, but don't rely on it here.)
            if (grouped() && !group_spans_.empty()) {
                scheduled_group = round % group_spans_.size();
                outcome.scheduled_group = static_cast<int>(scheduled_group);
                register_active_shifts(scheduled_group);
                if (scheduled_group < group_acc_.size()) {
                    ++group_acc_[scheduled_group].scheduled_rounds;
                }
            } else if (membership_dirty_) {
                register_active_shifts();
            }
        }
        outcome.active = active_count_;

        // Reset the round workspaces (buffers keep their capacity — the
        // steady-state loop performs zero per-device heap allocations on
        // the fast path). One optional probe walks the synth -> superpose
        // -> decode phases (emplace ends the previous span, then opens
        // the next) so the device loop needn't move into a nested block.
        std::optional<ns::obs::trace_span> phase_span;
        // A second optional walks the same transitions for hardware
        // counters (perf.synth.* / perf.superpose.* / perf.decode.*);
        // inert — no syscalls — unless obs.perf opened the group.
        std::optional<ns::obs::perf_scope> phase_perf;
        phase_span.emplace("synth", &trace_, probes_.synth, round_arg);
        phase_perf.emplace(&perf_group_, &probes_.perf_synth);
        chan_ws_.packet_pool.release_all();
        contributions_.clear();
        packet_contribs_.clear();
        frame_bits_store_.clear();
        for (std::uint32_t shift : tx_row_shift_) sent_row_of_shift_[shift] = -1;
        tx_row_shift_.clear();

        for (const std::size_t slot_idx : active_slots_) {
            device_slot& slot = slots_[slot_idx];
            // Only the scheduled group hears this round's query.
            if (grouped() && slot.group != scheduled_group) continue;
            // Fading (and multipath) advance lazily: an unobserved
            // device (inactive, or outside the scheduled group) is not
            // touched at all; when it reaches this point again it
            // catches up to the simulation clock through the exact
            // k-step AR(1) transition — one draw instead of one per
            // skipped round, so neither the 100k-device universe nor
            // the unscheduled groups sit on the round loop's critical
            // path, while the observed time series stays distributed
            // exactly as the step-by-step process.
            const std::uint64_t clock = static_cast<std::uint64_t>(round);
            if (clock > slot.fading_rounds) {
                slot.fading.skip(clock - slot.fading_rounds);
                if (slot.taps) slot.taps->skip(clock - slot.fading_rounds);
            }
            const double fade_db = slot.fading.next_db();
            if (slot.taps) slot.taps->next();
            slot.fading_rounds = clock + 1;
            if (grouped()) ++outcome.scheduled;
            const double query_rssi = slot.placement.query_rssi_dbm + fade_db;

            if (fault_injector_) {
                if (slot.down) {
                    // Zombie: the AP still schedules this device but the
                    // rebooted/evicted radio answers nothing. Its silence
                    // accrues toward the lease (paused during a blackout,
                    // when the AP itself transmitted no query).
                    if (!round_blackout) ++slot.silent_rounds;
                    continue;
                }
                if (round_blackout) {
                    // No query on the air at all: every scheduled device
                    // counts a missed query toward re-association, but
                    // the AP cannot hold their silence against them.
                    ++slot.missed_queries;
                    if (config_.faults.missed_query_limit > 0 &&
                        slot.missed_queries >= config_.faults.missed_query_limit) {
                        go_down(slot_idx, round,
                                member_loss_reason::missed_queries, outcome);
                    }
                    continue;
                }
                // The stateless per-(round, device) draw — keyed on the
                // unfaded downlink RSSI so regroup() saw the same answer.
                if (fault_injector_->query_lost(slot.placement.id,
                                                slot.placement.query_rssi_dbm)) {
                    ++outcome.query_losses;
                    ++slot.missed_queries;
                    ++slot.silent_rounds;
                    if (config_.faults.missed_query_limit > 0 &&
                        slot.missed_queries >= config_.faults.missed_query_limit) {
                        go_down(slot_idx, round,
                                member_loss_reason::missed_queries, outcome);
                    }
                    continue;
                }
                slot.missed_queries = 0;
                // Provisional: the AP hears nothing unless the device
                // responds on its assigned shift below (a desynced
                // device's stale-shift response does not count).
                ++slot.silent_rounds;
            }

            if (hooks_ && !hooks_->offers_traffic(round, slot.placement.id)) {
                ++outcome.idle;
                continue;
            }

            ns::device::transmit_intent intent;
            if (config_.power_adaptation) {
                intent = slot.device.handle_query(query_rssi, std::nullopt);
                if (intent.action == ns::device::device_action::association_request) {
                    // The device fell persistently out of tolerance and
                    // re-initiated association (§3.2.3 / §3.3.4). Under a
                    // scenario the AP re-places it with the incremental
                    // allocator — the same slot when its neighbourhood is
                    // still the best fit, a different one when the network
                    // drifted; the static simulator keeps the historic
                    // same-slot reassignment so seed results are stable.
                    std::optional<std::uint32_t> moved;
                    if (hooks_) {
                        // Under grouping the device stays in its group:
                        // only that group's slots are its neighbourhood.
                        moved = allocator_.assign_incremental(
                            slot.placement.uplink_rx_dbm + slot.device.current_gain_db(),
                            occupied_powers(slot.placement.id,
                                            grouped() ? std::optional<std::size_t>(
                                                            scheduled_group)
                                                      : std::nullopt));
                    }
                    const std::uint32_t shift =
                        moved ? *moved : slot.device.cyclic_shift();
                    associate_slot(slot_index_.at(slot.placement.id), shift, query_rssi);
                    ++outcome.reassociations;
                    ++outcome.realloc_events;
                    membership_dirty_ = true;
                    ++outcome.skipped;
                    if (fault_injector_) {
                        // The request reaches the AP in the reserved
                        // association slots: not silence. It also hands
                        // the device a fresh shift, ending any desync.
                        slot.silent_rounds = 0;
                        if (slot.desynced) {
                            ++outcome.resyncs;
                            if (probes_.fault_resync_rounds != nullptr) {
                                probes_.fault_resync_rounds->record(
                                    static_cast<double>(round - slot.desync_round));
                            }
                            slot.desynced = false;
                        }
                    }
                    continue;
                }
                if (intent.action == ns::device::device_action::skip) {
                    ++outcome.skipped;
                    continue;
                }
                if (intent.action != ns::device::device_action::transmit_data) continue;
            } else {
                // Ablation: always transmit at maximum gain.
                intent.action = ns::device::device_action::transmit_data;
                intent.cyclic_shift = slot.device.cyclic_shift();
                intent.gain_db = 0.0;
                intent.hardware_delay_s = config_.model_timing_jitter
                                              ? config_.delay_model.sample_s(rng_)
                                              : 0.0;
                intent.frequency_offset_hz =
                    config_.model_cfo ? slot.device.static_frequency_offset_hz() : 0.0;
            }

            // A desynced device answers on the shift it last learned —
            // the schedule moved on without it (§3.3.3 desync).
            const std::uint32_t tx_shift =
                (fault_injector_ && slot.desynced) ? slot.stale_shift
                                                   : intent.cyclic_shift;

            // Build this device's frame bits into the flat per-round
            // store (one fixed-width 0/1 row per transmitter).
            rng_.fill_bits(config_.frame.payload_bits, payload_scratch_);
            ns::phy::build_frame_bits_into(config_.frame, payload_scratch_,
                                           frame_scratch_);
            if (fault_injector_ && sent_row_of_shift_[tx_shift] >= 0) {
                // A stale-schedule transmitter landed on a shift another
                // device already answered on this round: the earlier row
                // is buried under the collision and will score as orphan.
                ++outcome.orphan_collisions;
            }
            sent_row_of_shift_[tx_shift] =
                static_cast<std::int32_t>(tx_row_shift_.size());
            tx_row_shift_.push_back(tx_shift);
            for (const bool bit : frame_scratch_) {
                frame_bits_store_.push_back(bit ? 1 : 0);
            }

            const double uplink_dbm =
                slot.placement.uplink_rx_dbm + intent.gain_db + 2.0 * fade_db;
            // The AP's preamble synchronization absorbs the fleet-common
            // latency; only the deviation from the mean hardware delay
            // (plus this device's round-trip flight time) is residual
            // (§3.2.1 / Fig. 14b).
            const double sync_point_s =
                config_.model_timing_jitter ? config_.delay_model.mean_us * 1e-6 : 0.0;
            const double timing_offset_s =
                intent.hardware_delay_s - sync_point_s + 2.0 * slot.tof_s;
            const double frequency_offset_hz =
                intent.frequency_offset_hz + slot.doppler_hz;

            if (fast_path) {
                // Symbol domain: no modulator, no waveform — the frame
                // bits span is attached after the loop (the flat store
                // may still grow while transmitters are collected).
                ns::channel::packet_contribution packet;
                packet.cyclic_shift = tx_shift;
                packet.snr_db = uplink_dbm - noise_floor;
                packet.timing_offset_s = timing_offset_s;
                packet.frequency_offset_hz = frequency_offset_hz;
                if (slot.taps) packet.taps = slot.taps->current();
                packet_contribs_.push_back(packet);
            } else {
                if (!slot.modulator) {
                    // At the transmit shift, which is the stale one while
                    // desynced (associate_slot / resync reset the cache,
                    // so it can never linger across a shift change).
                    slot.modulator.emplace(config_.phy, tx_shift);
                }
                ns::dsp::cvec& packet_buffer = chan_ws_.packet_pool.acquire();
                slot.modulator->modulate_packet_into(frame_scratch_, packet_buffer);
                ns::channel::tx_contribution tx;
                tx.waveform = std::span<const ns::dsp::cplx>(packet_buffer);
                tx.snr_db = uplink_dbm - noise_floor;
                tx.timing_offset_s = timing_offset_s;
                tx.frequency_offset_hz = frequency_offset_hz;
                if (slot.taps) tx.taps = slot.taps->current();
                contributions_.push_back(tx);
            }
            ++outcome.transmitting;
            if (fault_injector_ && !slot.desynced) {
                // The AP decoded activity on this device's assigned
                // shift: its lease is refreshed. A stale-shift response
                // does NOT refresh it — from the AP's view the assigned
                // slot stayed empty, which is exactly how a desynced
                // device eventually gets lease-evicted and recovered.
                slot.silent_rounds = 0;
            }
        }

        // Membership lease: evict the scheduled members whose silence
        // just crossed the lease, reclaiming their shifts through the
        // allocator. Skipped during a blackout (the AP asked nothing).
        if (fault_injector_ && !round_blackout) {
            apply_lease(grouped() && !group_spans_.empty()
                            ? std::optional<std::size_t>(scheduled_group)
                            : std::nullopt,
                        round, outcome);
        }

        // Re-associations may have moved shifts; refresh before decoding.
        if (membership_dirty_) {
            register_active_shifts(grouped() && !group_spans_.empty()
                                       ? std::optional<std::size_t>(scheduled_group)
                                       : std::nullopt);
        }
        phase_span.emplace("superpose", &trace_, probes_.superpose, round_arg);
        phase_perf.emplace(&perf_group_, &probes_.perf_superpose);

        // Cross-network accounting: a foreign packet's dechirped peak
        // lands at its shift plus the displacement of the inter-AP
        // misalignment; when that falls inside the guard region of a slot
        // one of OUR transmitters used this round, the two packets
        // collide at the receiver.
        outcome.cross_tx = plan.cochannel.size();
        row_collided_.assign(plan.cochannel.empty() ? 0 : tx_row_shift_.size(), 0);
        if (!plan.cochannel.empty()) {
            const double n_bins = static_cast<double>(config_.phy.num_bins());
            const double guard = static_cast<double>(config_.skip) / 2.0;
            for (const auto& foreign : plan.cochannel) {
                double pos = static_cast<double>(foreign.cyclic_shift) +
                             config_.phy.bins_from_time_offset(foreign.timing_offset_s) +
                             config_.phy.bins_from_frequency_offset(
                                 foreign.frequency_offset_hz);
                pos -= std::floor(pos / n_bins) * n_bins;
                const auto lo = static_cast<std::ptrdiff_t>(std::ceil(pos - guard));
                const auto hi = static_cast<std::ptrdiff_t>(std::floor(pos + guard));
                for (std::ptrdiff_t b = lo; b <= hi; ++b) {
                    const auto n_signed = static_cast<std::ptrdiff_t>(config_.phy.num_bins());
                    const std::size_t bin =
                        static_cast<std::size_t>(((b % n_signed) + n_signed) % n_signed);
                    const std::int32_t row = sent_row_of_shift_[bin];
                    if (row >= 0) row_collided_[static_cast<std::size_t>(row)] = 1;
                }
            }
            for (const std::uint8_t hit : row_collided_) {
                outcome.cross_collisions += hit;
            }
        }

        // Superpose and decode.
        ns::channel::channel_config chan;
        chan.noise_power = 1.0;
        if (fast_path) {
            // Attach the frame-bit spans now that the flat store is
            // final, then synthesize post-dechirp spectra directly. The
            // co-channel network's packets join the accumulators as
            // ordinary kernels at their displaced positions.
            for (std::size_t row = 0; row < tx_row_shift_.size(); ++row) {
                packet_contribs_[row].frame_bits = std::span<const std::uint8_t>(
                    frame_bits_store_.data() + row * frame_bits, frame_bits);
            }
            for (const auto& foreign : plan.cochannel) {
                packet_contribs_.push_back(foreign);
            }
            ns::channel::symbol_domain_params sd;
            sd.zero_padding = config_.zero_padding;
            sd.preamble_upchirps = ns::phy::distributed_modulator::preamble_upchirps;
            sd.preamble_symbols = config_.frame.preamble_symbols;
            sd.payload_symbols = frame_bits;
            sd.kernel_radius_bins = config_.symbol_kernel_radius_bins;
            ns::channel::combine_symbol_domain(packet_contribs_, config_.phy, chan,
                                               sd, rng_, chan_ws_);
            phase_span.emplace("decode", &trace_, probes_.decode, round_arg);
            phase_perf.emplace(&perf_group_, &probes_.perf_decode);
            receiver_.decode_spectra_into(chan_ws_.symbol_spectra, decoded_,
                                          decode_ws_);
            ++result.fast_path_rounds;
        } else {
            // Co-channel packets are synthesized as real waveforms here:
            // a cached modulator per foreign shift, the same symbolic
            // description the fast path consumes — the two fidelities
            // superpose the identical foreign transmission.
            for (const auto& foreign : plan.cochannel) {
                const auto mod_it =
                    foreign_modulators_
                        .try_emplace(foreign.cyclic_shift, config_.phy,
                                     foreign.cyclic_shift)
                        .first;
                frame_scratch_.resize(foreign.frame_bits.size());
                for (std::size_t i = 0; i < foreign.frame_bits.size(); ++i) {
                    frame_scratch_[i] = foreign.frame_bits[i] != 0;
                }
                ns::dsp::cvec& packet_buffer = chan_ws_.packet_pool.acquire();
                mod_it->second.modulate_packet_into(frame_scratch_, packet_buffer);
                ns::channel::tx_contribution tx;
                tx.waveform = std::span<const ns::dsp::cplx>(packet_buffer);
                tx.snr_db = foreign.snr_db;
                tx.timing_offset_s = foreign.timing_offset_s;
                tx.frequency_offset_hz = foreign.frequency_offset_hz;
                tx.random_phase = foreign.random_phase;
                tx.taps = foreign.taps;
                contributions_.push_back(tx);
            }
            // In-band interferers (scenario-injected) share the channel.
            for (const auto& interferer : plan.interference) {
                contributions_.push_back(interferer);
            }
            const ns::dsp::cvec& received = ns::channel::combine(
                std::span<const ns::channel::tx_contribution>(contributions_),
                packet_samples, config_.phy, chan, rng_, chan_ws_);
            phase_span.emplace("decode", &trace_, probes_.decode, round_arg);
            phase_perf.emplace(&perf_group_, &probes_.perf_decode);
            receiver_.decode_into(received, 0, decoded_, decode_ws_);
        }

        row_scored_.assign(fault_injector_ ? tx_row_shift_.size() : 0, 0);
        for (const auto& report : decoded_.reports) {
            const std::int32_t row = sent_row_of_shift_[report.cyclic_shift];
            if (row < 0) continue;  // device did not transmit
            if (!row_scored_.empty()) {
                row_scored_[static_cast<std::size_t>(row)] = 1;
            }
            const std::span<const std::uint8_t> sent(
                frame_bits_store_.data() +
                    static_cast<std::size_t>(row) * frame_bits,
                frame_bits);
            if (report.detected) {
                ++outcome.detected;
                outcome.bits_sent += sent.size();
                outcome.bit_errors += ns::util::hamming_distance(report.bits, sent);
                if (report.crc_ok && ns::util::bits_equal(report.bits, sent)) {
                    ++outcome.delivered;
                    if (static_cast<std::size_t>(row) < row_collided_.size() &&
                        row_collided_[static_cast<std::size_t>(row)] != 0) {
                        ++outcome.cross_collided_delivered;
                    }
                }
            } else {
                // Missed preamble: every bit of the packet is lost.
                outcome.bits_sent += sent.size();
                outcome.bit_errors += ns::util::count_ones(sent);
            }
        }
        // Orphaned transmissions: rows no decode report consumed. A
        // desynced device's stale shift is outside the registered
        // schedule (or buried under a same-shift collision), so the AP
        // never even looks there — every bit it sent is lost.
        for (std::size_t row = 0; row < row_scored_.size(); ++row) {
            if (row_scored_[row] != 0) continue;
            ++outcome.orphan_tx;
            const std::span<const std::uint8_t> sent(
                frame_bits_store_.data() + row * frame_bits, frame_bits);
            outcome.bits_sent += sent.size();
            outcome.bit_errors += ns::util::count_ones(sent);
        }
        phase_perf.reset();
        phase_span.reset();  // close the decode span (scoring included)

        if (grouped() && scheduled_group < group_acc_.size()) {
            group_metrics& acc = group_acc_[scheduled_group];
            acc.transmitting += outcome.transmitting;
            acc.delivered += outcome.delivered;
            acc.bits_sent += outcome.bits_sent;
            acc.bit_errors += outcome.bit_errors;
        }

        result.rounds.push_back(outcome);
        result.total_transmitting += outcome.transmitting;
        result.total_delivered += outcome.delivered;
        result.total_detected += outcome.detected;
        result.total_bit_errors += outcome.bit_errors;
        result.total_bits += outcome.bits_sent;
        result.total_skipped += outcome.skipped;
        result.total_idle += outcome.idle;
        result.total_active_rounds += outcome.active;
        result.total_joins += outcome.joins;
        result.total_leaves += outcome.leaves;
        result.total_rejected_joins += outcome.rejected_joins;
        result.total_reassociations += outcome.reassociations;
        result.total_realloc_events += outcome.realloc_events;
        result.total_full_reassignments += outcome.full_reassignments;
        result.total_regroups += outcome.regroups;
        result.total_cross_tx += outcome.cross_tx;
        result.total_cross_collisions += outcome.cross_collisions;
        result.total_cross_collided_delivered += outcome.cross_collided_delivered;
        result.total_query_losses += outcome.query_losses;
        result.total_ack_losses += outcome.ack_losses;
        result.total_ack_timeouts += outcome.ack_timeouts;
        result.total_reboots += outcome.reboots;
        result.total_down_events += outcome.down_events;
        result.total_lease_evictions += outcome.lease_evictions;
        result.total_desyncs += outcome.desyncs;
        result.total_resyncs += outcome.resyncs;
        result.total_recoveries += outcome.recoveries;
        result.total_orphan_tx += outcome.orphan_tx;
        result.total_orphan_collisions += outcome.orphan_collisions;
        if (outcome.blackout) ++result.total_blackout_rounds;

        if (probes_.rounds != nullptr) {
            probes_.rounds->add(1);
            (fast_path ? probes_.fast_rounds : probes_.sample_rounds)->add(1);
            probes_.tx_packets->add(outcome.transmitting);
            probes_.detected->add(outcome.detected);
            probes_.delivered->add(outcome.delivered);
            probes_.cross_tx->add(outcome.cross_tx);
            probes_.cross_collisions->add(outcome.cross_collisions);
            probes_.active_devices->set(static_cast<double>(active_count_));
            probes_.num_groups->set(static_cast<double>(group_spans_.size()));
            if (probes_.fault_query_losses != nullptr) {
                probes_.fault_query_losses->add(outcome.query_losses);
                probes_.fault_ack_losses->add(outcome.ack_losses);
                probes_.fault_ack_timeouts->add(outcome.ack_timeouts);
                probes_.fault_reboots->add(outcome.reboots);
                probes_.fault_down_events->add(outcome.down_events);
                probes_.fault_lease_evictions->add(outcome.lease_evictions);
                probes_.fault_desyncs->add(outcome.desyncs);
                probes_.fault_resyncs->add(outcome.resyncs);
                probes_.fault_recoveries->add(outcome.recoveries);
                probes_.fault_orphan_tx->add(outcome.orphan_tx);
                probes_.fault_orphan_collisions->add(outcome.orphan_collisions);
                if (outcome.blackout) probes_.fault_blackout_rounds->add(1);
            }
            // Per-round allocation delta (thread-local, so the numbers
            // are this replica's own regardless of pool concurrency).
            // Rounds inside the warmup window grow workspace capacity by
            // design; the steady-state counters start after it and are
            // what the zero-alloc test and the CI metrics gate assert on.
            const ns::obs::alloc_counters allocs_now = ns::obs::thread_allocations();
            const std::uint64_t alloc_delta = allocs_now.count - allocs_before.count;
            probes_.round_allocs->record(static_cast<double>(alloc_delta));
            if (round < config_.obs.alloc_warmup_rounds) {
                probes_.alloc_warmup_count->add(alloc_delta);
            } else {
                probes_.alloc_steady_count->add(alloc_delta);
                probes_.alloc_steady_bytes->add(allocs_now.bytes - allocs_before.bytes);
                probes_.alloc_steady_rounds->add(1);
            }
        }
    }

    if (fault_injector_) {
        // Down episodes still open when the run ended. Closes the books:
        // total_down_events == total_recoveries + devices_down_at_end.
        for (const device_slot& slot : slots_) {
            if (slot.down) ++result.devices_down_at_end;
        }
    }

    if (grouped()) {
        for (std::size_t g = 0; g < group_spans_.size() && g < group_acc_.size(); ++g) {
            group_acc_[g].members = group_spans_[g].members;
            group_acc_[g].min_power_dbm = group_spans_[g].min_power_dbm;
            group_acc_[g].max_power_dbm = group_spans_[g].max_power_dbm;
        }
        result.groups = group_acc_;
        result.num_groups = group_spans_.size();
    }

    if (config_.obs.metrics) {
        result.metrics = metrics_.snapshot();
        // Registry-backed fill of the historic wall-clock split: the old
        // synth window spanned device synthesis through superposition,
        // the old decode window spanned decode through report scoring.
        result.synth_wall_s = result.metrics.histogram_sum("round.synth_s") +
                              result.metrics.histogram_sum("round.superpose_s");
        result.decode_wall_s = result.metrics.histogram_sum("round.decode_s");
    }
    if (trace_.armed()) {
        result.trace_dropped = trace_.dropped();
        result.trace = trace_.take();
    }
    return result;
}

}  // namespace ns::sim
