// Per-round injection points of the network simulator.
//
// The simulator's default behaviour is the paper's deployment: a fixed,
// fully-associated population in which every device is saturated with
// data. A scenario (scenario/) varies every one of those axes — which
// devices are members (churn), who has data (traffic), what each link
// budget is (mobility) and what else occupies the band (interference) —
// by implementing this hook interface. The simulator stays ignorant of
// the models behind the hooks; it only applies their per-round plan, so
// any combination of dynamics runs through the same association,
// allocation and decode machinery.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netscatter/channel/superposition.hpp"

namespace ns::sim {

/// Mobility-driven update of one device's link budget for a round. The
/// scenario re-derives path loss, walls and Doppler from the device's
/// new position and hands the simulator the resulting budget.
struct link_update {
    std::uint32_t device_id = 0;
    double query_rssi_dbm = 0.0;  ///< downlink power at the device
    double uplink_rx_dbm = 0.0;   ///< backscatter power at the AP, 0 dB gain
    double tof_s = 0.0;           ///< one-way propagation time of flight
    double doppler_hz = 0.0;      ///< radial Doppler shift this round
};

/// Everything a scenario may inject into one simulator round.
struct round_plan {
    /// Devices (re)entering the network this round. The AP assigns each a
    /// cyclic-shift slot incrementally, falling back to a full
    /// reassignment when the incremental allocator cannot fit it.
    std::vector<std::uint32_t> joins;
    /// Devices leaving this round; their slots are freed.
    std::vector<std::uint32_t> leaves;
    /// Per-device link-budget updates (mobility).
    std::vector<link_update> link_updates;
    /// Extra in-band transmissions (tones, foreign CSS frames) summed
    /// into the superposition channel before the receiver runs. These
    /// are arbitrary sample-level waveforms, so a round carrying them
    /// cannot take the symbol-domain fast path.
    std::vector<ns::channel::tx_contribution> interference;
    /// Co-channel NetScatter packets: a second AP's network (distinct
    /// network_id) sharing the band. Being standard packets they are
    /// described symbolically and superposed on EITHER synthesis path —
    /// the sample path modulates them, the fast path sums their
    /// Dirichlet kernels — so co-channel rounds stay fast-path eligible.
    /// frame_bits/taps spans must stay valid until the round completes
    /// (the producing source typically owns the storage per round).
    std::vector<ns::channel::packet_contribution> cochannel;
};

/// Why a device lost its association mid-run (control-plane faults).
enum class member_loss_reason {
    reboot,          ///< brownout/reboot: device lost shift + group state
    missed_queries,  ///< device-side missed-query counter tripped
    lease_eviction,  ///< AP-side membership lease evicted a silent device
    ack_timeout,     ///< association handshake abandoned (ACK retry cap)
};

/// Hook interface the simulator consults every round. All methods have
/// neutral defaults, so a default-constructed hooks object reproduces
/// the static, saturated simulator exactly.
class round_hooks {
public:
    virtual ~round_hooks() = default;

    /// Device ids associated before round 0. std::nullopt (default)
    /// associates the whole deployment, matching the historic behaviour.
    virtual std::optional<std::vector<std::uint32_t>> initial_active() {
        return std::nullopt;
    }

    /// Called at the start of every round, before devices are queried.
    virtual round_plan plan_round(std::size_t round) {
        (void)round;
        return {};
    }

    /// Traffic gating: whether `device_id` has data to send in `round`.
    /// A device with nothing to send sits the round out (it is neither a
    /// transmission nor a power-adaptation skip).
    virtual bool offers_traffic(std::size_t round, std::uint32_t device_id) {
        (void)round;
        (void)device_id;
        return true;
    }

    /// Fault notification: `device_id` lost its association in `round`
    /// (see member_loss_reason) and must rejoin through the association
    /// path. A scenario driver re-queues the device with its churn
    /// process so the rejoin contends like any other association request;
    /// the default ignores the loss (the device stays gone until the
    /// scenario happens to re-join it).
    virtual void on_member_lost(std::size_t round, std::uint32_t device_id,
                                member_loss_reason reason) {
        (void)round;
        (void)device_id;
        (void)reason;
    }
};

}  // namespace ns::sim
