// Multi-group network simulation (§3.3.3).
//
// When the population exceeds one round's capacity or the ~35 dB dynamic
// range, the AP partitions devices into signal-strength-homogeneous
// groups and schedules one group per query (round-robin). This module
// runs the sample-level simulator per group and aggregates the network
// metrics: latency multiplies by the number of groups, but every group's
// near-far spread fits the decoder's dynamic range.
#pragma once

#include <vector>

#include "netscatter/mac/scheduler.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/sim/timeline.hpp"

namespace ns::sim {

/// Result of a grouped simulation.
struct grouped_result {
    std::vector<ns::mac::device_group> groups;
    std::vector<sim_result> per_group;     ///< one sample-level result per group
    std::size_t total_transmitting = 0;
    std::size_t total_delivered = 0;

    double delivery_rate() const {
        return total_transmitting == 0
                   ? 0.0
                   : static_cast<double>(total_delivered) /
                         static_cast<double>(total_transmitting);
    }

    /// Time to serve the whole population once: one round per group.
    double network_latency_s(const ns::phy::frame_format& frame,
                             const ns::phy::css_params& params,
                             query_config config) const;

    /// Useful payload bits per second across the group schedule.
    double linklayer_rate_bps(const ns::phy::frame_format& frame,
                              const ns::phy::css_params& params,
                              query_config config) const;
};

/// Partitions `dep`'s population by uplink power and runs `config.rounds`
/// concurrent rounds per group.
grouped_result run_grouped(const deployment& dep, const sim_config& config,
                           const ns::mac::scheduler_params& scheduler);

}  // namespace ns::sim
