#include "netscatter/sim/timeline.hpp"

#include "netscatter/util/error.hpp"

namespace ns::sim {

std::size_t query_bits(query_config config) {
    switch (config) {
        case query_config::config1:
            return ns::mac::query_header_bits;  // 32
        case query_config::config2:
            return ns::mac::query_header_bits + ns::mac::reassignment_field_bits;  // 1760
    }
    throw ns::util::invalid_argument("query_bits: unknown config");
}

round_timing netscatter_round(const ns::phy::frame_format& frame,
                              const ns::phy::css_params& params, query_config config) {
    round_timing timing;
    timing.query_time_s =
        static_cast<double>(query_bits(config)) / ns::mac::downlink_bitrate_bps;
    timing.preamble_time_s =
        static_cast<double>(frame.preamble_symbols) * params.symbol_duration_s();
    timing.payload_time_s =
        static_cast<double>(frame.payload_plus_crc_bits()) * params.symbol_duration_s();
    timing.total_time_s =
        timing.query_time_s + timing.preamble_time_s + timing.payload_time_s;
    return timing;
}

network_metrics netscatter_metrics(const ns::phy::frame_format& frame,
                                   const ns::phy::css_params& params, query_config config,
                                   std::size_t devices_delivered,
                                   std::size_t devices_total) {
    const round_timing timing = netscatter_round(frame, params, config);
    network_metrics metrics;
    metrics.devices_delivered = devices_delivered;
    metrics.devices_total = devices_total;

    const double delivered = static_cast<double>(devices_delivered);
    // PHY rate: all delivered devices put payload-part bits on the air
    // concurrently during the payload window.
    metrics.phy_rate_bps =
        delivered * static_cast<double>(frame.payload_plus_crc_bits()) /
        timing.payload_time_s;
    // Link layer: only the useful payload counts; query and the (shared)
    // preamble are overhead.
    metrics.linklayer_rate_bps =
        delivered * static_cast<double>(frame.payload_bits) / timing.total_time_s;
    metrics.latency_s = timing.total_time_s;
    return metrics;
}

network_metrics netscatter_ideal_metrics(const ns::phy::frame_format& frame,
                                         const ns::phy::css_params& params,
                                         query_config config, std::size_t devices_total) {
    return netscatter_metrics(frame, params, config, devices_total, devices_total);
}

}  // namespace ns::sim
