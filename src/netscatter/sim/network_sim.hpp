// End-to-end sample-level network simulator.
//
// Drives the full pipeline the paper's deployment exercises: the AP
// queries, every associated device responds concurrently through the
// superposition channel (with per-packet hardware delay jitter, CFO,
// power adaptation and fading), and the NetScatter receiver decodes all
// devices from the summed baseband with one FFT per symbol. Decode
// success feeds the analytic timeline models (timeline.hpp) to produce
// the Figs. 17-19 series.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netscatter/channel/fading.hpp"
#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/device/backscatter_device.hpp"
#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/faults/fault_injector.hpp"
#include "netscatter/faults/fault_spec.hpp"
#include "netscatter/mac/allocator.hpp"
#include "netscatter/mac/scheduler.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/obs/perf_counters.hpp"
#include "netscatter/obs/trace.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/round_hooks.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::sim {

/// PHY synthesis fidelity of the simulator's channel (§3.2 fast path).
///
/// The dechirp-to-tone identity makes a standard packet's post-dechirp
/// spectrum analytic (a Dirichlet kernel at bin shift + fractional
/// offset), so rounds without sample-level effects can skip time-domain
/// synthesis, the per-device forward FFTs and every intermediate buffer.
enum class phy_fidelity {
    /// Always synthesize time-domain waveforms and decode from samples.
    /// Bit-identical to the historic simulator.
    sample,
    /// Always use the symbol-domain fast path. Throws if a round injects
    /// sample-level interference (not representable as a post-dechirp
    /// tone) — use `automatic` when scenarios mix in interferers.
    symbol,
    /// Fast path whenever it is exact-to-tolerance for the round (no
    /// in-band interference contribution), sample path otherwise.
    automatic,
};

/// Mid-scenario adaptive control of the group partition (§3.3.3).
enum class regroup_policy {
    none,            ///< the partition stays as computed at construction
    periodic,        ///< full regroup every regroup_period_rounds
    load_triggered,  ///< full regroup once enough admissions misfit
};

/// §3.3.3 group scheduling. When enabled, the AP partitions the
/// population into signal-strength-homogeneous groups (group_scheduler)
/// and addresses ONE group per query, round-robin; cyclic shifts are
/// allocated per group, so devices in different groups may share a
/// shift. Latency multiplies by the group count, but every group's
/// near-far spread fits the decoder's dynamic range. With grouping
/// enabled the allocation is always power-aware (grouping subsumes the
/// power_aware_allocation ablation switch).
struct grouping_config {
    bool enabled = false;
    /// Devices per group, clamped to the allocator's slot count.
    std::size_t group_capacity = 256;
    double max_dynamic_range_db = 35.0;  ///< Fig. 15b per-group limit
    regroup_policy policy = regroup_policy::none;
    std::size_t regroup_period_rounds = 16;  ///< periodic cadence
    /// load_triggered: regroup after this many admissions since the last
    /// regroup failed to fit any existing group's span (each such misfit
    /// opened a fresh group — the partition has drifted).
    std::size_t load_trigger_misfits = 8;
};

/// Simulator configuration. The boolean switches support the ablation
/// benches (power-aware allocation off, power adaptation off, jitter off).
struct sim_config {
    ns::phy::css_params phy = ns::phy::deployed_params();
    ns::phy::frame_format frame = ns::phy::phy_format();
    std::uint32_t skip = 2;
    std::size_t zero_padding = 8;
    double detection_factor = 4.0;

    bool power_aware_allocation = true;  ///< §3.2.3 coarse-grained assignment
    bool power_adaptation = true;        ///< §3.2.3 fine-grained adjustment
    bool model_timing_jitter = true;     ///< hardware delay variation (§3.2.1)
    bool model_cfo = true;               ///< crystal offsets (§3.2.2)

    /// Channel synthesis fidelity (see phy_fidelity). `sample` keeps
    /// historic bit-identical results; the default lets eligible rounds
    /// take the symbol-domain fast path (statistically equivalent —
    /// enforced by tests — and order-of-magnitude cheaper per device).
    phy_fidelity fidelity = phy_fidelity::automatic;
    /// Dirichlet kernel truncation radius of the fast path, in chip bins.
    std::size_t symbol_kernel_radius_bins = 16;

    /// Frequency-selective multipath: every device gets a persistent
    /// tapped delay line (channel::tap_delay_line) whose scattered taps
    /// decorrelate round to round with coefficient multipath_rho.
    /// Representable on BOTH synthesis paths — the sample path convolves
    /// the taps, the fast path folds them into a spectral envelope on
    /// the Dirichlet window — so multipath rounds stay symbol-domain.
    bool model_multipath = false;
    ns::channel::multipath_model multipath{};
    double multipath_rho = 0.9;  ///< round-to-round tap correlation

    /// This AP's network identifier. Co-channel deployments give each AP
    /// a distinct id; packets of other networks reach this receiver only
    /// as structured interference (round_plan::cochannel).
    std::uint32_t network_id = 0;

    double fading_sigma_db = 1.5;        ///< per-device one-way fading std dev
    double fading_rho = 0.9;             ///< round-to-round correlation

    /// §3.3.3 group scheduling (off by default: one concurrency group).
    grouping_config grouping{};

    /// Control-plane fault injection + recovery (faults/fault_spec.hpp).
    /// All-zero by default: no injector is built, no draws happen and
    /// results are bit-identical to a fault-free build.
    ns::faults::fault_spec faults{};

    std::size_t rounds = 10;
    std::uint64_t seed = 1;

    /// Intra-round fan-out of the symbol-domain sweep: symbol blocks of
    /// one round run across this many threads (1 = fully serial; 0 is
    /// invalid). Spectra are bit-identical at any value — noise is
    /// seeded per symbol, kernel order is fixed per symbol — so this is
    /// purely a latency knob for big rounds (e.g. field-100k's SF12
    /// spectra). The simulator owns a dedicated block_runner, distinct
    /// from any Monte-Carlo pool its replica runs on, so nested
    /// parallelism cannot deadlock. Note each simulator (replica) spawns
    /// its own workers: combining many replicas with many intra-round
    /// threads oversubscribes the host.
    std::size_t intra_round_threads = 1;

    /// Observability (metrics registry + trace ring). Metrics are on by
    /// default and deterministic apart from the *_s timing histograms,
    /// which the shared ns::obs::is_timing_name predicate excludes from
    /// determinism comparisons; tracing is opt-in (--trace).
    ns::obs::options obs{};

    ns::channel::hardware_delay_model delay_model{};
    ns::channel::crystal_model crystal{};

    /// Throws ns::util::invalid_argument when a field is outside its
    /// documented domain (rounds == 0, skip outside [1, bins), a
    /// non-positive detection factor, ...). network_simulator calls this
    /// on construction, so a bad configuration fails loudly instead of
    /// producing undefined or garbage results.
    void validate() const;
};

/// Outcome counters of one round.
struct round_outcome {
    std::size_t active = 0;        ///< devices associated this round
    std::size_t transmitting = 0;  ///< devices that sent this round
    std::size_t skipped = 0;       ///< devices that sat out (power adaptation)
    std::size_t idle = 0;          ///< devices with no data (traffic gating)
    std::size_t detected = 0;      ///< preamble detected
    std::size_t delivered = 0;     ///< CRC passed
    std::size_t bit_errors = 0;    ///< payload+CRC bit errors across devices
    std::size_t bits_sent = 0;

    // Churn / control-plane counters (zero without hooks).
    std::size_t joins = 0;             ///< devices that joined this round
    std::size_t leaves = 0;            ///< devices that left this round
    std::size_t rejected_joins = 0;    ///< joins refused (network full)
    std::size_t reassociations = 0;    ///< in-tolerance re-association events
    std::size_t realloc_events = 0;    ///< per-device slot (re)assignments
    std::size_t full_reassignments = 0;///< whole-group reallocation runs

    // Group scheduling (§3.3.3; -1/0 when grouping is off).
    int scheduled_group = -1;  ///< group this round's query addressed
    std::size_t scheduled = 0; ///< active devices in the scheduled group
    std::size_t regroups = 0;  ///< full-partition regroups this round

    // Co-channel interference (zero without a second network).
    std::size_t cross_tx = 0;          ///< foreign packets superposed
    std::size_t cross_collisions = 0;  ///< own transmitters whose slot
                                       ///< guard region a foreign peak hit
    std::size_t cross_collided_delivered = 0;  ///< collided yet delivered

    // Control-plane faults + recovery (all zero with faults off).
    std::size_t query_losses = 0;     ///< downlink queries lost this round
    std::size_t ack_losses = 0;       ///< association-ACK transmissions lost
    std::size_t ack_timeouts = 0;     ///< handshakes abandoned (retry cap)
    std::size_t reboots = 0;          ///< devices rebooted this round
    std::size_t down_events = 0;      ///< devices that lost association
                                      ///< (reboot, missed-query trip, eviction)
    std::size_t lease_evictions = 0;  ///< silent members evicted by the lease
    std::size_t desyncs = 0;          ///< devices that missed a regroup and
                                      ///< kept a stale shift
    std::size_t resyncs = 0;          ///< stale devices that re-heard a query
    std::size_t recoveries = 0;       ///< down devices re-associated
    std::size_t orphan_tx = 0;        ///< transmissions no decode report
                                      ///< consumed (stale/unregistered shift)
    std::size_t orphan_collisions = 0;///< same-shift transmitter pairs
    bool blackout = false;            ///< this round fell in an AP blackout
};

/// Per-group accumulators of a grouped run (§3.3.3), keyed by group id
/// — i.e. by scheduling slot. The counters cover every round the slot
/// was addressed over the whole run; a regroup re-populates the slots,
/// so after one the counters span more than one device partition while
/// `members` and the power span describe only the final partition.
struct group_metrics {
    std::size_t members = 0;          ///< membership at the end of the run
    std::size_t scheduled_rounds = 0; ///< rounds this group was addressed
    std::size_t transmitting = 0;
    std::size_t delivered = 0;
    std::size_t bits_sent = 0;
    std::size_t bit_errors = 0;
    double min_power_dbm = 0.0;  ///< final power span (0/0 when empty)
    double max_power_dbm = 0.0;

    double delivery_rate() const {
        return transmitting == 0 ? 0.0
                                 : static_cast<double>(delivered) /
                                       static_cast<double>(transmitting);
    }
};

/// Aggregated simulation result.
struct sim_result {
    std::vector<round_outcome> rounds;
    std::size_t total_transmitting = 0;
    std::size_t total_delivered = 0;
    std::size_t total_detected = 0;
    std::size_t total_bit_errors = 0;
    std::size_t total_bits = 0;
    std::size_t total_skipped = 0;
    std::size_t total_idle = 0;
    std::size_t total_active_rounds = 0;  ///< sum of per-round active counts
    std::size_t total_joins = 0;
    std::size_t total_leaves = 0;
    std::size_t total_rejected_joins = 0;
    std::size_t total_reassociations = 0;
    std::size_t total_realloc_events = 0;
    std::size_t total_full_reassignments = 0;
    std::size_t total_regroups = 0;
    std::size_t total_cross_tx = 0;
    std::size_t total_cross_collisions = 0;
    std::size_t total_cross_collided_delivered = 0;
    // Fault/recovery totals (zero with faults off).
    std::size_t total_query_losses = 0;
    std::size_t total_ack_losses = 0;
    std::size_t total_ack_timeouts = 0;
    std::size_t total_reboots = 0;
    std::size_t total_down_events = 0;
    std::size_t total_lease_evictions = 0;
    std::size_t total_desyncs = 0;
    std::size_t total_resyncs = 0;
    std::size_t total_recoveries = 0;
    std::size_t total_orphan_tx = 0;
    std::size_t total_orphan_collisions = 0;
    std::size_t total_blackout_rounds = 0;
    /// Devices still disassociated (down, awaiting rejoin) when the run
    /// ended; total_down_events == total_recoveries + devices_down_at_end.
    std::size_t devices_down_at_end = 0;

    /// Rounds served by the symbol-domain fast path (== rounds.size()
    /// under phy_fidelity::symbol, 0 under ::sample).
    std::size_t fast_path_rounds = 0;
    /// Host wall-clock split of the round loop: transmit-side work
    /// (device MAC decisions + packet/spectrum synthesis + channel
    /// superposition) vs receiver decode. Registry-backed (the sums of
    /// the round.synth_s/round.superpose_s and round.decode_s
    /// histograms), kept as plain scalars for API compatibility.
    /// Excluded from determinism comparisons; merge() sums.
    double synth_wall_s = 0.0;
    double decode_wall_s = 0.0;

    /// Full metrics snapshot of this replica's registry (counters,
    /// gauges, per-phase histograms — see README "Observability" for the
    /// catalogue). merge() folds name-wise in task order, preserving the
    /// Monte-Carlo runner's determinism contract: every non-timing entry
    /// is bit-identical across thread counts.
    ns::obs::metrics_snapshot metrics;
    /// Trace spans recorded when config.obs.trace is set; replicas
    /// concatenate in task order. Host timestamps — never written into
    /// scenario reports, only via --trace.
    std::vector<ns::obs::trace_event> trace;
    /// Spans dropped because the bounded trace ring filled up.
    std::uint64_t trace_dropped = 0;

    /// Per-group accumulators, indexed by group id; empty when grouping
    /// is off. merge() sums entries index-wise, so after a replica merge
    /// each entry aggregates that group id across all replicas (members
    /// included — interpret per-replica members as members / replicas).
    /// May hold more rows than num_groups: a regroup that shrinks the
    /// partition retires the trailing slots (members 0) but their
    /// counters are kept so per-group sums still decompose the totals.
    std::vector<group_metrics> groups;
    /// Final scheduled-group count (max across merged replicas; 0 when
    /// grouping is off).
    std::size_t num_groups = 0;

    /// Appends another result's rounds and adds its totals. Used by the
    /// parallel Monte-Carlo runner (engine/mc_runner) to combine
    /// independent round-blocks; merging in task order keeps the combined
    /// statistics identical regardless of execution order.
    void merge(const sim_result& other);

    /// Fraction of transmitted packets that passed CRC.
    double delivery_rate() const;
    /// Bit error rate over every transmitted payload+CRC bit.
    double ber() const;
    /// Mean devices delivered per round.
    double mean_delivered_per_round() const;
    /// Sample variance of delivered-per-round.
    double variance_delivered_per_round() const;
    /// Fraction of active device-rounds spent in a power-adaptation skip.
    double skip_rate() const;
    /// Fraction of active device-rounds with no data to send.
    double idle_rate() const;
};

/// The simulator.
///
/// Without hooks it behaves exactly as it always has: every placed
/// device is associated up front (batch power-aware allocation) and
/// transmits every round. With hooks (see round_hooks.hpp) the active
/// set, per-round traffic, link budgets and in-band interference are all
/// injectable, and membership changes flow through the AP's incremental
/// allocator with a full reassignment fallback (§3.3.3).
class network_simulator {
public:
    /// `hooks` (optional, non-owning, may be nullptr) must outlive the
    /// simulator.
    network_simulator(const deployment& dep, sim_config config,
                      round_hooks* hooks = nullptr);

    /// Runs the configured number of rounds.
    sim_result run();

    /// Cyclic shift of each currently-associated device.
    const std::unordered_map<std::uint32_t, std::uint32_t>& allocation() const {
        return allocation_;
    }

    /// The uplink SNR (dB, at the association-time gain) per device.
    const std::vector<double>& association_snrs_db() const { return association_snr_db_; }

    /// Devices currently associated.
    std::size_t active_count() const { return active_count_; }

    /// Whether §3.3.3 group scheduling is on.
    bool grouped() const { return config_.grouping.enabled; }

    /// The query's group-id field is 8 bits (Fig. 11): the AP can
    /// address at most this many groups. A partition needing more throws
    /// at construction/regroup; a join that would open group 257 is
    /// rejected.
    static constexpr std::size_t max_groups = 256;

    /// Current group count (0 when grouping is off).
    std::size_t num_groups() const { return group_spans_.size(); }

    /// Group of a device, if associated under grouping.
    std::optional<std::size_t> group_of(std::uint32_t device_id) const;

private:
    struct device_slot {
        placed_device placement;
        ns::device::backscatter_device device;
        /// Built lazily on first transmission (and rebuilt after a shift
        /// change): inactive and unscheduled devices never pay the
        /// per-shift chirp table, which is what lets a 10k-device
        /// universe fit per-replica memory.
        std::optional<ns::phy::distributed_modulator> modulator;
        ns::channel::gauss_markov_fading fading;
        /// Per-device multipath state (model_multipath only); advanced
        /// every round like fading so a device's channel time series is
        /// independent of its membership history.
        std::optional<ns::channel::tap_delay_line> taps = std::nullopt;
        double tof_s = 0.0;       ///< propagation time of flight
        double doppler_hz = 0.0;  ///< mobility-induced Doppler this round
        bool active = false;      ///< currently associated
        /// AR steps the fading (and multipath) processes have taken so
        /// far. Unobserved devices are not touched at all per round;
        /// when next scheduled they catch up to the simulation clock
        /// through the exact k-step AR(1) transition.
        std::uint64_t fading_rounds = 0;
        /// Index into group_spans_, cached on the slot so the per-round
        /// device loop tests membership without a hash lookup; no_group
        /// when ungrouped or inactive. Maintained at every membership
        /// change (partition, grouped admit, leave).
        static constexpr std::size_t no_group = static_cast<std::size_t>(-1);
        std::size_t group = no_group;

        // --- Fault/recovery state (inert with faults off) --------------
        /// Device lost its association (reboot, missed-query trip or
        /// lease eviction) and is rejoining through the Aloha path. While
        /// the AP's table entry lingers (`active` still true) the device
        /// is a zombie: scheduled but silent.
        bool down = false;
        /// Round the current down episode began (recovery latency base).
        std::size_t down_round = 0;
        /// Device missed a regroup query: it keeps transmitting on
        /// `stale_shift` while the AP's schedule moved on (§3.3.3 desync).
        bool desynced = false;
        std::uint32_t stale_shift = 0;
        std::size_t desync_round = 0;
        /// Consecutive queries the device failed to hear (device side).
        std::uint32_t missed_queries = 0;
        /// Consecutive scheduled rounds the AP heard nothing (lease).
        std::uint32_t silent_rounds = 0;
    };

    /// Applies a scenario's round plan: link updates, leaves, then joins
    /// (incremental allocation with full-reassignment fallback). `round`
    /// timestamps fault recovery events; `blackout` defers joins.
    void apply_round_plan(const round_plan& plan, round_outcome& outcome,
                          std::size_t round, bool blackout);
    /// Admits one joining device (grouped path): best-fit group via
    /// group_scheduler::admit, opening a fresh group on misfit, then
    /// incremental shift allocation within the group with a group-local
    /// full reassignment fallback. Returns false (join rejected) when a
    /// misfit would exceed the max_groups addressing limit.
    bool admit_grouped(std::size_t slot_index, double join_power,
                       round_outcome& outcome);
    /// Recomputes the whole partition from the current active powers and
    /// reallocates every group's shifts (§3.3.3 adaptive control). With
    /// faults on, devices that miss `round`'s query keep their old shift
    /// (stale-schedule desync).
    void regroup(round_outcome& outcome, std::size_t round);
    /// Associates the device in `slot_index` on `shift` with the
    /// association-time gain rule, using `baseline_rssi_dbm` as the
    /// device's fresh downlink baseline.
    void associate_slot(std::size_t slot_index, std::uint32_t shift,
                        double baseline_rssi_dbm);
    /// Occupied (shift, power) pairs of active devices, excluding
    /// `excluded_id` and, when `group` is set, devices outside that
    /// group; deterministic slot order.
    std::vector<std::pair<std::uint32_t, double>> occupied_powers(
        std::optional<std::uint32_t> excluded_id = std::nullopt,
        std::optional<std::size_t> group = std::nullopt) const;
    /// Refreshes the receiver's registered shifts from the active set
    /// (restricted to `group` when set — the scheduled group's round).
    void register_active_shifts(std::optional<std::size_t> group = std::nullopt);
    /// Partitions `powers` into signal-strength groups and fills the
    /// slots' cached group indices, group_spans_ and allocation_ with
    /// per-group allocations.
    void partition_into_groups(const std::vector<ns::mac::device_power>& powers);
    /// Scheduler configured from config_.grouping (capacity clamped to
    /// the allocator's slot count).
    ns::mac::group_scheduler make_scheduler() const;

    /// Inserts/removes `slot_index` into the sorted active-slot list.
    void mark_active(std::size_t slot_index);
    void mark_inactive(std::size_t slot_index);

    // --- Fault injection / protocol recovery (faults/) -----------------
    /// Drops `slot_index` from the AP's tables: deactivates the slot,
    /// reclaims its cyclic shift through the allocator and shrinks its
    /// group. The shared leave/eviction path.
    void deactivate_slot(std::size_t slot_index);
    /// Marks the device disassociated (reboot / missed-query trip /
    /// lease eviction): it falls silent and must rejoin via the Aloha
    /// path. Notifies the hooks so the scenario's churn re-queues it.
    void go_down(std::size_t slot_index, std::size_t round,
                 member_loss_reason reason, round_outcome& outcome);
    /// Diverts ACK-delayed joiners out of `joins` into pending_acks_ and
    /// reinserts the ones whose handshake completes this round.
    void apply_ack_faults(std::vector<std::uint32_t>& joins,
                          std::size_t round, round_outcome& outcome);
    /// Membership-lease sweep over this round's scheduled slots.
    void apply_lease(std::optional<std::size_t> scheduled_group,
                     std::size_t round, round_outcome& outcome);

    const deployment* deployment_;
    sim_config config_;
    round_hooks* hooks_ = nullptr;
    ns::util::rng rng_;
    std::vector<device_slot> slots_;
    std::unordered_map<std::uint32_t, std::size_t> slot_index_;  ///< id -> slot
    /// Sorted indices of the active slots — every per-round walk runs
    /// over this list instead of the full universe, so a 100k-device
    /// deployment with a few hundred associated devices never streams
    /// 100k slot structs through the cache each round.
    std::vector<std::size_t> active_slots_;
    std::unordered_map<std::uint32_t, std::uint32_t> allocation_;
    std::vector<double> association_snr_db_;
    ns::mac::shift_allocator allocator_;
    std::size_t active_count_ = 0;
    bool membership_dirty_ = false;
    /// Fault schedule generator (config.faults.enabled() only; nullopt
    /// keeps every fault path compiled out of the hot loop's behaviour).
    std::optional<ns::faults::fault_injector> fault_injector_;
    /// Joins the AP could not serve during a blackout; replayed on the
    /// first round the AP is back.
    std::vector<std::uint32_t> deferred_joins_;
    /// Handshakes stalled by lost ACKs: (device id, round the replayed
    /// response finally gets through).
    std::vector<std::pair<std::uint32_t, std::size_t>> pending_acks_;
    /// Mutable copy of a plan's joins while the fault layer reorders /
    /// defers / times out handshakes (plan itself is const).
    std::vector<std::uint32_t> join_scratch_;
    /// Slot-index staging of the lease sweep and reboot victim draws.
    std::vector<std::size_t> fault_scratch_;
    // --- §3.3.3 group scheduling state (empty when grouping is off) ---
    std::vector<ns::mac::group_span> group_spans_;
    std::vector<group_metrics> group_acc_;  ///< per-group accumulators
    std::size_t misfits_since_regroup_ = 0;
    ns::rx::receiver receiver_;

    // --- Observability (obs/) ------------------------------------------
    // One registry per simulator instance; a replica owns its simulator,
    // so the registry is thread-confined and its snapshot merges at the
    // replica boundary. Handles are fetched once in the constructor; the
    // round loop touches only these pointers (null when runtime-disabled,
    // which also keeps the probes from reading the clock).
    struct obs_probes {
        ns::obs::histogram* round_total = nullptr;  ///< round.total_s
        ns::obs::histogram* plan = nullptr;         ///< round.plan_s
        ns::obs::histogram* grouping = nullptr;     ///< round.grouping_s
        ns::obs::histogram* synth = nullptr;        ///< round.synth_s
        ns::obs::histogram* superpose = nullptr;    ///< round.superpose_s
        ns::obs::histogram* decode = nullptr;       ///< round.decode_s
        ns::obs::histogram* round_allocs = nullptr; ///< round.allocs
        ns::obs::counter* rounds = nullptr;
        ns::obs::counter* fast_rounds = nullptr;
        ns::obs::counter* sample_rounds = nullptr;
        ns::obs::counter* tx_packets = nullptr;
        ns::obs::counter* detected = nullptr;
        ns::obs::counter* delivered = nullptr;
        ns::obs::counter* cross_tx = nullptr;
        ns::obs::counter* cross_collisions = nullptr;
        ns::obs::counter* alloc_warmup_count = nullptr;
        ns::obs::counter* alloc_steady_count = nullptr;
        ns::obs::counter* alloc_steady_bytes = nullptr;
        ns::obs::counter* alloc_steady_rounds = nullptr;
        ns::obs::gauge* active_devices = nullptr;
        ns::obs::gauge* num_groups = nullptr;
        // fault.* instruments, fetched only when config.faults.enabled()
        // so fault-free runs publish an unchanged metrics set.
        ns::obs::counter* fault_query_losses = nullptr;
        ns::obs::counter* fault_ack_losses = nullptr;
        ns::obs::counter* fault_ack_timeouts = nullptr;
        ns::obs::counter* fault_reboots = nullptr;
        ns::obs::counter* fault_down_events = nullptr;
        ns::obs::counter* fault_lease_evictions = nullptr;
        ns::obs::counter* fault_desyncs = nullptr;
        ns::obs::counter* fault_resyncs = nullptr;
        ns::obs::counter* fault_recoveries = nullptr;
        ns::obs::counter* fault_orphan_tx = nullptr;
        ns::obs::counter* fault_orphan_collisions = nullptr;
        ns::obs::counter* fault_blackout_rounds = nullptr;
        ns::obs::histogram* fault_recovery_rounds = nullptr;
        ns::obs::histogram* fault_resync_rounds = nullptr;
        // Hardware-counter attribution destinations, one per round-loop
        // phase (perf.<phase>.cycles / .instructions / ...). Unwired
        // (null) unless obs.perf is set AND the group opened, so the
        // default round loop performs zero perf syscalls.
        ns::obs::perf_phase_counters perf_plan{};
        ns::obs::perf_phase_counters perf_grouping{};
        ns::obs::perf_phase_counters perf_synth{};
        ns::obs::perf_phase_counters perf_superpose{};
        ns::obs::perf_phase_counters perf_decode{};
    };
    ns::obs::metrics_registry metrics_;
    ns::obs::trace_buffer trace_;
    obs_probes probes_{};
    /// Per-replica hardware counter group (obs.perf). Opened in the
    /// constructor on the replica's thread — the scenario runner builds
    /// each simulator inside its Monte-Carlo task, so the fds attach to
    /// the thread that runs the rounds. Counter values flow one way,
    /// registry-outward: nothing in the simulation reads them back.
    ns::obs::perf_counter_group perf_group_;

    /// Intra-round symbol-block fan-out (config.intra_round_threads > 1).
    /// Owned by the simulator — NOT the Monte-Carlo pool the replica
    /// itself may be running on — so a replica task blocking in run()
    /// can never starve the workers it is waiting for.
    std::optional<ns::engine::block_runner> round_pool_;

    // --- Per-round workspaces (reused across rounds; the steady-state
    // loop allocates nothing per device once the buffers are warm) ------
    ns::channel::channel_workspace chan_ws_;
    ns::rx::decode_workspace decode_ws_;
    ns::rx::decode_result decoded_;
    std::vector<ns::channel::tx_contribution> contributions_;
    std::vector<ns::channel::packet_contribution> packet_contribs_;
    std::vector<bool> payload_scratch_;
    std::vector<bool> frame_scratch_;
    /// Flat 0/1 bytes of every transmitter's frame bits this round, one
    /// fixed-width row per transmitter in transmit order.
    std::vector<std::uint8_t> frame_bits_store_;
    std::vector<std::uint32_t> tx_row_shift_;    ///< row -> cyclic shift
    std::vector<std::int32_t> sent_row_of_shift_;  ///< shift -> row or -1
    std::vector<std::uint32_t> shift_scratch_;   ///< registered-shift staging
    /// Cross-network collision marks, one per transmitter row this round
    /// (empty when the round had no co-channel packets).
    std::vector<std::uint8_t> row_collided_;
    /// Rows a decode report consumed this round (faults only): the
    /// complement is the orphaned transmissions — stale or collided
    /// shifts the schedule no longer decodes.
    std::vector<std::uint8_t> row_scored_;
    /// Modulators for co-channel packets on the sample path, keyed by
    /// foreign cyclic shift (the fast path never materializes them).
    std::unordered_map<std::uint32_t, ns::phy::distributed_modulator>
        foreign_modulators_;
};

}  // namespace ns::sim
