// End-to-end sample-level network simulator.
//
// Drives the full pipeline the paper's deployment exercises: the AP
// queries, every associated device responds concurrently through the
// superposition channel (with per-packet hardware delay jitter, CFO,
// power adaptation and fading), and the NetScatter receiver decodes all
// devices from the summed baseband with one FFT per symbol. Decode
// success feeds the analytic timeline models (timeline.hpp) to produce
// the Figs. 17-19 series.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netscatter/channel/fading.hpp"
#include "netscatter/channel/impairments.hpp"
#include "netscatter/device/backscatter_device.hpp"
#include "netscatter/mac/allocator.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/round_hooks.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::sim {

/// Simulator configuration. The boolean switches support the ablation
/// benches (power-aware allocation off, power adaptation off, jitter off).
struct sim_config {
    ns::phy::css_params phy = ns::phy::deployed_params();
    ns::phy::frame_format frame = ns::phy::phy_format();
    std::uint32_t skip = 2;
    std::size_t zero_padding = 8;
    double detection_factor = 4.0;

    bool power_aware_allocation = true;  ///< §3.2.3 coarse-grained assignment
    bool power_adaptation = true;        ///< §3.2.3 fine-grained adjustment
    bool model_timing_jitter = true;     ///< hardware delay variation (§3.2.1)
    bool model_cfo = true;               ///< crystal offsets (§3.2.2)

    double fading_sigma_db = 1.5;        ///< per-device one-way fading std dev
    double fading_rho = 0.9;             ///< round-to-round correlation

    std::size_t rounds = 10;
    std::uint64_t seed = 1;

    ns::channel::hardware_delay_model delay_model{};
    ns::channel::crystal_model crystal{};

    /// Throws ns::util::invalid_argument when a field is outside its
    /// documented domain (rounds == 0, skip outside [1, bins), a
    /// non-positive detection factor, ...). network_simulator calls this
    /// on construction, so a bad configuration fails loudly instead of
    /// producing undefined or garbage results.
    void validate() const;
};

/// Outcome counters of one round.
struct round_outcome {
    std::size_t active = 0;        ///< devices associated this round
    std::size_t transmitting = 0;  ///< devices that sent this round
    std::size_t skipped = 0;       ///< devices that sat out (power adaptation)
    std::size_t idle = 0;          ///< devices with no data (traffic gating)
    std::size_t detected = 0;      ///< preamble detected
    std::size_t delivered = 0;     ///< CRC passed
    std::size_t bit_errors = 0;    ///< payload+CRC bit errors across devices
    std::size_t bits_sent = 0;

    // Churn / control-plane counters (zero without hooks).
    std::size_t joins = 0;             ///< devices that joined this round
    std::size_t leaves = 0;            ///< devices that left this round
    std::size_t rejected_joins = 0;    ///< joins refused (network full)
    std::size_t reassociations = 0;    ///< in-tolerance re-association events
    std::size_t realloc_events = 0;    ///< per-device slot (re)assignments
    std::size_t full_reassignments = 0;///< whole-network reallocation runs
};

/// Aggregated simulation result.
struct sim_result {
    std::vector<round_outcome> rounds;
    std::size_t total_transmitting = 0;
    std::size_t total_delivered = 0;
    std::size_t total_detected = 0;
    std::size_t total_bit_errors = 0;
    std::size_t total_bits = 0;
    std::size_t total_skipped = 0;
    std::size_t total_idle = 0;
    std::size_t total_active_rounds = 0;  ///< sum of per-round active counts
    std::size_t total_joins = 0;
    std::size_t total_leaves = 0;
    std::size_t total_rejected_joins = 0;
    std::size_t total_reassociations = 0;
    std::size_t total_realloc_events = 0;
    std::size_t total_full_reassignments = 0;

    /// Appends another result's rounds and adds its totals. Used by the
    /// parallel Monte-Carlo runner (engine/mc_runner) to combine
    /// independent round-blocks; merging in task order keeps the combined
    /// statistics identical regardless of execution order.
    void merge(const sim_result& other);

    /// Fraction of transmitted packets that passed CRC.
    double delivery_rate() const;
    /// Bit error rate over every transmitted payload+CRC bit.
    double ber() const;
    /// Mean devices delivered per round.
    double mean_delivered_per_round() const;
    /// Sample variance of delivered-per-round.
    double variance_delivered_per_round() const;
    /// Fraction of active device-rounds spent in a power-adaptation skip.
    double skip_rate() const;
    /// Fraction of active device-rounds with no data to send.
    double idle_rate() const;
};

/// The simulator.
///
/// Without hooks it behaves exactly as it always has: every placed
/// device is associated up front (batch power-aware allocation) and
/// transmits every round. With hooks (see round_hooks.hpp) the active
/// set, per-round traffic, link budgets and in-band interference are all
/// injectable, and membership changes flow through the AP's incremental
/// allocator with a full reassignment fallback (§3.3.3).
class network_simulator {
public:
    /// `hooks` (optional, non-owning, may be nullptr) must outlive the
    /// simulator.
    network_simulator(const deployment& dep, sim_config config,
                      round_hooks* hooks = nullptr);

    /// Runs the configured number of rounds.
    sim_result run();

    /// Cyclic shift of each currently-associated device.
    const std::unordered_map<std::uint32_t, std::uint32_t>& allocation() const {
        return allocation_;
    }

    /// The uplink SNR (dB, at the association-time gain) per device.
    const std::vector<double>& association_snrs_db() const { return association_snr_db_; }

    /// Devices currently associated.
    std::size_t active_count() const { return active_count_; }

private:
    struct device_slot {
        placed_device placement;
        ns::device::backscatter_device device;
        ns::phy::distributed_modulator modulator;
        ns::channel::gauss_markov_fading fading;
        double tof_s = 0.0;       ///< propagation time of flight
        double doppler_hz = 0.0;  ///< mobility-induced Doppler this round
        bool active = false;      ///< currently associated
    };

    /// Applies a scenario's round plan: link updates, leaves, then joins
    /// (incremental allocation with full-reassignment fallback).
    void apply_round_plan(const round_plan& plan, round_outcome& outcome);
    /// Associates the device in `slot_index` on `shift` with the
    /// association-time gain rule, using `baseline_rssi_dbm` as the
    /// device's fresh downlink baseline.
    void associate_slot(std::size_t slot_index, std::uint32_t shift,
                        double baseline_rssi_dbm);
    /// Occupied (shift, power) pairs of active devices, excluding
    /// `excluded_id`; deterministic slot order.
    std::vector<std::pair<std::uint32_t, double>> occupied_powers(
        std::optional<std::uint32_t> excluded_id = std::nullopt) const;
    /// Refreshes the receiver's registered shifts from the active set.
    void register_active_shifts();

    const deployment* deployment_;
    sim_config config_;
    round_hooks* hooks_ = nullptr;
    ns::util::rng rng_;
    std::vector<device_slot> slots_;
    std::unordered_map<std::uint32_t, std::size_t> slot_index_;  ///< id -> slot
    std::unordered_map<std::uint32_t, std::uint32_t> allocation_;
    std::vector<double> association_snr_db_;
    ns::mac::shift_allocator allocator_;
    std::size_t active_count_ = 0;
    bool membership_dirty_ = false;
    ns::rx::receiver receiver_;
};

}  // namespace ns::sim
