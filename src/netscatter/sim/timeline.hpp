// Analytic timing and rate models for the network evaluation (§4.4).
//
// These closed-form models compute exactly what the paper's Figs. 17-19
// report once per-device decode success is known:
//   * Network PHY bit-rate — bits delivered during the payload part, per
//     second of payload airtime (concurrent devices add up);
//   * Link-layer data rate — useful payload bits over the full round
//     (AP query + preamble + payload), the preamble being shared by all
//     devices in NetScatter but repeated per device in the TDMA baseline;
//   * Network latency — time to collect the payload from every device.
// A discrete-event check against these formulas lives in the tests.
#pragma once

#include <cstddef>

#include "netscatter/mac/query_message.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/frame.hpp"

namespace ns::sim {

/// Which AP-query configuration a NetScatter round uses (§4.4).
enum class query_config {
    config1,  ///< 32-bit query; shifts assigned during association
    config2,  ///< query carries all assignments: 1760 bits
};

/// Query length in bits for a configuration.
std::size_t query_bits(query_config config);

/// Timing of one NetScatter concurrent round.
struct round_timing {
    double query_time_s = 0.0;    ///< ASK downlink airtime
    double preamble_time_s = 0.0; ///< 8 shared preamble symbols
    double payload_time_s = 0.0;  ///< payload+CRC symbols
    double total_time_s = 0.0;
};

/// Computes the round timing for the given frame/PHY/query configuration.
round_timing netscatter_round(const ns::phy::frame_format& frame,
                              const ns::phy::css_params& params, query_config config);

/// Network-level metrics of one NetScatter round in which
/// `devices_delivered` of `devices_total` devices' packets decoded.
struct network_metrics {
    double phy_rate_bps = 0.0;        ///< concurrent payload-part bitrate
    double linklayer_rate_bps = 0.0;  ///< useful bits / full round time
    double latency_s = 0.0;           ///< time to serve the network once
    std::size_t devices_delivered = 0;
    std::size_t devices_total = 0;
};

/// NetScatter metrics: all devices share one round.
network_metrics netscatter_metrics(const ns::phy::frame_format& frame,
                                   const ns::phy::css_params& params, query_config config,
                                   std::size_t devices_delivered, std::size_t devices_total);

/// The ideal NetScatter upper bound (every device decodes).
network_metrics netscatter_ideal_metrics(const ns::phy::frame_format& frame,
                                         const ns::phy::css_params& params,
                                         query_config config, std::size_t devices_total);

}  // namespace ns::sim
