#include "netscatter/sim/grouped_sim.hpp"

#include <unordered_map>

#include "netscatter/util/error.hpp"

namespace ns::sim {

double grouped_result::network_latency_s(const ns::phy::frame_format& frame,
                                         const ns::phy::css_params& params,
                                         query_config config) const {
    const round_timing timing = netscatter_round(frame, params, config);
    return timing.total_time_s * static_cast<double>(groups.size());
}

double grouped_result::linklayer_rate_bps(const ns::phy::frame_format& frame,
                                          const ns::phy::css_params& params,
                                          query_config config) const {
    const double latency = network_latency_s(frame, params, config);
    if (latency <= 0.0) return 0.0;
    // Delivered payload bits per full schedule, averaged over the rounds
    // each group ran.
    double delivered_per_schedule = 0.0;
    for (const auto& result : per_group) {
        delivered_per_schedule += result.mean_delivered_per_round();
    }
    return delivered_per_schedule * static_cast<double>(frame.payload_bits) / latency;
}

grouped_result run_grouped(const deployment& dep, const sim_config& config,
                           const ns::mac::scheduler_params& scheduler_params) {
    // Partition by uplink power at the AP.
    std::vector<ns::mac::device_power> powers;
    powers.reserve(dep.devices().size());
    std::unordered_map<std::uint32_t, placed_device> by_id;
    for (const auto& device : dep.devices()) {
        powers.push_back({device.id, device.uplink_rx_dbm});
        by_id[device.id] = device;
    }
    const ns::mac::group_scheduler scheduler(scheduler_params);

    grouped_result result;
    result.groups = scheduler.partition(std::move(powers));

    // One sample-level simulation per group (its own rounds).
    for (std::size_t g = 0; g < result.groups.size(); ++g) {
        std::vector<placed_device> members;
        members.reserve(result.groups[g].size());
        for (std::uint32_t id : result.groups[g].device_ids) {
            members.push_back(by_id.at(id));
        }
        const deployment group_dep(dep.params(), std::move(members));
        sim_config group_config = config;
        group_config.seed = config.seed + g + 1;
        network_simulator sim(group_dep, group_config);
        sim_result group_result = sim.run();
        result.total_transmitting += group_result.total_transmitting;
        result.total_delivered += group_result.total_delivered;
        result.per_group.push_back(std::move(group_result));
    }
    return result;
}

}  // namespace ns::sim
