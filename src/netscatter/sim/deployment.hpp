// Office-floor deployment generator — the substitute for the paper's
// physical testbed (Fig. 1: 256 devices across a floor of an office
// building covering more than ten rooms).
//
// Devices are placed uniformly over a rectangular floor divided into a
// grid of rooms; the AP sits at the floor centre (mono-static reader).
// Path loss is log-distance with per-wall attenuation (walls = grid
// lines crossed by the AP-device segment) plus lognormal shadowing. The
// resulting received-power population spans the near-far range the
// paper's power-aware machinery is designed for (~35 dB).
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/channel/pathloss.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::sim {

/// Deployment configuration.
struct deployment_params {
    double floor_width_m = 36.0;
    double floor_depth_m = 18.0;
    std::size_t rooms_x = 5;        ///< rooms along the width
    std::size_t rooms_y = 2;        ///< rooms along the depth (10+ rooms total)
    double min_distance_m = 8.0;    ///< keep devices out of the AP's near field
    double ap_tx_dbm = 30.0;        ///< 0 dBm USRP + 30 dB PA (§4.1)
    double conversion_loss_db = 6.0;///< backscatter reradiation loss
    double noise_figure_db = 6.0;
    /// Calibrated so the 256-device population spans roughly the paper's
    /// ~35 dB near-far dynamic range (the limit Fig. 15b establishes and
    /// the deployed floor stayed within) with the farthest devices near
    /// the -123 dBm sensitivity edge. Backscatter doubles every dB of
    /// one-way variation, so the one-way spread must stay under ~18 dB;
    /// populations exceeding the dynamic range are what the AP's
    /// signal-strength grouping exists for (§3.3.3).
    ns::channel::pathloss_params pathloss{.reference_distance_m = 1.0,
                                          .reference_loss_db = 36.0,
                                          .exponent = 2.2,
                                          .wall_loss_db = 2.0,
                                          .shadowing_sigma_db = 1.2};
};

/// One placed device and its static link budget.
struct placed_device {
    std::uint32_t id = 0;
    double x_m = 0.0;
    double y_m = 0.0;
    int walls = 0;                 ///< walls between device and AP
    double oneway_loss_db = 0.0;   ///< AP -> device, shadowing included
    double query_rssi_dbm = 0.0;   ///< downlink power at the device
    double uplink_rx_dbm = 0.0;    ///< backscatter power at the AP, 0 dB gain
    double uplink_snr_db = 0.0;    ///< uplink_rx - noise floor, 0 dB gain
};

/// A generated deployment.
class deployment {
public:
    /// Generates `num_devices` placements with the given seed.
    deployment(deployment_params params, std::size_t num_devices, std::uint64_t seed);

    /// Wraps an explicit set of already-placed devices (used by the group
    /// scheduler to simulate one group of a larger population).
    deployment(deployment_params params, std::vector<placed_device> devices);

    const std::vector<placed_device>& devices() const { return devices_; }
    const deployment_params& params() const { return params_; }

    /// Receiver noise floor for the given chirp bandwidth, dBm.
    double noise_floor_dbm(double bandwidth_hz) const;

    /// Number of walls the straight AP->(x, y) path crosses.
    int walls_between(double x_m, double y_m) const;

    /// AP position (floor centre).
    double ap_x_m() const { return params_.floor_width_m / 2.0; }
    double ap_y_m() const { return params_.floor_depth_m / 2.0; }

private:
    deployment_params params_;
    std::vector<placed_device> devices_;
};

}  // namespace ns::sim
