// Behavioural model of one NetScatter backscatter device.
//
// This is the control-plane state machine of §3.2.3 and §3.3.4:
//
//   unassociated --query heard--> sends Association Request on one of the
//        reserved association shifts (region chosen from the query RSSI);
//        initial power gain: max if the query is weak, middle otherwise.
//   awaiting_ack --query carries my assignment--> stores the cyclic shift
//        and replies with an Association ACK on that shift.
//   associated --every query--> fine-grained self-aware power adjustment:
//        the query RSSI is compared with the association baseline; if the
//        downlink strengthened by d dB the uplink strengthened ~2d dB
//        (reciprocity, round-trip), so the device lowers its gain
//        accordingly (and vice versa). If no available level can bring the
//        uplink back within tolerance, the device skips the round; after
//        `max_skips` consecutive skips it re-initiates association so the
//        AP can reassign its cyclic shift (§3.2.3).
//
// Per packet the device also samples its hardware delay (MCU + envelope
// detector + FPGA latency jitter, §3.2.1) and its residual frequency
// offset (static crystal offset + packet-to-packet drift, §3.2.2), which
// the channel model turns into FFT-bin displacement.
#pragma once

#include <cstdint>
#include <optional>

#include "netscatter/channel/impairments.hpp"
#include "netscatter/device/envelope_detector.hpp"
#include "netscatter/device/impedance.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::device {

/// What the device decides to do in response to one AP query.
enum class device_action {
    none,                 ///< query not heard (below detector sensitivity)
    association_request,  ///< transmit on a reserved association shift
    association_ack,      ///< confirm a received assignment
    transmit_data,        ///< normal concurrent data transmission
    skip,                 ///< stay silent this round (power out of tolerance)
};

/// Association-region choice for an incoming device (§3.3.2): the device
/// picks the high- or low-SNR association shift from the query RSSI.
enum class snr_region { high, low };

/// A cyclic-shift assignment delivered in the AP query (Fig. 11).
struct shift_assignment {
    std::uint8_t network_id = 0;
    std::uint32_t cyclic_shift = 0;
};

/// The device's full response to one query.
struct transmit_intent {
    device_action action = device_action::none;
    std::uint32_t cyclic_shift = 0;      ///< shift used for this transmission
    snr_region association_region = snr_region::high;  ///< for association requests
    double gain_db = 0.0;                ///< selected transmit power gain
    double hardware_delay_s = 0.0;       ///< sampled per-packet timing offset
    double frequency_offset_hz = 0.0;    ///< sampled per-packet CFO
};

/// Static configuration of a device.
struct device_params {
    ns::phy::css_params phy{};
    envelope_detector_params detector{};
    ns::channel::hardware_delay_model delay_model{};
    ns::channel::crystal_model crystal{};

    /// Query RSSI below which an associating device picks max gain and the
    /// low-SNR association region (§3.2.3 / §3.3.2).
    double low_rssi_threshold_dbm = -38.0;

    /// Maximum deviation of the compensated uplink power from the
    /// association baseline before the device skips the round, dB. Must
    /// comfortably exceed the combined RSSI measurement noise and the
    /// coarseness of the three gain levels; the SKIP=2 allocation has an
    /// in-built ~5 dB resilience to channel variation (§4.3) and the
    /// power-aware assignment tolerates far more for distant bins.
    double snr_tolerance_db = 6.0;

    /// Consecutive skips before re-initiating association ("more than
    /// twice" in §3.2.3 — two skips trigger re-association).
    int max_skips = 2;
};

/// Association lifecycle state.
enum class device_state { unassociated, awaiting_ack, associated };

/// One backscatter device.
class backscatter_device {
public:
    /// `id` identifies the device to the caller; `seed` makes the device's
    /// stochastic behaviour (delays, CFO, RSSI noise) reproducible.
    backscatter_device(std::uint32_t id, device_params params, std::uint64_t seed);

    /// Processes one AP query. `query_rx_power_dbm` is the true received
    /// downlink power at the device (the detector adds measurement noise);
    /// `assignment` carries this device's shift when the AP piggybacked
    /// one (Fig. 11 optional fields).
    transmit_intent handle_query(double query_rx_power_dbm,
                                 const std::optional<shift_assignment>& assignment);

    /// Current lifecycle state.
    device_state state() const { return state_; }

    /// Assigned cyclic shift; only meaningful when associated.
    std::uint32_t cyclic_shift() const { return assigned_shift_; }

    /// Currently selected power gain in dB.
    double current_gain_db() const { return network_.gain_db(gain_level_); }

    /// Static crystal frequency offset of this device, Hz.
    double static_frequency_offset_hz() const { return static_cfo_hz_; }

    std::uint32_t id() const { return id_; }
    const device_params& params() const { return params_; }

    /// Forces the associated state with the given shift — used by tests
    /// and by experiments that bypass the association handshake (the
    /// deployment in §3.3.2 associates devices one at a time up front).
    void force_associate(std::uint32_t shift, double baseline_query_rssi_dbm,
                         std::size_t gain_level);

private:
    transmit_intent respond_associated(double measured_rssi_dbm);

    std::uint32_t id_;
    device_params params_;
    ns::util::rng rng_;
    envelope_detector detector_;
    switch_network network_;

    device_state state_ = device_state::unassociated;
    std::uint32_t assigned_shift_ = 0;
    std::size_t gain_level_ = 0;
    double baseline_rssi_dbm_ = 0.0;  ///< query RSSI at association
    double baseline_gain_db_ = 0.0;   ///< gain selected at association
    int consecutive_skips_ = 0;
    double static_cfo_hz_ = 0.0;
    snr_region pending_region_ = snr_region::high;
};

}  // namespace ns::device
