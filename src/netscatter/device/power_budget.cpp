#include "netscatter/device/power_budget.hpp"

#include "netscatter/util/error.hpp"

namespace ns::device {

round_energy netscatter_round_energy(const ic_power_model& power,
                                     const ns::phy::css_params& params,
                                     const ns::phy::frame_format& frame,
                                     double query_airtime_s, double round_period_s) {
    const double packet_s = frame.netscatter_airtime_s(params);
    ns::util::require(round_period_s >= query_airtime_s + packet_s,
                      "netscatter_round_energy: period shorter than the round");
    round_energy energy;
    energy.listen_j = power.listen_w() * query_airtime_s;
    energy.transmit_j = power.transmit_w() * packet_s;
    energy.sleep_j = power.sleep_w * (round_period_s - query_airtime_s - packet_s);
    energy.total_j = energy.listen_j + energy.transmit_j + energy.sleep_j;
    energy.per_payload_bit_j = energy.total_j / static_cast<double>(frame.payload_bits);
    return energy;
}

round_energy lora_polled_epoch_energy(const ic_power_model& power,
                                      const ns::phy::css_params& params,
                                      const ns::phy::frame_format& frame,
                                      double query_airtime_s, std::size_t num_devices) {
    ns::util::require(num_devices >= 1, "lora_polled_epoch_energy: need >= 1 device");
    const double packet_s = frame.lora_airtime_s(params);
    const double n = static_cast<double>(num_devices);
    round_energy energy;
    // Listen to every query in the epoch (to catch its own address)...
    energy.listen_j = power.listen_w() * query_airtime_s * n;
    // ...transmit once...
    energy.transmit_j = power.transmit_w() * packet_s;
    // ...sleep through the other devices' packets.
    energy.sleep_j = power.sleep_w * packet_s * (n - 1.0);
    energy.total_j = energy.listen_j + energy.transmit_j + energy.sleep_j;
    energy.per_payload_bit_j = energy.total_j / static_cast<double>(frame.payload_bits);
    return energy;
}

double battery_life_years(double capacity_mah, double voltage_v,
                          double energy_per_event_j, double period_s) {
    ns::util::require(capacity_mah > 0.0 && voltage_v > 0.0 && period_s > 0.0,
                      "battery_life_years: non-positive parameter");
    ns::util::require(energy_per_event_j > 0.0, "battery_life_years: zero event energy");
    const double capacity_j = capacity_mah * 1e-3 * 3600.0 * voltage_v;
    const double events = capacity_j / energy_per_event_j;
    const double seconds = events * period_s;
    return seconds / (365.25 * 24.0 * 3600.0);
}

}  // namespace ns::device
