// Envelope detector model (§4.1).
//
// The device's RF receive side is a passive envelope detector that
// demodulates the AP's ASK query. The COTS hardware achieves -49 dBm
// sensitivity; since the query experiences only one-way path loss, the
// required sensitivity is just -44 dBm (footnote 1). The detector also
// provides the coarse RSSI estimate the device uses for its
// zero-overhead power adaptation (§3.2.3): reciprocity lets the device
// infer its uplink SNR from the query's downlink strength.
#pragma once

#include "netscatter/util/rng.hpp"

namespace ns::device {

/// Envelope detector configuration.
struct envelope_detector_params {
    double sensitivity_dbm = -49.0;   ///< weakest decodable query
    double rssi_noise_sigma_db = 0.5; ///< measurement noise on RSSI estimates
                                      ///< (the query is long enough to average)
    double rssi_step_db = 1.0;        ///< RSSI quantization step (coarse ADC)
};

/// Behavioural envelope detector: decides whether a query is heard and
/// produces a noisy, quantized RSSI estimate.
class envelope_detector {
public:
    envelope_detector(envelope_detector_params params, ns::util::rng rng);

    /// True when a query at `rx_power_dbm` is strong enough to decode.
    bool can_decode(double rx_power_dbm) const;

    /// Noisy, quantized RSSI estimate of a query at `rx_power_dbm`.
    double measure_rssi_dbm(double rx_power_dbm);

    const envelope_detector_params& params() const { return params_; }

private:
    envelope_detector_params params_;
    ns::util::rng rng_;
};

}  // namespace ns::device
