#include "netscatter/device/envelope_detector.hpp"

#include <cmath>

namespace ns::device {

envelope_detector::envelope_detector(envelope_detector_params params, ns::util::rng rng)
    : params_(params), rng_(rng) {}

bool envelope_detector::can_decode(double rx_power_dbm) const {
    return rx_power_dbm >= params_.sensitivity_dbm;
}

double envelope_detector::measure_rssi_dbm(double rx_power_dbm) {
    const double noisy = rx_power_dbm + rng_.gaussian(0.0, params_.rssi_noise_sigma_db);
    if (params_.rssi_step_db <= 0.0) return noisy;
    return std::round(noisy / params_.rssi_step_db) * params_.rssi_step_db;
}

}  // namespace ns::device
