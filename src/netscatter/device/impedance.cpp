#include "netscatter/device/impedance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::device {

double reflection_coefficient(double impedance_ohm, double reference_ohm) {
    ns::util::require(reference_ohm > 0.0, "reflection_coefficient: bad reference");
    if (std::isinf(impedance_ohm)) return 1.0;
    ns::util::require(impedance_ohm >= 0.0, "reflection_coefficient: negative impedance");
    return (impedance_ohm - reference_ohm) / (impedance_ohm + reference_ohm);
}

double backscatter_power_gain(double z0_ohm, double z1_ohm, double reference_ohm) {
    const double g0 = reflection_coefficient(z0_ohm, reference_ohm);
    const double g1 = reflection_coefficient(z1_ohm, reference_ohm);
    const double diff = g0 - g1;
    return diff * diff / 4.0;
}

double backscatter_power_gain_db(double z0_ohm, double z1_ohm, double reference_ohm) {
    const double gain = backscatter_power_gain(z0_ohm, z1_ohm, reference_ohm);
    return ns::util::linear_to_db(std::max(gain, 1e-30));
}

double z0_for_gain_db(double target_gain_db, double reference_ohm) {
    ns::util::require(target_gain_db <= 0.0, "z0_for_gain_db: gain must be <= 0 dB");
    // With Z1 = inf (Γ1 = 1) and real Z0 in [0, inf), Γ0 in [-1, 1), so
    // |Γ0 - 1| = 1 - Γ0 and gain = (1 - Γ0)^2 / 4.
    const double gain = ns::util::db_to_linear(target_gain_db);
    const double gamma0 = 1.0 - 2.0 * std::sqrt(gain);
    // Γ0 = (Z-R)/(Z+R)  =>  Z = R (1+Γ0)/(1-Γ0).
    return reference_ohm * (1.0 + gamma0) / (1.0 - gamma0);
}

switch_network::switch_network(std::vector<double> gain_levels_db)
    : gains_db_(std::move(gain_levels_db)) {
    ns::util::require(!gains_db_.empty(), "switch_network: need at least one level");
    std::sort(gains_db_.begin(), gains_db_.end(), std::greater<>());
    z0_ohms_.reserve(gains_db_.size());
    for (double g : gains_db_) z0_ohms_.push_back(z0_for_gain_db(g));
}

double switch_network::gain_db(std::size_t index) const {
    ns::util::require(index < gains_db_.size(), "switch_network: level out of range");
    return gains_db_[index];
}

double switch_network::z0_ohm(std::size_t index) const {
    ns::util::require(index < z0_ohms_.size(), "switch_network: level out of range");
    return z0_ohms_[index];
}

std::size_t switch_network::nearest_level(double target_db) const {
    std::size_t best = 0;
    double best_err = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < gains_db_.size(); ++i) {
        const double err = std::abs(gains_db_[i] - target_db);
        if (err < best_err) {
            best_err = err;
            best = i;
        }
    }
    return best;
}

}  // namespace ns::device
