// Device energy model from the paper's IC simulation (§4.1).
//
// The TSMC 65nm IC consumes 45.2 uW total while transmitting:
//   envelope detector   < 1   uW   (query demodulation)
//   baseband processor    5.7 uW   (AP data extraction, sensor interface)
//   chirp generator      36   uW   (ON-OFF keyed cyclic-shift chirps)
//   switch network        2.5 uW   (3-level backscatter modulator, 3 MHz)
// This module turns those numbers into per-packet / per-bit energy and
// battery-life estimates, and compares the NetScatter duty cycle against
// the sequential LoRa-backscatter baseline: a NetScatter device listens
// to ONE query then transmits; a polled device must listen for (or sleep
// through) the whole TDMA epoch to catch its own query.
#pragma once

#include <cstddef>

#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/frame.hpp"

namespace ns::device {

/// Per-block active power draws, in watts (paper defaults).
struct ic_power_model {
    double envelope_detector_w = 1.0e-6;
    double baseband_processor_w = 5.7e-6;
    double chirp_generator_w = 36.0e-6;
    double switch_network_w = 2.5e-6;
    double sleep_w = 50e-9;  ///< deep-sleep floor between rounds

    /// Total active transmit power (all blocks running).
    double transmit_w() const {
        return envelope_detector_w + baseband_processor_w + chirp_generator_w +
               switch_network_w;
    }

    /// Receive/listen power (envelope detector + baseband only).
    double listen_w() const { return envelope_detector_w + baseband_processor_w; }
};

/// Energy accounting for one NetScatter round from a device's viewpoint.
struct round_energy {
    double listen_j = 0.0;    ///< receiving the AP query
    double transmit_j = 0.0;  ///< backscattering the packet
    double sleep_j = 0.0;     ///< idle remainder of the round
    double total_j = 0.0;
    double per_payload_bit_j = 0.0;
};

/// Energy one NetScatter device spends per concurrent round: listen to
/// the query (`query_airtime_s`), transmit the whole packet, sleep for
/// the rest of `round_period_s` (>= query + packet airtime).
round_energy netscatter_round_energy(const ic_power_model& power,
                                     const ns::phy::css_params& params,
                                     const ns::phy::frame_format& frame,
                                     double query_airtime_s, double round_period_s);

/// Energy a polled LoRa-backscatter device spends per epoch of
/// `num_devices` sequential rounds: it must listen to every query to
/// recognize its own address (duty-cycled listening would add latency),
/// transmits once, sleeps otherwise.
round_energy lora_polled_epoch_energy(const ic_power_model& power,
                                      const ns::phy::css_params& params,
                                      const ns::phy::frame_format& frame,
                                      double query_airtime_s, std::size_t num_devices);

/// Years of operation on a battery of `capacity_mah` at `voltage_v`,
/// given an average period of `period_s` between reporting events each
/// costing `energy_per_event_j` (sleep between events included by the
/// caller in the event energy).
double battery_life_years(double capacity_mah, double voltage_v,
                          double energy_per_event_j, double period_s);

}  // namespace ns::device
