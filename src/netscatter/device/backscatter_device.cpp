#include "netscatter/device/backscatter_device.hpp"

#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::device {

backscatter_device::backscatter_device(std::uint32_t id, device_params params,
                                       std::uint64_t seed)
    : id_(id),
      params_(params),
      rng_(seed),
      detector_(params.detector, rng_.fork()),
      network_() {
    static_cfo_hz_ = params_.crystal.sample_static_offset_hz(rng_);
}

void backscatter_device::force_associate(std::uint32_t shift,
                                         double baseline_query_rssi_dbm,
                                         std::size_t gain_level) {
    ns::util::require(shift < params_.phy.num_bins(),
                      "force_associate: shift out of range");
    ns::util::require(gain_level < network_.num_levels(),
                      "force_associate: gain level out of range");
    state_ = device_state::associated;
    assigned_shift_ = shift;
    gain_level_ = gain_level;
    baseline_rssi_dbm_ = baseline_query_rssi_dbm;
    baseline_gain_db_ = network_.gain_db(gain_level);
    consecutive_skips_ = 0;
}

transmit_intent backscatter_device::handle_query(
    double query_rx_power_dbm, const std::optional<shift_assignment>& assignment) {
    transmit_intent intent;
    if (!detector_.can_decode(query_rx_power_dbm)) {
        intent.action = device_action::none;
        return intent;
    }
    const double measured_rssi = detector_.measure_rssi_dbm(query_rx_power_dbm);

    // Per-packet impairments are sampled for every actual transmission.
    const auto stamp_impairments = [&](transmit_intent& out) {
        out.hardware_delay_s = params_.delay_model.sample_s(rng_);
        out.frequency_offset_hz = static_cfo_hz_ + params_.crystal.sample_drift_hz(rng_);
    };

    switch (state_) {
        case device_state::unassociated: {
            // §3.3.2: pick the association region and the initial power
            // gain from the query strength. A weak query implies a far /
            // low-SNR device: max gain, low-SNR region. A strong query
            // implies a near device: middle gain (leaving headroom both
            // ways), high-SNR region.
            const bool weak = measured_rssi < params_.low_rssi_threshold_dbm;
            gain_level_ = weak ? network_.max_level() : network_.middle_level();
            pending_region_ = weak ? snr_region::low : snr_region::high;
            baseline_rssi_dbm_ = measured_rssi;
            baseline_gain_db_ = network_.gain_db(gain_level_);

            intent.action = device_action::association_request;
            intent.association_region = pending_region_;
            intent.gain_db = baseline_gain_db_;
            stamp_impairments(intent);
            state_ = device_state::awaiting_ack;
            return intent;
        }
        case device_state::awaiting_ack: {
            if (!assignment.has_value()) {
                // AP has not (yet) answered; keep waiting. The AP repeats
                // the association response in following queries (§3.3.4).
                intent.action = device_action::skip;
                return intent;
            }
            assigned_shift_ = assignment->cyclic_shift;
            state_ = device_state::associated;
            consecutive_skips_ = 0;
            intent.action = device_action::association_ack;
            intent.cyclic_shift = assigned_shift_;
            intent.gain_db = network_.gain_db(gain_level_);
            stamp_impairments(intent);
            return intent;
        }
        case device_state::associated: {
            intent = respond_associated(measured_rssi);
            if (intent.action == device_action::transmit_data ||
                intent.action == device_action::association_request) {
                stamp_impairments(intent);
            }
            return intent;
        }
    }
    return intent;  // unreachable
}

transmit_intent backscatter_device::respond_associated(double measured_rssi_dbm) {
    transmit_intent intent;

    // Fine-grained self-aware power adjustment (§3.2.3): if the downlink
    // query strengthened by d dB, reciprocity implies the round-trip
    // uplink strengthened by about 2d dB, so the device *lowers* its gain
    // by 2d (and raises it when the query weakens).
    const double downlink_delta_db = measured_rssi_dbm - baseline_rssi_dbm_;
    const double desired_gain_db = baseline_gain_db_ - 2.0 * downlink_delta_db;
    const std::size_t level = network_.nearest_level(desired_gain_db);
    const double achieved_gain_db = network_.gain_db(level);

    // Residual uplink deviation from the association-time operating point
    // after the best available compensation.
    const double residual_db = (achieved_gain_db + 2.0 * downlink_delta_db) - baseline_gain_db_;

    if (std::abs(residual_db) > params_.snr_tolerance_db) {
        ++consecutive_skips_;
        if (consecutive_skips_ >= params_.max_skips) {
            // Re-initiate association so the AP reassigns the shift for the
            // new, significantly different power value (§3.2.3).
            state_ = device_state::unassociated;
            consecutive_skips_ = 0;
            const bool weak = measured_rssi_dbm < params_.low_rssi_threshold_dbm;
            gain_level_ = weak ? network_.max_level() : network_.middle_level();
            pending_region_ = weak ? snr_region::low : snr_region::high;
            baseline_rssi_dbm_ = measured_rssi_dbm;
            baseline_gain_db_ = network_.gain_db(gain_level_);
            intent.action = device_action::association_request;
            intent.association_region = pending_region_;
            intent.gain_db = baseline_gain_db_;
            state_ = device_state::awaiting_ack;
            return intent;
        }
        intent.action = device_action::skip;
        return intent;
    }

    consecutive_skips_ = 0;
    gain_level_ = level;
    intent.action = device_action::transmit_data;
    intent.cyclic_shift = assigned_shift_;
    intent.gain_db = achieved_gain_db;
    return intent;
}

}  // namespace ns::device
