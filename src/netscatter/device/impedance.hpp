// Backscatter impedance switch network (§3.2.3, Fig. 7).
//
// A backscatter transmitter conveys bits by toggling its antenna between
// two impedances Z0 and Z1; the radiated power gain is
//     Gain = |Γ0 - Γ1|^2 / 4,   Γ = (Z - Z_ant) / (Z + Z_ant).
// Classic designs switch 0 <-> inf for |(-1) - 1|^2/4 = 1 (0 dB). NetScatter
// instead switches from intermediate Z0 values to realize multiple power
// levels — the hardware implements 0, -4 and -10 dB (Fig. 16) with a
// cascade of RF switches (Fig. 7b). We model the same physics with real
// impedances (reactive parts omitted; they only rotate Γ's phase, which
// the magnitude-based gain does not see).
#pragma once

#include <complex>
#include <vector>

namespace ns::device {

/// Antenna reference impedance (ohms).
inline constexpr double antenna_impedance_ohm = 50.0;

/// Reflection coefficient Γ = (Z - Z_ant)/(Z + Z_ant) for a real load.
/// An open circuit (Z = +inf) is represented by Γ = +1; pass
/// std::numeric_limits<double>::infinity().
double reflection_coefficient(double impedance_ohm,
                              double reference_ohm = antenna_impedance_ohm);

/// Backscatter power gain |Γ0 - Γ1|^2 / 4 (linear) for switching between
/// loads Z0 and Z1.
double backscatter_power_gain(double z0_ohm, double z1_ohm,
                              double reference_ohm = antenna_impedance_ohm);

/// Same, in dB (relative to the 0 dB maximum of a 0 <-> inf switch).
double backscatter_power_gain_db(double z0_ohm, double z1_ohm,
                                 double reference_ohm = antenna_impedance_ohm);

/// Finds the real Z0 (with Z1 = inf) that realizes `target_gain_db`
/// (<= 0). Closed form: |Γ0 - 1| = 2*sqrt(gain) with Γ0 = (Z0-50)/(Z0+50).
double z0_for_gain_db(double target_gain_db,
                      double reference_ohm = antenna_impedance_ohm);

/// The three power gain levels of the NetScatter hardware, in dB.
inline const std::vector<double>& hardware_gain_levels_db() {
    static const std::vector<double> levels = {0.0, -4.0, -10.0};
    return levels;
}

/// A configured switch network: a set of discrete gain levels, each
/// backed by the impedance that realizes it.
class switch_network {
public:
    /// Builds a network for the given gain levels (dB, each <= 0).
    explicit switch_network(std::vector<double> gain_levels_db = hardware_gain_levels_db());

    /// Number of selectable power levels.
    std::size_t num_levels() const { return gains_db_.size(); }

    /// Gain of level `index` in dB (level 0 is the strongest).
    double gain_db(std::size_t index) const;

    /// Impedance Z0 used for level `index` (Z1 is an open circuit).
    double z0_ohm(std::size_t index) const;

    /// Index of the strongest level (maximum gain).
    std::size_t max_level() const { return 0; }

    /// Index of the middle level (the association default for high-RSSI
    /// devices, §3.2.3).
    std::size_t middle_level() const { return gains_db_.size() / 2; }

    /// Index whose gain is closest to `target_db`.
    std::size_t nearest_level(double target_db) const;

private:
    std::vector<double> gains_db_;   // sorted descending (0 dB first)
    std::vector<double> z0_ohms_;
};

}  // namespace ns::device
