#include "netscatter/baseline/choir.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/peak.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::baseline {

double choir_unique_fraction_probability(std::size_t n_devices, double resolution_bins) {
    ns::util::require(resolution_bins > 0.0 && resolution_bins <= 1.0,
                      "choir: resolution must be in (0,1]");
    const auto buckets = static_cast<std::size_t>(std::round(1.0 / resolution_bins));
    if (n_devices > buckets) return 0.0;
    double probability = 1.0;
    for (std::size_t i = 0; i < n_devices; ++i) {
        probability *= static_cast<double>(buckets - i) / static_cast<double>(buckets);
    }
    return probability;
}

double choir_symbol_collision_probability(std::size_t n_devices, int spreading_factor) {
    const double bins = static_cast<double>(std::size_t{1} << spreading_factor);
    double no_collision = 1.0;
    for (std::size_t i = 1; i <= n_devices; ++i) {
        no_collision *= 1.0 - static_cast<double>(i - 1) / bins;
    }
    return 1.0 - no_collision;
}

double choir_symbol_collision_approximation(std::size_t n_devices, int spreading_factor) {
    const double n = static_cast<double>(n_devices);
    return n * (n - 1.0) / static_cast<double>(std::size_t{1} << (spreading_factor + 1));
}

choir_decoder::choir_decoder(ns::phy::css_params params, double resolution_bins,
                             std::size_t zero_padding_factor)
    : params_(params),
      resolution_bins_(resolution_bins),
      demod_(params, zero_padding_factor) {}

void choir_decoder::set_devices(std::vector<choir_device> devices) {
    devices_ = std::move(devices);
}

std::vector<choir_decoded_symbol> choir_decoder::decode_symbol(
    const cvec& symbol, double detection_factor) const {
    const std::vector<double> power = demod_.symbol_power_spectrum(symbol);

    std::vector<double> sorted = power;
    const std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                     sorted.end());
    const double noise = sorted[mid];

    const std::vector<ns::dsp::peak> peaks =
        ns::dsp::find_peaks_above(power, detection_factor * noise);

    std::vector<choir_decoded_symbol> decoded;
    const double padding = static_cast<double>(demod_.padding_factor());
    const double n_bins = static_cast<double>(params_.num_bins());

    for (const auto& pk : peaks) {
        if (decoded.size() >= devices_.size()) break;
        const double location_bins = pk.fractional_bin / padding;  // in chip bins
        const double integer_bin = std::floor(location_bins + 0.5);
        double fraction = location_bins - integer_bin;  // in (-0.5, 0.5]

        // Attribute to the nearest registered signature within half the
        // resolution; ambiguous peaks (two signatures equally near) drop.
        const choir_device* best = nullptr;
        double best_err = resolution_bins_ / 2.0;
        bool ambiguous = false;
        for (const auto& device : devices_) {
            const double err = std::abs(fraction - device.fractional_offset_bins);
            if (err < best_err - 1e-12) {
                best = &device;
                best_err = err;
                ambiguous = false;
            } else if (best != nullptr && std::abs(err - best_err) <= 1e-12) {
                ambiguous = true;
            }
        }
        if (best == nullptr || ambiguous) continue;

        choir_decoded_symbol out;
        out.device_id = best->id;
        const double wrapped = std::fmod(integer_bin + n_bins, n_bins);
        out.symbol_value = static_cast<std::uint32_t>(wrapped);
        decoded.push_back(out);
    }
    return decoded;
}

choir_round_result simulate_choir_round(const ns::phy::css_params& params,
                                        const std::vector<choir_device>& devices,
                                        std::size_t num_symbols, double noise_power,
                                        ns::util::rng& rng) {
    choir_round_result result;
    choir_decoder decoder(params);
    decoder.set_devices(devices);

    const std::size_t sps = params.samples_per_symbol();
    const auto n_bins = static_cast<std::uint32_t>(params.num_bins());

    for (std::size_t s = 0; s < num_symbols; ++s) {
        // Each device picks a random symbol (random payload assumption of
        // §2.2) and transmits its shifted chirp with its signature offset.
        std::vector<std::uint32_t> sent(devices.size());
        cvec superposed(sps, ns::dsp::cplx{0.0, 0.0});
        for (std::size_t d = 0; d < devices.size(); ++d) {
            sent[d] = static_cast<std::uint32_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(n_bins) - 1));
            const double shift =
                static_cast<double>(sent[d]) + devices[d].fractional_offset_bins;
            cvec waveform = ns::phy::make_upchirp(params, shift);
            const double amplitude =
                std::sqrt(noise_power * ns::util::db_to_linear(devices[d].snr_db));
            ns::dsp::scale(waveform, ns::dsp::cplx{amplitude, 0.0});
            ns::dsp::accumulate(superposed, waveform);
        }
        ns::channel::add_noise(superposed, noise_power, rng);

        // Count integer-bin collisions among transmitters (undecodable).
        for (std::size_t a = 0; a < devices.size(); ++a) {
            for (std::size_t b = a + 1; b < devices.size(); ++b) {
                if (sent[a] == sent[b]) ++result.collided;
            }
        }

        const std::vector<choir_decoded_symbol> decoded = decoder.decode_symbol(superposed);
        result.transmitted += devices.size();
        for (const auto& out : decoded) {
            for (std::size_t d = 0; d < devices.size(); ++d) {
                if (devices[d].id == out.device_id && sent[d] == out.symbol_value) {
                    ++result.correct;
                    break;
                }
            }
        }
    }
    return result;
}

}  // namespace ns::baseline
