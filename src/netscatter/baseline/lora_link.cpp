#include "netscatter/baseline/lora_link.hpp"

#include <cmath>

#include "netscatter/mac/query_message.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/sensitivity.hpp"
#include "netscatter/util/error.hpp"

namespace ns::baseline {

lora_link::lora_link(ns::phy::css_params params, ns::phy::frame_format frame)
    : params_(params), frame_(frame), modulator_(params), demodulator_(params) {}

cvec lora_link::modulate_packet(const std::vector<bool>& payload) const {
    ns::util::require(payload.size() == frame_.payload_bits,
                      "lora_link: payload size mismatch");
    // Preamble: 6 baseline upchirps + 2 baseline downchirps, like the
    // LoRa preamble §3.3.1 models.
    cvec packet;
    const cvec up = ns::phy::make_upchirp(params_, 0.0);
    const cvec down = ns::phy::make_downchirp(params_, 0.0);
    for (int i = 0; i < 6; ++i) packet.insert(packet.end(), up.begin(), up.end());
    for (int i = 0; i < 2; ++i) packet.insert(packet.end(), down.begin(), down.end());

    const std::vector<bool> bits = ns::phy::build_frame_bits(frame_, payload);
    const cvec body = modulator_.modulate_bits(bits);
    packet.insert(packet.end(), body.begin(), body.end());
    return packet;
}

std::optional<std::vector<bool>> lora_link::demodulate_packet(const cvec& rx) const {
    const std::size_t sps = params_.samples_per_symbol();
    const std::size_t preamble = frame_.preamble_symbols * sps;
    const std::size_t body_symbols = frame_.lora_symbols(params_) - frame_.preamble_symbols;
    if (rx.size() < preamble + body_symbols * sps) return std::nullopt;

    std::vector<std::uint32_t> symbols;
    symbols.reserve(body_symbols);
    for (std::size_t i = 0; i < body_symbols; ++i) {
        const cvec window(rx.begin() + static_cast<std::ptrdiff_t>(preamble + i * sps),
                          rx.begin() + static_cast<std::ptrdiff_t>(preamble + (i + 1) * sps));
        symbols.push_back(demodulator_.demodulate_lora_symbol(window));
    }
    const std::vector<bool> bits =
        modulator_.symbols_to_bits(symbols, frame_.payload_plus_crc_bits());
    const ns::phy::frame_check_result check = ns::phy::check_frame_bits(frame_, bits);
    if (!check.ok) return std::nullopt;
    return check.payload;
}

tdma_round fixed_rate_round(const ns::phy::frame_format& frame) {
    tdma_round round;
    round.query_time_s = static_cast<double>(ns::mac::lora_backscatter_query_bits) /
                         ns::mac::downlink_bitrate_bps;
    round.packet_time_s = frame.lora_airtime_s(fixed_rate_params());
    round.total_time_s = round.query_time_s + round.packet_time_s;
    return round;
}

std::optional<tdma_round> rate_adapted_round(const ns::phy::frame_format& frame,
                                             double rssi_dbm) {
    // Pick the highest-bitrate configuration whose sensitivity is met and
    // compute the exact airtime of that configuration.
    const auto& options = ns::phy::rate_adaptation_table();
    for (const auto& option : options) {
        if (rssi_dbm >= option.required_rssi_dbm) {
            tdma_round round;
            round.query_time_s = static_cast<double>(ns::mac::lora_backscatter_query_bits) /
                                 ns::mac::downlink_bitrate_bps;
            round.packet_time_s = frame.lora_airtime_s(option.params);
            round.total_time_s = round.query_time_s + round.packet_time_s;
            return round;
        }
    }
    return std::nullopt;
}

tdma_network_metrics fixed_rate_network(const ns::phy::frame_format& frame,
                                        std::size_t num_devices) {
    tdma_network_metrics metrics;
    const tdma_round round = fixed_rate_round(frame);
    const double payload_bits = static_cast<double>(frame.payload_bits);
    const double n = static_cast<double>(num_devices);

    // PHY rate during the payload part: one device transmits at a time at
    // the nominal LoRa bitrate (SF bits per symbol), ~8.7 kbps (§4.4).
    metrics.phy_rate_bps = fixed_rate_params().lora_bitrate_bps();
    metrics.latency_s = n * round.total_time_s;
    metrics.linklayer_rate_bps =
        metrics.latency_s > 0.0 ? n * payload_bits / metrics.latency_s : 0.0;
    metrics.served = num_devices;
    return metrics;
}

tdma_network_metrics rate_adapted_network(const ns::phy::frame_format& frame,
                                          const std::vector<double>& rssi_dbm) {
    tdma_network_metrics metrics;
    const double payload_bits = static_cast<double>(frame.payload_bits);
    double total_time = 0.0;
    double total_payload_time = 0.0;
    for (double rssi : rssi_dbm) {
        const std::optional<tdma_round> round = rate_adapted_round(frame, rssi);
        if (!round.has_value()) continue;
        ++metrics.served;
        total_time += round->total_time_s;
        // Payload airtime at the chosen configuration's nominal bitrate.
        const auto& options = ns::phy::rate_adaptation_table();
        for (const auto& option : options) {
            if (rssi >= option.required_rssi_dbm) {
                total_payload_time +=
                    static_cast<double>(frame.payload_plus_crc_bits()) / option.bitrate_bps;
                break;
            }
        }
    }
    const double served = static_cast<double>(metrics.served);
    metrics.latency_s = total_time;
    metrics.linklayer_rate_bps = total_time > 0.0 ? served * payload_bits / total_time : 0.0;
    // Payload-part bits over payload airtime == the harmonic mean of the
    // chosen per-device bitrates.
    metrics.phy_rate_bps =
        total_payload_time > 0.0
            ? served * static_cast<double>(frame.payload_plus_crc_bits()) /
                  total_payload_time
            : 0.0;
    return metrics;
}

}  // namespace ns::baseline
