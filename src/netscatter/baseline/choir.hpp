// Choir comparator ([12], §2.2).
//
// Choir decodes concurrent LoRa transmissions by exploiting hardware
// frequency imperfections: each radio's residual offset lands its FFT
// peaks at a device-specific *fractional* bin (resolution one-tenth of a
// bin), which disambiguates who sent which symbol. The paper shows this
// cannot scale to backscatter: (a) with N devices the probability that
// all fractional signatures are distinct at 0.1-bin resolution is
// 10!/((10-N)! 10^N); (b) two devices choosing the same cyclic shift in a
// symbol collide irrecoverably with probability 1 - prod(1 - (i-1)/2^SF)
// ~ N(N-1)/2^(SF+1); and (c) backscatter basebands (<= 10 MHz) shrink
// absolute crystal offsets ~90-300x versus 900 MHz radios, compressing
// every device into a fraction of one bin (Fig. 4).
//
// We implement both the analytic model and a working fractional-bin
// decoder so the comparison can be run end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::baseline {

using ns::dsp::cvec;

/// Probability that N devices all exhibit distinct fractional-bin
/// signatures at a resolution of `resolution_bins` (default one-tenth):
/// with B = 1/resolution buckets, B!/((B-N)! B^N). Zero when N > B.
double choir_unique_fraction_probability(std::size_t n_devices, double resolution_bins = 0.1);

/// Exact probability that at least two of N devices pick the same cyclic
/// shift in one symbol: 1 - prod_{i=1..N}(1 - (i-1)/2^SF).
double choir_symbol_collision_probability(std::size_t n_devices, int spreading_factor);

/// The paper's approximation N(N-1)/2^(SF+1).
double choir_symbol_collision_approximation(std::size_t n_devices, int spreading_factor);

/// One Choir transmitter: a LoRa radio (or backscatter tag) with a static
/// fractional-bin frequency signature.
struct choir_device {
    std::uint32_t id = 0;
    double fractional_offset_bins = 0.0;  ///< device signature, in bins
    double snr_db = 0.0;
};

/// Decoded symbol attribution.
struct choir_decoded_symbol {
    std::uint32_t device_id = 0;
    std::uint32_t symbol_value = 0;  ///< cyclic shift (integer bin)
};

/// Fractional-bin decoder: finds the strongest peaks of a concurrent
/// symbol and attributes each to the registered device whose fractional
/// signature is nearest, within `resolution_bins/2`. Peaks that match no
/// signature (or two signatures ambiguously) are dropped.
class choir_decoder {
public:
    choir_decoder(ns::phy::css_params params, double resolution_bins = 0.1,
                  std::size_t zero_padding_factor = 16);

    /// Registers the concurrent devices and their signatures.
    void set_devices(std::vector<choir_device> devices);

    /// Decodes one concurrent symbol: locates up to devices.size() peaks
    /// above `detection_factor` * median power and attributes them.
    std::vector<choir_decoded_symbol> decode_symbol(const cvec& symbol,
                                                    double detection_factor = 4.0) const;

    const std::vector<choir_device>& devices() const { return devices_; }

private:
    ns::phy::css_params params_;
    double resolution_bins_;
    ns::phy::demodulator demod_;
    std::vector<choir_device> devices_;
};

/// Simulates one concurrent Choir round at sample level: each device
/// transmits a random LoRa symbol with its fractional offset applied;
/// returns the fraction of symbols correctly attributed. Used by the
/// Fig. 4 / §2.2 benchmarks.
struct choir_round_result {
    std::size_t transmitted = 0;
    std::size_t correct = 0;
    std::size_t collided = 0;  ///< two devices picked the same integer bin
};

choir_round_result simulate_choir_round(const ns::phy::css_params& params,
                                        const std::vector<choir_device>& devices,
                                        std::size_t num_symbols, double noise_power,
                                        ns::util::rng& rng);

}  // namespace ns::baseline
