// LoRa backscatter baseline ([25], §4.4).
//
// The paper compares NetScatter against LoRa backscatter, a single-user
// long-range backscatter link: classic CSS modulation (one device sends
// SF bits per symbol by picking a cyclic shift), driven by a
// query-response TDMA MAC in which the AP polls each device sequentially
// with a 28-bit query. Two rate policies:
//   * fixed: every device uses SF 9 / BW 500 kHz = ~8.7 kbps;
//   * ideal rate adaptation: each device transmits alone at the best
//     (SF, BW) its RSSI supports, per the SX1276 SNR table, capped at
//     32 kbps.
// The original implementation was never released; like the paper, we
// re-implement it ("we replicate the implementation adding the missing
// details", §4.4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::baseline {

using ns::dsp::cvec;

/// Single-user LoRa backscatter link: modulation, demodulation and packet
/// (preamble + SF-bit symbols) handling for one device at a time.
class lora_link {
public:
    explicit lora_link(ns::phy::css_params params,
                       ns::phy::frame_format frame = ns::phy::linklayer_format());

    /// Full single-user packet: 8 preamble symbols (6 up at shift 0,
    /// 2 down) followed by the payload+CRC packed SF bits per symbol.
    cvec modulate_packet(const std::vector<bool>& payload) const;

    /// Decodes a sample-aligned packet. Returns the payload when the CRC
    /// matches.
    std::optional<std::vector<bool>> demodulate_packet(const cvec& rx) const;

    /// Packet airtime in seconds.
    double packet_airtime_s() const { return frame_.lora_airtime_s(params_); }

    const ns::phy::css_params& params() const { return params_; }
    const ns::phy::frame_format& frame() const { return frame_; }

private:
    ns::phy::css_params params_;
    ns::phy::frame_format frame_;
    ns::phy::lora_modulator modulator_;
    ns::phy::demodulator demodulator_;
};

/// The fixed-rate configuration of the baseline: SF 9, BW 500 kHz,
/// 8.79 kbps — the paper's "fixed bitrate of 8.7 kbps".
inline ns::phy::css_params fixed_rate_params() {
    return ns::phy::css_params{.bandwidth_hz = 500e3, .spreading_factor = 9};
}

/// TDMA round accounting for the query-response baseline. Times are
/// seconds; rates bits/second.
struct tdma_round {
    double query_time_s = 0.0;    ///< AP query airtime (28 bits @ 160 kbps)
    double packet_time_s = 0.0;   ///< device packet airtime
    double total_time_s = 0.0;    ///< query + packet
};

/// Accounting for serving one device with the fixed-rate policy.
tdma_round fixed_rate_round(const ns::phy::frame_format& frame);

/// Accounting for serving one device with ideal rate adaptation given its
/// received signal strength. Returns std::nullopt when no configuration
/// closes the link.
std::optional<tdma_round> rate_adapted_round(const ns::phy::frame_format& frame,
                                             double rssi_dbm);

/// LoRa-backscatter network metrics over a set of devices (sequential
/// polling). Useful payload bits per device = frame.payload_bits.
struct tdma_network_metrics {
    double phy_rate_bps = 0.0;       ///< payload bits / payload airtime
    double linklayer_rate_bps = 0.0; ///< payload bits / total round time
    double latency_s = 0.0;          ///< time to serve every device once
    std::size_t served = 0;          ///< devices whose link closed
};

/// Computes the fixed-rate TDMA metrics for `num_devices` devices.
tdma_network_metrics fixed_rate_network(const ns::phy::frame_format& frame,
                                        std::size_t num_devices);

/// Computes the rate-adapted TDMA metrics for devices with the given
/// RSSIs.
tdma_network_metrics rate_adapted_network(const ns::phy::frame_format& frame,
                                          const std::vector<double>& rssi_dbm);

}  // namespace ns::baseline
