// Streaming receiver: continuous operation over an unbounded sample
// stream.
//
// The USRP reader runs continuously: rounds arrive query-by-query with
// idle gaps, clock drift and occasional garbage between them. This
// wrapper feeds arbitrary-sized sample chunks into a sliding buffer,
// locates each packet with the synchronizer, decodes it, and emits one
// decode_result per round — the shape a real deployment integrates
// against (push samples in, get device reports out).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "netscatter/rx/receiver.hpp"

namespace ns::rx {

/// Configuration for the streaming wrapper.
struct stream_receiver_params {
    receiver_params rx{};
    /// Maximum samples buffered before the oldest are discarded (bounds
    /// memory when the stream is idle noise).
    std::size_t max_buffer_samples = 1 << 20;
    /// Samples to keep behind the search position so a packet straddling
    /// a chunk boundary is never lost.
    std::size_t overlap_samples = 0;  ///< 0 = one full packet
};

/// Push-based streaming receiver.
class stream_receiver {
public:
    /// `on_packet` is invoked once per decoded round, with the absolute
    /// sample index of the packet start since the stream began.
    using packet_callback =
        std::function<void(std::size_t stream_offset, const decode_result&)>;

    stream_receiver(stream_receiver_params params, packet_callback on_packet);

    /// Registers the allocated cyclic shifts (as receiver does).
    void set_registered_shifts(std::vector<std::uint32_t> shifts);

    /// Feeds a chunk of baseband samples; zero or more callbacks fire.
    void push_samples(std::span<const ns::dsp::cplx> chunk);

    /// Total samples consumed so far.
    std::size_t samples_consumed() const { return consumed_; }

    /// Packets decoded so far.
    std::size_t packets_decoded() const { return packets_; }

    const receiver& inner() const { return receiver_; }

private:
    std::size_t packet_samples() const;
    void process_buffer();

    stream_receiver_params params_;
    receiver receiver_;
    packet_callback on_packet_;
    decode_result decoded_;        ///< reused across packets
    decode_workspace decode_ws_;   ///< reused across packets
    ns::dsp::cvec buffer_;
    std::size_t buffer_stream_offset_ = 0;  ///< stream index of buffer_[0]
    std::size_t consumed_ = 0;
    std::size_t packets_ = 0;
};

}  // namespace ns::rx
