#include "netscatter/rx/stream_receiver.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::rx {

stream_receiver::stream_receiver(stream_receiver_params params, packet_callback on_packet)
    : params_(params), receiver_(params.rx), on_packet_(std::move(on_packet)) {
    ns::util::require(static_cast<bool>(on_packet_), "stream_receiver: null callback");
    if (params_.overlap_samples == 0) {
        params_.overlap_samples = packet_samples();
    }
    ns::util::require(params_.max_buffer_samples >= 2 * packet_samples(),
                      "stream_receiver: buffer must hold at least two packets");
}

std::size_t stream_receiver::packet_samples() const {
    const auto& rxp = params_.rx;
    return (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
           rxp.phy.samples_per_symbol();
}

void stream_receiver::set_registered_shifts(std::vector<std::uint32_t> shifts) {
    receiver_.set_registered_shifts(std::move(shifts));
}

void stream_receiver::push_samples(std::span<const ns::dsp::cplx> chunk) {
    buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
    consumed_ += chunk.size();
    process_buffer();

    // Bound memory: drop the oldest samples, keeping one packet of
    // overlap so a partially-arrived packet survives the trim.
    if (buffer_.size() > params_.max_buffer_samples) {
        const std::size_t keep = std::max(params_.overlap_samples, packet_samples());
        const std::size_t drop = buffer_.size() - keep;
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
        buffer_stream_offset_ += drop;
    }
}

void stream_receiver::process_buffer() {
    // Decode every complete packet currently in the buffer.
    while (buffer_.size() >= packet_samples()) {
        const std::optional<std::size_t> start = receiver_.detect_packet_start(buffer_);
        if (!start.has_value()) {
            // Nothing decodable: discard all but one packet's worth of
            // tail (a preamble may be partially buffered).
            if (buffer_.size() > params_.overlap_samples) {
                const std::size_t drop = buffer_.size() - params_.overlap_samples;
                buffer_.erase(buffer_.begin(),
                              buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
                buffer_stream_offset_ += drop;
            }
            return;
        }
        if (*start + packet_samples() > buffer_.size()) {
            // The packet has begun but its tail has not arrived yet.
            return;
        }
        receiver_.decode_into(buffer_, *start, decoded_, decode_ws_);
        ++packets_;
        on_packet_(buffer_stream_offset_ + *start, decoded_);

        // Advance past the decoded packet.
        const std::size_t consumed_here = *start + packet_samples();
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_here));
        buffer_stream_offset_ += consumed_here;
    }
}

}  // namespace ns::rx
