#include "netscatter/rx/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/util/crc.hpp"
#include "netscatter/util/error.hpp"

namespace ns::rx {

namespace {

cvec window_of(const cvec& stream, std::size_t start, std::size_t length) {
    ns::util::require(start + length <= stream.size(), "receiver: window out of stream");
    return cvec(stream.begin() + static_cast<std::ptrdiff_t>(start),
                stream.begin() + static_cast<std::ptrdiff_t>(start + length));
}

}  // namespace

receiver::receiver(receiver_params params)
    : params_(params), demod_(params.phy, params.zero_padding_factor) {
    upchirp_ref_ = ns::phy::make_upchirp(params_.phy, 0.0);
}

void receiver::set_registered_shifts(std::vector<std::uint32_t> shifts) {
    for (std::uint32_t s : shifts) {
        ns::util::require(s < params_.phy.num_bins(), "receiver: shift out of range");
    }
    shifts_ = std::move(shifts);
}

void receiver::set_registered_shifts(std::span<const std::uint32_t> shifts) {
    for (std::uint32_t s : shifts) {
        ns::util::require(s < params_.phy.num_bins(), "receiver: shift out of range");
    }
    shifts_.assign(shifts.begin(), shifts.end());
}

std::size_t receiver::guard_search_radius() const {
    // The guard bins (SKIP-1 empty bins each side up to the slot
    // midpoint) belong to the device: Table 1's tolerable mismatch is a
    // full bin at SKIP = 2. Stay one padded bin short of the midpoint so
    // adjacent devices' windows never overlap.
    const std::size_t padding = demod_.padding_factor();
    const std::size_t to_midpoint = padding * params_.skip / 2;
    return std::max<std::size_t>(padding / 2, to_midpoint - std::max<std::size_t>(1, padding / 8));
}

double receiver::expected_noise_bin_power() const {
    // After dechirp + FFT (any zero padding), a pure-noise bin has
    // expected power samples_per_symbol * noise_power.
    return static_cast<double>(params_.phy.samples_per_symbol()) * params_.noise_power;
}

double receiver::median_power(std::vector<double> spectrum) {
    ns::util::require(!spectrum.empty(), "median_power: empty spectrum");
    const std::size_t mid = spectrum.size() / 2;
    std::nth_element(spectrum.begin(), spectrum.begin() + static_cast<std::ptrdiff_t>(mid),
                     spectrum.end());
    return spectrum[mid];
}

double receiver::upchirp_metric(const cvec& window) const {
    // Unpadded FFT is enough for the coarse timing metric.
    const cvec dechirped = ns::phy::dechirp(params_.phy, window);
    const std::vector<double> power = ns::dsp::power_spectrum(ns::dsp::fft(dechirped));
    double total = 0.0;
    if (shifts_.empty()) {
        total = *std::max_element(power.begin(), power.end());
    } else {
        for (std::uint32_t s : shifts_) total += power[s];
    }
    return total;
}

double receiver::downchirp_metric(const cvec& window) const {
    // A downchirp at shift s times the baseline upchirp is a tone at bin s.
    const cvec dechirped = ns::dsp::multiply(window, upchirp_ref_);
    const std::vector<double> power = ns::dsp::power_spectrum(ns::dsp::fft(dechirped));
    double total = 0.0;
    if (shifts_.empty()) {
        total = *std::max_element(power.begin(), power.end());
    } else {
        for (std::uint32_t s : shifts_) total += power[s];
    }
    return total;
}

std::optional<std::size_t> receiver::detect_packet_start(const cvec& stream,
                                                         std::size_t coarse_step) const {
    // Two-stage synchronization. Key property: at fs == BW, a window that
    // is misaligned by d samples inside a run of repeated upchirps is
    // itself a perfect upchirp whose peak sits d bins above the device's
    // bin. Stage 1 therefore scans on a symbol grid, estimates the common
    // bin displacement d of the registered comb, and requires it to
    // repeat across consecutive windows (the preamble's 6 identical
    // upchirps). Stage 2 converts (grid position, d) into candidate
    // starts, refines them at sample granularity with the up+down
    // preamble metric (§3.3.1), and sanity-checks with the decode-grade
    // detector.
    const std::size_t sps = params_.phy.samples_per_symbol();
    const std::size_t n_bins = params_.phy.num_bins();
    const std::size_t preamble_samples = params_.frame.preamble_symbols * sps;
    if (stream.size() < preamble_samples || shifts_.empty()) return std::nullopt;
    const std::size_t fine_radius = coarse_step == 0 ? 4 : coarse_step;

    // --- Stage 1: symbol-grid comb scan ---------------------------------
    struct grid_info {
        std::size_t displacement = 0;  // d in bins (== samples)
        double comb_power = 0.0;
        double noise = 0.0;
    };
    const std::size_t grid_count = stream.size() / sps;
    std::vector<grid_info> grid(grid_count);
    for (std::size_t g = 0; g < grid_count; ++g) {
        const cvec dechirped =
            ns::phy::dechirp(params_.phy, window_of(stream, g * sps, sps));
        const std::vector<double> power = ns::dsp::power_spectrum(ns::dsp::fft(dechirped));
        grid[g].noise = expected_noise_bin_power();
        for (std::size_t d = 0; d < n_bins; ++d) {
            double comb = 0.0;
            for (std::uint32_t s : shifts_) comb += power[(s + d) % n_bins];
            if (comb > grid[g].comb_power) {
                grid[g].comb_power = comb;
                grid[g].displacement = d;
            }
        }
    }

    // --- Stage 2: find runs of consistent displacement -------------------
    const auto strong = [&](std::size_t g) {
        return grid[g].comb_power >
               params_.detection_factor * grid[g].noise * static_cast<double>(shifts_.size());
    };
    const auto same_d = [&](std::size_t a, std::size_t b) {
        const std::size_t diff =
            (grid[a].displacement + n_bins - grid[b].displacement) % n_bins;
        return diff <= 1 || diff >= n_bins - 1;  // +-1 bin of jitter slack
    };

    std::vector<std::size_t> candidates;
    const std::size_t last_start = stream.size() - preamble_samples;
    const std::size_t min_run = ns::phy::distributed_modulator::preamble_upchirps - 2;
    for (std::size_t g = 0; g + min_run <= grid_count; ++g) {
        bool run = strong(g);
        for (std::size_t k = 1; run && k < min_run; ++k) {
            run = strong(g + k) && same_d(g, g + k);
        }
        if (!run) continue;
        if (g > 0 && strong(g - 1) && same_d(g - 1, g)) continue;  // not the run head
        // The run's first full window is displaced d samples past the
        // packet start.
        const std::size_t d = grid[g].displacement;
        const std::size_t anchor = g * sps;
        for (const std::ptrdiff_t shift_sym : {-1, 0, 1}) {
            const std::ptrdiff_t p = static_cast<std::ptrdiff_t>(anchor) -
                                     static_cast<std::ptrdiff_t>(d) +
                                     shift_sym * static_cast<std::ptrdiff_t>(sps);
            if (p >= 0 && p <= static_cast<std::ptrdiff_t>(last_start)) {
                candidates.push_back(static_cast<std::size_t>(p));
            }
        }
    }
    if (candidates.empty()) return std::nullopt;

    // --- Stage 3: fine refinement with the up+down preamble metric -------
    const auto preamble_metric = [&](std::size_t t) {
        double metric = 0.0;
        for (std::size_t k = 0; k < ns::phy::distributed_modulator::preamble_upchirps; ++k) {
            metric += upchirp_metric(window_of(stream, t + k * sps, sps));
        }
        for (std::size_t k = ns::phy::distributed_modulator::preamble_upchirps;
             k < params_.frame.preamble_symbols; ++k) {
            metric += downchirp_metric(window_of(stream, t + k * sps, sps));
        }
        return metric;
    };

    double best_metric = -1.0;
    std::size_t best_t = 0;
    for (std::size_t candidate : candidates) {
        const std::size_t lo = candidate > fine_radius ? candidate - fine_radius : 0;
        const std::size_t hi = std::min(candidate + fine_radius, last_start);
        for (std::size_t t = lo; t <= hi; ++t) {
            const double metric = preamble_metric(t);
            if (metric > best_metric) {
                best_metric = metric;
                best_t = t;
            }
        }
    }

    // --- Stage 4: decode-grade sanity check ------------------------------
    // At the chosen alignment, at least one registered device must be
    // detected in EVERY preamble upchirp (the §3.3.1 criterion); plain
    // noise does not survive this.
    std::vector<std::size_t> detect_count(shifts_.size(), 0);
    for (std::size_t k = 0; k < ns::phy::distributed_modulator::preamble_upchirps; ++k) {
        const std::vector<double> power =
            demod_.symbol_power_spectrum(window_of(stream, best_t + k * sps, sps));
        const double noise = expected_noise_bin_power();
        for (std::size_t i = 0; i < shifts_.size(); ++i) {
            if (demod_.power_at_bin(power, shifts_[i], guard_search_radius()) > params_.detection_factor * noise) {
                ++detect_count[i];
            }
        }
    }
    const bool confirmed = std::any_of(detect_count.begin(), detect_count.end(),
                                       [&](std::size_t c) {
                                           return c == ns::phy::distributed_modulator::
                                                            preamble_upchirps;
                                       });
    if (!confirmed) return std::nullopt;
    return best_t;
}

template <typename SpectrumAt>
void receiver::decode_core(SpectrumAt&& spectrum_at, decode_result& out,
                           decode_workspace& ws) const {
    const std::size_t payload_symbols = params_.frame.payload_plus_crc_bits();
    const std::size_t up_symbols = ns::phy::distributed_modulator::preamble_upchirps;
    const std::size_t n_shifts = shifts_.size();

    // --- Preamble: detect devices, estimate power, lock peak location --
    // The residual timing/frequency displacement is constant over a
    // packet, so the preamble both detects each device (peak repeats in
    // ALL upchirps, §3.3.1) and pins its precise padded-bin location.
    // Payload slicing then reads a narrow window around the locked
    // location, which keeps neighbours' leakage out of OFF symbols.
    ws.preamble_power_sum.assign(n_shifts, 0.0);
    ws.offset_sum.assign(n_shifts, 0.0);
    ws.detect_count.assign(n_shifts, 0);
    ws.locked_offset.assign(n_shifts, 0);

    for (std::size_t k = 0; k < up_symbols; ++k) {
        const cvec& spectrum = spectrum_at(k);
        ns::util::require(spectrum.size() == demod_.padded_size(),
                          "decode: spectrum size mismatch");
        ns::dsp::power_spectrum_into(spectrum, ws.power);
        const double noise = expected_noise_bin_power();
        for (std::size_t d = 0; d < n_shifts; ++d) {
            const auto peak =
                demod_.peak_in_window(ws.power, shifts_[d], guard_search_radius());
            ws.preamble_power_sum[d] += peak.power;
            ws.offset_sum[d] += static_cast<double>(peak.offset);
            if (peak.power > params_.detection_factor * noise) ++ws.detect_count[d];
        }
    }

    out.reports.resize(n_shifts);
    const double n_samples = static_cast<double>(params_.phy.samples_per_symbol());
    const double noise_bin = expected_noise_bin_power();
    for (std::size_t d = 0; d < n_shifts; ++d) {
        device_report& report = out.reports[d];
        report.cyclic_shift = shifts_[d];
        report.detected = ws.detect_count[d] == up_symbols;
        report.preamble_power =
            ws.preamble_power_sum[d] / static_cast<double>(up_symbols);
        report.bits.clear();
        report.payload.clear();
        report.crc_ok = false;
        report.estimated_snr_db = 0.0;
        report.estimated_tone_offset_hz = 0.0;
        ws.locked_offset[d] = static_cast<std::ptrdiff_t>(
            std::lround(ws.offset_sum[d] / static_cast<double>(up_symbols)));

        if (!report.detected) continue;

        // SNR estimate: a peak of power N^2*Ps rides on an N*Pn noise bin.
        const double signal_part = std::max(report.preamble_power - noise_bin, 0.0);
        report.estimated_snr_db =
            10.0 * std::log10(std::max(signal_part / (n_samples * noise_bin), 1e-12));

        // Residual tone offset: mean phase step of the locked peak across
        // consecutive preamble symbols, divided by the symbol duration.
        const std::size_t padded = demod_.padded_size();
        const auto base =
            static_cast<std::ptrdiff_t>(static_cast<std::size_t>(shifts_[d]) *
                                        demod_.padding_factor()) +
            ws.locked_offset[d];
        const std::size_t bin_idx = static_cast<std::size_t>(
            ((base % static_cast<std::ptrdiff_t>(padded)) +
             static_cast<std::ptrdiff_t>(padded)) %
            static_cast<std::ptrdiff_t>(padded));
        ns::dsp::cplx accumulated{0.0, 0.0};
        for (std::size_t k = 0; k + 1 < up_symbols; ++k) {
            accumulated += spectrum_at(k + 1)[bin_idx] * std::conj(spectrum_at(k)[bin_idx]);
        }
        const double phase_step = std::arg(accumulated);
        report.estimated_tone_offset_hz =
            phase_step / (2.0 * std::numbers::pi * params_.phy.symbol_duration_s());
    }

    // --- Payload: ON-OFF slicing against half the preamble average -----
    const std::size_t slice_radius =
        std::max<std::size_t>(1, demod_.padding_factor() / 4);
    for (std::size_t i = 0; i < payload_symbols; ++i) {
        const cvec& spectrum = spectrum_at(up_symbols + i);
        ns::util::require(spectrum.size() == demod_.padded_size(),
                          "decode: spectrum size mismatch");
        ns::dsp::power_spectrum_into(spectrum, ws.power);
        for (std::size_t d = 0; d < n_shifts; ++d) {
            if (!out.reports[d].detected) continue;
            const double p = demod_.power_at_offset(ws.power, shifts_[d],
                                                    ws.locked_offset[d], slice_radius);
            out.reports[d].bits.push_back(
                p > out.reports[d].preamble_power * params_.slicing_threshold);
        }
    }

    // --- CRC (allocation-free: prefix CRC compared against the trailing
    // bits, then the payload copied into the report's reused buffer) ----
    for (auto& report : out.reports) {
        if (!report.detected) continue;
        const std::vector<bool>& bits = report.bits;
        if (bits.size() != params_.frame.payload_plus_crc_bits() || bits.size() < 8) {
            continue;
        }
        const std::uint8_t expected = ns::util::crc8_prefix(bits, bits.size() - 8);
        std::uint8_t received_crc = 0;
        for (std::size_t i = bits.size() - 8; i < bits.size(); ++i) {
            received_crc =
                static_cast<std::uint8_t>((received_crc << 1) | (bits[i] ? 1 : 0));
        }
        report.crc_ok = received_crc == expected;
        if (report.crc_ok) {
            report.payload.assign(bits.begin(),
                                  bits.end() - static_cast<std::ptrdiff_t>(8));
        }
    }

    if (ctr_decode_calls_ != nullptr) {
        ctr_decode_calls_->add(1);
        ctr_symbols_->add(up_symbols + payload_symbols);
        std::uint64_t detected = 0;
        std::uint64_t crc_ok = 0;
        for (const auto& report : out.reports) {
            detected += report.detected ? 1 : 0;
            crc_ok += report.crc_ok ? 1 : 0;
        }
        ctr_detected_->add(detected);
        ctr_crc_ok_->add(crc_ok);
    }
}

void receiver::set_metrics(ns::obs::metrics_registry* registry) {
    ctr_decode_calls_ =
        registry ? registry->get_counter("rx.decode_calls") : nullptr;
    ctr_symbols_ =
        registry ? registry->get_counter("rx.symbols_processed") : nullptr;
    ctr_detected_ = registry ? registry->get_counter("rx.detected") : nullptr;
    ctr_crc_ok_ = registry ? registry->get_counter("rx.crc_ok") : nullptr;
}

void receiver::decode_into(const cvec& stream, std::size_t packet_start,
                           decode_result& out, decode_workspace& ws) const {
    const std::size_t sps = params_.phy.samples_per_symbol();
    const std::size_t payload_symbols = params_.frame.payload_plus_crc_bits();
    const std::size_t total_symbols = params_.frame.preamble_symbols + payload_symbols;
    ns::util::require(packet_start + total_symbols * sps <= stream.size(),
                      "decode: stream too short for a full packet");
    out.packet_start = packet_start;

    const std::size_t up_symbols = ns::phy::distributed_modulator::preamble_upchirps;
    const std::size_t payload_begin = packet_start + params_.frame.preamble_symbols * sps;

    // Complex spectra are kept for the whole preamble so per-device
    // residual tone offsets can be estimated from phase progression;
    // payload symbols stream through one reused buffer.
    const std::span<const ns::dsp::cplx> samples(stream);
    ws.preamble_spectra.resize(up_symbols);
    for (std::size_t k = 0; k < up_symbols; ++k) {
        demod_.symbol_spectrum_into(samples.subspan(packet_start + k * sps, sps),
                                    ws.preamble_spectra[k]);
    }

    decode_core(
        [&](std::size_t g) -> const cvec& {
            if (g < up_symbols) return ws.preamble_spectra[g];
            const std::size_t i = g - up_symbols;
            demod_.symbol_spectrum_into(samples.subspan(payload_begin + i * sps, sps),
                                        ws.payload_spectrum);
            return ws.payload_spectrum;
        },
        out, ws);
}

decode_result receiver::decode(const cvec& stream, std::size_t packet_start) const {
    decode_result result;
    decode_workspace workspace;
    decode_into(stream, packet_start, result, workspace);
    return result;
}

void receiver::decode_spectra_into(std::span<const cvec> spectra, decode_result& out,
                                   decode_workspace& ws) const {
    const std::size_t up_symbols = ns::phy::distributed_modulator::preamble_upchirps;
    const std::size_t payload_symbols = params_.frame.payload_plus_crc_bits();
    ns::util::require(spectra.size() == up_symbols + payload_symbols,
                      "decode_spectra: expected one spectrum per preamble upchirp "
                      "and payload symbol");
    out.packet_start = 0;
    decode_core([&](std::size_t g) -> const cvec& { return spectra[g]; }, out, ws);
}

std::optional<decode_result> receiver::receive(const cvec& stream) const {
    const std::optional<std::size_t> start = detect_packet_start(stream);
    if (!start.has_value()) return std::nullopt;
    const std::size_t sps = params_.phy.samples_per_symbol();
    const std::size_t needed =
        (params_.frame.preamble_symbols + params_.frame.payload_plus_crc_bits()) * sps;
    if (*start + needed > stream.size()) return std::nullopt;
    return decode(stream, *start);
}

}  // namespace ns::rx
