// NetScatter receiver (§3.3.1).
//
// The AP receiver processes the superposed baseband of all concurrent
// devices:
//   1. Packet-start detection. All devices transmit their preambles
//      concurrently (6 upchirps then 2 downchirps, each at the device's
//      assigned shift). Up- and downchirps at the *same* shift are
//      symmetric around the up/down boundary, so the boundary — and from
//      it the packet start, six symbols earlier — can be located by
//      finding where upchirp energy hands over to downchirp energy.
//   2. Active-device detection. A device is present when an FFT peak
//      appears at its bin in *all* preamble upchirp symbols.
//   3. Thresholding. The device's average preamble peak power becomes its
//      payload slicing threshold: payload symbol power > half the average
//      reads as '1', else '0'.
//   4. CRC validation per device.
//
// The dechirp + single FFT per symbol serves every device at once, so
// decode cost is (nearly) independent of the number of devices — the
// property bench_micro_receiver measures.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netscatter/obs/metrics.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"

namespace ns::rx {

using ns::dsp::cvec;

/// Receiver configuration.
struct receiver_params {
    ns::phy::css_params phy{};
    std::size_t zero_padding_factor = 8;  ///< sub-bin resolution of the FFT
    double detection_factor = 4.0;        ///< peak > factor * expected noise-bin power

    /// Payload ON-OFF decision threshold as a fraction of the device's
    /// average preamble peak power. The paper slices at one half
    /// (§3.3.1); at full SKIP=2 occupancy the preamble estimate is biased
    /// high because EVERY neighbour is ON during the preamble and its
    /// main-lobe skirt adds constructively, while payload ON symbols see
    /// neighbours OFF half the time — a slightly lower threshold recovers
    /// those marginal ON symbols without admitting OFF-symbol leakage
    /// (which stays ~14 dB down at 2-bin separation, Fig. 8).
    double slicing_threshold = 0.4;

    /// Receiver noise power per complex sample (linear). A real AP
    /// calibrates this from quiet periods; the expected dechirped
    /// noise-bin power is samples_per_symbol * noise_power. Using the
    /// calibrated floor instead of a per-symbol median matters at high
    /// concurrency: with 256 devices transmitting, most FFT bins carry
    /// signal and a median would no longer estimate noise.
    double noise_power = 1.0;
    std::uint32_t skip = 2;               ///< slot spacing; peaks are credited
                                          ///< within the guard region (SKIP-1
                                          ///< empty bins tolerate +-1 bin of
                                          ///< residual displacement, Table 1)
    ns::phy::frame_format frame = ns::phy::linklayer_format();
};

/// Decode outcome for one registered device in one round.
struct device_report {
    std::uint32_t cyclic_shift = 0;
    bool detected = false;            ///< peak present in all preamble symbols
    double preamble_power = 0.0;      ///< average preamble peak power
    std::vector<bool> bits;           ///< sliced payload+CRC bits (when detected)
    bool crc_ok = false;              ///< CRC-8 matched
    std::vector<bool> payload;        ///< payload bits (when crc_ok)

    /// Per-sample SNR estimate from the preamble peak over the calibrated
    /// noise floor (what the AP uses to track device signal strength for
    /// the power-aware allocation, §3.2.3). Only meaningful when detected.
    double estimated_snr_db = 0.0;

    /// Residual tone offset (timing-induced + CFO) estimated from the
    /// phase progression of the preamble peak across symbols — the §4.2
    /// measurement. Unambiguous within +- symbol_rate/2 (~488 Hz at the
    /// deployed configuration), which covers the <=150 Hz crystal offsets
    /// of Fig. 14a. Only meaningful when detected.
    double estimated_tone_offset_hz = 0.0;
};

/// Result of one decode round.
struct decode_result {
    std::size_t packet_start = 0;          ///< sample index of the first preamble symbol
    std::vector<device_report> reports;    ///< one per registered shift
};

/// Reusable scratch of one decode round. One instance per decoding
/// context (NOT thread-safe); with warm buffers and a stable registered
/// set, decode_into / decode_spectra_into allocate nothing.
struct decode_workspace {
    std::vector<cvec> preamble_spectra;  ///< sample path: per-upchirp spectra
    cvec payload_spectrum;               ///< sample path: one payload symbol
    std::vector<double> power;           ///< padded power scratch
    std::vector<double> preamble_power_sum;   ///< per registered shift
    std::vector<double> offset_sum;           ///< per registered shift
    std::vector<std::size_t> detect_count;    ///< per registered shift
    std::vector<std::ptrdiff_t> locked_offset;  ///< per registered shift
};

/// The NetScatter receiver.
class receiver {
public:
    explicit receiver(receiver_params params);

    /// Registers the cyclic shifts the AP has allocated; the decoder only
    /// inspects these bins (it learned them during association).
    void set_registered_shifts(std::vector<std::uint32_t> shifts);

    /// Allocation-free overload: copies into the internal buffer
    /// (capacity reuse), for callers that refresh the set every round.
    void set_registered_shifts(std::span<const std::uint32_t> shifts);

    /// Locates the packet start in `stream` by the up/down-boundary
    /// method. `coarse_step` controls the initial grid (samples); the
    /// result is refined to within +-coarse_step/2 samples by a local
    /// fine search. Returns std::nullopt when no preamble-like structure
    /// exceeds the detection threshold.
    std::optional<std::size_t> detect_packet_start(const cvec& stream,
                                                   std::size_t coarse_step = 0) const;

    /// Decodes one round from `stream` starting at `packet_start`
    /// (sample-aligned). The stream must contain the full packet
    /// (preamble + payload symbols) after that offset.
    decode_result decode(const cvec& stream, std::size_t packet_start) const;

    /// decode() into reusable result/workspace buffers: the form the
    /// simulator's steady-state round loop uses (no allocation once the
    /// buffers are warm and the registered set is stable).
    void decode_into(const cvec& stream, std::size_t packet_start, decode_result& out,
                     decode_workspace& workspace) const;

    /// Decodes one round straight from precomputed per-symbol spectra —
    /// the symbol-domain fast path (channel::combine_symbol_domain).
    /// `spectra` holds the preamble upchirp spectra followed by the
    /// payload symbol spectra (preamble downchirps omitted), each of the
    /// demodulator's padded size. Identical decision logic to decode():
    /// the sample path merely computes the same spectra from the stream
    /// first.
    void decode_spectra_into(std::span<const cvec> spectra, decode_result& out,
                             decode_workspace& workspace) const;

    /// Convenience: detect + decode. Returns std::nullopt when detection
    /// fails.
    std::optional<decode_result> receive(const cvec& stream) const;

    /// Attaches this receiver's decode counters (rx.decode_calls,
    /// rx.symbols_processed, rx.detected, rx.crc_ok) to `registry`
    /// (non-owning, must outlive the receiver; nullptr detaches). The
    /// registry is thread-confined, so attach the owning replica's.
    void set_metrics(ns::obs::metrics_registry* registry);

    const receiver_params& params() const { return params_; }
    const ns::phy::demodulator& demod() const { return demod_; }

private:
    /// Shared decode core: consumes one spectrum per decode-relevant
    /// symbol via `spectrum_at(g)` (g < up_symbols: preamble upchirps —
    /// these references must stay valid for the whole call; g >=
    /// up_symbols: payload — may reuse one buffer).
    template <typename SpectrumAt>
    void decode_core(SpectrumAt&& spectrum_at, decode_result& out,
                     decode_workspace& workspace) const;

    /// Sum of registered-bin peak powers for an upchirp-dechirped window.
    double upchirp_metric(const cvec& window) const;
    /// Same for a downchirp window (dechirped with the conjugate).
    double downchirp_metric(const cvec& window) const;
    /// Median bin power of a spectrum (diagnostic; not used as the noise
    /// estimate because concurrent signal occupies most bins at high N).
    static double median_power(std::vector<double> spectrum);
    /// Expected dechirped noise-bin power from the calibrated floor.
    double expected_noise_bin_power() const;
    /// Padded-bin search radius covering the SKIP guard region.
    std::size_t guard_search_radius() const;

    receiver_params params_;
    ns::phy::demodulator demod_;
    cvec upchirp_ref_;    // dechirp reference for downchirp symbols
    std::vector<std::uint32_t> shifts_;
    // Decode-path counters (null until set_metrics; the pointees live in
    // the attached registry, so incrementing through them from the const
    // decode path mutates no receiver state).
    ns::obs::counter* ctr_decode_calls_ = nullptr;
    ns::obs::counter* ctr_symbols_ = nullptr;
    ns::obs::counter* ctr_detected_ = nullptr;
    ns::obs::counter* ctr_crc_ok_ = nullptr;
};

}  // namespace ns::rx
