#include "netscatter/spec/sweep.hpp"

#include <charconv>
#include <cstdint>
#include <utility>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/spec/spec_codec.hpp"

namespace ns::spec {

namespace {

/// Hard cap on the product size: a typo like `0..100000` should fail
/// loudly, not allocate a hundred thousand specs.
constexpr std::size_t max_cells = 100000;

std::int64_t parse_range_int(const std::string& token,
                             const std::string& context) {
    std::int64_t v{};
    const char* const end = token.data() + token.size();
    const auto [p, ec] = std::from_chars(token.data(), end, v);
    if (ec != std::errc{} || p != end) {
        spec_fail(context, 0,
                  "range bounds must be integers, got '" + token + "'");
    }
    return v;
}

/// Expands one value token: `lo..hi` / `lo..hi..step` become the
/// inclusive integer sequence, anything else passes through verbatim.
void expand_value(const std::string& token, const std::string& context,
                  std::vector<std::string>& out) {
    const std::size_t dots = token.find("..");
    if (dots == std::string::npos) {
        out.push_back(token);
        return;
    }
    const std::string lo_text = token.substr(0, dots);
    std::string hi_text = token.substr(dots + 2);
    std::int64_t step = 1;
    if (const std::size_t more = hi_text.find(".."); more != std::string::npos) {
        step = parse_range_int(hi_text.substr(more + 2), context);
        hi_text = hi_text.substr(0, more);
    }
    const std::int64_t lo = parse_range_int(lo_text, context);
    const std::int64_t hi = parse_range_int(hi_text, context);
    if (step <= 0) {
        spec_fail(context, 0, "range step must be positive in '" + token + "'");
    }
    if (hi < lo) {
        spec_fail(context, 0,
                  "range '" + token + "' is empty (hi < lo)");
    }
    for (std::int64_t v = lo; v <= hi; v += step) {
        out.push_back(std::to_string(v));
        if (out.size() > max_cells) {
            spec_fail(context, 0, "range '" + token + "' expands to more than " +
                                      std::to_string(max_cells) + " values");
        }
    }
}

}  // namespace

sweep_axis parse_sweep_axis(const std::string& text) {
    const std::string context = "--vary " + text;
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0) {
        spec_fail(context, 0, "expected 'key=value[,value...]'");
    }
    sweep_axis axis;
    axis.key = text.substr(0, eq);
    bool known = false;
    for (const field_info& info : spec_schema()) {
        if (info.key == axis.key) {
            known = true;
            break;
        }
    }
    if (!known) spec_fail(context, 0, "unknown key '" + axis.key + "'");

    std::size_t start = eq + 1;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string token =
            text.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (token.empty()) spec_fail(context, 0, "empty value in list");
        expand_value(token, context, axis.values);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (axis.values.empty()) spec_fail(context, 0, "empty value list");
    return axis;
}

std::vector<sweep_cell> expand_sweep(const scenario::scenario_spec& base,
                                     const std::vector<sweep_axis>& axes) {
    std::size_t total = 1;
    for (const sweep_axis& axis : axes) {
        if (axis.values.empty()) {
            spec_fail("sweep", 0, "axis '" + axis.key + "' has no values");
        }
        if (total > max_cells / axis.values.size()) {
            spec_fail("sweep", 0, "product exceeds " +
                                      std::to_string(max_cells) + " cells");
        }
        total *= axis.values.size();
    }

    std::vector<sweep_cell> cells;
    cells.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        sweep_cell cell;
        cell.index = i;
        cell.spec = base;
        // Row-major decomposition: the LAST axis varies fastest, so the
        // product reads like nested loops in --vary order.
        std::size_t remainder = i;
        std::vector<std::size_t> pos(axes.size(), 0);
        for (std::size_t a = axes.size(); a-- > 0;) {
            pos[a] = remainder % axes[a].values.size();
            remainder /= axes[a].values.size();
        }
        const std::string context = "cell " + std::to_string(i);
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const std::string& value = axes[a].values[pos[a]];
            apply_spec_override(cell.spec, axes[a].key, value, context);
            cell.assignment.emplace_back(axes[a].key, value);
            if (!cell.label.empty()) cell.label += " ";
            cell.label += axes[a].key + "=" + value;
        }
        validate_spec(cell.spec, context);
        cells.push_back(std::move(cell));
    }
    return cells;
}

std::vector<scenario::scenario_result> run_sweep(
    const std::vector<sweep_cell>& cells, scenario::run_options options) {
    // Flatten every (cell, replica) pair into one task list so the
    // whole product saturates a single deterministic pool: replicas of
    // different cells interleave, results still merge per cell in
    // replica order.
    struct task_ref {
        std::size_t cell;
        std::size_t replica;
    };
    std::vector<task_ref> tasks;
    for (const sweep_cell& cell : cells) {
        for (std::size_t r = 0; r < cell.spec.replicas; ++r) {
            tasks.push_back({cell.index, r});
        }
    }

    const ns::engine::mc_runner runner(
        {.rounds_per_task = 0,
         .num_threads = options.num_threads,
         .parallel = options.parallel});
    std::vector<scenario::replica_result> outcomes =
        runner.run_indexed(tasks.size(), [&](std::size_t i) {
            const task_ref& task = tasks[i];
            return scenario::run_scenario_replica(cells[task.cell].spec,
                                                  task.replica);
        });

    std::vector<scenario::scenario_result> results;
    results.reserve(cells.size());
    std::size_t next = 0;
    for (const sweep_cell& cell : cells) {
        std::vector<scenario::replica_result> slice(
            std::make_move_iterator(outcomes.begin() +
                                    static_cast<std::ptrdiff_t>(next)),
            std::make_move_iterator(outcomes.begin() + static_cast<std::ptrdiff_t>(
                                                           next +
                                                           cell.spec.replicas)));
        next += cell.spec.replicas;
        auto result =
            scenario::merge_scenario_replicas(cell.spec, std::move(slice), 0.0);
        // Per-cell elapsed time is meaningless on a shared pool; report
        // the cell's summed replica wall time instead (timing-named, so
        // determinism comparisons already exclude it).
        result.wall_clock_s = result.sim.metrics.histogram_sum("replica.wall_s");
        results.push_back(std::move(result));
    }
    return results;
}

}  // namespace ns::spec
