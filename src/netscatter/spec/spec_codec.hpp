// Declarative scenario codec: scenario_spec <-> spec text.
//
// One field table drives everything: serialization (every field, in a
// canonical order, shortest-round-trip doubles), parsing (strict — an
// unknown key, duplicate key, type mismatch or out-of-domain value is a
// distinct spec_error naming the offending file:line), CLI overrides
// (`--vary geometry.num_devices=4096`) and the schema listing the
// README and `netscatter_sweep --schema` print. Because the serializer
// emits exactly what the parser accepts and doubles print exactly,
// parse(serialize(spec)) == spec and serialize(parse(text)) is a fixed
// point after one round trip — the property the committed specs/*.spec
// files and tests/test_spec_fuzzer.cpp hold the codec to.
//
// Deliberately NOT serialized: sim.obs.trace, sim.obs.perf and
// sim.obs.trace_track. Those are execution-owned — the CLIs overwrite
// them from --trace/--perf and the runner assigns trace tracks per
// replica — so a workload file cannot pin them.
#pragma once

#include <string>
#include <vector>

#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/spec/spec_doc.hpp"

namespace ns::spec {

/// One row of the schema: key, value type, accepted domain and the
/// default (serialized form; "(unset)" for absent optional fields).
struct field_info {
    std::string key;
    std::string type;
    std::string domain;
    std::string default_value;
};

/// Serializes every field of `spec` (absent optionals omitted) into the
/// canonical text form. Output is in schema order with one blank line
/// between key groups, and parses back to an identical spec.
std::string serialize_spec(const scenario::scenario_spec& spec);

/// Interprets a tokenized document as a scenario_spec starting from
/// defaults. Throws spec_error (with file:line) on unknown keys,
/// duplicate keys, type mismatches and out-of-domain values, and
/// re-throws cross-field validate() failures with the file context.
scenario::scenario_spec parse_spec(const spec_doc& doc);

/// Convenience: tokenize + interpret.
scenario::scenario_spec parse_spec_text_as_scenario(std::string_view text,
                                                    std::string source);

/// Reads and parses one spec file. Throws spec_error if the file cannot
/// be read or does not parse.
scenario::scenario_spec load_spec_file(const std::string& path);

/// Applies one `key = value` assignment to an existing spec — the
/// sweep engine's `--vary` primitive. `context` names the caller in
/// diagnostics (e.g. "--vary sim.skip"). Cross-field validation is the
/// caller's job (a sweep validates each expanded cell once).
void apply_spec_override(scenario::scenario_spec& spec, const std::string& key,
                         const std::string& value, const std::string& context);

/// Cross-field validation of a fully-assembled spec (the checks
/// parse_spec runs after its last entry): aloha window ordering,
/// co-channel SNR ordering, sim.validate(), faults.validate() and
/// replicas >= 1. Throws spec_error prefixed with `context`.
void validate_spec(const scenario::scenario_spec& spec,
                   const std::string& context);

/// The full field table, in serialization order.
const std::vector<field_info>& spec_schema();

/// Directory the registry loads committed specs from: $NS_SPEC_DIR if
/// set, else the build-time default (the repo's specs/ directory). May
/// not exist — the registry then falls back to the builtin C++ table.
std::string spec_dir();

}  // namespace ns::spec
