// Cartesian parameter sweeps over scenario specs.
//
// A sweep is a base spec plus varied axes (`--vary key=v1,v2` /
// `--vary key=lo..hi[..step]`). expand_sweep builds the row-major
// product of cells — each a full scenario_spec with the axis values
// applied through the strict codec — and run_sweep executes every
// (cell, replica) pair on ONE mc_runner pool, merging per cell in
// replica order. Because each replica is a pure function of
// (cell spec, replica index) and the merge order is fixed, a sweep's
// results are bit-identical at any --threads, the same contract the
// single-scenario runner holds.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/scenario/scenario_spec.hpp"

namespace ns::spec {

/// One varied key and its value list (value tokens, codec-validated
/// when applied).
struct sweep_axis {
    std::string key;
    std::vector<std::string> values;
};

/// Parses one `--vary` argument: `key=v1,v2,...` where any value may be
/// an inclusive integer range `lo..hi` or `lo..hi..step`. Throws
/// spec_error on a malformed axis, an unknown key or an empty value
/// list.
sweep_axis parse_sweep_axis(const std::string& text);

/// One cell of the expanded product.
struct sweep_cell {
    std::size_t index = 0;  ///< row-major position in the product
    /// Axis assignments in axis order, as (key, value token).
    std::vector<std::pair<std::string, std::string>> assignment;
    scenario::scenario_spec spec;  ///< base spec + assignments applied
    std::string label;             ///< "key=value key=value ..."
};

/// Expands the row-major Cartesian product of `axes` over `base`
/// (last axis fastest). Every assignment goes through the codec, so a
/// bad value fails with the axis context before anything runs. Each
/// cell's spec is cross-field validated. With no axes the product is
/// the single base cell.
std::vector<sweep_cell> expand_sweep(const scenario::scenario_spec& base,
                                     const std::vector<sweep_axis>& axes);

/// Runs every cell, fanning all (cell, replica) tasks over one
/// mc_runner pool; returns results index-aligned with `cells`.
/// Bit-identical for any execution policy. Each result's wall_clock_s
/// is the summed replica wall time of that cell (the pool interleaves
/// cells, so per-cell elapsed time is not meaningful).
std::vector<scenario::scenario_result> run_sweep(
    const std::vector<sweep_cell>& cells, scenario::run_options options = {});

}  // namespace ns::spec
