#include "netscatter/spec/spec_doc.hpp"

#include <cctype>
#include <utility>

namespace ns::spec {

namespace {

std::string_view trim(std::string_view text) {
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front()))) {
        text.remove_prefix(1);
    }
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.back()))) {
        text.remove_suffix(1);
    }
    return text;
}

bool valid_key_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

std::string spec_where(const std::string& source, std::size_t line) {
    if (line == 0) return source + ": ";
    return source + ":" + std::to_string(line) + ": ";
}

void spec_fail(const std::string& source, std::size_t line,
               const std::string& message) {
    throw spec_error(spec_where(source, line) + message);
}

spec_doc parse_spec_text(std::string_view text, std::string source) {
    spec_doc doc;
    doc.source = std::move(source);
    std::size_t line_no = 0;
    while (!text.empty()) {
        ++line_no;
        const std::size_t eol = text.find('\n');
        std::string_view line = text.substr(0, eol);
        text.remove_prefix(eol == std::string_view::npos ? text.size()
                                                         : eol + 1);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

        const std::string_view stripped = trim(line);
        if (stripped.empty() || stripped.front() == '#') continue;

        const std::size_t eq = stripped.find('=');
        if (eq == std::string_view::npos) {
            spec_fail(doc.source, line_no,
                      "malformed line: expected 'key = value'");
        }
        const std::string_view key = trim(stripped.substr(0, eq));
        if (key.empty()) {
            spec_fail(doc.source, line_no, "malformed line: empty key");
        }
        for (char c : key) {
            if (!valid_key_char(c)) {
                spec_fail(doc.source, line_no,
                          "malformed key '" + std::string(key) +
                              "': keys are dotted identifiers "
                              "([A-Za-z0-9_.]+)");
            }
        }

        std::string_view rest = trim(stripped.substr(eq + 1));
        std::string value;
        if (!rest.empty() && rest.front() == '"') {
            // Quoted string: scan to the closing quote, honouring
            // backslash escapes; anything after must be a comment.
            std::size_t i = 1;
            for (; i < rest.size(); ++i) {
                if (rest[i] == '\\') {
                    ++i;
                    continue;
                }
                if (rest[i] == '"') break;
            }
            if (i >= rest.size()) {
                spec_fail(doc.source, line_no, "unterminated string value");
            }
            value = std::string(rest.substr(0, i + 1));
            const std::string_view tail = trim(rest.substr(i + 1));
            if (!tail.empty() && tail.front() != '#') {
                spec_fail(doc.source, line_no,
                          "unexpected text after string value: '" +
                              std::string(tail) + "'");
            }
        } else {
            // Bare token: a trailing comment starts at the first '#'.
            const std::size_t hash = rest.find('#');
            if (hash != std::string_view::npos) rest = trim(rest.substr(0, hash));
            if (rest.empty()) {
                spec_fail(doc.source, line_no,
                          "malformed line: missing value after '='");
            }
            value = std::string(rest);
        }
        doc.entries.push_back(
            {std::string(key), std::move(value), line_no});
    }
    return doc;
}

}  // namespace ns::spec
