#include "netscatter/spec/spec_codec.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <utility>

namespace ns::spec {

namespace {

using scenario::scenario_spec;

// ---------------------------------------------------------------------
// Token printing/parsing primitives.

/// Shortest round-trip representation: what to_chars prints, from_chars
/// parses back to the exact same bits — the bedrock of the codec's
/// parse→print→parse fixed point.
std::string print_f64(double v) {
    char buf[64];
    const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    return std::string(buf, p);
}

std::string quote(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default: out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

// ---------------------------------------------------------------------
// Numeric domains.

constexpr double neg_inf = -std::numeric_limits<double>::infinity();
constexpr double pos_inf = std::numeric_limits<double>::infinity();

/// Accepted real interval with open/closed ends; the text() form shows
/// up both in diagnostics and in the --schema table.
struct num_domain {
    double lo = neg_inf;
    double hi = pos_inf;
    bool lo_open = false;
    bool hi_open = false;

    bool contains(double v) const {
        if (lo_open ? v <= lo : v < lo) return false;
        if (hi_open ? v >= hi : v > hi) return false;
        return true;
    }

    std::string text() const {
        if (lo == neg_inf && hi == pos_inf) return "";
        if (hi == pos_inf) return (lo_open ? "> " : ">= ") + print_f64(lo);
        if (lo == neg_inf) return (hi_open ? "< " : "<= ") + print_f64(hi);
        return std::string(lo_open ? "(" : "[") + print_f64(lo) + ", " +
               print_f64(hi) + (hi_open ? ")" : "]");
    }
};

num_domain unit() { return {0.0, 1.0}; }
num_domain unit_open_hi() { return {0.0, 1.0, false, true}; }
num_domain at_least(double lo) { return {lo, pos_inf}; }
num_domain more_than(double lo) { return {lo, pos_inf, true, false}; }

// ---------------------------------------------------------------------
// The field table.

/// One serializable scenario field: how to detect presence, print the
/// current value, and parse+assign a token with located diagnostics.
struct field {
    std::string key;
    std::string type;    ///< for --schema and type-mismatch messages
    std::string domain;  ///< "" = any value of the type
    std::function<bool(const scenario_spec&)> present;  ///< null = always
    std::function<std::string(const scenario_spec&)> print;
    std::function<void(scenario_spec&, const std::string& value,
                       const std::string& source, std::size_t line)>
        apply;
};

double parse_f64_token(const std::string& key, const std::string& value,
                       const std::string& source, std::size_t line) {
    double v{};
    const char* const end = value.data() + value.size();
    const auto [p, ec] = std::from_chars(value.data(), end, v);
    if (ec != std::errc{} || p != end || !std::isfinite(v)) {
        spec_fail(source, line,
                  "key '" + key + "': expected a finite real number, got '" +
                      value + "'");
    }
    return v;
}

template <typename T>
T parse_int_token(const std::string& key, const std::string& value,
                  const std::string& source, std::size_t line) {
    T v{};
    const char* const end = value.data() + value.size();
    const auto [p, ec] = std::from_chars(value.data(), end, v);
    if (ec != std::errc{} || p != end) {
        spec_fail(source, line,
                  "key '" + key + "': expected " +
                      (std::is_signed_v<T> ? "an integer"
                                           : "a non-negative integer") +
                      ", got '" + value + "'");
    }
    return v;
}

[[noreturn]] void domain_fail(const std::string& key, const std::string& value,
                              const std::string& domain,
                              const std::string& source, std::size_t line) {
    spec_fail(source, line, "key '" + key + "': value " + value +
                                " out of domain " + domain);
}

/// Builds accessor lambdas like `NS_ACCESS(geometry.num_devices)`; the
/// same accessor serves printing (const) and assignment (mutable).
#define NS_ACCESS(expr) \
    [](scenario_spec& s) -> auto& { return s.expr; }

template <typename Access>
field f64_field(std::string key, Access access, num_domain dom = {}) {
    field f;
    f.key = std::move(key);
    f.type = "real";
    f.domain = dom.text();
    f.print = [access](const scenario_spec& s) {
        return print_f64(access(const_cast<scenario_spec&>(s)));
    };
    f.apply = [access, dom, key = f.key, domain = f.domain](
                  scenario_spec& s, const std::string& value,
                  const std::string& source, std::size_t line) {
        const double v = parse_f64_token(key, value, source, line);
        if (!dom.contains(v)) domain_fail(key, value, domain, source, line);
        access(s) = v;
    };
    return f;
}

template <typename Access>
field opt_f64_field(std::string key, Access access, num_domain dom = {}) {
    field f;
    f.key = std::move(key);
    f.type = "real";
    f.domain = dom.text();
    f.present = [access](const scenario_spec& s) {
        return access(const_cast<scenario_spec&>(s)).has_value();
    };
    f.print = [access](const scenario_spec& s) {
        return print_f64(*access(const_cast<scenario_spec&>(s)));
    };
    f.apply = [access, dom, key = f.key, domain = f.domain](
                  scenario_spec& s, const std::string& value,
                  const std::string& source, std::size_t line) {
        const double v = parse_f64_token(key, value, source, line);
        if (!dom.contains(v)) domain_fail(key, value, domain, source, line);
        access(s) = v;
    };
    return f;
}

/// Integer field over the accessor's own integer type; [lo, hi] is the
/// accepted domain (hi == max means unbounded above).
template <typename Access>
field int_field(std::string key, Access access, std::uint64_t lo = 0,
                std::uint64_t hi = std::numeric_limits<std::uint64_t>::max()) {
    using T = std::remove_reference_t<decltype(access(
        std::declval<scenario_spec&>()))>;
    field f;
    f.key = std::move(key);
    f.type = "integer";
    if (hi != std::numeric_limits<std::uint64_t>::max()) {
        f.domain = "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
    } else if (lo != 0) {
        f.domain = ">= " + std::to_string(lo);
    }
    f.print = [access](const scenario_spec& s) {
        return std::to_string(access(const_cast<scenario_spec&>(s)));
    };
    f.apply = [access, lo, hi, key = f.key, domain = f.domain](
                  scenario_spec& s, const std::string& value,
                  const std::string& source, std::size_t line) {
        const T v = parse_int_token<T>(key, value, source, line);
        if (static_cast<std::uint64_t>(v) < lo ||
            static_cast<std::uint64_t>(v) > hi) {
            domain_fail(key, value,
                        domain.empty() ? std::string("of the type") : domain,
                        source, line);
        }
        access(s) = v;
    };
    return f;
}

template <typename Access>
field opt_int_field(std::string key, Access access, std::uint64_t lo = 0) {
    using opt_t = std::remove_reference_t<decltype(access(
        std::declval<scenario_spec&>()))>;
    using T = typename opt_t::value_type;
    field f;
    f.key = std::move(key);
    f.type = "integer";
    if (lo != 0) f.domain = ">= " + std::to_string(lo);
    f.present = [access](const scenario_spec& s) {
        return access(const_cast<scenario_spec&>(s)).has_value();
    };
    f.print = [access](const scenario_spec& s) {
        return std::to_string(*access(const_cast<scenario_spec&>(s)));
    };
    f.apply = [access, lo, key = f.key, domain = f.domain](
                  scenario_spec& s, const std::string& value,
                  const std::string& source, std::size_t line) {
        const T v = parse_int_token<T>(key, value, source, line);
        if (static_cast<std::uint64_t>(v) < lo) {
            domain_fail(key, value, domain, source, line);
        }
        access(s) = v;
    };
    return f;
}

template <typename Access>
field bool_field(std::string key, Access access) {
    field f;
    f.key = std::move(key);
    f.type = "boolean";
    f.print = [access](const scenario_spec& s) {
        return access(const_cast<scenario_spec&>(s)) ? std::string("true")
                                                     : std::string("false");
    };
    f.apply = [access, key = f.key](scenario_spec& s, const std::string& value,
                                    const std::string& source,
                                    std::size_t line) {
        if (value == "true") {
            access(s) = true;
        } else if (value == "false") {
            access(s) = false;
        } else {
            spec_fail(source, line, "key '" + key +
                                        "': expected a boolean (true|false), "
                                        "got '" +
                                        value + "'");
        }
    };
    return f;
}

template <typename Access>
field string_field(std::string key, Access access) {
    field f;
    f.key = std::move(key);
    f.type = "string";
    f.print = [access](const scenario_spec& s) {
        return quote(access(const_cast<scenario_spec&>(s)));
    };
    f.apply = [access, key = f.key](scenario_spec& s, const std::string& value,
                                    const std::string& source,
                                    std::size_t line) {
        if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
            spec_fail(source, line, "key '" + key +
                                        "': expected a quoted string, got '" +
                                        value + "'");
        }
        std::string out;
        out.reserve(value.size());
        for (std::size_t i = 1; i + 1 < value.size(); ++i) {
            char c = value[i];
            if (c == '\\' && i + 2 < value.size()) {
                const char next = value[++i];
                switch (next) {
                    case '"': c = '"'; break;
                    case '\\': c = '\\'; break;
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'r': c = '\r'; break;
                    default:
                        spec_fail(source, line,
                                  "key '" + key +
                                      "': unsupported string escape '\\" +
                                      std::string(1, next) + "'");
                }
            }
            out.push_back(c);
        }
        access(s) = std::move(out);
    };
    return f;
}

template <typename Access, typename T>
field enum_field(std::string key, Access access,
                 std::vector<std::pair<std::string, T>> names) {
    std::string type;
    for (const auto& [name, v] : names) {
        if (!type.empty()) type += "|";
        type += name;
    }
    field f;
    f.key = std::move(key);
    f.type = type;
    f.print = [access, names](const scenario_spec& s) {
        const T v = access(const_cast<scenario_spec&>(s));
        for (const auto& [name, candidate] : names) {
            if (candidate == v) return name;
        }
        return std::string("?");
    };
    f.apply = [access, names, type, key = f.key](
                  scenario_spec& s, const std::string& value,
                  const std::string& source, std::size_t line) {
        for (const auto& [name, candidate] : names) {
            if (name == value) {
                access(s) = candidate;
                return;
            }
        }
        spec_fail(source, line, "key '" + key + "': expected one of " + type +
                                    ", got '" + value + "'");
    };
    return f;
}

/// churn.initial_active: a count, or `all` for the whole universe
/// (SIZE_MAX in the struct).
field size_or_all_field(std::string key) {
    constexpr std::size_t all = static_cast<std::size_t>(-1);
    field f;
    f.key = std::move(key);
    f.type = "integer or 'all'";
    f.print = [](const scenario_spec& s) {
        return s.churn.initial_active == all
                   ? std::string("all")
                   : std::to_string(s.churn.initial_active);
    };
    f.apply = [key = f.key](scenario_spec& s, const std::string& value,
                            const std::string& source, std::size_t line) {
        if (value == "all") {
            s.churn.initial_active = all;
            return;
        }
        s.churn.initial_active =
            parse_int_token<std::size_t>(key, value, source, line);
    };
    return f;
}

std::vector<field> build_fields() {
    using scenario::association_mode;
    using scenario::geometry_preset;
    using scenario::interference_kind;
    using scenario::traffic_kind;
    using ns::sim::phy_fidelity;
    using ns::sim::regroup_policy;

    std::vector<field> t;
    t.reserve(80);

    // Identity + Monte-Carlo width.
    t.push_back(string_field("name", NS_ACCESS(name)));
    t.push_back(string_field("description", NS_ACCESS(description)));
    t.push_back(int_field("replicas", NS_ACCESS(replicas), 1));

    // Geometry: preset + population + optional overrides (absent
    // optionals keep the preset's value and are omitted on output).
    t.push_back(enum_field(
        "geometry.preset", NS_ACCESS(geometry.preset),
        std::vector<std::pair<std::string, geometry_preset>>{
            {"office", geometry_preset::office},
            {"warehouse_aisle", geometry_preset::warehouse_aisle},
            {"open_field", geometry_preset::open_field}}));
    t.push_back(int_field("geometry.num_devices",
                          NS_ACCESS(geometry.num_devices), 1));
    t.push_back(opt_f64_field("geometry.floor_width_m",
                              NS_ACCESS(geometry.floor_width_m),
                              more_than(0.0)));
    t.push_back(opt_f64_field("geometry.floor_depth_m",
                              NS_ACCESS(geometry.floor_depth_m),
                              more_than(0.0)));
    t.push_back(opt_int_field("geometry.rooms_x", NS_ACCESS(geometry.rooms_x), 1));
    t.push_back(opt_int_field("geometry.rooms_y", NS_ACCESS(geometry.rooms_y), 1));
    t.push_back(
        opt_f64_field("geometry.ap_tx_dbm", NS_ACCESS(geometry.ap_tx_dbm)));
    t.push_back(opt_f64_field("geometry.pathloss_exponent",
                              NS_ACCESS(geometry.pathloss_exponent),
                              more_than(0.0)));
    t.push_back(opt_f64_field("geometry.wall_loss_db",
                              NS_ACCESS(geometry.wall_loss_db), at_least(0.0)));
    t.push_back(opt_f64_field("geometry.min_distance_m",
                              NS_ACCESS(geometry.min_distance_m),
                              at_least(0.0)));
    t.push_back(opt_f64_field("geometry.shadowing_sigma_db",
                              NS_ACCESS(geometry.shadowing_sigma_db),
                              at_least(0.0)));

    // Traffic model.
    t.push_back(enum_field(
        "traffic.kind", NS_ACCESS(traffic.kind),
        std::vector<std::pair<std::string, traffic_kind>>{
            {"saturated", traffic_kind::saturated},
            {"periodic", traffic_kind::periodic},
            {"poisson", traffic_kind::poisson},
            {"bursty", traffic_kind::bursty}}));
    t.push_back(
        f64_field("traffic.duty_cycle", NS_ACCESS(traffic.duty_cycle), unit()));
    t.push_back(int_field("traffic.period_rounds",
                          NS_ACCESS(traffic.period_rounds), 1));
    t.push_back(f64_field("traffic.arrivals_per_round",
                          NS_ACCESS(traffic.arrivals_per_round),
                          at_least(0.0)));
    t.push_back(f64_field("traffic.burst_probability",
                          NS_ACCESS(traffic.burst_probability), unit()));
    t.push_back(
        int_field("traffic.burst_length", NS_ACCESS(traffic.burst_length), 1));

    // Churn + association.
    t.push_back(f64_field("churn.join_rate_per_round",
                          NS_ACCESS(churn.join_rate_per_round), at_least(0.0)));
    t.push_back(f64_field("churn.leave_rate_per_round",
                          NS_ACCESS(churn.leave_rate_per_round),
                          at_least(0.0)));
    t.push_back(size_or_all_field("churn.initial_active"));
    t.push_back(int_field("churn.max_joins_per_round",
                          NS_ACCESS(churn.max_joins_per_round)));
    t.push_back(enum_field(
        "churn.association", NS_ACCESS(churn.association),
        std::vector<std::pair<std::string, association_mode>>{
            {"bounded_queue", association_mode::bounded_queue},
            {"slotted_aloha", association_mode::slotted_aloha}}));
    t.push_back(int_field("churn.aloha_initial_window",
                          NS_ACCESS(churn.aloha_initial_window), 1));
    t.push_back(int_field("churn.aloha_max_window",
                          NS_ACCESS(churn.aloha_max_window), 1));
    t.push_back(int_field("churn.association_grants_per_round",
                          NS_ACCESS(churn.association_grants_per_round), 1));

    // Mobility.
    t.push_back(f64_field("mobility.mobile_fraction",
                          NS_ACCESS(mobility.mobile_fraction), unit()));
    t.push_back(f64_field("mobility.speed_mps", NS_ACCESS(mobility.speed_mps),
                          at_least(0.0)));
    t.push_back(f64_field("mobility.round_period_s",
                          NS_ACCESS(mobility.round_period_s), more_than(0.0)));
    t.push_back(f64_field("mobility.carrier_hz", NS_ACCESS(mobility.carrier_hz),
                          more_than(0.0)));

    // Waveform interference injectors.
    t.push_back(enum_field(
        "interference.kind", NS_ACCESS(interference.kind),
        std::vector<std::pair<std::string, interference_kind>>{
            {"none", interference_kind::none},
            {"periodic_tone", interference_kind::periodic_tone},
            {"bursty_tone", interference_kind::bursty_tone},
            {"lora_frame", interference_kind::lora_frame}}));
    t.push_back(
        f64_field("interference.snr_db", NS_ACCESS(interference.snr_db)));
    t.push_back(int_field("interference.period_rounds",
                          NS_ACCESS(interference.period_rounds), 1));
    t.push_back(f64_field("interference.burst_probability",
                          NS_ACCESS(interference.burst_probability), unit()));
    t.push_back(
        f64_field("interference.tone_hz", NS_ACCESS(interference.tone_hz)));

    // Co-channel NetScatter network.
    t.push_back(bool_field("cochannel.enabled", NS_ACCESS(cochannel.enabled)));
    t.push_back(
        int_field("cochannel.network_id", NS_ACCESS(cochannel.network_id)));
    t.push_back(int_field("cochannel.num_devices",
                          NS_ACCESS(cochannel.num_devices), 1));
    t.push_back(f64_field("cochannel.duty_cycle",
                          NS_ACCESS(cochannel.duty_cycle), unit()));
    t.push_back(int_field("cochannel.group_capacity",
                          NS_ACCESS(cochannel.group_capacity), 1));
    t.push_back(
        f64_field("cochannel.min_snr_db", NS_ACCESS(cochannel.min_snr_db)));
    t.push_back(
        f64_field("cochannel.max_snr_db", NS_ACCESS(cochannel.max_snr_db)));
    t.push_back(f64_field("cochannel.max_round_offset_s",
                          NS_ACCESS(cochannel.max_round_offset_s),
                          at_least(0.0)));
    t.push_back(f64_field("cochannel.carrier_offset_hz",
                          NS_ACCESS(cochannel.carrier_offset_hz),
                          at_least(0.0)));

    // Control-plane faults + recovery.
    t.push_back(
        f64_field("faults.query_loss", NS_ACCESS(faults.query_loss), unit()));
    t.push_back(f64_field("faults.query_loss_rssi_slope",
                          NS_ACCESS(faults.query_loss_rssi_slope),
                          at_least(0.0)));
    t.push_back(f64_field("faults.query_loss_ref_rssi_dbm",
                          NS_ACCESS(faults.query_loss_ref_rssi_dbm)));
    t.push_back(
        f64_field("faults.ack_loss", NS_ACCESS(faults.ack_loss), unit()));
    t.push_back(f64_field("faults.reboot_rate_per_round",
                          NS_ACCESS(faults.reboot_rate_per_round),
                          at_least(0.0)));
    t.push_back(f64_field("faults.blackout_probability",
                          NS_ACCESS(faults.blackout_probability), unit()));
    t.push_back(int_field("faults.blackout_rounds",
                          NS_ACCESS(faults.blackout_rounds)));
    t.push_back(
        int_field("faults.lease_rounds", NS_ACCESS(faults.lease_rounds)));
    t.push_back(int_field("faults.missed_query_limit",
                          NS_ACCESS(faults.missed_query_limit)));
    t.push_back(int_field("faults.ack_retry_limit",
                          NS_ACCESS(faults.ack_retry_limit)));

    // Simulator: PHY + frame.
    t.push_back(f64_field("sim.phy.bandwidth_hz", NS_ACCESS(sim.phy.bandwidth_hz),
                          more_than(0.0)));
    t.push_back(int_field("sim.phy.spreading_factor",
                          NS_ACCESS(sim.phy.spreading_factor), 1, 24));
    t.push_back(int_field("sim.frame.preamble_symbols",
                          NS_ACCESS(sim.frame.preamble_symbols), 1));
    t.push_back(int_field("sim.frame.payload_bits",
                          NS_ACCESS(sim.frame.payload_bits), 1));
    t.push_back(
        int_field("sim.frame.crc_bits", NS_ACCESS(sim.frame.crc_bits)));

    // Simulator: decoder + ablation switches.
    t.push_back(int_field("sim.skip", NS_ACCESS(sim.skip), 1));
    t.push_back(int_field("sim.zero_padding", NS_ACCESS(sim.zero_padding), 1));
    t.push_back(f64_field("sim.detection_factor",
                          NS_ACCESS(sim.detection_factor), more_than(0.0)));
    t.push_back(bool_field("sim.power_aware_allocation",
                           NS_ACCESS(sim.power_aware_allocation)));
    t.push_back(
        bool_field("sim.power_adaptation", NS_ACCESS(sim.power_adaptation)));
    t.push_back(bool_field("sim.model_timing_jitter",
                           NS_ACCESS(sim.model_timing_jitter)));
    t.push_back(bool_field("sim.model_cfo", NS_ACCESS(sim.model_cfo)));
    t.push_back(enum_field(
        "sim.fidelity", NS_ACCESS(sim.fidelity),
        std::vector<std::pair<std::string, phy_fidelity>>{
            {"sample", phy_fidelity::sample},
            {"symbol", phy_fidelity::symbol},
            {"auto", phy_fidelity::automatic}}));
    t.push_back(int_field("sim.symbol_kernel_radius_bins",
                          NS_ACCESS(sim.symbol_kernel_radius_bins), 1));

    // Simulator: multipath + fading + identity.
    t.push_back(
        bool_field("sim.model_multipath", NS_ACCESS(sim.model_multipath)));
    t.push_back(f64_field("sim.multipath.delay_spread_s",
                          NS_ACCESS(sim.multipath.delay_spread_s),
                          more_than(0.0)));
    t.push_back(int_field("sim.multipath.num_taps",
                          NS_ACCESS(sim.multipath.num_taps), 0,
                          std::uint64_t{1} << 20));
    t.push_back(f64_field("sim.multipath.rician_k_db",
                          NS_ACCESS(sim.multipath.rician_k_db)));
    t.push_back(f64_field("sim.multipath_rho", NS_ACCESS(sim.multipath_rho),
                          unit_open_hi()));
    t.push_back(int_field("sim.network_id", NS_ACCESS(sim.network_id)));
    t.push_back(f64_field("sim.fading_sigma_db", NS_ACCESS(sim.fading_sigma_db),
                          at_least(0.0)));
    t.push_back(
        f64_field("sim.fading_rho", NS_ACCESS(sim.fading_rho), unit_open_hi()));

    // Simulator: §3.3.3 grouping.
    t.push_back(
        bool_field("sim.grouping.enabled", NS_ACCESS(sim.grouping.enabled)));
    t.push_back(int_field("sim.grouping.group_capacity",
                          NS_ACCESS(sim.grouping.group_capacity), 1));
    t.push_back(f64_field("sim.grouping.max_dynamic_range_db",
                          NS_ACCESS(sim.grouping.max_dynamic_range_db),
                          more_than(0.0)));
    t.push_back(enum_field(
        "sim.grouping.policy", NS_ACCESS(sim.grouping.policy),
        std::vector<std::pair<std::string, regroup_policy>>{
            {"none", regroup_policy::none},
            {"periodic", regroup_policy::periodic},
            {"load_triggered", regroup_policy::load_triggered}}));
    t.push_back(int_field("sim.grouping.regroup_period_rounds",
                          NS_ACCESS(sim.grouping.regroup_period_rounds), 1));
    t.push_back(int_field("sim.grouping.load_trigger_misfits",
                          NS_ACCESS(sim.grouping.load_trigger_misfits), 1));

    // Simulator: run length, seeding, intra-round fan-out.
    t.push_back(int_field("sim.rounds", NS_ACCESS(sim.rounds), 1));
    t.push_back(int_field("sim.seed", NS_ACCESS(sim.seed)));
    t.push_back(int_field("sim.intra_round_threads",
                          NS_ACCESS(sim.intra_round_threads), 1));

    // Simulator: hardware impairment models.
    t.push_back(f64_field("sim.delay_model.mean_us",
                          NS_ACCESS(sim.delay_model.mean_us), at_least(0.0)));
    t.push_back(f64_field("sim.delay_model.sigma_us",
                          NS_ACCESS(sim.delay_model.sigma_us), at_least(0.0)));
    t.push_back(f64_field("sim.delay_model.max_us",
                          NS_ACCESS(sim.delay_model.max_us), at_least(0.0)));
    t.push_back(f64_field("sim.crystal.tolerance_ppm",
                          NS_ACCESS(sim.crystal.tolerance_ppm),
                          at_least(0.0)));
    t.push_back(f64_field("sim.crystal.operating_frequency_hz",
                          NS_ACCESS(sim.crystal.operating_frequency_hz),
                          more_than(0.0)));
    t.push_back(f64_field("sim.crystal.drift_sigma_hz",
                          NS_ACCESS(sim.crystal.drift_sigma_hz),
                          at_least(0.0)));

    // Simulator: observability (trace/perf/trace_track stay CLI-owned —
    // see the header comment).
    t.push_back(bool_field("sim.obs.metrics", NS_ACCESS(sim.obs.metrics)));
    t.push_back(int_field("sim.obs.trace_max_events",
                          NS_ACCESS(sim.obs.trace_max_events), 1));
    t.push_back(int_field("sim.obs.alloc_warmup_rounds",
                          NS_ACCESS(sim.obs.alloc_warmup_rounds)));

    return t;
}

#undef NS_ACCESS

const std::vector<field>& fields() {
    static const std::vector<field> table = build_fields();
    return table;
}

const std::unordered_map<std::string, const field*>& field_map() {
    static const std::unordered_map<std::string, const field*> map = [] {
        std::unordered_map<std::string, const field*> m;
        for (const field& f : fields()) m.emplace(f.key, &f);
        return m;
    }();
    return map;
}

/// Group label of a key: the part before the first dot ("" for the
/// top-level identity keys). Serialization separates groups by one
/// blank line.
std::string_view group_of(const std::string& key) {
    const std::size_t dot = key.find('.');
    return dot == std::string::npos ? std::string_view{}
                                    : std::string_view(key).substr(0, dot);
}

}  // namespace

void validate_spec(const scenario::scenario_spec& spec,
                   const std::string& context) {
    if (spec.replicas < 1) {
        spec_fail(context, 0, "replicas must be >= 1");
    }
    if (spec.churn.aloha_max_window < spec.churn.aloha_initial_window) {
        spec_fail(context, 0,
                  "churn.aloha_max_window must be >= "
                  "churn.aloha_initial_window");
    }
    if (spec.cochannel.enabled &&
        spec.cochannel.min_snr_db > spec.cochannel.max_snr_db) {
        spec_fail(context, 0,
                  "cochannel.min_snr_db must be <= cochannel.max_snr_db");
    }
    try {
        spec.sim.validate();
        spec.faults.validate();
    } catch (const spec_error&) {
        throw;
    } catch (const std::exception& e) {
        spec_fail(context, 0, e.what());
    }
}

std::string serialize_spec(const scenario::scenario_spec& spec) {
    std::ostringstream out;
    out << "# NetScatter scenario spec (canonical form: netscatter_sim "
           "--dump-spec).\n"
        << "# Key schema: README.md \"Scenario specs & sweeps\" or "
           "netscatter_sweep --schema.\n";
    std::string_view current_group{"\n"};  // sentinel != any real group
    for (const field& f : fields()) {
        if (f.present && !f.present(spec)) continue;
        const std::string_view group = group_of(f.key);
        if (group != current_group) {
            out << "\n";
            current_group = group;
        }
        out << f.key << " = " << f.print(spec) << "\n";
    }
    return out.str();
}

scenario::scenario_spec parse_spec(const spec_doc& doc) {
    scenario::scenario_spec spec;
    const auto& map = field_map();
    std::unordered_map<std::string, std::size_t> seen;
    for (const spec_entry& entry : doc.entries) {
        const auto it = map.find(entry.key);
        if (it == map.end()) {
            spec_fail(doc.source, entry.line,
                      "unknown key '" + entry.key + "'");
        }
        const auto [seen_it, inserted] = seen.emplace(entry.key, entry.line);
        if (!inserted) {
            spec_fail(doc.source, entry.line,
                      "duplicate key '" + entry.key + "' (first set at line " +
                          std::to_string(seen_it->second) + ")");
        }
        it->second->apply(spec, entry.value, doc.source, entry.line);
    }
    validate_spec(spec, doc.source);
    return spec;
}

scenario::scenario_spec parse_spec_text_as_scenario(std::string_view text,
                                                    std::string source) {
    return parse_spec(parse_spec_text(text, std::move(source)));
}

scenario::scenario_spec load_spec_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw spec_error(path + ": cannot read spec file");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_spec_text_as_scenario(buffer.str(), path);
}

void apply_spec_override(scenario::scenario_spec& spec, const std::string& key,
                         const std::string& value,
                         const std::string& context) {
    const auto& map = field_map();
    const auto it = map.find(key);
    if (it == map.end()) {
        spec_fail(context, 0, "unknown key '" + key + "'");
    }
    it->second->apply(spec, value, context, 0);
}

const std::vector<field_info>& spec_schema() {
    static const std::vector<field_info> schema = [] {
        const scenario::scenario_spec defaults{};
        std::vector<field_info> rows;
        rows.reserve(fields().size());
        for (const field& f : fields()) {
            field_info info{f.key, f.type, f.domain, "(unset)"};
            if (!f.present || f.present(defaults)) {
                info.default_value = f.print(defaults);
            }
            rows.push_back(std::move(info));
        }
        return rows;
    }();
    return schema;
}

std::string spec_dir() {
    if (const char* env = std::getenv("NS_SPEC_DIR"); env && *env) return env;
#ifdef NS_SPEC_DIR_DEFAULT
    return NS_SPEC_DIR_DEFAULT;
#else
    return "specs";
#endif
}

}  // namespace ns::spec
