// Line-level parser for the TOML-like scenario spec format.
//
// A spec file is a flat sequence of `key = value` lines: keys are
// dotted identifiers (`geometry.num_devices`), values are numbers,
// booleans, bare enum identifiers or quoted strings, `#` starts a
// comment (outside quotes) and blank lines separate groups. This layer
// only tokenizes — it knows nothing about scenario fields. The codec
// (spec_codec.hpp) interprets the entries against the field table.
//
// Every diagnostic carries `<source>:<line>:` so a bad file points at
// the offending line, not just at itself.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "netscatter/util/error.hpp"

namespace ns::spec {

/// Parse/validation failure. The message always starts with a
/// `<source>:<line>:` (or `<source>:`) location prefix.
class spec_error : public ns::util::error {
  public:
    using ns::util::error::error;
};

/// Formats the `<source>:<line>: ` prefix; line 0 means "no specific
/// line" (cross-field checks, CLI override contexts) and omits the
/// line number.
std::string spec_where(const std::string& source, std::size_t line);

/// Throws spec_error with a located message.
[[noreturn]] void spec_fail(const std::string& source, std::size_t line,
                            const std::string& message);

/// One `key = value` line. `value` is the raw trimmed token: quoted
/// strings keep their quotes (the codec decodes them), everything else
/// is the bare text with trailing comments stripped.
struct spec_entry {
    std::string key;
    std::string value;
    std::size_t line = 0;
};

/// A tokenized spec file.
struct spec_doc {
    std::string source;  ///< file name (or synthetic context) for errors
    std::vector<spec_entry> entries;
};

/// Tokenizes `text` into entries. Throws spec_error on malformed lines
/// (missing `=`, empty key or value, bad key characters, unterminated
/// string, trailing garbage after a quoted value).
spec_doc parse_spec_text(std::string_view text, std::string source);

}  // namespace ns::spec
