#include "netscatter/dsp/spectrogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "netscatter/util/error.hpp"

namespace ns::dsp {

std::vector<double> hann_window(std::size_t n) {
    std::vector<double> w(n);
    if (n == 1) {
        w[0] = 1.0;
        return w;
    }
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                     static_cast<double>(n - 1)));
    }
    return w;
}

spectrogram_result compute_spectrogram(std::span<const cplx> signal, const stft_params& params) {
    ns::util::require(is_power_of_two(params.window_size),
                      "compute_spectrogram: window size must be a power of two");
    ns::util::require(params.hop >= 1, "compute_spectrogram: hop must be >= 1");

    spectrogram_result result;
    result.bins = params.window_size;
    result.max_power_db = -std::numeric_limits<double>::infinity();
    if (signal.size() < params.window_size) return result;

    const std::vector<double> window =
        params.hann_window ? hann_window(params.window_size) : std::vector<double>{};

    for (std::size_t start = 0; start + params.window_size <= signal.size();
         start += params.hop) {
        cvec frame(signal.begin() + static_cast<std::ptrdiff_t>(start),
                   signal.begin() + static_cast<std::ptrdiff_t>(start + params.window_size));
        if (params.hann_window) {
            for (std::size_t i = 0; i < frame.size(); ++i) frame[i] *= window[i];
        }
        fft_inplace(frame);
        if (params.shift) frame = fftshift(std::move(frame));
        for (const auto& value : frame) {
            const double p = std::norm(value);
            const double db = 10.0 * std::log10(p + 1e-30);
            result.power_db.push_back(db);
            result.max_power_db = std::max(result.max_power_db, db);
        }
        ++result.columns;
    }
    return result;
}

std::vector<double> average_psd_db(std::span<const cplx> signal, const stft_params& params) {
    const spectrogram_result grid = compute_spectrogram(signal, params);
    std::vector<double> psd(params.window_size, 0.0);
    if (grid.columns == 0) return psd;
    // Average in the linear domain, convert once at the end.
    for (std::size_t c = 0; c < grid.columns; ++c) {
        for (std::size_t b = 0; b < grid.bins; ++b) {
            psd[b] += std::pow(10.0, grid.power_db[c * grid.bins + b] / 10.0);
        }
    }
    for (auto& value : psd) {
        value = 10.0 * std::log10(value / static_cast<double>(grid.columns) + 1e-30);
    }
    return psd;
}

}  // namespace ns::dsp
