// Radix-2 iterative FFT.
//
// The NetScatter receiver decodes *all* concurrent devices with a single
// FFT per symbol (§3.1), so the FFT is the computational heart of the
// whole system. Every transform size we need — 2^SF symbol lengths,
// zero-padded lengths for sub-bin peak resolution (§3.2.3), STFT windows,
// and the 2·2^SF aggregate-bandwidth demodulation (§3.1) — is a power of
// two, so a radix-2 kernel suffices; non-power-of-two sizes are rejected.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ns::dsp {

using cplx = std::complex<double>;
using cvec = std::vector<cplx>;

/// True when n is a power of two (and non-zero).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n. Requires n >= 1.
std::size_t next_power_of_two(std::size_t n);

/// Enables or disables the process-wide FFT plan cache
/// (ns::engine::fft_plan_cache). On by default: repeated transforms of
/// the same size reuse precomputed twiddle/bit-reversal tables. With
/// caching off every call builds its tables afresh (still hoisted per
/// stage, never per butterfly). Both paths execute the identical butterfly
/// code, so results are bit-identical either way.
void set_fft_plan_caching(bool enabled);

/// Whether the plan cache is currently enabled.
bool fft_plan_caching_enabled();

/// In-place forward FFT (decimation-in-time, no normalization).
/// Requires data.size() to be a power of two.
void fft_inplace(cvec& data);

/// In-place inverse FFT, normalized by 1/N so ifft(fft(x)) == x.
/// Requires data.size() to be a power of two.
void ifft_inplace(cvec& data);

/// Out-of-place forward FFT of `data`.
cvec fft(cvec data);

/// Out-of-place inverse FFT of `data` (normalized by 1/N).
cvec ifft(cvec data);

/// FFT of `data` zero-padded to `padded_size` samples. Zero-padding in
/// time interpolates the spectrum (sinc convolution, Fig. 8), giving the
/// sub-FFT-bin peak resolution the receiver needs for the near-far
/// analysis. Requires padded_size to be a power of two >= data.size().
cvec fft_zero_padded(const cvec& data, std::size_t padded_size);

/// Squared magnitudes |X[k]|^2 of a spectrum.
std::vector<double> power_spectrum(const cvec& spectrum);

/// power_spectrum into a caller-provided buffer (resized; capacity reuse
/// makes repeated calls allocation-free).
void power_spectrum_into(const cvec& spectrum, std::vector<double>& power);

/// Magnitudes |X[k]| of a spectrum.
std::vector<double> magnitude_spectrum(const cvec& spectrum);

/// Rotates a spectrum so the zero-frequency bin sits at the centre
/// (matplotlib-style fftshift); used when rendering spectrograms.
cvec fftshift(cvec spectrum);

}  // namespace ns::dsp
