// FIR low-pass design and decimation — the receiver front end.
//
// The reader hardware samples at 4 Msps (§4.1) while the chirp bandwidth
// is 500 kHz: the receiver must low-pass to the chirp band and decimate
// to the critically-sampled rate the demodulator expects. We implement
// the classic windowed-sinc (Hamming) design and an efficient polyphase
// decimator that only computes the retained output samples.
#pragma once

#include <cstddef>
#include <vector>

#include "netscatter/dsp/fft.hpp"

namespace ns::dsp {

/// Designs a linear-phase low-pass FIR with the windowed-sinc method.
/// `cutoff_norm` is the cutoff as a fraction of the sampling rate
/// (0 < cutoff_norm < 0.5); `num_taps` must be odd for a symmetric,
/// integer-group-delay filter. Taps are normalized to unit DC gain.
std::vector<double> design_lowpass(double cutoff_norm, std::size_t num_taps);

/// Convolves `signal` with real `taps` (same-length output; the leading
/// transient is kept so sample indices are preserved, group delay =
/// (taps-1)/2 samples).
cvec fir_filter(const cvec& signal, const std::vector<double>& taps);

/// Low-pass + decimate by `factor` in one pass (polyphase: only the kept
/// samples are computed). Output length = floor(input / factor).
cvec fir_decimate(const cvec& signal, const std::vector<double>& taps,
                  std::size_t factor);

/// Convenience front end: takes a capture at `oversample` x the chirp
/// bandwidth and returns the critically-sampled baseband (cutoff at the
/// chirp band edge, 0.5/oversample of the input rate).
cvec frontend_decimate(const cvec& capture, std::size_t oversample,
                       std::size_t num_taps = 63);

/// Frequency response magnitude of a real FIR at normalized frequency f
/// (fraction of the sampling rate).
double fir_response_at(const std::vector<double>& taps, double normalized_frequency);

}  // namespace ns::dsp
