// FFT peak detection.
//
// After dechirping, each active device appears as a peak in one FFT bin
// (§3.1). The receiver needs (a) the integer-bin peak per device region
// and (b) sub-bin (fractional) peak location on zero-padded spectra for
// the near-far / offset analyses (§3.2.3, Choir comparison in §2.2).
#pragma once

#include <cstddef>
#include <vector>

#include "netscatter/dsp/fft.hpp"

namespace ns::dsp {

/// A detected spectral peak.
struct peak {
    std::size_t bin = 0;        ///< index of the maximum bin
    double power = 0.0;         ///< |X[bin]|^2
    double fractional_bin = 0.0;///< sub-bin refined location (same units as bin)
};

/// Index of the maximum-power bin of `power` (first on ties).
/// Requires a non-empty spectrum.
std::size_t argmax(const std::vector<double>& power);

/// Finds the global peak of a power spectrum and refines its location to
/// sub-bin precision with a three-point parabolic fit on log-power.
/// Requires a non-empty spectrum (indices wrap circularly, matching the
/// circular FFT spectrum of a dechirped symbol).
peak find_peak(const std::vector<double>& power);

/// Finds the strongest peak restricted to bins [first, last] inclusive
/// (wrapping when first > last). Requires a non-empty spectrum.
peak find_peak_in_range(const std::vector<double>& power, std::size_t first, std::size_t last);

/// Finds all local maxima whose power exceeds `threshold`, sorted by
/// descending power. A local maximum is a bin strictly greater than both
/// circular neighbours.
std::vector<peak> find_peaks_above(const std::vector<double>& power, double threshold);

}  // namespace ns::dsp
