// Short-time Fourier transform spectrogram, used to reproduce Fig. 16
// (spectrogram of the backscattered signal at the three power levels) and
// as a debugging aid for chirp waveforms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "netscatter/dsp/fft.hpp"

namespace ns::dsp {

/// STFT configuration.
struct stft_params {
    std::size_t window_size = 256;  ///< FFT size per column (power of two)
    std::size_t hop = 128;          ///< samples between adjacent columns
    bool hann_window = true;        ///< apply a Hann window before the FFT
    bool shift = true;              ///< fftshift each column (centre DC)
};

/// A spectrogram: time-frequency power grid.
struct spectrogram_result {
    std::size_t columns = 0;                  ///< number of time frames
    std::size_t bins = 0;                     ///< frequency bins per frame
    std::vector<double> power_db;             ///< row-major [column][bin], dB
    double max_power_db = 0.0;                ///< overall maximum, for normalization
};

/// Hann window of length n.
std::vector<double> hann_window(std::size_t n);

/// Computes the STFT power spectrogram of a complex baseband signal.
/// Requires window_size to be a power of two and hop >= 1.
spectrogram_result compute_spectrogram(std::span<const cplx> signal, const stft_params& params);

/// Time-averaged power spectral density of a signal (Welch-style mean of
/// STFT columns), in dB; length equals params.window_size. Used to render
/// the "spectrum" views of Fig. 16.
std::vector<double> average_psd_db(std::span<const cplx> signal, const stft_params& params);

}  // namespace ns::dsp
