#include "netscatter/dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/util/error.hpp"

namespace ns::dsp {

bool is_power_of_two(std::size_t n) {
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) {
    ns::util::require(n >= 1, "next_power_of_two: n must be >= 1");
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

namespace {

// Bit-reversal permutation, then iterative butterflies. `sign` is -1 for
// the forward transform (engineering convention e^{-j2πkn/N}) and +1 for
// the inverse.
void transform(cvec& data, int sign) {
    const std::size_t n = data.size();
    ns::util::require(is_power_of_two(n), "fft: size must be a power of two");

    // Bit reversal.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(data[i], data[j]);
    }

    // Butterflies. Twiddles are computed per stage with a complex
    // multiplication recurrence refreshed from std::polar to bound error.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
        const cplx wlen = std::polar(1.0, angle);
        for (std::size_t i = 0; i < n; i += len) {
            cplx w{1.0, 0.0};
            for (std::size_t k = 0; k < len / 2; ++k) {
                const cplx even = data[i + k];
                const cplx odd = data[i + k + len / 2] * w;
                data[i + k] = even + odd;
                data[i + k + len / 2] = even - odd;
                w *= wlen;
            }
        }
    }
}

}  // namespace

void fft_inplace(cvec& data) {
    transform(data, -1);
}

void ifft_inplace(cvec& data) {
    transform(data, +1);
    const double scale = 1.0 / static_cast<double>(data.size());
    for (auto& value : data) value *= scale;
}

cvec fft(cvec data) {
    fft_inplace(data);
    return data;
}

cvec ifft(cvec data) {
    ifft_inplace(data);
    return data;
}

cvec fft_zero_padded(const cvec& data, std::size_t padded_size) {
    ns::util::require(padded_size >= data.size(),
                      "fft_zero_padded: padded size smaller than data");
    ns::util::require(is_power_of_two(padded_size),
                      "fft_zero_padded: padded size must be a power of two");
    cvec padded(padded_size, cplx{0.0, 0.0});
    std::copy(data.begin(), data.end(), padded.begin());
    fft_inplace(padded);
    return padded;
}

std::vector<double> power_spectrum(const cvec& spectrum) {
    std::vector<double> power(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i) power[i] = std::norm(spectrum[i]);
    return power;
}

std::vector<double> magnitude_spectrum(const cvec& spectrum) {
    std::vector<double> magnitude(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i) magnitude[i] = std::abs(spectrum[i]);
    return magnitude;
}

cvec fftshift(cvec spectrum) {
    const std::size_t n = spectrum.size();
    cvec shifted(n);
    const std::size_t half = n / 2;
    for (std::size_t i = 0; i < n; ++i) shifted[i] = spectrum[(i + half) % n];
    return shifted;
}

}  // namespace ns::dsp
