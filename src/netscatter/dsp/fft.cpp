#include "netscatter/dsp/fft.hpp"

#include <atomic>

#include "netscatter/engine/fft_plan.hpp"
#include "netscatter/util/error.hpp"

namespace ns::dsp {

bool is_power_of_two(std::size_t n) {
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) {
    ns::util::require(n >= 1, "next_power_of_two: n must be >= 1");
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

namespace {

std::atomic<bool> plan_caching_enabled{true};

// All transforms run through an ns::engine::fft_plan, which precomputes
// the bit-reversal permutation and per-stage twiddle tables. With the
// cache enabled (default) the plan is shared and reused across calls and
// threads; with it disabled a throwaway plan is built per call — the
// twiddles are still computed once per stage rather than per butterfly,
// and the butterfly code is the same, so both paths are bit-identical.
void transform(cvec& data, bool inverse) {
    ns::util::require(is_power_of_two(data.size()), "fft: size must be a power of two");
    if (plan_caching_enabled.load(std::memory_order_relaxed)) {
        const auto plan = ns::engine::get_fft_plan(data.size());
        inverse ? plan->inverse(data) : plan->forward(data);
    } else {
        const ns::engine::fft_plan plan(data.size());
        inverse ? plan.inverse(data) : plan.forward(data);
    }
}

}  // namespace

void set_fft_plan_caching(bool enabled) {
    plan_caching_enabled.store(enabled, std::memory_order_relaxed);
}

bool fft_plan_caching_enabled() {
    return plan_caching_enabled.load(std::memory_order_relaxed);
}

void fft_inplace(cvec& data) {
    transform(data, false);
}

void ifft_inplace(cvec& data) {
    transform(data, true);
}

cvec fft(cvec data) {
    fft_inplace(data);
    return data;
}

cvec ifft(cvec data) {
    ifft_inplace(data);
    return data;
}

cvec fft_zero_padded(const cvec& data, std::size_t padded_size) {
    ns::util::require(padded_size >= data.size(),
                      "fft_zero_padded: padded size smaller than data");
    ns::util::require(is_power_of_two(padded_size),
                      "fft_zero_padded: padded size must be a power of two");
    // Copy the payload once and zero-fill only the tail, instead of
    // zero-initializing the whole buffer and then overwriting the prefix.
    cvec padded;
    padded.reserve(padded_size);
    padded.assign(data.begin(), data.end());
    padded.resize(padded_size, cplx{0.0, 0.0});
    fft_inplace(padded);
    return padded;
}

std::vector<double> power_spectrum(const cvec& spectrum) {
    std::vector<double> power;
    power_spectrum_into(spectrum, power);
    return power;
}

void power_spectrum_into(const cvec& spectrum, std::vector<double>& power) {
    power.resize(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i) power[i] = std::norm(spectrum[i]);
}

std::vector<double> magnitude_spectrum(const cvec& spectrum) {
    std::vector<double> magnitude(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i) magnitude[i] = std::abs(spectrum[i]);
    return magnitude;
}

cvec fftshift(cvec spectrum) {
    const std::size_t n = spectrum.size();
    cvec shifted(n);
    const std::size_t half = n / 2;
    for (std::size_t i = 0; i < n; ++i) shifted[i] = spectrum[(i + half) % n];
    return shifted;
}

}  // namespace ns::dsp
