#include "netscatter/dsp/peak.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::dsp {

std::size_t argmax(const std::vector<double>& power) {
    ns::util::require(!power.empty(), "argmax: empty spectrum");
    return static_cast<std::size_t>(
        std::distance(power.begin(), std::max_element(power.begin(), power.end())));
}

namespace {

// Three-point parabolic interpolation on log power around bin `b`.
// Returns the sub-bin offset in (-0.5, 0.5).
double parabolic_offset(const std::vector<double>& power, std::size_t b) {
    const std::size_t n = power.size();
    const double eps = 1e-30;  // avoid log(0) on exactly-zero neighbours
    const double left = std::log(power[(b + n - 1) % n] + eps);
    const double centre = std::log(power[b] + eps);
    const double right = std::log(power[(b + 1) % n] + eps);
    const double denom = left - 2.0 * centre + right;
    if (denom == 0.0) return 0.0;
    double offset = 0.5 * (left - right) / denom;
    return std::clamp(offset, -0.5, 0.5);
}

}  // namespace

peak find_peak(const std::vector<double>& power) {
    const std::size_t b = argmax(power);
    peak p;
    p.bin = b;
    p.power = power[b];
    p.fractional_bin = static_cast<double>(b) + parabolic_offset(power, b);
    return p;
}

peak find_peak_in_range(const std::vector<double>& power, std::size_t first, std::size_t last) {
    ns::util::require(!power.empty(), "find_peak_in_range: empty spectrum");
    const std::size_t n = power.size();
    ns::util::require(first < n && last < n, "find_peak_in_range: range out of bounds");
    const std::size_t count = (last >= first) ? (last - first + 1) : (n - first + last + 1);
    std::size_t best = first;
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t idx = (first + k) % n;
        if (power[idx] > power[best]) best = idx;
    }
    peak p;
    p.bin = best;
    p.power = power[best];
    p.fractional_bin = static_cast<double>(best) + parabolic_offset(power, best);
    return p;
}

std::vector<peak> find_peaks_above(const std::vector<double>& power, double threshold) {
    ns::util::require(!power.empty(), "find_peaks_above: empty spectrum");
    const std::size_t n = power.size();
    std::vector<peak> peaks;
    for (std::size_t i = 0; i < n; ++i) {
        const double left = power[(i + n - 1) % n];
        const double right = power[(i + 1) % n];
        if (power[i] > threshold && power[i] > left && power[i] > right) {
            peak p;
            p.bin = i;
            p.power = power[i];
            p.fractional_bin = static_cast<double>(i) + parabolic_offset(power, i);
            peaks.push_back(p);
        }
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const peak& a, const peak& b) { return a.power > b.power; });
    return peaks;
}

}  // namespace ns::dsp
