// Element-wise complex vector operations used by the modulator
// (superposing device signals) and demodulator (dechirping = element-wise
// multiplication by the conjugate downchirp).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "netscatter/dsp/fft.hpp"

namespace ns::dsp {

/// Pool of reusable complex-sample buffers with span-stable handout.
/// The outer vector may grow when a new buffer is acquired, but inner
/// heap storage never moves (vector move steals the pointer), so spans
/// into acquired buffers stay valid until the pool is released. Holders
/// of this invariant: the superposition channel's per-round packet
/// staging and the interference source's waveform storage.
class cvec_pool {
public:
    /// Hands out the next reusable buffer (contents unspecified).
    cvec& acquire() {
        if (used_ == buffers_.size()) buffers_.emplace_back();
        return buffers_[used_++];
    }
    /// Marks every buffer free; previously handed-out spans die here.
    void release_all() { used_ = 0; }

private:
    std::vector<cvec> buffers_;
    std::size_t used_ = 0;
};

/// Element-wise product a[i] * b[i]. Requires equal lengths.
cvec multiply(std::span<const cplx> a, std::span<const cplx> b);

/// Element-wise product with the conjugate of b: a[i] * conj(b[i]).
/// Requires equal lengths. (Dechirping multiplies by a downchirp, which is
/// the conjugate of the baseline upchirp.)
cvec multiply_conj(std::span<const cplx> a, std::span<const cplx> b);

/// Adds b into a in place: a[i] += b[i]. Requires b no longer than a.
void accumulate(cvec& a, std::span<const cplx> b);

/// Adds b into a starting at sample `offset`: a[offset+i] += b[i].
/// Samples of b that would fall past the end of a are dropped (a device
/// whose packet tail exceeds the capture window is simply truncated).
void accumulate_at(cvec& a, std::span<const cplx> b, std::size_t offset);

/// Fused scale + accumulate: a[offset+i] += b[i] * gain, without
/// materializing the scaled copy. Bit-identical to scale() followed by
/// accumulate_at() (same multiplication order), which lets the
/// superposition channel add an unmodified contribution without ever
/// copying its waveform. Overhang past the end of a is dropped.
void accumulate_scaled(cvec& a, std::span<const cplx> b, cplx gain, std::size_t offset);

/// Fused frequency shift + scale + accumulate:
/// a[offset+i] += (b[i] * e^{j 2π f i / fs}) * gain, using the exact
/// phasor recurrence of frequency_shift() (same re-anchoring cadence), so
/// the result is bit-identical to frequency_shift() + scale() +
/// accumulate_at() while touching one buffer instead of three.
void accumulate_scaled_shifted(cvec& a, std::span<const cplx> b, cplx gain,
                               double frequency_hz, double sample_rate_hz,
                               std::size_t offset);

/// Scales every element by `factor`.
void scale(cvec& a, double factor);

/// Scales every element by complex `factor` (amplitude and phase).
void scale(cvec& a, cplx factor);

/// Mean of |x[i]|^2 — the average signal power.
double mean_power(std::span<const cplx> a);

/// Total energy, sum of |x[i]|^2.
double energy(std::span<const cplx> a);

/// Returns a copy of `a` delayed by `delay` samples (prepends zeros and
/// truncates to the original length), modelling integer-sample timing
/// offset.
cvec delay_samples(std::span<const cplx> a, std::size_t delay);

/// Applies a frequency shift: a[i] * e^{j 2π f i / fs}.
cvec frequency_shift(std::span<const cplx> a, double frequency_hz, double sample_rate_hz);

/// frequency_shift into a caller-provided buffer (resized; capacity
/// reuse makes repeated calls allocation-free). `out` must not alias `a`.
void frequency_shift_into(std::span<const cplx> a, double frequency_hz,
                          double sample_rate_hz, cvec& out);

}  // namespace ns::dsp
