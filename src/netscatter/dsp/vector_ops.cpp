#include "netscatter/dsp/vector_ops.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/util/error.hpp"

namespace ns::dsp {

cvec multiply(std::span<const cplx> a, std::span<const cplx> b) {
    ns::util::require(a.size() == b.size(), "multiply: length mismatch");
    cvec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
    return out;
}

cvec multiply_conj(std::span<const cplx> a, std::span<const cplx> b) {
    ns::util::require(a.size() == b.size(), "multiply_conj: length mismatch");
    cvec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * std::conj(b[i]);
    return out;
}

void accumulate(cvec& a, std::span<const cplx> b) {
    ns::util::require(b.size() <= a.size(), "accumulate: b longer than a");
    for (std::size_t i = 0; i < b.size(); ++i) a[i] += b[i];
}

void accumulate_at(cvec& a, std::span<const cplx> b, std::size_t offset) {
    if (offset >= a.size()) return;
    const std::size_t count = std::min(b.size(), a.size() - offset);
    for (std::size_t i = 0; i < count; ++i) a[offset + i] += b[i];
}

void accumulate_scaled(cvec& a, std::span<const cplx> b, cplx gain, std::size_t offset) {
    if (offset >= a.size()) return;
    const std::size_t count = std::min(b.size(), a.size() - offset);
    for (std::size_t i = 0; i < count; ++i) a[offset + i] += b[i] * gain;
}

void accumulate_scaled_shifted(cvec& a, std::span<const cplx> b, cplx gain,
                               double frequency_hz, double sample_rate_hz,
                               std::size_t offset) {
    ns::util::require(sample_rate_hz > 0.0,
                      "accumulate_scaled_shifted: sample rate must be positive");
    if (offset >= a.size()) return;
    const std::size_t count = std::min(b.size(), a.size() - offset);
    const double step = 2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
    // Identical phasor recurrence to frequency_shift(): re-anchor from
    // std::polar on the same cadence so the fused pass is bit-identical
    // to the shift-then-scale-then-accumulate sequence it replaces.
    const cplx rotation = std::polar(1.0, step);
    cplx phasor{1.0, 0.0};
    constexpr std::size_t reanchor_interval = 1024;
    for (std::size_t i = 0; i < count; ++i) {
        if (i % reanchor_interval == 0) {
            phasor = std::polar(1.0, step * static_cast<double>(i));
        }
        a[offset + i] += (b[i] * phasor) * gain;
        phasor *= rotation;
    }
}

void scale(cvec& a, double factor) {
    for (auto& value : a) value *= factor;
}

void scale(cvec& a, cplx factor) {
    for (auto& value : a) value *= factor;
}

double mean_power(std::span<const cplx> a) {
    if (a.empty()) return 0.0;
    return energy(a) / static_cast<double>(a.size());
}

double energy(std::span<const cplx> a) {
    double total = 0.0;
    for (const auto& value : a) total += std::norm(value);
    return total;
}

cvec delay_samples(std::span<const cplx> a, std::size_t delay) {
    cvec out(a.size(), cplx{0.0, 0.0});
    for (std::size_t i = delay; i < a.size(); ++i) out[i] = a[i - delay];
    return out;
}

cvec frequency_shift(std::span<const cplx> a, double frequency_hz, double sample_rate_hz) {
    cvec out;
    frequency_shift_into(a, frequency_hz, sample_rate_hz, out);
    return out;
}

void frequency_shift_into(std::span<const cplx> a, double frequency_hz,
                          double sample_rate_hz, cvec& out) {
    ns::util::require(sample_rate_hz > 0.0, "frequency_shift: sample rate must be positive");
    out.resize(a.size());
    const double step = 2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
    // Phasor recurrence instead of per-sample sin/cos; re-anchor from
    // std::polar periodically to stop error accumulation.
    const cplx rotation = std::polar(1.0, step);
    cplx phasor{1.0, 0.0};
    constexpr std::size_t reanchor_interval = 1024;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (i % reanchor_interval == 0) {
            phasor = std::polar(1.0, step * static_cast<double>(i));
        }
        out[i] = a[i] * phasor;
        phasor *= rotation;
    }
}

}  // namespace ns::dsp
