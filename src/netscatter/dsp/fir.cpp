#include "netscatter/dsp/fir.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/util/error.hpp"

namespace ns::dsp {

std::vector<double> design_lowpass(double cutoff_norm, std::size_t num_taps) {
    ns::util::require(cutoff_norm > 0.0 && cutoff_norm < 0.5,
                      "design_lowpass: cutoff must be in (0, 0.5)");
    ns::util::require(num_taps >= 3 && num_taps % 2 == 1,
                      "design_lowpass: need an odd tap count >= 3");
    const auto middle = static_cast<double>(num_taps - 1) / 2.0;
    std::vector<double> taps(num_taps);
    double sum = 0.0;
    for (std::size_t i = 0; i < num_taps; ++i) {
        const double n = static_cast<double>(i) - middle;
        // Ideal sinc low-pass...
        const double ideal = n == 0.0 ? 2.0 * cutoff_norm
                                      : std::sin(2.0 * std::numbers::pi * cutoff_norm * n) /
                                            (std::numbers::pi * n);
        // ...shaped by a Hamming window.
        const double window =
            0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                   static_cast<double>(num_taps - 1));
        taps[i] = ideal * window;
        sum += taps[i];
    }
    for (auto& tap : taps) tap /= sum;  // unit DC gain
    return taps;
}

cvec fir_filter(const cvec& signal, const std::vector<double>& taps) {
    ns::util::require(!taps.empty(), "fir_filter: empty taps");
    cvec out(signal.size(), cplx{0.0, 0.0});
    for (std::size_t i = 0; i < signal.size(); ++i) {
        cplx acc{0.0, 0.0};
        const std::size_t t_max = std::min(taps.size() - 1, i);
        for (std::size_t t = 0; t <= t_max; ++t) {
            acc += taps[t] * signal[i - t];
        }
        out[i] = acc;
    }
    return out;
}

cvec fir_decimate(const cvec& signal, const std::vector<double>& taps,
                  std::size_t factor) {
    ns::util::require(factor >= 1, "fir_decimate: factor must be >= 1");
    ns::util::require(!taps.empty(), "fir_decimate: empty taps");
    const std::size_t out_len = signal.size() / factor;
    cvec out(out_len, cplx{0.0, 0.0});
    // Compensate the filter's group delay so output sample k aligns with
    // input sample k*factor.
    const std::size_t delay = (taps.size() - 1) / 2;
    for (std::size_t k = 0; k < out_len; ++k) {
        const std::size_t centre = k * factor + delay;
        cplx acc{0.0, 0.0};
        for (std::size_t t = 0; t < taps.size(); ++t) {
            if (centre < t) break;
            const std::size_t idx = centre - t;
            if (idx < signal.size()) acc += taps[t] * signal[idx];
        }
        out[k] = acc;
    }
    return out;
}

cvec frontend_decimate(const cvec& capture, std::size_t oversample,
                       std::size_t num_taps) {
    ns::util::require(oversample >= 1, "frontend_decimate: oversample >= 1");
    if (oversample == 1) return capture;
    // Pass the +-BW/2 chirp band: cutoff at 0.5/oversample of the input
    // rate, with a little margin for the transition band.
    const double cutoff = 0.5 / static_cast<double>(oversample);
    const std::vector<double> taps = design_lowpass(cutoff, num_taps);
    return fir_decimate(capture, taps, oversample);
}

double fir_response_at(const std::vector<double>& taps, double normalized_frequency) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < taps.size(); ++t) {
        acc += taps[t] * std::polar(1.0, -2.0 * std::numbers::pi * normalized_frequency *
                                             static_cast<double>(t));
    }
    return std::abs(acc);
}

}  // namespace ns::dsp
