#include "netscatter/scenario/interference.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/phy/modulator.hpp"
#include "netscatter/util/error.hpp"

namespace ns::scenario {

interference_source::interference_source(interference_spec spec,
                                         ns::phy::css_params phy,
                                         std::size_t packet_samples,
                                         std::uint64_t seed)
    : spec_(spec), phy_(phy), packet_samples_(packet_samples), rng_(seed) {
    ns::util::require(packet_samples_ > 0, "interference: empty capture window");
    ns::util::require(spec_.period_rounds >= 1,
                      "interference: period_rounds must be >= 1");
}

ns::channel::tx_contribution interference_source::make_tone(double tone_hz) {
    ns::dsp::cvec& waveform = waveform_pool_.acquire();
    waveform.resize(packet_samples_);
    const double step = 2.0 * std::numbers::pi * tone_hz / phy_.bandwidth_hz;
    for (std::size_t n = 0; n < packet_samples_; ++n) {
        waveform[n] = std::polar(1.0, step * static_cast<double>(n));
    }
    ns::channel::tx_contribution tx;
    tx.waveform = waveform;
    tx.snr_db = spec_.snr_db;
    tx.random_phase = true;
    return tx;
}

ns::channel::tx_contribution interference_source::make_lora_frame() {
    // A foreign classic-CSS frame: same (BW, SF) chirps carrying random
    // symbol values, misaligned by a random integer + fractional sample
    // offset, so its dechirped peaks are neither slot- nor bin-aligned.
    const ns::phy::lora_modulator modulator(phy_);
    const std::size_t sps = phy_.samples_per_symbol();
    const std::size_t symbols = packet_samples_ / sps + 1;
    std::vector<std::uint32_t> values(symbols);
    for (auto& value : values) {
        value = static_cast<std::uint32_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(phy_.num_bins()) - 1));
    }
    ns::dsp::cvec& waveform = waveform_pool_.acquire();
    waveform = modulator.modulate(values);
    ns::channel::tx_contribution tx;
    tx.waveform = waveform;
    tx.snr_db = spec_.snr_db;
    tx.timing_offset_s = rng_.uniform(0.0, phy_.symbol_duration_s());
    tx.sample_delay = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(sps) - 1));
    tx.random_phase = true;
    return tx;
}

std::vector<ns::channel::tx_contribution> interference_source::step(std::size_t round) {
    waveform_pool_.release_all();  // previous round's spans are dead
    std::vector<ns::channel::tx_contribution> contributions;
    switch (spec_.kind) {
        case interference_kind::none:
            break;
        case interference_kind::periodic_tone:
            if (round % spec_.period_rounds == 0) {
                contributions.push_back(make_tone(spec_.tone_hz));
            }
            break;
        case interference_kind::bursty_tone:
            if (rng_.bernoulli(spec_.burst_probability)) {
                contributions.push_back(make_tone(
                    rng_.uniform(-phy_.bandwidth_hz / 2.0, phy_.bandwidth_hz / 2.0)));
            }
            break;
        case interference_kind::lora_frame:
            if (rng_.bernoulli(spec_.burst_probability)) {
                contributions.push_back(make_lora_frame());
            }
            break;
    }
    total_events_ += contributions.size();
    return contributions;
}

}  // namespace ns::scenario
