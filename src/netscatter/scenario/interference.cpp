#include "netscatter/scenario/interference.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "netscatter/mac/allocator.hpp"
#include "netscatter/mac/scheduler.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/util/error.hpp"

namespace ns::scenario {

interference_source::interference_source(interference_spec spec,
                                         ns::phy::css_params phy,
                                         std::size_t packet_samples,
                                         std::uint64_t seed)
    : spec_(spec), phy_(phy), packet_samples_(packet_samples), rng_(seed) {
    ns::util::require(packet_samples_ > 0, "interference: empty capture window");
    ns::util::require(spec_.period_rounds >= 1,
                      "interference: period_rounds must be >= 1");
}

ns::channel::tx_contribution interference_source::make_tone(double tone_hz) {
    ns::dsp::cvec& waveform = waveform_pool_.acquire();
    waveform.resize(packet_samples_);
    const double step = 2.0 * std::numbers::pi * tone_hz / phy_.bandwidth_hz;
    for (std::size_t n = 0; n < packet_samples_; ++n) {
        waveform[n] = std::polar(1.0, step * static_cast<double>(n));
    }
    ns::channel::tx_contribution tx;
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    tx.snr_db = spec_.snr_db;
    tx.random_phase = true;
    return tx;
}

ns::channel::tx_contribution interference_source::make_lora_frame() {
    // A foreign classic-CSS frame: same (BW, SF) chirps carrying random
    // symbol values, misaligned by a random integer + fractional sample
    // offset, so its dechirped peaks are neither slot- nor bin-aligned.
    const ns::phy::lora_modulator modulator(phy_);
    const std::size_t sps = phy_.samples_per_symbol();
    const std::size_t symbols = packet_samples_ / sps + 1;
    std::vector<std::uint32_t> values(symbols);
    for (auto& value : values) {
        value = static_cast<std::uint32_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(phy_.num_bins()) - 1));
    }
    ns::dsp::cvec& waveform = waveform_pool_.acquire();
    waveform = modulator.modulate(values);
    ns::channel::tx_contribution tx;
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    tx.snr_db = spec_.snr_db;
    tx.timing_offset_s = rng_.uniform(0.0, phy_.symbol_duration_s());
    tx.sample_delay = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(sps) - 1));
    tx.random_phase = true;
    return tx;
}

std::vector<ns::channel::tx_contribution> interference_source::step(std::size_t round) {
    waveform_pool_.release_all();  // previous round's spans are dead
    std::vector<ns::channel::tx_contribution> contributions;
    switch (spec_.kind) {
        case interference_kind::none:
            break;
        case interference_kind::periodic_tone:
            if (round % spec_.period_rounds == 0) {
                contributions.push_back(make_tone(spec_.tone_hz));
            }
            break;
        case interference_kind::bursty_tone:
            if (rng_.bernoulli(spec_.burst_probability)) {
                contributions.push_back(make_tone(
                    rng_.uniform(-phy_.bandwidth_hz / 2.0, phy_.bandwidth_hz / 2.0)));
            }
            break;
        case interference_kind::lora_frame:
            if (rng_.bernoulli(spec_.burst_probability)) {
                contributions.push_back(make_lora_frame());
            }
            break;
    }
    total_events_ += contributions.size();
    return contributions;
}

cochannel_source::cochannel_source(cochannel_spec spec, ns::phy::css_params phy,
                                   std::uint32_t skip, ns::phy::frame_format frame,
                                   ns::channel::crystal_model crystal,
                                   ns::channel::hardware_delay_model delay,
                                   std::uint64_t seed)
    : spec_(spec), frame_(frame), delay_(delay), rng_(seed) {
    ns::util::require(spec_.num_devices > 0,
                      "cochannel: num_devices must be > 0 when enabled");
    ns::util::require(spec_.min_snr_db <= spec_.max_snr_db,
                      "cochannel: min_snr_db must be <= max_snr_db");
    ns::util::require(spec_.duty_cycle >= 0.0 && spec_.duty_cycle <= 1.0,
                      "cochannel: duty_cycle must be in [0, 1]");
    ns::util::require(spec_.max_round_offset_s >= 0.0,
                      "cochannel: max_round_offset_s must be >= 0");

    // The inter-AP carrier offset is common to every foreign packet seen
    // by the victim (one oscillator pair), drawn once.
    const double network_cfo_hz =
        rng_.uniform(-spec_.carrier_offset_hz, spec_.carrier_offset_hz);

    // Draw the foreign population's link budgets at the victim AP plus
    // each device's own crystal offset.
    std::vector<ns::mac::device_power> powers;
    powers.reserve(spec_.num_devices);
    std::vector<double> snrs(spec_.num_devices);
    std::vector<double> cfos(spec_.num_devices);
    for (std::size_t i = 0; i < spec_.num_devices; ++i) {
        snrs[i] = rng_.uniform(spec_.min_snr_db, spec_.max_snr_db);
        cfos[i] = crystal.sample_static_offset_hz(rng_) + network_cfo_hz;
        powers.push_back({static_cast<std::uint32_t>(i), snrs[i]});
    }

    // The foreign AP's own §3.3.3 machinery: signal-strength partition,
    // then a power-aware per-group shift allocation on the same slot
    // geometry (identical PHY/SKIP — both networks deploy NetScatter).
    const ns::mac::shift_allocator allocator(
        ns::mac::allocation_params{.phy = phy, .skip = skip,
                                   .num_association_slots = 0});
    const ns::mac::group_scheduler scheduler(ns::mac::scheduler_params{
        .group_capacity =
            std::min(spec_.group_capacity, allocator.num_data_slots())});
    const std::vector<ns::mac::device_group> partition =
        scheduler.partition(powers);
    num_groups_ = std::max<std::size_t>(1, partition.size());
    schedule_phase_ = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(num_groups_) - 1));

    devices_.reserve(spec_.num_devices);
    for (std::size_t g = 0; g < partition.size(); ++g) {
        std::vector<ns::mac::device_power> members;
        members.reserve(partition[g].size());
        for (std::uint32_t id : partition[g].device_ids) {
            members.push_back({id, snrs[id]});
        }
        const auto shifts = allocator.allocate(members).shifts;
        for (std::uint32_t id : partition[g].device_ids) {
            devices_.push_back({.shift = shifts.at(id),
                                .group = g,
                                .snr_db = snrs[id],
                                .cfo_hz = cfos[id]});
        }
    }
    bits_store_.reserve(spec_.num_devices * frame_.payload_plus_crc_bits());
}

std::span<const ns::channel::packet_contribution> cochannel_source::step(
    std::size_t round) {
    contribs_.clear();
    bits_store_.clear();
    const std::size_t scheduled = (round + schedule_phase_) % num_groups_;
    // The APs are unsynchronized: this round's offset of the foreign
    // query relative to the victim's, common to the scheduled group.
    const double round_offset_s = rng_.uniform(0.0, spec_.max_round_offset_s);
    const std::size_t frame_bits = frame_.payload_plus_crc_bits();

    for (const foreign_device& device : devices_) {
        if (device.group != scheduled) continue;
        if (!rng_.bernoulli(spec_.duty_cycle)) continue;
        ns::channel::packet_contribution packet;
        packet.cyclic_shift = device.shift;
        packet.snr_db = device.snr_db;
        packet.timing_offset_s = round_offset_s + delay_.sample_s(rng_);
        packet.frequency_offset_hz = device.cfo_hz;
        // The foreign payload is opaque data to the victim: i.i.d. bits.
        for (std::size_t b = 0; b < frame_bits; ++b) {
            bits_store_.push_back(rng_.bernoulli(0.5) ? 1 : 0);
        }
        contribs_.push_back(packet);
    }
    // Attach the bit spans once the store is final (reserve() in the
    // constructor makes growth here impossible, but stay defensive).
    for (std::size_t row = 0; row < contribs_.size(); ++row) {
        contribs_[row].frame_bits = std::span<const std::uint8_t>(
            bits_store_.data() + row * frame_bits, frame_bits);
    }
    total_tx_ += contribs_.size();
    return contribs_;
}

}  // namespace ns::scenario
