// Composition of the scenario models into the simulator's hook interface.
//
// One driver instance serves one simulator replica: it owns a traffic
// model, a churn process, a mobility process and an interference source
// — each on an independent seed stream split from the replica seed — and
// translates their per-round decisions into the round_plan the simulator
// applies. It also accumulates the scenario-level statistics (offered
// load, join latency) that the simulator cannot see.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netscatter/scenario/churn.hpp"
#include "netscatter/scenario/interference.hpp"
#include "netscatter/scenario/mobility.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/scenario/traffic.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/round_hooks.hpp"

namespace ns::scenario {

/// Control-plane statistics a driver gathers over one replica.
struct driver_stats {
    std::size_t join_requests = 0;
    std::size_t joins = 0;
    std::size_t leaves = 0;
    std::size_t interference_events = 0;
    std::size_t offered = 0;  ///< device-rounds that had data
    std::size_t gated = 0;    ///< device-rounds without data
    double total_join_wait_rounds = 0.0;
    /// slotted_aloha churn: association requests transmitted / collided.
    std::size_t association_tx = 0;
    std::size_t association_collisions = 0;
    /// Per-round mean re-association latency (rounds; 0 when nothing
    /// joined that round). Concatenated across replicas by merge().
    std::vector<double> join_latency_series;
    /// Per-join wait (rounds) in admission order — the re-association
    /// latency distribution. Concatenated across replicas by merge().
    std::vector<double> join_waits;

    void merge(const driver_stats& other);
    /// Mean rounds a joiner waited for its slot (0 when none joined).
    double mean_join_latency_rounds() const;
    /// Realized offered load over gated+offered device-rounds.
    double offered_load() const;
    /// p-th percentile (0..100) of the join-wait distribution (0 when
    /// nothing joined).
    double join_wait_percentile(double p) const;
};

/// round_hooks implementation backed by the scenario models.
class scenario_driver final : public ns::sim::round_hooks {
public:
    /// `seed` is the replica's base seed; the four models split it into
    /// independent streams. `dep` must outlive the driver.
    scenario_driver(const scenario_spec& spec, const ns::sim::deployment& dep,
                    std::uint64_t seed);

    std::optional<std::vector<std::uint32_t>> initial_active() override;
    ns::sim::round_plan plan_round(std::size_t round) override;
    bool offers_traffic(std::size_t round, std::uint32_t device_id) override;
    /// Protocol recovery: a device the simulator declared down (reboot,
    /// lease eviction, missed-query trip, abandoned handshake) re-enters
    /// the churn admission path and contends for a slot like any joiner.
    void on_member_lost(std::size_t round, std::uint32_t device_id,
                        ns::sim::member_loss_reason reason) override;

    const driver_stats& stats() const { return stats_; }

private:
    scenario_spec spec_;
    bool has_churn_ = false;
    traffic_model traffic_;
    churn_process churn_;
    mobility_process mobility_;
    interference_source interference_;
    /// The co-channel network (spec.cochannel.enabled only), on its own
    /// seed stream like every other model.
    std::optional<cochannel_source> cochannel_;
    driver_stats stats_;
};

/// Allocator slot capacity for the spec's PHY/skip configuration — one
/// concurrent round's device ceiling.
std::size_t concurrency_capacity(const scenario_spec& spec);

/// Churn admission ceiling: one round's concurrency without grouping,
/// the whole universe when §3.3.3 group scheduling is on (every device
/// can hold a (group, slot) assignment).
std::size_t admission_capacity(const scenario_spec& spec, std::size_t universe);

}  // namespace ns::scenario
