// In-band interference injection.
//
// The paper deploys in the 900 MHz ISM band, which NetScatter shares
// with everything else that lives there. This injector synthesizes the
// two interferer families that matter for a CSS receiver and hands them
// to the superposition channel as extra contributions:
//  * narrowband tones (periodic or bursty) — a tone lands in a handful
//    of dechirped FFT bins and raids whoever is parked nearby;
//  * classic-CSS (LoRa) frames — same chirp slope as NetScatter, so a
//    misaligned foreign frame dechirps into moving peaks that sweep
//    across the registered shifts.
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/channel/superposition.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::scenario {

/// Deterministic per-round interference source.
class interference_source {
public:
    /// `packet_samples` is the AP capture-window length the contribution
    /// must fill (the simulator's per-round window).
    interference_source(interference_spec spec, ns::phy::css_params phy,
                        std::size_t packet_samples, std::uint64_t seed);

    /// Contributions to sum into `round`'s channel (possibly empty).
    /// Waveform spans view storage owned by this source; they stay valid
    /// until the next step() call.
    std::vector<ns::channel::tx_contribution> step(std::size_t round);

    std::size_t total_events() const { return total_events_; }

private:
    ns::channel::tx_contribution make_tone(double tone_hz);
    ns::channel::tx_contribution make_lora_frame();

    interference_spec spec_;
    ns::phy::css_params phy_;
    std::size_t packet_samples_;
    ns::util::rng rng_;
    std::size_t total_events_ = 0;
    /// Waveform storage behind the returned spans (span-stable handout;
    /// see ns::dsp::cvec_pool). Released at each step().
    ns::dsp::cvec_pool waveform_pool_;
};

}  // namespace ns::scenario
