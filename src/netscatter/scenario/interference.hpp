// In-band interference injection.
//
// The paper deploys in the 900 MHz ISM band, which NetScatter shares
// with everything else that lives there. This injector synthesizes the
// two interferer families that matter for a CSS receiver and hands them
// to the superposition channel as extra contributions:
//  * narrowband tones (periodic or bursty) — a tone lands in a handful
//    of dechirped FFT bins and raids whoever is parked nearby;
//  * classic-CSS (LoRa) frames — same chirp slope as NetScatter, so a
//    misaligned foreign frame dechirps into moving peaks that sweep
//    across the registered shifts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::scenario {

/// Deterministic per-round interference source.
class interference_source {
public:
    /// `packet_samples` is the AP capture-window length the contribution
    /// must fill (the simulator's per-round window).
    interference_source(interference_spec spec, ns::phy::css_params phy,
                        std::size_t packet_samples, std::uint64_t seed);

    /// Contributions to sum into `round`'s channel (possibly empty).
    /// Waveform spans view storage owned by this source; they stay valid
    /// until the next step() call.
    std::vector<ns::channel::tx_contribution> step(std::size_t round);

    std::size_t total_events() const { return total_events_; }

private:
    ns::channel::tx_contribution make_tone(double tone_hz);
    ns::channel::tx_contribution make_lora_frame();

    interference_spec spec_;
    ns::phy::css_params phy_;
    std::size_t packet_samples_;
    ns::util::rng rng_;
    std::size_t total_events_ = 0;
    /// Waveform storage behind the returned spans (span-stable handout;
    /// see ns::dsp::cvec_pool). Released at each step().
    ns::dsp::cvec_pool waveform_pool_;
};

/// A second NetScatter network sharing the band (cochannel_spec): the
/// foreign AP runs its own §3.3.3 grouped schedule — its population is
/// partitioned into signal-strength groups by the same group_scheduler
/// the victim AP uses, shifts are allocated power-aware per group, and
/// one group is addressed per round (round-robin on the foreign AP's own
/// phase). The scheduled members' packets are produced as symbolic
/// packet_contributions (round_plan::cochannel), so the victim simulator
/// superposes them on either synthesis path and co-channel rounds stay
/// fast-path eligible.
class cochannel_source {
public:
    /// `skip`/`frame`/`crystal`/`delay` mirror the victim sim's
    /// configuration: both networks deploy the same protocol stack.
    cochannel_source(cochannel_spec spec, ns::phy::css_params phy,
                     std::uint32_t skip, ns::phy::frame_format frame,
                     ns::channel::crystal_model crystal,
                     ns::channel::hardware_delay_model delay, std::uint64_t seed);

    /// Foreign packets to superpose into `round` (possibly empty).
    /// frame_bits spans view storage owned by this source; they stay
    /// valid until the next step() call.
    std::span<const ns::channel::packet_contribution> step(std::size_t round);

    std::size_t total_tx() const { return total_tx_; }
    std::size_t num_groups() const { return num_groups_; }
    std::uint32_t network_id() const { return spec_.network_id; }

private:
    struct foreign_device {
        std::uint32_t shift = 0;
        std::size_t group = 0;
        double snr_db = 0.0;       ///< at the victim AP
        double cfo_hz = 0.0;       ///< crystal offset + inter-AP carrier offset
    };

    cochannel_spec spec_;
    ns::phy::frame_format frame_;
    ns::channel::hardware_delay_model delay_;
    ns::util::rng rng_;
    std::vector<foreign_device> devices_;  ///< grouped, strongest first
    std::size_t num_groups_ = 1;
    std::size_t schedule_phase_ = 0;  ///< the foreign AP's round-robin phase
    std::size_t total_tx_ = 0;
    /// Per-round storage behind the returned spans.
    std::vector<std::uint8_t> bits_store_;
    std::vector<ns::channel::packet_contribution> contribs_;
};

}  // namespace ns::scenario
