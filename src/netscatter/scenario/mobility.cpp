#include "netscatter/scenario/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/channel/pathloss.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::scenario {

namespace {

double distance_to_ap(const ns::sim::deployment& dep, double x_m, double y_m) {
    // Avoid the pathological log-distance singularity right at the AP.
    return std::max(0.5, std::hypot(x_m - dep.ap_x_m(), y_m - dep.ap_y_m()));
}

}  // namespace

mobility_process::mobility_process(mobility_spec spec, const ns::sim::deployment& dep,
                                   std::uint64_t seed)
    : spec_(spec), deployment_(&dep), rng_(seed) {
    ns::util::require(spec_.mobile_fraction >= 0.0 && spec_.mobile_fraction <= 1.0,
                      "mobility: mobile_fraction must be in [0, 1]");
    ns::util::require(spec_.speed_mps >= 0.0 && spec_.round_period_s > 0.0,
                      "mobility: speed must be >= 0 and round period > 0");
    for (const auto& device : dep.devices()) {
        if (!rng_.bernoulli(spec_.mobile_fraction)) continue;
        mover m;
        m.id = device.id;
        m.x_m = device.x_m;
        m.y_m = device.y_m;
        m.waypoint_x_m = rng_.uniform(0.0, dep.params().floor_width_m);
        m.waypoint_y_m = rng_.uniform(0.0, dep.params().floor_depth_m);
        // The placement's loss includes a lognormal shadowing draw; start
        // from the device's offset from the deterministic model. As the
        // device walks, the offset decorrelates with distance (Gudmundson
        // model, see step()) instead of travelling frozen with it.
        const double deterministic = ns::channel::oneway_loss_db(
            dep.params().pathloss, distance_to_ap(dep, m.x_m, m.y_m), device.walls);
        m.shadow_db = device.oneway_loss_db - deterministic;
        movers_.push_back(m);
    }
}

ns::sim::link_update mobility_process::derive_update(mover& m,
                                                     double prev_distance_m) const {
    const ns::sim::deployment& dep = *deployment_;
    const double distance = distance_to_ap(dep, m.x_m, m.y_m);
    const int walls = dep.walls_between(m.x_m, m.y_m);
    const double oneway = ns::channel::oneway_loss_db(dep.params().pathloss, distance,
                                                      walls) +
                          m.shadow_db;

    ns::sim::link_update update;
    update.device_id = m.id;
    update.query_rssi_dbm = dep.params().ap_tx_dbm - oneway;
    update.uplink_rx_dbm = dep.params().ap_tx_dbm -
                           (2.0 * oneway + dep.params().conversion_loss_db);
    update.tof_s = distance / ns::util::speed_of_light_mps;
    // Radial velocity toward the AP gives a positive Doppler shift; the
    // backscatter round trip doubles it.
    const double radial_mps = (prev_distance_m - distance) / spec_.round_period_s;
    update.doppler_hz = 2.0 * radial_mps / ns::util::speed_of_light_mps *
                        spec_.carrier_hz;
    return update;
}

std::vector<ns::sim::link_update> mobility_process::step(std::size_t round) {
    (void)round;
    std::vector<ns::sim::link_update> updates;
    updates.reserve(movers_.size());
    const double step_m = spec_.speed_mps * spec_.round_period_s;
    for (mover& m : movers_) {
        const double prev_distance = distance_to_ap(*deployment_, m.x_m, m.y_m);
        const double to_wx = m.waypoint_x_m - m.x_m;
        const double to_wy = m.waypoint_y_m - m.y_m;
        const double remaining = std::hypot(to_wx, to_wy);
        double moved_m = step_m;
        if (remaining <= step_m || remaining == 0.0) {
            moved_m = remaining;
            m.x_m = m.waypoint_x_m;
            m.y_m = m.waypoint_y_m;
            m.waypoint_x_m = rng_.uniform(0.0, deployment_->params().floor_width_m);
            m.waypoint_y_m = rng_.uniform(0.0, deployment_->params().floor_depth_m);
        } else {
            m.x_m += step_m * to_wx / remaining;
            m.y_m += step_m * to_wy / remaining;
        }
        // Shadowing decorrelates with walked distance (Gudmundson):
        // stationary AR(1) step at correlation exp(-moved/d_corr).
        m.shadow_db = ns::channel::gudmundson_shadowing_step_db(
            deployment_->params().pathloss, m.shadow_db, moved_m, rng_);
        updates.push_back(derive_update(m, prev_distance));
    }
    return updates;
}

}  // namespace ns::scenario
