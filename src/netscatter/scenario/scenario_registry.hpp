// Named, reproducible workloads.
//
// The registry is the catalogue `netscatter_sim --list` prints and the
// benches/CI smoke run from. Every entry is a plain scenario_spec — to
// add a scenario, append one here (or build a spec by hand and hand it
// straight to run_scenario; registration is a convenience, not a
// requirement).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netscatter/scenario/scenario_spec.hpp"

namespace ns::scenario {

/// All registered scenarios, in presentation order.
const std::vector<scenario_spec>& registry();

/// Looks a scenario up by name.
std::optional<scenario_spec> find_scenario(const std::string& name);

}  // namespace ns::scenario
