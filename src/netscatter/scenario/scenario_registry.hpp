// Named, reproducible workloads.
//
// The registry is the catalogue `netscatter_sim --list` prints and the
// benches/CI smoke run from. Since the spec subsystem landed it is a
// thin loader over the committed `specs/*.spec` files (ns::spec codec):
// registry() parses every file in ns::spec::spec_dir() at first use, in
// file-name order. The historical C++ table survives one release as
// builtin_registry() — a test oracle the spec files must round-trip
// bit-identically against — and as the fallback when the spec directory
// is absent (e.g. an installed binary away from the source tree). To
// add a scenario, commit a spec file (or build a spec by hand and hand
// it straight to run_scenario; registration is a convenience, not a
// requirement).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netscatter/scenario/scenario_spec.hpp"

namespace ns::scenario {

/// All registered scenarios, in presentation order. Loaded from
/// `spec_dir()/*.spec` (sorted by file name); falls back to
/// builtin_registry() when the directory is missing or empty, and
/// throws ns::spec::spec_error when a file exists but does not parse.
const std::vector<scenario_spec>& registry();

/// Where each registry() entry came from, index-aligned: the spec file
/// path, or "<builtin>" on fallback.
const std::vector<std::string>& registry_sources();

/// The legacy compiled-in scenario table. Kept for one release as the
/// oracle tests/test_spec.cpp holds the committed spec files to
/// (serialize(builtin) must equal the file byte-for-byte) and as the
/// no-spec-dir fallback; new scenarios go into specs/*.spec only.
const std::vector<scenario_spec>& builtin_registry();

/// Looks a scenario up by name.
std::optional<scenario_spec> find_scenario(const std::string& name);

}  // namespace ns::scenario
