// Declarative scenario description.
//
// A scenario_spec names everything a reproducible workload needs: the
// deployment geometry (a preset plus overrides), the traffic model that
// decides which devices have data each round, the churn process that
// joins/leaves devices through the AP's re-association machinery, the
// mobility process that re-derives link budgets as devices move, the
// interference injector that shares the band, and the simulator knobs.
// Specs are plain aggregates: the registry (scenario_registry.hpp) ships
// named instances and the runner (scenario_runner.hpp) executes any spec
// deterministically at scale.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netscatter/faults/fault_spec.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"

namespace ns::scenario {

/// Deployment geometry presets.
enum class geometry_preset {
    office,           ///< the paper's multi-room office floor (Fig. 1)
    warehouse_aisle,  ///< long open hall with racking rows
    open_field,       ///< free-space deployment, no interior walls
};

/// Geometry = preset + population + optional overrides.
struct geometry_spec {
    geometry_preset preset = geometry_preset::office;
    std::size_t num_devices = 256;
    std::optional<double> floor_width_m;
    std::optional<double> floor_depth_m;
    std::optional<std::size_t> rooms_x;
    std::optional<std::size_t> rooms_y;
    std::optional<double> ap_tx_dbm;
    std::optional<double> pathloss_exponent;
    std::optional<double> wall_loss_db;
    std::optional<double> min_distance_m;
    std::optional<double> shadowing_sigma_db;
};

/// Resolves a geometry spec into concrete deployment parameters.
ns::sim::deployment_params resolve_geometry(const geometry_spec& geometry);

/// Traffic model kinds (scenario/traffic.hpp).
enum class traffic_kind {
    saturated,  ///< every device has data every round (the paper's mode)
    periodic,   ///< duty-cycled reporting with a per-device phase
    poisson,    ///< independent Poisson arrivals into a per-device queue
    bursty,     ///< event-driven: idle until a burst of backlog arrives
};

struct traffic_spec {
    traffic_kind kind = traffic_kind::saturated;
    /// periodic: fraction of each period with data.
    double duty_cycle = 1.0;
    /// periodic: period length in rounds.
    std::size_t period_rounds = 1;
    /// poisson: mean packet arrivals per device per round.
    double arrivals_per_round = 1.0;
    /// bursty: probability an idle device starts a burst each round.
    double burst_probability = 0.05;
    /// bursty: packets of backlog per burst.
    std::size_t burst_length = 5;
};

/// How joiners are admitted into the network (scenario/churn.hpp).
enum class association_mode {
    /// Bounded FIFO queue: up to max_joins_per_round admissions per
    /// round. A scheduling abstraction, not a protocol model.
    bounded_queue,
    /// Slotted Aloha with binary exponential backoff on the reserved
    /// association shifts (§3.3.2, mac/aloha): simultaneous requests on
    /// a shift collide and back off, and at most
    /// association_grants_per_round responses ride each query (Fig. 11
    /// carries one) — collisions and backoff shape the re-association
    /// latency distribution.
    slotted_aloha,
};

/// Poisson join/leave churn (scenario/churn.hpp).
struct churn_spec {
    double join_rate_per_round = 0.0;   ///< mean join requests per round
    double leave_rate_per_round = 0.0;  ///< mean departures per round
    /// Devices associated at round 0; SIZE_MAX means the whole universe
    /// (clamped to the admission capacity).
    std::size_t initial_active = static_cast<std::size_t>(-1);
    /// bounded_queue: association slots served per round; queued joiners
    /// beyond this wait, which the re-association latency measures.
    std::size_t max_joins_per_round = 2;

    association_mode association = association_mode::bounded_queue;
    std::uint32_t aloha_initial_window = 2;
    std::uint32_t aloha_max_window = 64;
    /// slotted_aloha: piggybacked association responses per query.
    /// Effective ceiling is the number of SNR-region association shifts
    /// (currently 2): the contention pool grants at most one request per
    /// region per round, so values above 2 buy nothing.
    std::size_t association_grants_per_round = 1;
};

/// Waypoint-drift mobility (scenario/mobility.hpp).
struct mobility_spec {
    double mobile_fraction = 0.0;  ///< fraction of devices that move
    double speed_mps = 1.4;        ///< walking pace
    double round_period_s = 0.05;  ///< wall-clock time between rounds
    double carrier_hz = 900e6;     ///< for the Doppler term
};

/// In-band interference injector (scenario/interference.hpp).
enum class interference_kind {
    none,
    periodic_tone,  ///< a fixed tone every `period_rounds` rounds
    bursty_tone,    ///< random-frequency tone with per-round probability
    lora_frame,     ///< misaligned classic-CSS (LoRa) frames
};

struct interference_spec {
    interference_kind kind = interference_kind::none;
    double snr_db = 15.0;          ///< interferer strength over the noise floor
    std::size_t period_rounds = 4; ///< periodic_tone cadence
    double burst_probability = 0.2;///< bursty_tone / lora_frame per-round odds
    double tone_hz = 100e3;        ///< periodic_tone frequency (baseband)
};

/// Co-channel NetScatter network (scenario/interference.hpp): a second
/// AP with a distinct network_id running its own §3.3.3 grouped schedule
/// in the same band. Its devices' packets superpose into the victim
/// receiver as structured interference; being standard NetScatter
/// packets they are symbol-domain representable, so co-channel rounds
/// keep the fast path (unlike the waveform injectors above).
struct cochannel_spec {
    bool enabled = false;
    std::uint32_t network_id = 1;     ///< distinct from the victim's sim.network_id
    std::size_t num_devices = 128;    ///< foreign population
    /// Probability a scheduled foreign device transmits each round (the
    /// foreign network's offered load).
    double duty_cycle = 1.0;
    std::size_t group_capacity = 256; ///< the foreign AP's grouped schedule
    /// Foreign uplink SNR range at the VICTIM AP (dB over its noise
    /// floor, uniform per device). The foreign network is typically
    /// farther away, hence weaker than the victim's own devices.
    double min_snr_db = -4.0;
    double max_snr_db = 10.0;
    /// The two APs are unsynchronized: per-round offset of the foreign
    /// round start relative to the victim's, uniform in [0, max]. Each
    /// microsecond displaces the foreign dechirped peaks by BW·1e-6
    /// bins, sweeping them across the victim's slot grid.
    double max_round_offset_s = 40e-6;
    /// Static inter-AP carrier offset bound (uniform ±, drawn once).
    double carrier_offset_hz = 120.0;
};

/// One complete, reproducible workload.
struct scenario_spec {
    std::string name;
    std::string description;
    geometry_spec geometry{};
    traffic_spec traffic{};
    churn_spec churn{};
    mobility_spec mobility{};
    interference_spec interference{};
    cochannel_spec cochannel{};
    /// Control-plane fault injection + recovery (faults/fault_spec.hpp):
    /// lossy queries, lost ACKs, reboots, blackouts, and the lease /
    /// missed-query / ACK-retry recovery knobs. The runner copies it into
    /// sim.faults; all-zero (the default) leaves every scenario
    /// bit-identical to a fault-free build.
    ns::faults::fault_spec faults{};
    /// Simulator knobs. `sim.rounds` is the per-replica round count and
    /// `sim.seed` the base seed every replica/model stream splits from.
    ns::sim::sim_config sim{};
    /// Independent Monte-Carlo repetitions; replicas fan out in parallel
    /// and merge in replica order (bit-identical on any thread count).
    std::size_t replicas = 2;
};

}  // namespace ns::scenario
