// Per-device traffic models (which devices have data each round).
//
// The paper's evaluation keeps every device saturated; real sensor
// fleets report on duty cycles, with Poisson-ish independent readings,
// or in event-driven bursts. The model answers one question per active
// device per round — "does this device have a packet?" — and the
// simulator sits a device out when the answer is no, so offered load
// (not just channel capacity) shapes the network metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::scenario {

/// Stateful traffic model over a fixed device universe. Calls must be
/// made in a deterministic order (the simulator queries active devices
/// in slot order) for run-to-run reproducibility.
class traffic_model {
public:
    traffic_model(traffic_spec spec, std::size_t num_devices, std::uint64_t seed);

    /// Whether `device_id` has a packet to send in `round`. For queueing
    /// kinds (poisson, bursty) a `true` consumes one packet of backlog.
    bool offers(std::size_t round, std::uint32_t device_id);

    /// Long-run expected fraction of device-rounds with data; the
    /// statistics tests check realized load against this.
    double expected_offered_load() const;

    const traffic_spec& spec() const { return spec_; }

private:
    traffic_spec spec_;
    ns::util::rng rng_;
    std::vector<std::size_t> phase_;       ///< periodic: per-device offset
    std::vector<std::uint64_t> backlog_;   ///< poisson/bursty: queued packets
};

}  // namespace ns::scenario
