// Deterministic scenario execution at scale.
//
// A scenario runs as `spec.replicas` independent Monte-Carlo replicas.
// Each replica is a pure function of (spec, replica index): it builds
// the deployment, a scenario_driver on a split seed, and a simulator,
// and runs the full round sequence — cross-round state (fading memory,
// churn queues, waypoint positions, power-adaptation baselines) stays
// inside its replica. Replicas fan out through the engine's mc_runner
// and merge in replica order, so a run is bit-identical on any thread
// count — the contract tests/test_scenario.cpp enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/scenario/scenario_driver.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/sim/network_sim.hpp"

namespace ns::scenario {

/// Execution policy for one scenario run.
struct run_options {
    std::size_t num_threads = 0;  ///< 0 = hardware_concurrency()
    bool parallel = true;         ///< false = serial reference order
};

/// Outcome of one scenario run.
struct scenario_result {
    scenario_spec spec;        ///< the spec as executed
    ns::sim::sim_result sim;   ///< per-round outcomes, replicas concatenated
    driver_stats stats;        ///< control-plane stats, replicas merged
    std::size_t replicas = 0;
    double round_time_s = 0.0;   ///< airtime of one query-response round
    /// §3.3.3: scheduled-group count (0 when grouping is off). Serving
    /// the whole population once takes num_groups rounds.
    std::size_t num_groups = 0;
    /// Extra airtime the control plane spent on full-reassignment /
    /// regroup queries (the config-2 1760-bit ordering message instead
    /// of the 32-bit config-1 query), summed over the run.
    double control_overhead_s = 0.0;
    /// Query airtimes of the two query configurations for this spec's
    /// PHY/frame — the values the per-round query_time_s timeline and
    /// control_overhead_s are derived from (computed once here so the
    /// costing rule cannot drift between the runner and its consumers).
    double config1_query_time_s = 0.0;
    double config2_query_time_s = 0.0;
    double wall_clock_s = 0.0;   ///< host time (excluded from determinism)

    /// Mean delivered goodput in bit/s over the simulated airtime.
    double throughput_bps() const;
    /// 1 - delivery_rate over transmitted packets.
    double loss_rate() const;
    /// Time to serve every device once: one round per scheduled group.
    double network_latency_s() const;
};

/// Whether a round's query carried a config-2 ordering message (a full
/// reassignment or regroup rode it): that round pays the 1760-bit query
/// airtime instead of the 32-bit query. One query per round, however
/// many events it carried — control_overhead_s and the per-round
/// query_time_s series both follow this rule.
bool carries_config2_query(const ns::sim::round_outcome& round);

/// Outcome of one Monte-Carlo replica — the unit of parallel
/// decomposition run_scenario and the sweep engine both fan out over
/// mc_runner.
struct replica_result {
    ns::sim::sim_result sim;
    driver_stats stats;
};

/// Runs replica `r` of `spec`: a pure function of (spec, r) — it builds
/// its own deployment, driver and simulator on split seeds, so replicas
/// of different specs can interleave freely on one worker pool.
replica_result run_scenario_replica(const scenario_spec& spec, std::size_t r);

/// Merges per-replica outcomes (must be in replica order) into a
/// scenario_result, deriving the timing/overhead summary fields.
/// `wall_clock_s` is the caller-measured host time (excluded from
/// determinism).
scenario_result merge_scenario_replicas(const scenario_spec& spec,
                                        std::vector<replica_result> replicas,
                                        double wall_clock_s);

/// Runs `spec` and returns the merged result. Deterministic in
/// (spec, options.parallel ? any thread count : serial) — i.e. the same
/// spec gives bit-identical results for every execution policy.
scenario_result run_scenario(const scenario_spec& spec, run_options options = {});

}  // namespace ns::scenario
