#include "netscatter/scenario/churn.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::scenario {

churn_process::churn_process(churn_spec spec, std::size_t universe,
                             std::size_t capacity, std::uint64_t seed)
    : spec_(spec),
      universe_(universe),
      capacity_(capacity),
      rng_(seed),
      active_(universe, false),
      pending_(universe, false) {
    ns::util::require(universe > 0, "churn: universe must be non-empty");
    ns::util::require(spec_.join_rate_per_round >= 0.0 &&
                          spec_.leave_rate_per_round >= 0.0,
                      "churn: rates must be >= 0");
    const std::size_t initial =
        std::min({spec_.initial_active, universe, capacity});
    initial_active_.reserve(initial);
    for (std::size_t i = 0; i < initial; ++i) {
        active_[i] = true;
        initial_active_.push_back(static_cast<std::uint32_t>(i));
    }
    active_count_ = initial;
}

std::vector<std::uint32_t> churn_process::pick(std::size_t count,
                                               const std::vector<bool>& eligible) {
    std::vector<std::uint32_t> pool;
    pool.reserve(universe_);
    for (std::size_t i = 0; i < universe_; ++i) {
        if (eligible[i]) pool.push_back(static_cast<std::uint32_t>(i));
    }
    std::vector<std::uint32_t> chosen;
    chosen.reserve(std::min(count, pool.size()));
    for (std::size_t n = 0; n < count && !pool.empty(); ++n) {
        const std::size_t at = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
        chosen.push_back(pool[at]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(at));
    }
    return chosen;
}

churn_events churn_process::step(std::size_t round) {
    churn_events events;

    // Departures first: they free capacity for this round's admissions.
    const std::size_t departures =
        static_cast<std::size_t>(rng_.poisson(spec_.leave_rate_per_round));
    events.leaves = pick(departures, active_);
    for (std::uint32_t id : events.leaves) {
        active_[id] = false;
        --active_count_;
        ++total_leaves_;
    }

    // New join requests queue up (a device already waiting doesn't
    // re-request).
    const std::size_t requests =
        static_cast<std::size_t>(rng_.poisson(spec_.join_rate_per_round));
    std::vector<bool> eligible(universe_, false);
    for (std::size_t i = 0; i < universe_; ++i) {
        eligible[i] = !active_[i] && !pending_[i];
    }
    for (std::uint32_t id : pick(requests, eligible)) {
        pending_[id] = true;
        queue_.emplace_back(id, round);
        ++total_requests_;
    }

    // Serve the association queue: bounded per round and by capacity.
    double wait_sum = 0.0;
    while (!queue_.empty() && events.joins.size() < spec_.max_joins_per_round &&
           active_count_ < capacity_) {
        const auto [id, requested] = queue_.front();
        queue_.pop_front();
        pending_[id] = false;
        active_[id] = true;
        ++active_count_;
        events.joins.push_back(id);
        const double wait = static_cast<double>(round - requested) + 1.0;
        wait_sum += wait;
        total_wait_rounds_ += wait;
        ++total_joins_;
    }
    if (!events.joins.empty()) {
        events.mean_join_latency_rounds =
            wait_sum / static_cast<double>(events.joins.size());
    }
    return events;
}

}  // namespace ns::scenario
