#include "netscatter/scenario/churn.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::scenario {

churn_process::churn_process(churn_spec spec, std::size_t universe,
                             std::size_t capacity, std::uint64_t seed,
                             std::vector<bool> low_region)
    : spec_(spec),
      universe_(universe),
      capacity_(capacity),
      rng_(seed),
      active_(universe, false),
      pending_(universe, false),
      low_region_(std::move(low_region)),
      contention_(spec.aloha_initial_window, spec.aloha_max_window) {
    ns::util::require(universe > 0, "churn: universe must be non-empty");
    ns::util::require(spec_.join_rate_per_round >= 0.0 &&
                          spec_.leave_rate_per_round >= 0.0,
                      "churn: rates must be >= 0");
    ns::util::require(low_region_.empty() || low_region_.size() == universe,
                      "churn: low_region must be empty or universe-sized");
    const std::size_t initial =
        std::min({spec_.initial_active, universe, capacity});
    initial_active_.reserve(initial);
    for (std::size_t i = 0; i < initial; ++i) {
        active_[i] = true;
        initial_active_.push_back(static_cast<std::uint32_t>(i));
    }
    active_count_ = initial;
}

std::size_t churn_process::pending_joins() const {
    return spec_.association == association_mode::slotted_aloha
               ? contention_.size()
               : queue_.size();
}

std::vector<std::uint32_t> churn_process::pick(std::size_t count,
                                               const std::vector<bool>& eligible) {
    std::vector<std::uint32_t> pool;
    pool.reserve(universe_);
    for (std::size_t i = 0; i < universe_; ++i) {
        if (eligible[i]) pool.push_back(static_cast<std::uint32_t>(i));
    }
    std::vector<std::uint32_t> chosen;
    chosen.reserve(std::min(count, pool.size()));
    for (std::size_t n = 0; n < count && !pool.empty(); ++n) {
        const std::size_t at = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
        chosen.push_back(pool[at]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(at));
    }
    return chosen;
}

void churn_process::admit(std::uint32_t id, std::size_t request_round,
                          std::size_t round, churn_events& events,
                          double& wait_sum) {
    pending_[id] = false;
    active_[id] = true;
    ++active_count_;
    events.joins.push_back(id);
    const double wait = static_cast<double>(round - request_round) + 1.0;
    wait_sum += wait;
    total_wait_rounds_ += wait;
    join_waits_.push_back(wait);
    ++total_joins_;
}

void churn_process::force_rejoin(std::uint32_t id, std::size_t round) {
    ns::util::require(static_cast<std::size_t>(id) < universe_,
                      "churn: force_rejoin id outside the universe");
    if (active_[id]) {
        // The device lost its association out-of-band (the churn process
        // didn't emit a leave): reconcile the membership view.
        active_[id] = false;
        --active_count_;
    }
    if (pending_[id]) return;  // already waiting for a slot
    pending_[id] = true;
    ++total_requests_;
    if (spec_.association == association_mode::slotted_aloha) {
        const bool low = !low_region_.empty() && low_region_[id];
        request_round_[id] = round;
        contention_.add(id,
                        low ? ns::device::snr_region::low
                            : ns::device::snr_region::high,
                        rng_.fork());
    } else {
        queue_.emplace_back(id, round);
    }
}

churn_events churn_process::step(std::size_t round) {
    churn_events events;

    // Departures first: they free capacity for this round's admissions.
    const std::size_t departures =
        static_cast<std::size_t>(rng_.poisson(spec_.leave_rate_per_round));
    events.leaves = pick(departures, active_);
    for (std::uint32_t id : events.leaves) {
        active_[id] = false;
        --active_count_;
        ++total_leaves_;
    }

    // New join requests enter the admission path (a device already
    // waiting doesn't re-request).
    const std::size_t requests =
        static_cast<std::size_t>(rng_.poisson(spec_.join_rate_per_round));
    std::vector<bool> eligible(universe_, false);
    for (std::size_t i = 0; i < universe_; ++i) {
        eligible[i] = !active_[i] && !pending_[i];
    }
    const bool aloha = spec_.association == association_mode::slotted_aloha;
    for (std::uint32_t id : pick(requests, eligible)) {
        pending_[id] = true;
        ++total_requests_;
        if (aloha) {
            const bool low = !low_region_.empty() && low_region_[id];
            request_round_[id] = round;
            contention_.add(id,
                            low ? ns::device::snr_region::low
                                : ns::device::snr_region::high,
                            rng_.fork());
        } else {
            queue_.emplace_back(id, round);
        }
    }

    double wait_sum = 0.0;
    if (aloha) {
        // Contend on the reserved association shifts; a grant only
        // sticks while the network has room (a full network defers the
        // winners — they keep contending).
        const std::size_t room = active_count_ < capacity_
                                     ? capacity_ - active_count_
                                     : 0;
        const std::size_t max_grants =
            std::min(room, spec_.association_grants_per_round);
        const ns::mac::contention_round contended = contention_.step(max_grants);
        total_association_tx_ += contended.requests;
        total_collisions_ += contended.collisions;
        for (std::uint32_t id : contended.granted) {
            admit(id, request_round_.at(id), round, events, wait_sum);
            request_round_.erase(id);
        }
    } else {
        // Serve the association queue: bounded per round and by capacity.
        while (!queue_.empty() && events.joins.size() < spec_.max_joins_per_round &&
               active_count_ < capacity_) {
            const auto [id, requested] = queue_.front();
            queue_.pop_front();
            admit(id, requested, round, events, wait_sum);
        }
    }
    if (!events.joins.empty()) {
        events.mean_join_latency_rounds =
            wait_sum / static_cast<double>(events.joins.size());
    }
    return events;
}

}  // namespace ns::scenario
