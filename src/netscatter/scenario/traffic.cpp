#include "netscatter/scenario/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::scenario {

traffic_model::traffic_model(traffic_spec spec, std::size_t num_devices,
                             std::uint64_t seed)
    : spec_(spec), rng_(seed), phase_(num_devices, 0), backlog_(num_devices, 0) {
    ns::util::require(spec_.period_rounds >= 1,
                      "traffic: period_rounds must be >= 1");
    ns::util::require(spec_.duty_cycle >= 0.0 && spec_.duty_cycle <= 1.0,
                      "traffic: duty_cycle must be in [0, 1]");
    ns::util::require(spec_.arrivals_per_round >= 0.0,
                      "traffic: arrivals_per_round must be >= 0");
    ns::util::require(spec_.burst_probability >= 0.0 && spec_.burst_probability <= 1.0,
                      "traffic: burst_probability must be in [0, 1]");
    // Random per-device phases desynchronize periodic reporters the way
    // independently power-cycled sensors are.
    for (auto& phase : phase_) {
        phase = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(spec_.period_rounds) - 1));
    }
}

bool traffic_model::offers(std::size_t round, std::uint32_t device_id) {
    const std::size_t i = device_id % phase_.size();
    switch (spec_.kind) {
        case traffic_kind::saturated:
            return true;
        case traffic_kind::periodic: {
            const std::size_t on_rounds = static_cast<std::size_t>(
                std::llround(spec_.duty_cycle *
                             static_cast<double>(spec_.period_rounds)));
            return (round + phase_[i]) % spec_.period_rounds < on_rounds;
        }
        case traffic_kind::poisson: {
            backlog_[i] += rng_.poisson(spec_.arrivals_per_round);
            if (backlog_[i] == 0) return false;
            --backlog_[i];
            return true;
        }
        case traffic_kind::bursty: {
            if (backlog_[i] == 0 && rng_.bernoulli(spec_.burst_probability)) {
                backlog_[i] = spec_.burst_length;
            }
            if (backlog_[i] == 0) return false;
            --backlog_[i];
            return true;
        }
    }
    return true;
}

double traffic_model::expected_offered_load() const {
    switch (spec_.kind) {
        case traffic_kind::saturated:
            return 1.0;
        case traffic_kind::periodic:
            return std::llround(spec_.duty_cycle *
                                static_cast<double>(spec_.period_rounds)) /
                   static_cast<double>(spec_.period_rounds);
        case traffic_kind::poisson:
            // The per-device queue serves one packet per round, so its
            // utilization is min(arrival rate, 1).
            return std::min(spec_.arrivals_per_round, 1.0);
        case traffic_kind::bursty: {
            // Renewal cycle: a burst of L busy rounds, then a geometric
            // idle gap with mean 1/p rounds.
            const double busy = static_cast<double>(spec_.burst_length);
            if (spec_.burst_probability <= 0.0) return 0.0;
            return busy / (busy + 1.0 / spec_.burst_probability);
        }
    }
    return 1.0;
}

}  // namespace ns::scenario
