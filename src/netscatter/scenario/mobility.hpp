// Waypoint-drift mobility: devices walk the floor, link budgets follow.
//
// A mobile device drifts toward a uniformly-drawn waypoint at walking
// pace and picks a new one on arrival (random-waypoint model). Every
// round the process re-derives the device's path loss — log-distance
// exponent, walls actually crossed at the new position, the device's
// shadowing offset correlated along the walk (Gudmundson model:
// spatial correlation exp(-d/d_corr), so the local clutter decorrelates
// as the device moves instead of travelling frozen with it) — plus
// round-trip flight time and the radial Doppler shift, and hands the
// simulator the updated budget. The device's power-adaptation loop
// (§3.2.3) then reacts to the moving channel exactly as it would in
// deployment.
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/round_hooks.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::scenario {

/// Deterministic random-waypoint mobility over a deployment.
class mobility_process {
public:
    mobility_process(mobility_spec spec, const ns::sim::deployment& dep,
                     std::uint64_t seed);

    /// Advances one round; returns the link updates of every mobile
    /// device (empty when mobile_fraction == 0).
    std::vector<ns::sim::link_update> step(std::size_t round);

    std::size_t mobile_count() const { return movers_.size(); }

    /// Current position of mover `i` (tests).
    std::pair<double, double> position(std::size_t i) const {
        return {movers_[i].x_m, movers_[i].y_m};
    }

    /// Current shadowing offset of mover `i` in dB (tests): evolves along
    /// the walk with the Gudmundson correlation.
    double shadow_db(std::size_t i) const { return movers_[i].shadow_db; }

private:
    struct mover {
        std::uint32_t id = 0;
        double x_m = 0.0, y_m = 0.0;
        double waypoint_x_m = 0.0, waypoint_y_m = 0.0;
        double shadow_db = 0.0;  ///< Gudmundson-correlated shadowing offset
    };

    ns::sim::link_update derive_update(mover& m, double prev_distance_m) const;

    mobility_spec spec_;
    const ns::sim::deployment* deployment_;
    ns::util::rng rng_;
    std::vector<mover> movers_;
};

}  // namespace ns::scenario
