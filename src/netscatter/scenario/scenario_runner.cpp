#include "netscatter/scenario/scenario_runner.hpp"

#include <chrono>
#include <utility>

#include "netscatter/obs/metrics.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/error.hpp"

namespace ns::scenario {

double scenario_result::throughput_bps() const {
    if (sim.rounds.empty() || round_time_s <= 0.0) return 0.0;
    const double payload_bits =
        static_cast<double>(sim.total_delivered) *
        static_cast<double>(spec.sim.frame.payload_bits);
    return payload_bits /
           (static_cast<double>(sim.rounds.size()) * round_time_s);
}

double scenario_result::loss_rate() const {
    if (sim.total_transmitting == 0) return 0.0;
    return 1.0 - sim.delivery_rate();
}

double scenario_result::network_latency_s() const {
    return round_time_s * static_cast<double>(num_groups == 0 ? 1 : num_groups);
}

bool carries_config2_query(const ns::sim::round_outcome& round) {
    return round.full_reassignments > 0 || round.regroups > 0;
}

replica_result run_scenario_replica(const scenario_spec& spec, std::size_t r) {
    // Every replica rebuilds the (identical) deployment rather than
    // sharing one: replica tasks stay pure functions of their index
    // with no cross-thread reads.
    const ns::sim::deployment_params dep_params = resolve_geometry(spec.geometry);
    const ns::sim::deployment dep(dep_params, spec.geometry.num_devices,
                                  spec.sim.seed);
    scenario_driver driver(spec, dep,
                           ns::engine::split_seed(spec.sim.seed, 0xd21f, r));
    ns::sim::sim_config config = spec.sim;
    config.seed = ns::engine::split_seed(spec.sim.seed, 0x51a1, r);
    // Spec-level fault processes ride into the simulator; with both
    // all-zero (the default) nothing changes downstream.
    if (spec.faults.enabled()) config.faults = spec.faults;
    // Each replica's spans land on their own Perfetto track, so a
    // parallel run renders as stacked per-replica timelines.
    config.obs.trace_track = static_cast<std::uint32_t>(r);
    ns::sim::network_simulator sim(dep, config, &driver);
    const std::uint64_t replica_start_ns = ns::obs::now_ns();
    replica_result out{sim.run(), driver.stats()};
    if (config.obs.metrics) {
        // Per-replica wall clock as a histogram observation: the merged
        // snapshot then reports replica-wall min/max/mean across the
        // whole run (timing-named -> determinism-exempt).
        out.sim.metrics.record_value(
            "replica.wall_s",
            static_cast<double>(ns::obs::now_ns() - replica_start_ns) * 1e-9);
    }
    return out;
}

scenario_result run_scenario(const scenario_spec& spec, run_options options) {
    ns::util::require(spec.replicas >= 1, "scenario: replicas must be >= 1");
    spec.sim.validate();
    spec.faults.validate();
    const auto start = std::chrono::steady_clock::now();

    const ns::engine::mc_runner runner(
        {.rounds_per_task = 0,  // replicas never split mid-stream
         .num_threads = options.num_threads,
         .parallel = options.parallel});
    std::vector<replica_result> replicas = runner.run_indexed(
        spec.replicas,
        [&](std::size_t r) { return run_scenario_replica(spec, r); });
    const double wall_clock_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return merge_scenario_replicas(spec, std::move(replicas), wall_clock_s);
}

scenario_result merge_scenario_replicas(const scenario_spec& spec,
                                        std::vector<replica_result> replicas,
                                        double wall_clock_s) {
    scenario_result result;
    result.spec = spec;
    result.replicas = spec.replicas;
    for (auto& replica : replicas) {
        result.sim.merge(replica.sim);
        result.stats.merge(replica.stats);
    }
    const ns::sim::round_timing config1_timing = ns::sim::netscatter_round(
        spec.sim.frame, spec.sim.phy, ns::sim::query_config::config1);
    const ns::sim::round_timing config2_timing = ns::sim::netscatter_round(
        spec.sim.frame, spec.sim.phy, ns::sim::query_config::config2);
    result.round_time_s = config1_timing.total_time_s;
    result.config1_query_time_s = config1_timing.query_time_s;
    result.config2_query_time_s = config2_timing.query_time_s;
    result.num_groups = result.sim.num_groups;
    // Control-plane cost on the query-overhead timeline (§3.3.3): see
    // carries_config2_query for the rule.
    const double config2_extra_s =
        config2_timing.query_time_s - config1_timing.query_time_s;
    std::size_t config2_rounds = 0;
    for (const auto& round : result.sim.rounds) {
        if (carries_config2_query(round)) ++config2_rounds;
    }
    result.control_overhead_s = static_cast<double>(config2_rounds) * config2_extra_s;
    result.wall_clock_s = wall_clock_s;
    return result;
}

}  // namespace ns::scenario
