// Poisson join/leave churn over a device universe.
//
// Devices request to join per a Poisson process and depart likewise.
// Two admission paths gate how long a joiner waits for its slot — the
// re-association latency the churn scenarios report:
//   * bounded_queue — the AP serves at most `max_joins_per_round`
//     association slots per round (and never past capacity), so joiners
//     queue FIFO;
//   * slotted_aloha — joiners contend on their SNR region's reserved
//     association shift through the shared Aloha pool (mac/aloha, the
//     same machinery the standalone association-phase simulator runs):
//     simultaneous requests collide and back off, and at most
//     `association_grants_per_round` responses ride each query, so
//     collisions and backoff shape the latency distribution.
// Admitted joins and departures flow to the simulator through
// round_plan, which drives the AP's incremental slot allocation and
// full-reassignment fallback end-to-end.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "netscatter/mac/aloha.hpp"
#include "netscatter/scenario/scenario_spec.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::scenario {

/// One round's membership changes plus the latency of completed joins.
struct churn_events {
    std::vector<std::uint32_t> joins;
    std::vector<std::uint32_t> leaves;
    /// Mean rounds-from-request-to-slot of this round's admitted joins
    /// (0 when none joined).
    double mean_join_latency_rounds = 0.0;
};

/// Deterministic churn process.
class churn_process {
public:
    /// `universe` is the number of placed devices (ids 0..universe-1);
    /// `capacity` the admission limit on concurrently-active devices.
    /// `low_region` (may be empty = everyone high) flags the devices
    /// whose association requests use the low-SNR shift — only consulted
    /// in slotted_aloha mode.
    churn_process(churn_spec spec, std::size_t universe, std::size_t capacity,
                  std::uint64_t seed, std::vector<bool> low_region = {});

    /// Devices associated before round 0.
    const std::vector<std::uint32_t>& initial_active() const { return initial_active_; }

    /// Advances one round.
    churn_events step(std::size_t round);

    /// Protocol-recovery entry point: `id` lost its association (reboot,
    /// lease eviction, missed-query trip, abandoned handshake) and must
    /// rejoin through the normal admission path. Marks the device
    /// inactive in the churn view and re-enters it as a join request at
    /// `round` — through the Aloha contention pool or the FIFO queue like
    /// any other joiner. Idempotent while the device is already waiting.
    void force_rejoin(std::uint32_t id, std::size_t round);

    std::size_t total_join_requests() const { return total_requests_; }
    std::size_t total_joins() const { return total_joins_; }
    std::size_t total_leaves() const { return total_leaves_; }
    double total_join_wait_rounds() const { return total_wait_rounds_; }
    std::size_t pending_joins() const;

    /// slotted_aloha: association requests transmitted / collided so far.
    std::size_t total_association_tx() const { return total_association_tx_; }
    std::size_t total_collisions() const { return total_collisions_; }
    /// Per-join wait (rounds), in admission order — the re-association
    /// latency distribution.
    const std::vector<double>& join_waits() const { return join_waits_; }

private:
    /// Picks `count` distinct ids satisfying `eligible`, uniformly.
    std::vector<std::uint32_t> pick(std::size_t count,
                                    const std::vector<bool>& eligible);
    void admit(std::uint32_t id, std::size_t request_round, std::size_t round,
               churn_events& events, double& wait_sum);

    churn_spec spec_;
    std::size_t universe_;
    std::size_t capacity_;
    ns::util::rng rng_;
    std::vector<bool> active_;
    std::vector<bool> pending_;
    std::vector<bool> low_region_;
    std::deque<std::pair<std::uint32_t, std::size_t>> queue_;  ///< (id, request round)
    ns::mac::aloha_contention contention_;
    std::unordered_map<std::uint32_t, std::size_t> request_round_;
    std::vector<std::uint32_t> initial_active_;
    std::vector<double> join_waits_;
    std::size_t active_count_ = 0;
    std::size_t total_requests_ = 0;
    std::size_t total_joins_ = 0;
    std::size_t total_leaves_ = 0;
    std::size_t total_association_tx_ = 0;
    std::size_t total_collisions_ = 0;
    double total_wait_rounds_ = 0.0;
};

}  // namespace ns::scenario
