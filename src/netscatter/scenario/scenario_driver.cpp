#include "netscatter/scenario/scenario_driver.hpp"

#include <algorithm>

#include "netscatter/engine/mc_runner.hpp"
#include "netscatter/mac/allocator.hpp"

namespace ns::scenario {

namespace {

/// Which devices' association requests use the low-SNR shift, by the
/// same RSSI rule the devices apply (device_params threshold).
std::vector<bool> low_region_flags(const ns::sim::deployment& dep) {
    const double threshold = ns::device::device_params{}.low_rssi_threshold_dbm;
    std::vector<bool> low;
    low.reserve(dep.devices().size());
    for (const auto& device : dep.devices()) {
        low.push_back(device.query_rssi_dbm < threshold);
    }
    return low;
}

}  // namespace

void driver_stats::merge(const driver_stats& other) {
    join_requests += other.join_requests;
    joins += other.joins;
    leaves += other.leaves;
    interference_events += other.interference_events;
    offered += other.offered;
    gated += other.gated;
    total_join_wait_rounds += other.total_join_wait_rounds;
    association_tx += other.association_tx;
    association_collisions += other.association_collisions;
    join_latency_series.insert(join_latency_series.end(),
                               other.join_latency_series.begin(),
                               other.join_latency_series.end());
    join_waits.insert(join_waits.end(), other.join_waits.begin(),
                      other.join_waits.end());
}

double driver_stats::join_wait_percentile(double p) const {
    if (join_waits.empty()) return 0.0;
    std::vector<double> sorted = join_waits;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double driver_stats::mean_join_latency_rounds() const {
    if (joins == 0) return 0.0;
    return total_join_wait_rounds / static_cast<double>(joins);
}

double driver_stats::offered_load() const {
    const std::size_t total = offered + gated;
    if (total == 0) return 0.0;
    return static_cast<double>(offered) / static_cast<double>(total);
}

std::size_t concurrency_capacity(const scenario_spec& spec) {
    const ns::mac::shift_allocator allocator(ns::mac::allocation_params{
        .phy = spec.sim.phy, .skip = spec.sim.skip, .num_association_slots = 0});
    return allocator.num_data_slots();
}

std::size_t admission_capacity(const scenario_spec& spec, std::size_t universe) {
    // With §3.3.3 grouping the AP schedules as many groups as the
    // population needs — every placed device can hold a (group, slot)
    // assignment, so churn admission is bounded by the universe, not by
    // one round's concurrency.
    if (spec.sim.grouping.enabled) return universe;
    return concurrency_capacity(spec);
}

scenario_driver::scenario_driver(const scenario_spec& spec,
                                 const ns::sim::deployment& dep, std::uint64_t seed)
    : spec_(spec),
      has_churn_(spec.churn.join_rate_per_round > 0.0 ||
                 spec.churn.leave_rate_per_round > 0.0 ||
                 spec.churn.initial_active < dep.devices().size() ||
                 // Faults need the churn admission path live even in an
                 // otherwise-static population: rebooted/evicted devices
                 // rejoin through it (checked on both the spec-level
                 // field and an already-copied sim.faults).
                 spec.faults.enabled() || spec.sim.faults.enabled()),
      traffic_(spec.traffic, dep.devices().size(),
               ns::engine::split_seed(seed, 1, 0)),
      churn_(spec.churn, dep.devices().size(),
             admission_capacity(spec, dep.devices().size()),
             ns::engine::split_seed(seed, 2, 0), low_region_flags(dep)),
      mobility_(spec.mobility, dep, ns::engine::split_seed(seed, 3, 0)),
      interference_(spec.interference, spec.sim.phy,
                    (spec.sim.frame.preamble_symbols +
                     spec.sim.frame.payload_plus_crc_bits()) *
                        spec.sim.phy.samples_per_symbol(),
                    ns::engine::split_seed(seed, 4, 0)) {
    if (spec_.cochannel.enabled) {
        cochannel_.emplace(spec_.cochannel, spec_.sim.phy, spec_.sim.skip,
                           spec_.sim.frame, spec_.sim.crystal, spec_.sim.delay_model,
                           ns::engine::split_seed(seed, 5, 0));
    }
}

std::optional<std::vector<std::uint32_t>> scenario_driver::initial_active() {
    if (!has_churn_) return std::nullopt;  // everyone, batch-associated
    return churn_.initial_active();
}

ns::sim::round_plan scenario_driver::plan_round(std::size_t round) {
    ns::sim::round_plan plan;
    if (has_churn_) {
        churn_events events = churn_.step(round);
        plan.joins = std::move(events.joins);
        plan.leaves = std::move(events.leaves);
        stats_.join_latency_series.push_back(events.mean_join_latency_rounds);
        stats_.joins = churn_.total_joins();
        stats_.leaves = churn_.total_leaves();
        stats_.join_requests = churn_.total_join_requests();
        stats_.total_join_wait_rounds = churn_.total_join_wait_rounds();
        stats_.association_tx = churn_.total_association_tx();
        stats_.association_collisions = churn_.total_collisions();
        // Only this round's admissions are new; the churn process
        // appends, so the tail beyond what we already copied is exactly
        // the increment.
        const std::vector<double>& waits = churn_.join_waits();
        stats_.join_waits.insert(
            stats_.join_waits.end(),
            waits.begin() + static_cast<std::ptrdiff_t>(stats_.join_waits.size()),
            waits.end());
    } else {
        stats_.join_latency_series.push_back(0.0);
    }
    plan.link_updates = mobility_.step(round);
    plan.interference = interference_.step(round);
    stats_.interference_events = interference_.total_events();
    if (cochannel_) {
        const auto packets = cochannel_->step(round);
        plan.cochannel.assign(packets.begin(), packets.end());
    }
    return plan;
}

void scenario_driver::on_member_lost(std::size_t round, std::uint32_t device_id,
                                     ns::sim::member_loss_reason reason) {
    (void)reason;  // every loss kind recovers through the same admission path
    if (!has_churn_) return;
    churn_.force_rejoin(device_id, round);
    stats_.join_requests = churn_.total_join_requests();
}

bool scenario_driver::offers_traffic(std::size_t round, std::uint32_t device_id) {
    const bool offers = traffic_.offers(round, device_id);
    if (offers) {
        ++stats_.offered;
    } else {
        ++stats_.gated;
    }
    return offers;
}

}  // namespace ns::scenario
