#include "netscatter/scenario/scenario_spec.hpp"

namespace ns::scenario {

ns::sim::deployment_params resolve_geometry(const geometry_spec& geometry) {
    ns::sim::deployment_params params;  // office defaults
    switch (geometry.preset) {
        case geometry_preset::office:
            break;
        case geometry_preset::warehouse_aisle:
            // A long open hall: racking rows act as light partitions, the
            // open structure propagates closer to free space than an
            // office, and the AP hangs mid-hall.
            params.floor_width_m = 60.0;
            params.floor_depth_m = 24.0;
            params.rooms_x = 8;  // rack rows
            params.rooms_y = 1;
            params.min_distance_m = 6.0;
            params.pathloss.exponent = 2.0;
            params.pathloss.wall_loss_db = 3.0;
            params.pathloss.shadowing_sigma_db = 1.0;
            break;
        case geometry_preset::open_field:
            params.floor_width_m = 70.0;
            params.floor_depth_m = 70.0;
            params.rooms_x = 1;  // no interior walls
            params.rooms_y = 1;
            params.min_distance_m = 10.0;
            params.pathloss.exponent = 2.0;
            params.pathloss.wall_loss_db = 0.0;
            params.pathloss.shadowing_sigma_db = 2.0;
            break;
    }
    if (geometry.floor_width_m) params.floor_width_m = *geometry.floor_width_m;
    if (geometry.floor_depth_m) params.floor_depth_m = *geometry.floor_depth_m;
    if (geometry.rooms_x) params.rooms_x = *geometry.rooms_x;
    if (geometry.rooms_y) params.rooms_y = *geometry.rooms_y;
    if (geometry.ap_tx_dbm) params.ap_tx_dbm = *geometry.ap_tx_dbm;
    if (geometry.pathloss_exponent) params.pathloss.exponent = *geometry.pathloss_exponent;
    if (geometry.wall_loss_db) params.pathloss.wall_loss_db = *geometry.wall_loss_db;
    if (geometry.min_distance_m) params.min_distance_m = *geometry.min_distance_m;
    if (geometry.shadowing_sigma_db) {
        params.pathloss.shadowing_sigma_db = *geometry.shadowing_sigma_db;
    }
    return params;
}

}  // namespace ns::scenario
