#include "netscatter/scenario/scenario_registry.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "netscatter/spec/spec_codec.hpp"

namespace ns::scenario {

namespace {

/// Simulator knobs shared by the registered scenarios: the deployed PHY
/// with the sweep-grade zero padding (the ±0.5-bin peak search still
/// holds there and rounds run ~4x faster than at the receiver default).
ns::sim::sim_config base_sim(std::size_t rounds, std::uint64_t seed) {
    ns::sim::sim_config config;
    config.zero_padding = 4;
    config.rounds = rounds;
    config.seed = seed;
    return config;
}

std::vector<scenario_spec> build_registry() {
    std::vector<scenario_spec> scenarios;

    {
        // The paper's headline deployment: 256 saturated office sensors.
        scenario_spec spec;
        spec.name = "office-256";
        spec.description = "256 saturated sensors on the paper's office floor (Fig. 1)";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 256;
        spec.sim = base_sim(20, 1);
        scenarios.push_back(spec);
    }
    {
        // A 1k-device universe rotating through the 256 concurrent slots:
        // the association queue and slot reallocation run continuously.
        scenario_spec spec;
        spec.name = "warehouse-1k";
        spec.description =
            "1000 tags in a racked hall; 250 active, membership rotates via churn";
        spec.geometry.preset = geometry_preset::warehouse_aisle;
        spec.geometry.num_devices = 1000;
        spec.traffic.kind = traffic_kind::periodic;
        spec.traffic.duty_cycle = 0.5;
        spec.traffic.period_rounds = 4;
        spec.churn.join_rate_per_round = 4.0;
        spec.churn.leave_rate_per_round = 4.0;
        spec.churn.initial_active = 250;
        spec.churn.max_joins_per_round = 4;
        spec.sim = base_sim(15, 2);
        scenarios.push_back(spec);
    }
    {
        // The same 1k-device hall served the §3.3.3 way: the whole
        // population is partitioned into >= 4 signal-strength groups and
        // one group is addressed per query, round-robin. Joins contend
        // on the reserved association shifts (slotted Aloha), movers
        // drift the partition, and a periodic regroup re-tightens it —
        // the regroup's config-2 query cost lands on the overhead
        // timeline.
        scenario_spec spec;
        spec.name = "warehouse-1k-grouped";
        spec.description =
            "1000 tags in a racked hall as >= 4 scheduled groups; Aloha churn, "
            "periodic regroup";
        spec.geometry.preset = geometry_preset::warehouse_aisle;
        spec.geometry.num_devices = 1000;
        spec.traffic.kind = traffic_kind::periodic;
        spec.traffic.duty_cycle = 0.5;
        spec.traffic.period_rounds = 4;
        spec.churn.join_rate_per_round = 0.5;
        spec.churn.leave_rate_per_round = 0.5;
        spec.churn.association = association_mode::slotted_aloha;
        spec.mobility.mobile_fraction = 0.1;
        spec.sim = base_sim(16, 12);
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.group_capacity = 250;
        spec.sim.grouping.policy = ns::sim::regroup_policy::periodic;
        spec.sim.grouping.regroup_period_rounds = 8;
        scenarios.push_back(spec);
    }
    {
        // A 10k-device open-field universe: ~40 scheduled groups, lazy
        // modulators keeping the per-replica footprint sane, and a
        // load-triggered full reassignment when churn drifts the
        // partition. The scale item the ROADMAP flagged.
        scenario_spec spec;
        spec.name = "field-10k";
        spec.description =
            "10000 duty-cycled tags across a wide field, ~40 scheduled groups";
        spec.geometry.preset = geometry_preset::open_field;
        spec.geometry.num_devices = 10000;
        spec.geometry.floor_width_m = 90.0;
        spec.geometry.floor_depth_m = 90.0;
        spec.traffic.kind = traffic_kind::periodic;
        spec.traffic.duty_cycle = 0.5;
        spec.traffic.period_rounds = 2;
        spec.churn.join_rate_per_round = 0.3;
        spec.churn.leave_rate_per_round = 0.3;
        spec.churn.association = association_mode::slotted_aloha;
        spec.sim = base_sim(6, 13);
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.policy = ns::sim::regroup_policy::load_triggered;
        spec.sim.grouping.load_trigger_misfits = 4;
        spec.replicas = 1;
        scenarios.push_back(spec);
    }
    {
        // The symbol-domain fast path's scale showcase: one hundred
        // thousand tags across a 300 m x 300 m field at SF 12 (1024-slot
        // groups keep the partition inside the 8-bit group-id space).
        // Synthesizing 100k time-domain packets per schedule is not
        // feasible in CI; the analytic Dirichlet-kernel path runs a full
        // replica in seconds. Kept free of interference so every round
        // is fast-path eligible.
        scenario_spec spec;
        spec.name = "field-100k";
        spec.description =
            "100000 duty-cycled tags at SF12/SKIP4, ~100 scheduled groups "
            "(symbol-domain fast path only)";
        spec.geometry.preset = geometry_preset::open_field;
        spec.geometry.num_devices = 100000;
        spec.geometry.floor_width_m = 300.0;
        spec.geometry.floor_depth_m = 300.0;
        spec.geometry.ap_tx_dbm = 30.0;  // 1 W ERP carrier for the 300 m cell
        spec.traffic.kind = traffic_kind::periodic;
        spec.traffic.duty_cycle = 0.5;
        spec.traffic.period_rounds = 2;
        spec.sim = base_sim(4, 21);
        spec.sim.phy = ns::phy::css_params{.bandwidth_hz = 500e3,
                                           .spreading_factor = 12};
        // At SF12 a bin is only 122 Hz / 2 us, so round-trip flight time
        // across the 300 m cell plus crystal offset displaces far
        // devices by more than the SKIP=2 guard; SKIP=4 buys the +-3-bin
        // tolerance the wide cell needs (Table 1's trade, extended).
        spec.sim.skip = 4;
        spec.sim.fidelity = ns::sim::phy_fidelity::symbol;
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.group_capacity = 1024;
        spec.replicas = 1;
        scenarios.push_back(spec);
    }
    {
        // Heavy simultaneous joining with the association protocol the
        // paper suggests (§3.3.2): slotted Aloha on the reserved shifts
        // with binary exponential backoff. Collisions and backoff — not
        // a FIFO queue — shape the re-association latency distribution.
        scenario_spec spec;
        spec.name = "churn-aloha";
        spec.description =
            "192-device office joining via slotted-Aloha association under churn";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 192;
        spec.churn.join_rate_per_round = 3.0;
        spec.churn.leave_rate_per_round = 1.0;
        spec.churn.initial_active = 96;
        spec.churn.association = association_mode::slotted_aloha;
        spec.churn.aloha_initial_window = 2;
        spec.churn.aloha_max_window = 32;
        spec.sim = base_sim(30, 14);
        scenarios.push_back(spec);
    }
    {
        // Long links near the sensitivity edge: power adaptation pushes
        // max gain and the weakest reporters skip rounds.
        scenario_spec spec;
        spec.name = "field-lowpower";
        spec.description =
            "128 duty-cycled tags across an open field, links near the sensitivity edge";
        spec.geometry.preset = geometry_preset::open_field;
        spec.geometry.num_devices = 128;
        spec.geometry.ap_tx_dbm = 27.0;
        spec.traffic.kind = traffic_kind::periodic;
        spec.traffic.duty_cycle = 0.25;
        spec.traffic.period_rounds = 8;
        spec.sim = base_sim(20, 3);
        scenarios.push_back(spec);
    }
    {
        // Heavy join/leave with a deliberately narrow association pipe:
        // the joiner queue backs up, re-association latency is the story.
        scenario_spec spec;
        spec.name = "churn-heavy";
        spec.description =
            "192-device office under heavy Poisson join/leave; association queue saturates";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 192;
        spec.churn.join_rate_per_round = 6.0;
        spec.churn.leave_rate_per_round = 3.0;
        spec.churn.initial_active = 128;
        spec.churn.max_joins_per_round = 3;
        spec.sim = base_sim(30, 4);
        scenarios.push_back(spec);
    }
    {
        // Half the floor walks: budgets re-derive every round and the
        // fine-grained power adaptation tracks the moving channel.
        scenario_spec spec;
        spec.name = "commute-mobility";
        spec.description =
            "128-device office, half mobile at walking pace (waypoint drift)";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 128;
        spec.mobility.mobile_fraction = 0.5;
        spec.mobility.speed_mps = 1.4;
        spec.mobility.round_period_s = 0.05;
        spec.sim = base_sim(20, 5);
        scenarios.push_back(spec);
    }
    {
        // Frequency-selective multipath on the fast path: every device
        // gets a persistent tapped delay line whose scattered taps
        // decorrelate round to round; the post-dechirp effect is a
        // spectral envelope on the Dirichlet window, so every round
        // still runs symbol-domain.
        scenario_spec spec;
        spec.name = "office-multipath";
        spec.description =
            "192-device office through frequency-selective indoor multipath "
            "(per-device tap delay lines, fast path)";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 192;
        spec.sim = base_sim(20, 15);
        spec.sim.model_multipath = true;
        scenarios.push_back(spec);
    }
    {
        // Two NetScatter networks in one band: a second AP (distinct
        // network_id) runs its own grouped schedule and its packets
        // superpose into the victim receiver as structured interference
        // at misalignment-displaced bins. Standard packets are
        // symbol-domain representable, so these rounds keep the fast
        // path; the cross-network counters record the raids.
        scenario_spec spec;
        spec.name = "cochannel-2ap";
        spec.description =
            "128-device office sharing the band with a second 128-device "
            "NetScatter AP (network_id 1)";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 128;
        spec.cochannel.enabled = true;
        spec.cochannel.network_id = 1;
        spec.cochannel.num_devices = 128;
        spec.cochannel.duty_cycle = 0.75;
        spec.sim = base_sim(20, 16);
        scenarios.push_back(spec);
    }
    {
        // The grouped 1k-device hall through the multipath channel: the
        // full §3.3.3 machinery (Aloha churn, mobility, periodic
        // regroup) with per-device tap lines — and every round still on
        // the symbol-domain fast path.
        scenario_spec spec;
        spec.name = "warehouse-1k-multipath";
        spec.description =
            "warehouse-1k-grouped through frequency-selective multipath "
            "(tap delay lines on the fast path)";
        spec.geometry.preset = geometry_preset::warehouse_aisle;
        spec.geometry.num_devices = 1000;
        spec.traffic.kind = traffic_kind::periodic;
        spec.traffic.duty_cycle = 0.5;
        spec.traffic.period_rounds = 4;
        spec.churn.join_rate_per_round = 0.5;
        spec.churn.leave_rate_per_round = 0.5;
        spec.churn.association = association_mode::slotted_aloha;
        spec.mobility.mobile_fraction = 0.1;
        spec.sim = base_sim(16, 17);
        spec.sim.model_multipath = true;
        spec.sim.multipath.delay_spread_s = 250e-9;  // racked hall: long echoes
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.group_capacity = 250;
        spec.sim.grouping.policy = ns::sim::regroup_policy::periodic;
        spec.sim.grouping.regroup_period_rounds = 8;
        scenarios.push_back(spec);
    }
    {
        // Foreign classic-CSS frames share the band: same chirp slope,
        // misaligned in time, sweeping across the registered shifts.
        scenario_spec spec;
        spec.name = "interference-lora";
        spec.description =
            "128-device office with misaligned LoRa frames raiding the band";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 128;
        spec.interference.kind = interference_kind::lora_frame;
        spec.interference.snr_db = 15.0;
        spec.interference.burst_probability = 0.4;
        spec.sim = base_sim(20, 6);
        scenarios.push_back(spec);
    }
    {
        // A strong periodic in-band tone parks on a handful of bins.
        scenario_spec spec;
        spec.name = "interference-tone";
        spec.description = "96-device office with a strong periodic in-band tone";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 96;
        spec.interference.kind = interference_kind::periodic_tone;
        spec.interference.snr_db = 20.0;
        spec.interference.period_rounds = 3;
        spec.interference.tone_hz = 80e3;
        spec.sim = base_sim(20, 7);
        scenarios.push_back(spec);
    }
    {
        // Light independent arrivals: most rounds most devices are idle,
        // so the shared preamble/query overhead dominates the economics.
        scenario_spec spec;
        spec.name = "sparse-poisson";
        spec.description = "64 devices with Poisson arrivals at 0.3 packets/round";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 64;
        spec.traffic.kind = traffic_kind::poisson;
        spec.traffic.arrivals_per_round = 0.3;
        spec.sim = base_sim(30, 8);
        scenarios.push_back(spec);
    }
    {
        // Event-driven bursts at full population: quiet floor, then
        // everyone who saw the event floods the round concurrently.
        scenario_spec spec;
        spec.name = "dense-burst";
        spec.description =
            "256 devices, event-driven bursts (6-packet backlog, 5% trigger/round)";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 256;
        spec.traffic.kind = traffic_kind::bursty;
        spec.traffic.burst_probability = 0.05;
        spec.traffic.burst_length = 6;
        spec.sim = base_sim(20, 9);
        scenarios.push_back(spec);
    }

    {
        // The robustness headline: the grouped 1k hall with a lossy
        // control plane. Queries drop (worse at low RSSI), ACKs drop,
        // devices brown out and lose their shift + group state, and the
        // recovery machinery — AP ACK retries, membership leases
        // reclaiming silent shifts, device-side missed-query counters
        // forcing re-association through Aloha — has to keep the
        // schedule converging.
        scenario_spec spec;
        spec.name = "lossy-control-1k";
        spec.description =
            "1000-tag grouped hall with lossy queries/ACKs and device "
            "reboots; leases + re-association recover the schedule";
        spec.geometry.preset = geometry_preset::warehouse_aisle;
        spec.geometry.num_devices = 1000;
        spec.churn.join_rate_per_round = 0.5;
        spec.churn.leave_rate_per_round = 0.5;
        spec.churn.initial_active = 250;
        spec.churn.association = association_mode::slotted_aloha;
        spec.faults.query_loss = 0.25;
        spec.faults.query_loss_rssi_slope = 0.005;
        spec.faults.ack_loss = 0.25;
        spec.faults.reboot_rate_per_round = 1.0;
        spec.faults.lease_rounds = 4;
        spec.faults.missed_query_limit = 3;
        spec.faults.ack_retry_limit = 4;
        spec.sim = base_sim(20, 31);
        spec.sim.grouping.enabled = true;
        spec.sim.grouping.group_capacity = 250;
        spec.sim.grouping.policy = ns::sim::regroup_policy::periodic;
        spec.sim.grouping.regroup_period_rounds = 8;
        scenarios.push_back(spec);
    }
    {
        // Whole-AP blackouts: the carrier vanishes for multi-round
        // stretches, every device misses the query, and the floor has to
        // come back without a thundering herd — missed-query counters
        // trip re-association while leases sweep out the casualties.
        scenario_spec spec;
        spec.name = "blackout-recovery";
        spec.description =
            "256-device office through multi-round AP blackouts; "
            "missed-query counters and leases restore membership";
        spec.geometry.preset = geometry_preset::office;
        spec.geometry.num_devices = 256;
        spec.churn.join_rate_per_round = 0.25;
        spec.churn.leave_rate_per_round = 0.25;
        spec.churn.initial_active = 192;
        spec.churn.association = association_mode::slotted_aloha;
        spec.faults.query_loss = 0.05;
        spec.faults.blackout_probability = 0.15;
        spec.faults.blackout_rounds = 3;
        spec.faults.reboot_rate_per_round = 0.2;
        spec.faults.lease_rounds = 6;
        spec.faults.missed_query_limit = 4;
        spec.sim = base_sim(24, 32);
        scenarios.push_back(spec);
    }

    return scenarios;
}

/// The registry plus where each entry came from.
struct loaded_registry {
    std::vector<scenario_spec> specs;
    std::vector<std::string> sources;
};

loaded_registry load_registry() {
    loaded_registry reg;
    const std::string dir = ns::spec::spec_dir();
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(dir, ec)) {
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            if (entry.path().extension() == ".spec") {
                files.push_back(entry.path());
            }
        }
        std::sort(files.begin(), files.end());
    }
    if (files.empty()) {
        // No committed spec files reachable (installed binary, stripped
        // checkout): serve the compiled-in table.
        reg.specs = build_registry();
        reg.sources.assign(reg.specs.size(), "<builtin>");
        return reg;
    }
    for (const auto& file : files) {
        scenario_spec spec = ns::spec::load_spec_file(file.string());
        // File name == scenario name keeps --list, find_scenario and the
        // CI drift gate all talking about the same thing.
        if (spec.name != file.stem().string()) {
            throw ns::spec::spec_error(
                file.string() + ": scenario name '" + spec.name +
                "' does not match the file name '" + file.stem().string() +
                "'");
        }
        reg.specs.push_back(std::move(spec));
        reg.sources.push_back(file.string());
    }
    return reg;
}

const loaded_registry& loaded() {
    static const loaded_registry reg = load_registry();
    return reg;
}

}  // namespace

const std::vector<scenario_spec>& registry() { return loaded().specs; }

const std::vector<std::string>& registry_sources() { return loaded().sources; }

const std::vector<scenario_spec>& builtin_registry() {
    static const std::vector<scenario_spec> scenarios = build_registry();
    return scenarios;
}

std::optional<scenario_spec> find_scenario(const std::string& name) {
    for (const auto& spec : registry()) {
        if (spec.name == name) return spec;
    }
    return std::nullopt;
}

}  // namespace ns::scenario
