#include "netscatter/engine/fft_plan.hpp"

#include <atomic>
#include <cmath>
#include <numbers>

#include "netscatter/obs/metrics.hpp"
#include "netscatter/util/error.hpp"

namespace ns::engine {

namespace {
// Storage exists in every build; under NS_OBS=OFF count() compiles to
// nothing, so the hot path never touches them.
std::atomic<std::uint64_t> g_cache_hits{0};
std::atomic<std::uint64_t> g_cache_misses{0};
std::atomic<std::uint64_t> g_memo_hits{0};
std::atomic<std::uint64_t> g_scratch_requests{0};

inline void count([[maybe_unused]] std::atomic<std::uint64_t>& counter) {
#if NS_OBS_ENABLED
    counter.fetch_add(1, std::memory_order_relaxed);
#endif
}
}  // namespace

fft_plan_cache::cache_stats fft_plan_cache::stats() {
#if NS_OBS_ENABLED
    return {g_cache_hits.load(std::memory_order_relaxed),
            g_cache_misses.load(std::memory_order_relaxed),
            g_memo_hits.load(std::memory_order_relaxed),
            g_scratch_requests.load(std::memory_order_relaxed)};
#else
    return {};
#endif
}

void fft_plan_cache::reset_stats() {
#if NS_OBS_ENABLED
    g_cache_hits.store(0, std::memory_order_relaxed);
    g_cache_misses.store(0, std::memory_order_relaxed);
    g_memo_hits.store(0, std::memory_order_relaxed);
    g_scratch_requests.store(0, std::memory_order_relaxed);
#endif
}

fft_plan::fft_plan(std::size_t n) : n_(n) {
    ns::util::require(ns::dsp::is_power_of_two(n), "fft_plan: size must be a power of two");

    // Bit-reversal permutation: br[i] = br[i >> 1] >> 1, plus the top bit
    // when i is odd.
    bit_reverse_.resize(n);
    bit_reverse_[0] = 0;
    for (std::size_t i = 1; i < n; ++i) {
        bit_reverse_[i] = static_cast<std::uint32_t>(
            (bit_reverse_[i >> 1] >> 1) | ((i & 1) ? n >> 1 : 0));
    }

    // Per-stage forward twiddles, each from std::polar directly (no
    // recurrence) so table accuracy does not degrade with k.
    twiddles_.reserve(n > 0 ? n - 1 : 0);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle_unit = -2.0 * std::numbers::pi / static_cast<double>(len);
        for (std::size_t k = 0; k < len / 2; ++k) {
            twiddles_.push_back(std::polar(1.0, angle_unit * static_cast<double>(k)));
        }
    }
}

void fft_plan::transform(ns::dsp::cvec& data, bool inverse) const {
    using ns::dsp::cplx;
    ns::util::require(data.size() == n_, "fft_plan: data size does not match plan");

    for (std::size_t i = 1; i < n_; ++i) {
        const std::size_t j = bit_reverse_[i];
        if (i < j) std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n_; len <<= 1) {
        const std::size_t half = len / 2;
        const cplx* stage = twiddles_.data() + (half - 1);
        for (std::size_t i = 0; i < n_; i += len) {
            for (std::size_t k = 0; k < half; ++k) {
                const cplx w = inverse ? std::conj(stage[k]) : stage[k];
                const cplx even = data[i + k];
                const cplx odd = data[i + k + half] * w;
                data[i + k] = even + odd;
                data[i + k + half] = even - odd;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n_);
        for (auto& value : data) value *= scale;
    }
}

void fft_plan::forward(ns::dsp::cvec& data) const {
    transform(data, false);
}

void fft_plan::inverse(ns::dsp::cvec& data) const {
    transform(data, true);
}

fft_plan_cache& fft_plan_cache::instance() {
    static fft_plan_cache cache;
    return cache;
}

std::shared_ptr<const fft_plan> fft_plan_cache::get(std::size_t n) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = plans_.find(n);
        if (it != plans_.end()) {
            count(g_cache_hits);
            return it->second;
        }
    }
    count(g_cache_misses);
    // Build outside the lock: plan construction is O(n log n) and another
    // thread may want a different (already cached) size meanwhile. A
    // racing build of the same size wastes one construction; both racers
    // end up returning whichever plan landed in the map first.
    auto plan = std::make_shared<const fft_plan>(n);
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = plans_.emplace(n, std::move(plan));
    return it->second;
}

std::size_t fft_plan_cache::cached_sizes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return plans_.size();
}

void fft_plan_cache::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    plans_.clear();
}

ns::dsp::cvec& fft_plan_cache::thread_scratch(std::size_t n) {
    thread_local ns::dsp::cvec scratch;
    count(g_scratch_requests);
    scratch.resize(n);
    return scratch;
}

std::shared_ptr<const fft_plan> get_fft_plan(std::size_t n) {
    thread_local std::shared_ptr<const fft_plan> memo;
    if (!memo || memo->size() != n) {
        memo = fft_plan_cache::instance().get(n);
    } else {
        count(g_memo_hits);
    }
    return memo;
}

}  // namespace ns::engine
