#include "netscatter/engine/mc_runner.hpp"

#include <algorithm>

#include "netscatter/util/rng.hpp"

namespace ns::engine {

std::uint64_t split_seed(std::uint64_t base, std::uint64_t stream, std::uint64_t block) {
    // Chain splitmix64 steps, folding one coordinate in per step with
    // distinct odd multipliers (injective per coordinate). The final
    // output is fully mixed, so (base, s, b) and (base, s, b+1) yield
    // uncorrelated xoshiro seed material.
    std::uint64_t state = base;
    std::uint64_t out = ns::util::splitmix64_next(state);
    state ^= out ^ (stream * 0xbf58476d1ce4e5b9ULL);
    out = ns::util::splitmix64_next(state);
    state ^= out ^ (block * 0x94d049bb133111ebULL);
    return ns::util::splitmix64_next(state);
}

namespace {

struct block_span {
    std::size_t index = 0;   ///< block number within the job
    std::size_t rounds = 0;  ///< rounds in this block
};

std::vector<block_span> split_rounds(std::size_t total, std::size_t per_task) {
    // per_task == 0: the whole job is one block (cross-round state kept).
    const std::size_t block = per_task == 0 ? std::max<std::size_t>(1, total) : per_task;
    std::vector<block_span> spans;
    spans.reserve((total + block - 1) / block);
    for (std::size_t done = 0, b = 0; done < total; done += block, ++b) {
        spans.push_back({b, std::min(block, total - done)});
    }
    return spans;
}

}  // namespace

mc_runner::mc_runner(mc_options options) : options_(options) {}

std::size_t mc_runner::pool_threads(std::size_t num_tasks) const {
    // Never spawn more workers than there are tasks to run.
    const std::size_t configured = options_.num_threads == 0
                                       ? thread_pool::default_thread_count()
                                       : options_.num_threads;
    return std::min(configured, num_tasks);
}

ns::sim::sim_result mc_runner::run(const ns::sim::deployment& dep,
                                   const ns::sim::sim_config& config) const {
    const std::vector<block_span> blocks =
        split_rounds(config.rounds, options_.rounds_per_task);
    std::vector<ns::sim::sim_result> partials(blocks.size());

    const auto run_block = [&](std::size_t i) {
        ns::sim::sim_config block_config = config;
        block_config.rounds = blocks[i].rounds;
        block_config.seed = split_seed(config.seed, 0, blocks[i].index);
        ns::sim::network_simulator sim(dep, block_config);
        partials[i] = sim.run();
    };

    if (options_.parallel && blocks.size() > 1) {
        thread_pool pool(pool_threads(blocks.size()));
        pool.parallel_for(0, blocks.size(), run_block);
    } else {
        for (std::size_t i = 0; i < blocks.size(); ++i) run_block(i);
    }

    ns::sim::sim_result merged;
    for (const auto& partial : partials) merged.merge(partial);
    return merged;
}

batch_result mc_runner::run_batch(const std::vector<mc_job>& jobs) const {
    // Deployments are built once per job, up front: they are cheap
    // relative to the rounds, deterministic in their seed, and read-only
    // while the blocks fan out. They are returned with the results so
    // callers never regenerate them.
    std::vector<ns::sim::deployment> deployments;
    deployments.reserve(jobs.size());
    for (const auto& job : jobs) {
        deployments.emplace_back(job.dep_params, job.num_devices, job.deployment_seed);
    }

    struct task {
        std::size_t job = 0;
        ns::sim::sim_config config{};
    };
    std::vector<task> tasks;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        for (const block_span& span :
             split_rounds(jobs[j].config.rounds, options_.rounds_per_task)) {
            task t{j, jobs[j].config};
            t.config.rounds = span.rounds;
            // Stream = job position, so jobs sharing a base seed still get
            // disjoint streams; a one-job batch matches run() (stream 0).
            t.config.seed = split_seed(jobs[j].config.seed, j, span.index);
            tasks.push_back(t);
        }
    }

    std::vector<ns::sim::sim_result> partials(tasks.size());
    const auto run_task = [&](std::size_t i) {
        ns::sim::network_simulator sim(deployments[tasks[i].job], tasks[i].config);
        partials[i] = sim.run();
    };

    if (options_.parallel && tasks.size() > 1) {
        thread_pool pool(pool_threads(tasks.size()));
        pool.parallel_for(0, tasks.size(), run_task);
    } else {
        for (std::size_t i = 0; i < tasks.size(); ++i) run_task(i);
    }

    // Merge in task order: bit-identical no matter which worker finished
    // first.
    batch_result batch;
    batch.results.resize(jobs.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        batch.results[tasks[i].job].merge(partials[i]);
    }
    batch.deployments = std::move(deployments);
    return batch;
}

}  // namespace ns::engine
