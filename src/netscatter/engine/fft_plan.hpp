// Reusable radix-2 FFT plans and a thread-safe process-wide plan cache.
//
// The NetScatter receiver runs one FFT per symbol for *every* symbol of
// every round of every sweep point — at SF 9 with 8x zero padding that is
// a 4096-point transform thousands of times per sweep, always over the
// same handful of sizes (2^SF, padded sizes, STFT windows, the 2*2^SF
// aggregate band). A plan precomputes what depends only on the size — the
// bit-reversal permutation and the per-stage twiddle factors — so the
// transform itself touches no trig at all. The cache shares immutable
// plans across threads (the Monte-Carlo runner decodes many rounds
// concurrently) and hands out per-thread scratch buffers so hot paths can
// transform without allocating.
//
// Layer note: this header depends only on ns::dsp types; ns::dsp::fft
// routes through the cache by default (see dsp/fft.cpp), so every
// existing call site benefits without change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "netscatter/dsp/fft.hpp"

namespace ns::engine {

/// Precomputed plan for one power-of-two transform size. Immutable after
/// construction, so a single instance is safely shared across threads.
class fft_plan {
public:
    /// Builds the bit-reversal and twiddle tables for an n-point
    /// transform. Requires n to be a power of two.
    explicit fft_plan(std::size_t n);

    std::size_t size() const { return n_; }

    /// In-place forward transform (engineering convention e^{-j2πkn/N},
    /// no normalization). Requires data.size() == size().
    void forward(ns::dsp::cvec& data) const;

    /// In-place inverse transform, normalized by 1/N.
    void inverse(ns::dsp::cvec& data) const;

private:
    void transform(ns::dsp::cvec& data, bool inverse) const;

    std::size_t n_;
    std::vector<std::uint32_t> bit_reverse_;  ///< permutation table, n entries
    /// Forward twiddles for all stages, concatenated: the stage with
    /// butterfly span `len` stores w_len^k = e^{-j2πk/len} for
    /// k in [0, len/2) at offset len/2 - 1. Total n - 1 entries.
    ns::dsp::cvec twiddles_;
};

/// Thread-safe cache of shared fft_plan instances keyed by size.
class fft_plan_cache {
public:
    /// Process-wide cache usage counters (relaxed atomics, summed across
    /// all threads — these describe host execution, not the simulation,
    /// so they live in the metrics report's "process" section and are
    /// never part of determinism comparisons). All zero under NS_OBS=OFF.
    struct cache_stats {
        std::uint64_t hits = 0;      ///< get() served from the map
        std::uint64_t misses = 0;    ///< get() that built a plan
        std::uint64_t memo_hits = 0; ///< lock-free per-thread memo hits
        std::uint64_t scratch_requests = 0;  ///< thread_scratch() calls
    };
    static cache_stats stats();
    static void reset_stats();

    /// The process-wide cache used by ns::dsp::fft_inplace.
    static fft_plan_cache& instance();

    /// Returns the shared plan for size n, building it on first use.
    std::shared_ptr<const fft_plan> get(std::size_t n);

    /// Number of distinct sizes currently cached.
    std::size_t cached_sizes() const;

    /// Drops all cached plans (plans already handed out stay valid).
    void clear();

    /// A per-thread scratch buffer resized to n complex samples. Valid
    /// until the next thread_scratch call on the same thread; lets hot
    /// paths (e.g. zero-padded per-symbol spectra) transform without a
    /// heap allocation per call.
    static ns::dsp::cvec& thread_scratch(std::size_t n);

private:
    mutable std::mutex mutex_;
    std::unordered_map<std::size_t, std::shared_ptr<const fft_plan>> plans_;
};

/// Convenience: fetch a shared plan from the process-wide cache, with a
/// per-thread memo of the most recent size so repeated same-size lookups
/// (the receiver hot path) take no lock.
std::shared_ptr<const fft_plan> get_fft_plan(std::size_t n);

}  // namespace ns::engine
