#include "netscatter/engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "netscatter/obs/metrics.hpp"
#include "netscatter/util/error.hpp"

namespace ns::engine {

namespace {
std::atomic<std::uint64_t> g_tasks_submitted{0};
std::atomic<std::uint64_t> g_tasks_executed{0};
std::atomic<std::uint64_t> g_queue_peak{0};
}  // namespace

thread_pool::pool_stats thread_pool::stats() {
#if NS_OBS_ENABLED
    return {g_tasks_submitted.load(std::memory_order_relaxed),
            g_tasks_executed.load(std::memory_order_relaxed),
            g_queue_peak.load(std::memory_order_relaxed)};
#else
    return {};
#endif
}

void thread_pool::reset_stats() {
#if NS_OBS_ENABLED
    g_tasks_submitted.store(0, std::memory_order_relaxed);
    g_tasks_executed.store(0, std::memory_order_relaxed);
    g_queue_peak.store(0, std::memory_order_relaxed);
#endif
}

std::size_t thread_pool::default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

thread_pool::thread_pool(std::size_t num_threads) {
    const std::size_t count = num_threads == 0 ? default_thread_count() : num_threads;
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    shutdown();
}

void thread_pool::enqueue(std::function<void()> task) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) {
            throw ns::util::invalid_state("thread_pool: submit after shutdown");
        }
        tasks_.push_back(std::move(task));
#if NS_OBS_ENABLED
        g_tasks_submitted.fetch_add(1, std::memory_order_relaxed);
        // Racy max update is fine for a diagnostic peak: a lost update
        // can only under-report by a concurrent enqueue.
        const auto depth = static_cast<std::uint64_t>(tasks_.size());
        std::uint64_t peak = g_queue_peak.load(std::memory_order_relaxed);
        while (depth > peak && !g_queue_peak.compare_exchange_weak(
                                   peak, depth, std::memory_order_relaxed)) {
        }
#endif
    }
    cv_.notify_one();
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty()) return;  // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();  // packaged_task: exceptions land in the future
#if NS_OBS_ENABLED
        g_tasks_executed.fetch_add(1, std::memory_order_relaxed);
#endif
    }
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t)>& body,
                               std::size_t grain) {
    ns::util::require(begin <= end, "parallel_for: begin must be <= end");
    if (begin == end) return;
    const std::size_t step = std::max<std::size_t>(1, grain);

    std::vector<std::future<void>> futures;
    futures.reserve((end - begin + step - 1) / step);
    for (std::size_t chunk = begin; chunk < end; chunk += step) {
        const std::size_t chunk_end = std::min(chunk + step, end);
        futures.push_back(submit([&body, chunk, chunk_end] {
            for (std::size_t i = chunk; i < chunk_end; ++i) body(i);
        }));
    }

    // Wait for every chunk, then rethrow the first failure (chunk order,
    // not completion order, so the error surfaced is deterministic).
    std::exception_ptr first_error;
    for (auto& future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error) first_error = std::current_exception();
        }
    }
    if (first_error) std::rethrow_exception(first_error);
}

block_runner::block_runner(std::size_t num_threads) {
    const std::size_t helpers = num_threads <= 1 ? 0 : num_threads - 1;
    workers_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

block_runner::~block_runner() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
}

void block_runner::claim_blocks() {
    for (;;) {
        const std::size_t block =
            next_block_.fetch_add(1, std::memory_order_relaxed);
        if (block >= num_blocks_) return;
        try {
            body_(context_, block);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
    }
}

void block_runner::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock,
                           [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
        }
        claim_blocks();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++finished_workers_;
        }
        done_cv_.notify_one();
    }
}

void block_runner::run(std::size_t num_blocks, void (*body)(void*, std::size_t),
                       void* context) {
    if (num_blocks == 0) return;
    if (workers_.empty() || num_blocks == 1) {
        for (std::size_t block = 0; block < num_blocks; ++block) {
            body(context, block);
        }
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        body_ = body;
        context_ = context;
        num_blocks_ = num_blocks;
        next_block_.store(0, std::memory_order_relaxed);
        finished_workers_ = 0;
        first_error_ = nullptr;
        ++generation_;
    }
    start_cv_.notify_all();
    claim_blocks();
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock,
                      [&] { return finished_workers_ == workers_.size(); });
        error = first_error_;
    }
    if (error) std::rethrow_exception(error);
}

void thread_pool::shutdown() {
    // Idempotent from one thread; concurrent shutdown() calls racing on
    // join() are the caller's bug.
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    workers_.clear();
}

}  // namespace ns::engine
