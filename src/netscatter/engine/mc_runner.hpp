// Deterministic parallel Monte-Carlo runner for network-scale sweeps.
//
// The Figs. 17-19 evaluations sweep the device count and average several
// concurrent rounds per point. Rounds-with-shared-state cannot be split
// mid-stream, so the runner decomposes a sweep into independent
// (device-count, round-block) tasks: each task builds its own deployment
// and simulator and runs a block of rounds with an RNG stream derived by
// seed-splitting (split_seed). Because every task is a pure function of
// its seed and results are merged in task order — never completion
// order — the parallel run is bit-identical to the serial run of the
// same task list, on any thread count. That determinism is the contract
// tests/test_engine.cpp enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"

namespace ns::engine {

/// Derives an independent child seed for (stream, block) from a base
/// seed. Built on splitmix64 so nearby inputs give uncorrelated streams;
/// pure function, identical on every platform.
std::uint64_t split_seed(std::uint64_t base, std::uint64_t stream, std::uint64_t block);

/// Execution policy for a Monte-Carlo run.
struct mc_options {
    /// Rounds simulated per task. 0 (default) keeps all of a job's
    /// rounds in ONE task, preserving cross-round simulator state —
    /// Gauss-Markov fading correlation and the consecutive-skip
    /// re-association path (§3.2.3/§3.3.4) both span rounds — so a job
    /// behaves exactly like the serial simulator. Values >= 1 split the
    /// job into independent single-association replica blocks: more
    /// parallelism within a job, but each block re-associates afresh.
    std::size_t rounds_per_task = 0;
    /// Worker threads; 0 means hardware_concurrency().
    std::size_t num_threads = 0;
    /// When false every task runs on the calling thread, in task order —
    /// the serial reference the parallel path must match bit-for-bit.
    bool parallel = true;
};

/// One sweep job: an independently deployed population and a simulator
/// configuration. `config.rounds` is the total over all of the job's
/// round-blocks; `config.seed` is the base seed the blocks split.
struct mc_job {
    ns::sim::deployment_params dep_params{};
    std::size_t num_devices = 0;
    std::uint64_t deployment_seed = 0;
    ns::sim::sim_config config{};
};

/// Outcome of a batch: one merged result per job, in job order, plus
/// the deployments the runner built (callers often need the population's
/// link budget too — returning them avoids regenerating each one).
struct batch_result {
    std::vector<ns::sim::sim_result> results;
    std::vector<ns::sim::deployment> deployments;
};

/// Splits jobs into (job, round-block) tasks and runs them across a
/// thread pool (or serially), merging per-job results deterministically.
class mc_runner {
public:
    explicit mc_runner(mc_options options = {});

    const mc_options& options() const { return options_; }

    /// Runs a single job's rounds as independent blocks. The deployment
    /// is built once by the caller; only the round-blocks fan out.
    ns::sim::sim_result run(const ns::sim::deployment& dep,
                            const ns::sim::sim_config& config) const;

    /// Runs every job, each split into round-blocks, all interleaved on
    /// one pool so a sweep saturates the machine even when individual
    /// points have few blocks.
    batch_result run_batch(const std::vector<mc_job>& jobs) const;

    /// Generic deterministic fan-out: runs `count` independent tasks —
    /// each a pure function of its index — serially or across a pool per
    /// the runner's options, and returns the results in index order.
    /// Same contract as run_batch: the parallel run is bit-identical to
    /// the serial run on any thread count. The scenario runner executes
    /// its Monte-Carlo replicas through this. The result type must be
    /// default-constructible (slots are pre-allocated) and must not be
    /// bool: std::vector<bool> packs bits, so concurrent writes to
    /// distinct indices would race — wrap a bool in a struct instead.
    template <typename Task>
    auto run_indexed(std::size_t count, Task&& task) const
        -> std::vector<std::invoke_result_t<Task&, std::size_t>> {
        using result_t = std::invoke_result_t<Task&, std::size_t>;
        static_assert(!std::is_same_v<result_t, bool>,
                      "run_indexed: bool results race in vector<bool>; "
                      "wrap the flag in a struct");
        std::vector<result_t> results(count);
        const auto run_one = [&](std::size_t i) { results[i] = task(i); };
        if (options_.parallel && count > 1) {
            thread_pool pool(pool_threads(count));
            pool.parallel_for(0, count, run_one);
        } else {
            for (std::size_t i = 0; i < count; ++i) run_one(i);
        }
        return results;
    }

private:
    /// Configured worker count clamped to the number of tasks.
    std::size_t pool_threads(std::size_t num_tasks) const;

    mc_options options_;
};

}  // namespace ns::engine
