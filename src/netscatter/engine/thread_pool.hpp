// Fixed-size thread pool for the parallel execution engine.
//
// The network-scale sweeps (Figs. 17-19) decompose into hundreds of
// independent (device-count, round-block) simulations, and a production
// AP would decode rounds from many antennas/channels concurrently. This
// pool is deliberately simple — one shared FIFO queue, no work stealing —
// because engine tasks are coarse (milliseconds to seconds each), so
// queue contention is negligible and simplicity wins: exceptions
// propagate through std::future, shutdown is deterministic, and task
// order is whatever the caller submits (the Monte-Carlo runner relies on
// merging by task index, never on completion order).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ns::engine {

class thread_pool {
public:
    /// Process-wide queue counters across all pools (relaxed atomics —
    /// host-execution data for the metrics report's "process" section,
    /// never part of determinism comparisons). `queue_peak` is the
    /// largest queue depth observed at enqueue time. All zero under
    /// NS_OBS=OFF.
    struct pool_stats {
        std::uint64_t tasks_submitted = 0;
        std::uint64_t tasks_executed = 0;
        std::uint64_t queue_peak = 0;
    };
    static pool_stats stats();
    static void reset_stats();

    /// Spawns `num_threads` workers; 0 means hardware_concurrency()
    /// (at least 1).
    explicit thread_pool(std::size_t num_threads = 0);

    /// Joins all workers. Tasks already queued are completed first.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Number of worker threads.
    std::size_t size() const { return workers_.size(); }

    /// Hardware concurrency clamped to at least 1.
    static std::size_t default_thread_count();

    /// Schedules `fn` and returns a future for its result. An exception
    /// thrown by `fn` is captured and rethrown by future::get().
    /// Throws ns::util::invalid_state after shutdown().
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using result_t = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<result_t()>>(
            std::forward<F>(fn));
        std::future<result_t> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /// Runs body(i) for every i in [begin, end) across the pool, blocking
    /// until all iterations finish. Iterations are dispatched in
    /// contiguous chunks of at most `grain` indices. The first exception
    /// thrown by any iteration (in index order of the chunks) is
    /// rethrown; remaining chunks still run to completion.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& body,
                      std::size_t grain = 1);

    /// Stops accepting tasks and joins the workers after the queue
    /// drains. Idempotent; the destructor calls it.
    void shutdown();

private:
    void enqueue(std::function<void()> task);
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/// Persistent fork-join helper for fine-grained intra-round fan-out.
///
/// thread_pool::parallel_for allocates per call (type-erased tasks,
/// futures), which is fine for coarse Monte-Carlo tasks but would break
/// the fast path's zero-steady-state-allocation contract if invoked
/// every round. block_runner instead parks `num_threads - 1` workers on
/// a condition variable; each run() hands them a plain function pointer
/// plus context and a shared atomic block cursor, and the calling thread
/// claims blocks alongside them. Steady-state run() calls allocate
/// nothing, so the alloc.* determinism counters stay bit-identical with
/// intra-round parallelism on or off.
class block_runner {
public:
    /// Spawns `num_threads - 1` parked workers (the caller is the last
    /// participant); num_threads <= 1 means run() executes inline.
    explicit block_runner(std::size_t num_threads);

    /// Joins the workers. Must not race an in-flight run().
    ~block_runner();

    block_runner(const block_runner&) = delete;
    block_runner& operator=(const block_runner&) = delete;

    /// Threads participating in run(): parked workers + the caller.
    std::size_t size() const { return workers_.size() + 1; }

    /// Runs body(context, block) for every block in [0, num_blocks),
    /// blocking until all complete. Blocks are claimed dynamically, so
    /// callers must make each block's result independent of claim order
    /// (the fast path writes disjoint per-symbol spectra). One exception
    /// thrown by a block is rethrown on the caller after the join; which
    /// one survives is unspecified when several blocks throw. Not
    /// reentrant.
    void run(std::size_t num_blocks, void (*body)(void*, std::size_t),
             void* context);

private:
    void worker_loop();
    void claim_blocks();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    std::size_t finished_workers_ = 0;
    std::size_t num_blocks_ = 0;
    void (*body_)(void*, std::size_t) = nullptr;
    void* context_ = nullptr;
    std::atomic<std::size_t> next_block_{0};
    std::exception_ptr first_error_;
    bool stop_ = false;
};

}  // namespace ns::engine
