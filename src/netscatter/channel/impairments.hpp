// Hardware impairment models: timing jitter, crystal frequency offset,
// Doppler and multipath delay spread (§3.2.1, §3.2.2, §4.2).
//
// These models substitute for the paper's measured hardware behaviour:
//  * MCU/FPGA hardware delay varies packet-to-packet, up to ~3.5 us —
//    the dominant impairment, motivating SKIP guard bins.
//  * Crystal tolerance up to 100 ppm; backscatter basebands are <= 3 MHz,
//    so absolute CFO stays under ~300 Hz (< 0.3 bin at 500 kHz/SF9,
//    Fig. 14a shows < 150 Hz), whereas 900 MHz LoRa radios see offsets
//    ~90-300x larger (Fig. 4).
//  * Doppler at indoor speeds is tens of Hz — negligible (Fig. 15a).
//  * Indoor multipath delay spread is 50-300 ns (< 0.15 bin, §3.2.1).
#pragma once

#include <span>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::channel {

using ns::dsp::cplx;
using ns::dsp::cvec;

/// Packet-to-packet hardware (MCU + envelope detector + FPGA) delay model.
struct hardware_delay_model {
    double mean_us = 1.2;     ///< mean response latency
    double sigma_us = 0.6;    ///< packet-to-packet jitter std dev
    double max_us = 3.5;      ///< hard cap observed in the paper (§3.2.1)

    /// Samples one packet's hardware delay in seconds (truncated Gaussian,
    /// clamped to [0, max_us]).
    double sample_s(ns::util::rng& rng) const;
};

/// Crystal-oscillator frequency-offset model.
struct crystal_model {
    double tolerance_ppm = 50.0;    ///< +-ppm spread across devices ([2]: up to 100)
    double operating_frequency_hz = 3e6;  ///< backscatter baseband (<= 10 MHz);
                                          ///< 900e6 for an active LoRa radio

    /// Draws a device's static frequency offset in Hz (uniform in
    /// +-tolerance_ppm of the operating frequency).
    double sample_static_offset_hz(ns::util::rng& rng) const;

    /// Packet-to-packet drift around the static offset (thermal wander),
    /// a small Gaussian (sigma = drift_sigma_hz).
    double drift_sigma_hz = 15.0;
    double sample_drift_hz(ns::util::rng& rng) const;
};

/// Doppler frequency shift for a device moving at `speed_mps` with
/// carrier `carrier_hz`: f_d = v/c * f_c (worst case, radial motion).
double doppler_shift_hz(double speed_mps, double carrier_hz = 900e6);

/// Random Doppler sample for a mover: radial velocity uniform in
/// [-speed, +speed] (direction changes as the person walks).
double sample_doppler_hz(double speed_mps, double carrier_hz, ns::util::rng& rng);

/// Saleh-Valenzuela-inspired indoor multipath: exponential power delay
/// profile. Returns complex tap gains; tap `i` is delayed i samples.
struct multipath_model {
    double delay_spread_s = 150e-9;  ///< RMS delay spread (50-300 ns indoors)
    int num_taps = 4;                ///< taps beyond the LoS tap
    double rician_k_db = 9.0;        ///< LoS-to-scatter power ratio

    /// Stationary per-tap power profile at `sample_rate_hz`: index 0 is
    /// the LoS tap, 1..num_taps the exponentially decaying scattered
    /// taps. Powers sum to 1 (unit total power).
    std::vector<double> tap_powers(double sample_rate_hz) const;

    /// Draws a normalized (unit total power) tap vector; tap spacing is
    /// one sample at `sample_rate_hz`.
    cvec sample_taps(double sample_rate_hz, ns::util::rng& rng) const;
};

/// Applies a tapped-delay-line channel to a signal (linear convolution
/// truncated to the input length).
cvec apply_multipath(std::span<const cplx> signal, std::span<const cplx> taps);

/// apply_multipath into a caller-provided buffer (resized; capacity
/// reuse makes repeated calls allocation-free). `out` must not alias
/// `signal`.
void apply_multipath_into(std::span<const cplx> signal, std::span<const cplx> taps,
                          cvec& out);

/// Converts an impairment pair (timing offset, frequency offset) into the
/// equivalent dechirped-domain frequency shift in Hz for the given CSS
/// parameters. A timing offset dt displaces the peak by dt*BW bins
/// (§3.2.1); a frequency offset df displaces it by df/bin_spacing bins
/// (§3.2.2). Both act as a single tone shift after dechirping, which this
/// helper aggregates so the simulator can apply one frequency_shift().
double equivalent_tone_shift_hz(const ns::phy::css_params& params, double timing_offset_s,
                                double frequency_offset_hz);

}  // namespace ns::channel
