#include "netscatter/channel/kernel_batch.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

// Bit-identity across backends requires that no path contracts the
// complex multiply-accumulate into FMA: the scalar reference compiles to
// separate mul/add (baseline x86-64 has no FMA instruction, and this
// translation unit is built with -ffp-contract=off for other targets),
// and the vector backends below use explicit mul/add/addsub intrinsics
// only. The product (wr·sr − wi·si, wi·sr + wr·si) is evaluated in the
// same operation order everywhere.

#ifndef NS_SIMD_ENABLED
#define NS_SIMD_ENABLED 1
#endif

#if NS_SIMD_ENABLED && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NS_SIMD_AVX2 1
#include <immintrin.h>
#elif NS_SIMD_ENABLED && defined(__aarch64__)
#define NS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ns::channel {

void kernel_batch::begin(std::size_t num_symbols) {
    window_values.clear();
    window_offset.clear();
    window_length.clear();
    stage_symbol.clear();
    stage_first.clear();
    stage_window.clear();
    stage_scale.clear();
    counts.assign(num_symbols, 0);
    symbol_begin.assign(num_symbols + 1, 0);
}

std::uint32_t kernel_batch::add_window(std::span<const cplx> values) {
    const std::uint32_t id = static_cast<std::uint32_t>(window_offset.size());
    window_offset.push_back(static_cast<std::uint32_t>(window_values.size()));
    window_length.push_back(static_cast<std::uint32_t>(values.size()));
    window_values.insert(window_values.end(), values.begin(), values.end());
    return id;
}

void kernel_batch::place(std::uint32_t symbol, std::uint32_t id,
                         std::uint32_t first, cplx amplitude) {
    stage_symbol.push_back(symbol);
    stage_first.push_back(first);
    stage_window.push_back(id);
    stage_scale.push_back(amplitude);
    ++counts[symbol];
}

void kernel_batch::seal() {
    // Stable counting sort of the staged placements into per-symbol
    // buckets: exclusive prefix sum, then a forward scatter pass (which
    // preserves packet order within each symbol — the accumulation order
    // the bit-identity contract pins).
    const std::size_t num_symbols = counts.size();
    std::uint32_t running = 0;
    for (std::size_t k = 0; k < num_symbols; ++k) {
        symbol_begin[k] = running;
        running += counts[k];
        counts[k] = symbol_begin[k];  // becomes the scatter cursor
    }
    symbol_begin[num_symbols] = running;

    const std::size_t total = stage_symbol.size();
    first_bin.resize(total);
    window_id.resize(total);
    scale.resize(total);
    for (std::size_t p = 0; p < total; ++p) {
        const std::uint32_t slot = counts[stage_symbol[p]]++;
        first_bin[slot] = stage_first[p];
        window_id[slot] = stage_window[p];
        scale[slot] = stage_scale[p];
    }
}

std::uint64_t kernel_batch::symbol_window_elems(std::size_t symbol) const {
    std::uint64_t elems = 0;
    for (std::uint32_t p = symbol_begin[symbol]; p < symbol_begin[symbol + 1];
         ++p) {
        elems += window_length[window_id[p]];
    }
    return elems;
}

void accumulate_run_scalar(cplx* dst, const cplx* window, std::size_t count,
                           cplx scale) {
    const double sr = scale.real();
    const double si = scale.imag();
    for (std::size_t i = 0; i < count; ++i) {
        const double wr = window[i].real();
        const double wi = window[i].imag();
        dst[i] += cplx{wr * sr - wi * si, wi * sr + wr * si};
    }
}

void interpolate_bands_scalar(cplx* dst, std::size_t pad, const cplx* grid,
                              std::size_t radius, const cplx* coeffs,
                              std::size_t count) {
    const std::size_t taps = 2 * radius + 1;
    for (std::size_t q = 0; q < count; ++q) {
        const cplx* window = grid + q;
        dst[pad * q] = window[radius];
        for (std::size_t r = 1; r < pad; ++r) {
            const cplx* w = coeffs + (r - 1) * taps;
            double acc_re = 0.0;
            double acc_im = 0.0;
            for (std::size_t t = 0; t < taps; ++t) {
                const double cr = w[t].real();
                const double ci = w[t].imag();
                const double wr = window[t].real();
                const double wi = window[t].imag();
                acc_re += wr * cr - wi * ci;
                acc_im += wi * cr + wr * ci;
            }
            dst[pad * q + r] = cplx{acc_re, acc_im};
        }
    }
}

namespace {

/// Fused residue accumulators live in a fixed register/stack array; a
/// zero-padding factor beyond this (never seen in practice — factors
/// are small powers of two) falls back to the scalar reference.
constexpr std::size_t max_fused_residues = 15;

#if defined(NS_SIMD_AVX2)

__attribute__((target("avx2"))) void accumulate_run_avx2(cplx* dst,
                                                         const cplx* window,
                                                         std::size_t count,
                                                         cplx scale) {
    double* d = reinterpret_cast<double*>(dst);
    const double* w = reinterpret_cast<const double*>(window);
    const __m256d sr = _mm256_set1_pd(scale.real());
    const __m256d si = _mm256_set1_pd(scale.imag());
    std::size_t i = 0;
    const std::size_t paired = count & ~std::size_t{1};
    for (; i < paired; i += 2) {
        const __m256d wv = _mm256_loadu_pd(w + 2 * i);      // wr0 wi0 wr1 wi1
        const __m256d t1 = _mm256_mul_pd(wv, sr);           // wr·sr  wi·sr
        const __m256d ws = _mm256_permute_pd(wv, 0x5);      // wi0 wr0 wi1 wr1
        const __m256d t2 = _mm256_mul_pd(ws, si);           // wi·si  wr·si
        // addsub: even lanes t1−t2, odd lanes t1+t2 —
        // (wr·sr − wi·si, wi·sr + wr·si), the scalar reference's order.
        const __m256d prod = _mm256_addsub_pd(t1, t2);
        _mm256_storeu_pd(d + 2 * i,
                         _mm256_add_pd(_mm256_loadu_pd(d + 2 * i), prod));
    }
    if (i < count) {
        accumulate_run_scalar(dst + i, window + i, count - i, scale);
    }
}

__attribute__((target("avx2"))) void interpolate_bands_avx2(
    cplx* dst, std::size_t pad, const cplx* grid, std::size_t radius,
    const cplx* coeffs, std::size_t count) {
    const std::size_t taps = 2 * radius + 1;
    const std::size_t residues = pad - 1;
    if (residues > max_fused_residues) {
        interpolate_bands_scalar(dst, pad, grid, radius, coeffs, count);
        return;
    }
    // Two q-lanes per vector: grid[q+t] and grid[q+1+t] are adjacent in
    // memory, so one unaligned load per tap feeds every residue's FIR
    // accumulator pair. The per-lane add order matches the scalar
    // reference exactly (products summed in t order from a zero
    // accumulator).
    const double* g = reinterpret_cast<const double*>(grid);
    std::size_t q = 0;
    const std::size_t paired = count & ~std::size_t{1};
    for (; q < paired; q += 2) {
        __m256d acc[max_fused_residues];
        for (std::size_t r = 0; r < residues; ++r) acc[r] = _mm256_setzero_pd();
        const double* w = g + 2 * q;
        for (std::size_t t = 0; t < taps; ++t) {
            const __m256d wv = _mm256_loadu_pd(w + 2 * t);
            const __m256d ws = _mm256_permute_pd(wv, 0x5);
            for (std::size_t r = 0; r < residues; ++r) {
                const cplx c = coeffs[r * taps + t];
                const __m256d t1 = _mm256_mul_pd(wv, _mm256_set1_pd(c.real()));
                const __m256d t2 = _mm256_mul_pd(ws, _mm256_set1_pd(c.imag()));
                acc[r] = _mm256_add_pd(acc[r], _mm256_addsub_pd(t1, t2));
            }
        }
        dst[pad * q] = grid[radius + q];
        dst[pad * (q + 1)] = grid[radius + q + 1];
        for (std::size_t r = 0; r < residues; ++r) {
            double lane[4];
            _mm256_storeu_pd(lane, acc[r]);
            dst[pad * q + r + 1] = cplx{lane[0], lane[1]};
            dst[pad * (q + 1) + r + 1] = cplx{lane[2], lane[3]};
        }
    }
    if (q < count) {
        interpolate_bands_scalar(dst + pad * q, pad, grid + q, radius, coeffs,
                                 count - q);
    }
}

#elif defined(NS_SIMD_NEON)

void accumulate_run_neon(cplx* dst, const cplx* window, std::size_t count,
                         cplx scale) {
    double* d = reinterpret_cast<double*>(dst);
    const double* w = reinterpret_cast<const double*>(window);
    const float64x2_t sr = vdupq_n_f64(scale.real());
    const float64x2_t si = vdupq_n_f64(scale.imag());
    const float64x2_t negpos = {-1.0, 1.0};
    for (std::size_t i = 0; i < count; ++i) {
        const float64x2_t wv = vld1q_f64(w + 2 * i);   // wr wi
        const float64x2_t t1 = vmulq_f64(wv, sr);      // wr·sr  wi·sr
        const float64x2_t ws = vextq_f64(wv, wv, 1);   // wi wr
        // Sign-flip the real lane of (wi·si, wr·si) so a single add
        // yields (wr·sr − wi·si, wi·sr + wr·si); x + (−y) is bit-equal
        // to x − y, keeping identity with the scalar reference.
        const float64x2_t t2 = vmulq_f64(vmulq_f64(ws, si), negpos);
        const float64x2_t prod = vaddq_f64(t1, t2);
        vst1q_f64(d + 2 * i, vaddq_f64(vld1q_f64(d + 2 * i), prod));
    }
}

void interpolate_bands_neon(cplx* dst, std::size_t pad, const cplx* grid,
                            std::size_t radius, const cplx* coeffs,
                            std::size_t count) {
    const std::size_t taps = 2 * radius + 1;
    const std::size_t residues = pad - 1;
    if (residues > max_fused_residues) {
        interpolate_bands_scalar(dst, pad, grid, radius, coeffs, count);
        return;
    }
    const double* g = reinterpret_cast<const double*>(grid);
    const float64x2_t negpos = {-1.0, 1.0};
    for (std::size_t q = 0; q < count; ++q) {
        float64x2_t acc[max_fused_residues];
        for (std::size_t r = 0; r < residues; ++r) acc[r] = vdupq_n_f64(0.0);
        const double* w = g + 2 * q;
        for (std::size_t t = 0; t < taps; ++t) {
            const float64x2_t wv = vld1q_f64(w + 2 * t);
            const float64x2_t ws = vextq_f64(wv, wv, 1);
            for (std::size_t r = 0; r < residues; ++r) {
                const cplx c = coeffs[r * taps + t];
                const float64x2_t t1 = vmulq_f64(wv, vdupq_n_f64(c.real()));
                const float64x2_t t2 =
                    vmulq_f64(vmulq_f64(ws, vdupq_n_f64(c.imag())), negpos);
                acc[r] = vaddq_f64(acc[r], vaddq_f64(t1, t2));
            }
        }
        dst[pad * q] = grid[radius + q];
        for (std::size_t r = 0; r < residues; ++r) {
            vst1q_f64(reinterpret_cast<double*>(dst + pad * q + r + 1), acc[r]);
        }
    }
}

#endif

using accumulate_fn = void (*)(cplx*, const cplx*, std::size_t, cplx);
using interpolate_fn = void (*)(cplx*, std::size_t, const cplx*, std::size_t,
                                const cplx*, std::size_t);

bool g_force_scalar = false;

accumulate_fn dispatch() {
    if (g_force_scalar) return accumulate_run_scalar;
#if defined(NS_SIMD_AVX2)
    static const bool has_avx2 = __builtin_cpu_supports("avx2");
    if (has_avx2) return accumulate_run_avx2;
#elif defined(NS_SIMD_NEON)
    return accumulate_run_neon;
#endif
    return accumulate_run_scalar;
}

interpolate_fn dispatch_interpolate() {
    if (g_force_scalar) return interpolate_bands_scalar;
#if defined(NS_SIMD_AVX2)
    static const bool has_avx2 = __builtin_cpu_supports("avx2");
    if (has_avx2) return interpolate_bands_avx2;
#elif defined(NS_SIMD_NEON)
    return interpolate_bands_neon;
#endif
    return interpolate_bands_scalar;
}

}  // namespace

void interpolate_bands(cplx* dst, std::size_t pad, const cplx* grid,
                       std::size_t radius, const cplx* coeffs,
                       std::size_t count) {
    dispatch_interpolate()(dst, pad, grid, radius, coeffs, count);
}

void force_scalar_accumulation(bool force_scalar) {
    g_force_scalar = force_scalar;
}

const char* kernel_accumulate_backend() {
    if (g_force_scalar) return "scalar";
#if defined(NS_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2")) return "avx2";
#elif defined(NS_SIMD_NEON)
    return "neon";
#endif
    return "scalar";
}

void accumulate_symbol(const kernel_batch& batch, std::size_t symbol,
                       cvec& spectrum) {
    const accumulate_fn accumulate = dispatch();
    const std::size_t m_total = spectrum.size();
    const cplx* values = batch.window_values.data();
    for (std::uint32_t p = batch.symbol_begin[symbol];
         p < batch.symbol_begin[symbol + 1]; ++p) {
        const std::uint32_t id = batch.window_id[p];
        const cplx* window = values + batch.window_offset[id];
        const std::size_t length = batch.window_length[id];
        const std::size_t first = batch.first_bin[p];
        const cplx amplitude = batch.scale[p];
        // spectrum[(first + w) mod M] += window[w] · amplitude, split
        // into the two contiguous runs of the cyclic window.
        const std::size_t run = std::min(length, m_total - first);
        accumulate(spectrum.data() + first, window, run, amplitude);
        accumulate(spectrum.data(), window + run, length - run, amplitude);
    }
}

}  // namespace ns::channel
