// Additive white Gaussian noise.
//
// NetScatter operates below the noise floor (per-device SNR down to
// ~-20 dB in Fig. 12); the dechirp+FFT provides the 2^SF processing gain
// that lifts the peak above the noise. Noise is complex circular
// Gaussian with the requested total power.
#pragma once

#include "netscatter/dsp/fft.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::channel {

using ns::dsp::cplx;
using ns::dsp::cvec;

/// Generates n samples of complex circular Gaussian noise with average
/// power `noise_power` (variance split evenly between I and Q).
cvec make_noise(std::size_t n, double noise_power, ns::util::rng& rng);

/// Adds complex Gaussian noise of average power `noise_power` to `signal`
/// in place.
void add_noise(cvec& signal, double noise_power, ns::util::rng& rng);

/// Adds noise such that a *unit-power* signal would see the given SNR:
/// noise power = 10^(-snr_db/10). Use when the signal of interest has
/// unit power and interferers are scaled relative to it.
void add_noise_for_unit_signal_snr(cvec& signal, double snr_db, ns::util::rng& rng);

/// Noise power that yields `snr_db` for a signal of power `signal_power`.
double noise_power_for_snr(double signal_power, double snr_db);

}  // namespace ns::channel
