// Time-varying channel gain for mobility-induced fading (Fig. 9).
//
// The paper measures each device's SNR variance over 30 minutes while
// people walk around an office: variations stay within roughly +-5 dB.
// We model the per-device channel gain (in dB) as a first-order
// Gauss-Markov (AR(1)) process around the static path-loss value — the
// standard model for shadow-fading time series.
#pragma once

#include <span>
#include <vector>

#include "netscatter/channel/impairments.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::channel {

/// AR(1) fading process: g[k+1] = rho * g[k] + sqrt(1-rho^2) * w,
/// w ~ N(0, sigma^2), so the process is stationary with std dev sigma dB.
class gauss_markov_fading {
public:
    /// `sigma_db` is the stationary standard deviation of the gain (dB);
    /// `correlation` is the one-step correlation coefficient rho in [0,1).
    gauss_markov_fading(double sigma_db, double correlation, ns::util::rng rng);

    /// Advances one step and returns the current gain deviation in dB
    /// (zero-mean; add to the static received power).
    double next_db();

    /// Advances `steps` steps in a single draw via the exact k-step
    /// AR(1) transition g[k+s] | g[k] ~ N(rho^s g[k], sigma^2(1-rho^2s)).
    /// Statistically identical to `steps` next_db() calls but costs one
    /// Gaussian — how a device whose gain went unobserved (inactive or
    /// unscheduled rounds) catches up without paying per-round draws.
    void skip(std::uint64_t steps);

    /// Current gain deviation without advancing.
    double current_db() const { return current_db_; }

private:
    double sigma_db_;
    double rho_;
    double current_db_;
    ns::util::rng rng_;
};

/// Per-device frequency-selective multipath state: a tapped delay line
/// (tap `i` delayed i samples) whose scattered taps evolve round to
/// round as independent complex AR(1) (Gauss-Markov) processes around
/// the model's power-delay profile, while the LoS tap stays fixed — the
/// Rician picture of a constant specular path plus Rayleigh scatter
/// that decorrelates as people move through the clutter. The process is
/// stationary: each scattered tap is CN(0, p_i) at every round, so the
/// line keeps unit mean total power.
class tap_delay_line {
public:
    /// `correlation` is the round-to-round correlation coefficient rho
    /// in [0, 1) of each scattered tap.
    tap_delay_line(const multipath_model& model, double sample_rate_hz,
                   double correlation, ns::util::rng rng);

    /// Advances one round and returns the current taps. The span views
    /// internal storage and stays valid until the line is destroyed
    /// (values change on the next call).
    std::span<const cplx> next();

    /// Advances `rounds` rounds in a single draw per scattered tap (the
    /// exact k-step transition of each complex AR(1) process); the same
    /// catch-up contract as gauss_markov_fading::skip.
    void skip(std::uint64_t rounds);

    /// Current taps without advancing.
    std::span<const cplx> current() const { return taps_; }

private:
    double rho_;
    std::vector<double> powers_;  ///< stationary per-tap power (0 = LoS)
    cvec taps_;
    ns::util::rng rng_;
};

}  // namespace ns::channel
