// Time-varying channel gain for mobility-induced fading (Fig. 9).
//
// The paper measures each device's SNR variance over 30 minutes while
// people walk around an office: variations stay within roughly +-5 dB.
// We model the per-device channel gain (in dB) as a first-order
// Gauss-Markov (AR(1)) process around the static path-loss value — the
// standard model for shadow-fading time series.
#pragma once

#include "netscatter/util/rng.hpp"

namespace ns::channel {

/// AR(1) fading process: g[k+1] = rho * g[k] + sqrt(1-rho^2) * w,
/// w ~ N(0, sigma^2), so the process is stationary with std dev sigma dB.
class gauss_markov_fading {
public:
    /// `sigma_db` is the stationary standard deviation of the gain (dB);
    /// `correlation` is the one-step correlation coefficient rho in [0,1).
    gauss_markov_fading(double sigma_db, double correlation, ns::util::rng rng);

    /// Advances one step and returns the current gain deviation in dB
    /// (zero-mean; add to the static received power).
    double next_db();

    /// Current gain deviation without advancing.
    double current_db() const { return current_db_; }

private:
    double sigma_db_;
    double rho_;
    double current_db_;
    ns::util::rng rng_;
};

}  // namespace ns::channel
