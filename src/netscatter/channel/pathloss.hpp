// Propagation model for the office-floor deployment (substitute for the
// paper's physical testbed, Fig. 1).
//
// Log-distance path loss with per-wall attenuation and lognormal
// shadowing. For backscatter, the uplink experiences the *round-trip*
// loss (AP -> device -> AP) while the AP query sees one-way loss — the
// paper notes this asymmetry in §4.1 (footnote: the query needs only
// -44 dBm sensitivity vs -120 dBm for backscatter).
#pragma once

#include "netscatter/util/rng.hpp"

namespace ns::channel {

/// Log-distance path loss parameters (indoor office defaults).
struct pathloss_params {
    double reference_distance_m = 1.0;   ///< d0
    double reference_loss_db = 31.5;     ///< free-space loss at d0, 900 MHz
    double exponent = 3.0;               ///< indoor office with obstructions
    double wall_loss_db = 5.0;           ///< attenuation per intervening wall
    double shadowing_sigma_db = 3.0;     ///< lognormal shadowing std dev
    /// Gudmundson decorrelation distance: the spatial correlation of the
    /// shadowing process is exp(-d / d_corr), so a mover's shadowing
    /// offset evolves as an AR(1) process along its path instead of
    /// staying frozen (~5-20 m indoors).
    double shadowing_decorrelation_m = 10.0;
};

/// One Gudmundson step of a mover's shadowing offset: advances
/// `shadow_db` by `moved_m` metres of walked distance, keeping the
/// process stationary at `params.shadowing_sigma_db` with spatial
/// correlation exp(-moved_m / decorrelation).
double gudmundson_shadowing_step_db(const pathloss_params& params, double shadow_db,
                                    double moved_m, ns::util::rng& rng);

/// One-way path loss in dB over `distance_m` metres through `walls`
/// intervening walls, with a shadowing sample drawn from `rng`.
double oneway_loss_db(const pathloss_params& params, double distance_m, int walls,
                      ns::util::rng& rng);

/// Deterministic one-way loss (no shadowing term).
double oneway_loss_db(const pathloss_params& params, double distance_m, int walls);

/// Round-trip (backscatter) loss: the tag reradiates, so the uplink
/// signal suffers the one-way loss twice, plus the tag's backscatter
/// conversion loss.
double backscatter_loss_db(const pathloss_params& params, double distance_m, int walls,
                           double conversion_loss_db = 6.0);

/// Received power in dBm at the AP for a backscatter uplink, given the
/// AP transmit power, device power gain (0 / -4 / -10 dB, §3.2.3) and
/// round-trip loss.
double backscatter_rx_power_dbm(double ap_tx_dbm, double device_gain_db,
                                double roundtrip_loss_db);

}  // namespace ns::channel
