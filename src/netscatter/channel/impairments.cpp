#include "netscatter/channel/impairments.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::channel {

double hardware_delay_model::sample_s(ns::util::rng& rng) const {
    const double sample_us = std::clamp(rng.gaussian(mean_us, sigma_us), 0.0, max_us);
    return sample_us * 1e-6;
}

double crystal_model::sample_static_offset_hz(ns::util::rng& rng) const {
    const double ppm = rng.uniform(-tolerance_ppm, tolerance_ppm);
    return ppm * 1e-6 * operating_frequency_hz;
}

double crystal_model::sample_drift_hz(ns::util::rng& rng) const {
    return rng.gaussian(0.0, drift_sigma_hz);
}

double doppler_shift_hz(double speed_mps, double carrier_hz) {
    return speed_mps / ns::util::speed_of_light_mps * carrier_hz;
}

double sample_doppler_hz(double speed_mps, double carrier_hz, ns::util::rng& rng) {
    const double radial = rng.uniform(-speed_mps, speed_mps);
    return doppler_shift_hz(radial, carrier_hz);
}

std::vector<double> multipath_model::tap_powers(double sample_rate_hz) const {
    ns::util::require(num_taps >= 0, "multipath_model: num_taps must be >= 0");
    ns::util::require(sample_rate_hz > 0.0, "multipath_model: sample rate must be positive");

    const double k_linear = ns::util::db_to_linear(rician_k_db);
    const double scatter_power = 1.0 / (1.0 + k_linear);
    const double los_power = k_linear / (1.0 + k_linear);
    const double tap_interval_s = 1.0 / sample_rate_hz;

    std::vector<double> powers(static_cast<std::size_t>(num_taps) + 1);
    // With no scattered taps the LoS carries everything — the profile
    // stays unit-power at every tap count.
    powers[0] = num_taps == 0 ? 1.0 : los_power;
    double profile_sum = 0.0;
    for (int i = 0; i < num_taps; ++i) {
        const double delay = static_cast<double>(i + 1) * tap_interval_s;
        powers[static_cast<std::size_t>(i) + 1] = std::exp(-delay / delay_spread_s);
        profile_sum += powers[static_cast<std::size_t>(i) + 1];
    }
    for (int i = 0; i < num_taps; ++i) {
        powers[static_cast<std::size_t>(i) + 1] =
            profile_sum > 0.0
                ? scatter_power * powers[static_cast<std::size_t>(i) + 1] / profile_sum
                : 0.0;
    }
    return powers;
}

cvec multipath_model::sample_taps(double sample_rate_hz, ns::util::rng& rng) const {
    const std::vector<double> powers = tap_powers(sample_rate_hz);

    cvec taps(powers.size());
    // LoS tap: fixed power, random phase.
    taps[0] = std::polar(std::sqrt(powers[0]), rng.uniform(0.0, 2.0 * 3.141592653589793));
    // Scattered taps: Rayleigh with exponentially decaying power profile.
    for (std::size_t i = 1; i < powers.size(); ++i) {
        const double sigma = std::sqrt(powers[i] / 2.0);
        taps[i] = cplx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
    }
    return taps;
}

cvec apply_multipath(std::span<const cplx> signal, std::span<const cplx> taps) {
    cvec out;
    apply_multipath_into(signal, taps, out);
    return out;
}

void apply_multipath_into(std::span<const cplx> signal, std::span<const cplx> taps,
                          cvec& out) {
    out.assign(signal.size(), cplx{0.0, 0.0});
    for (std::size_t t = 0; t < taps.size(); ++t) {
        if (taps[t] == cplx{0.0, 0.0}) continue;
        for (std::size_t i = t; i < signal.size(); ++i) {
            out[i] += taps[t] * signal[i - t];
        }
    }
}

double equivalent_tone_shift_hz(const ns::phy::css_params& params, double timing_offset_s,
                                double frequency_offset_hz) {
    // Bin displacement from timing: dt * BW bins; from CFO: df / bin_spacing
    // bins. One bin equals bin_spacing_hz() in the dechirped spectrum.
    const double bins = params.bins_from_time_offset(timing_offset_s) +
                        params.bins_from_frequency_offset(frequency_offset_hz);
    return bins * params.bin_spacing_hz();
}

}  // namespace ns::channel
