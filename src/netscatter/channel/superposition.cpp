#include "netscatter/channel/superposition.hpp"

#include <cmath>
#include <numbers>
#include <span>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::channel {

const cvec& combine(std::span<const tx_contribution> contributions, std::size_t length,
                    const ns::phy::css_params& params, const channel_config& config,
                    ns::util::rng& rng, channel_workspace& workspace) {
    cvec& received = workspace.received;
    received.assign(length, cplx{0.0, 0.0});

    for (const auto& tx : contributions) {
        // Amplitude from SNR relative to the configured noise power.
        const double power = config.noise_power * ns::util::db_to_linear(tx.snr_db);
        const double amplitude = std::sqrt(power);

        // View the contribution's samples; stage a modified copy only
        // when a transform actually rewrites them. The common case (no
        // shift, no multipath) used to deep-copy the full packet per
        // device — the dominant allocation of a high-concurrency round.
        std::span<const cplx> source = tx.waveform;

        // Residual sub-sample timing offset and CFO act as a common tone
        // shift after dechirping; apply it to the time-domain waveform.
        const double tone_hz =
            equivalent_tone_shift_hz(params, tx.timing_offset_s, tx.frequency_offset_hz);

        const bool filtered = config.enable_multipath || !tx.taps.empty();
        if (filtered) {
            if (tone_hz != 0.0) {
                ns::dsp::frequency_shift_into(source, tone_hz, params.bandwidth_hz,
                                              workspace.staged);
                source = workspace.staged;
            }
            if (!tx.taps.empty()) {
                // Explicit per-device taps (e.g. a tap_delay_line whose
                // state persists across rounds).
                apply_multipath_into(source, tx.taps, workspace.filtered);
            } else {
                const cvec taps = config.multipath.sample_taps(params.bandwidth_hz, rng);
                apply_multipath_into(source, taps, workspace.filtered);
            }
            source = workspace.filtered;
        }

        cplx gain{amplitude, 0.0};
        if (tx.random_phase) {
            gain = std::polar(amplitude, rng.uniform(0.0, 2.0 * std::numbers::pi));
        }

        if (!filtered && tone_hz != 0.0) {
            // Fused shift + scale + accumulate: bit-identical to the
            // staged sequence, without the intermediate buffer.
            ns::dsp::accumulate_scaled_shifted(received, source, gain, tone_hz,
                                               params.bandwidth_hz, tx.sample_delay);
        } else {
            ns::dsp::accumulate_scaled(received, source, gain, tx.sample_delay);
        }
    }

    add_noise(received, config.noise_power, rng);
    if (workspace.metrics != nullptr) {
        workspace.metrics->get_counter("phy.sample_waveforms")
            ->add(contributions.size());
    }
    return received;
}

cvec combine(const std::vector<tx_contribution>& contributions, std::size_t length,
             const ns::phy::css_params& params, const channel_config& config,
             ns::util::rng& rng) {
    channel_workspace workspace;
    combine(std::span<const tx_contribution>(contributions), length, params, config,
            rng, workspace);
    return std::move(workspace.received);
}

namespace {

/// spectrum[(first + w) mod M] += kernel[w] * scalar, split into the two
/// contiguous runs of the cyclic window.
void add_kernel_at(cvec& spectrum, const cvec& kernel, std::size_t first, cplx scalar) {
    const std::size_t m_total = spectrum.size();
    const std::size_t run = std::min(kernel.size(), m_total - first);
    for (std::size_t w = 0; w < run; ++w) {
        spectrum[first + w] += kernel[w] * scalar;
    }
    for (std::size_t w = run; w < kernel.size(); ++w) {
        spectrum[w - run] += kernel[w] * scalar;
    }
}

}  // namespace

void combine_symbol_domain(std::span<const packet_contribution> packets,
                           const ns::phy::css_params& params,
                           const channel_config& config,
                           const symbol_domain_params& sd, ns::util::rng& rng,
                           channel_workspace& workspace) {
    ns::util::require(!config.enable_multipath,
                      "combine_symbol_domain: config-level random multipath is "
                      "sample-only; pass deterministic per-device taps via "
                      "packet_contribution::taps instead");
    ns::util::require(sd.zero_padding >= 1 &&
                          ns::dsp::is_power_of_two(sd.zero_padding),
                      "combine_symbol_domain: zero_padding must be a power of two");
    ns::util::require(sd.preamble_symbols >= sd.preamble_upchirps,
                      "combine_symbol_domain: preamble shorter than its upchirps");

    const std::size_t n = params.samples_per_symbol();
    const std::size_t padded = n * sd.zero_padding;
    const std::size_t total_spectra = sd.preamble_upchirps + sd.payload_symbols;

    // --- Thermal noise, drawn in the frequency domain -------------------
    // The receiver's spectrum of a pure-noise symbol is FFT(noise ·
    // downchirp) zero-padded; the unit-modulus dechirp leaves circular
    // Gaussian noise circular, so a spectrum with the identical
    // distribution can be drawn directly: its N on-grid samples are
    // i.i.d. CN(0, N·noise_power) (the unnormalized DFT of white noise)
    // and the off-grid padded bins are their Dirichlet interpolation —
    // either exact (one FFT per symbol) or banded to ±R chip bins.
    workspace.symbol_spectra.resize(total_spectra);
    const double sigma = std::sqrt(config.noise_power / 2.0);
    const std::size_t pad = sd.zero_padding;
    const std::size_t interp_radius = sd.noise_interp_radius_bins;
    const bool banded = pad > 1 && interp_radius > 0 && interp_radius < n / 2;

    if (banded) {
        // C[(r-1)·(2R+1) + t] interpolates offset r in (0, pad) from the
        // on-grid neighbour t - R chip bins away: the device kernel
        // evaluated at x = (t - R)·pad - r padded bins, scaled by 1/N
        // (the IDFT normalization).
        const std::size_t taps = 2 * interp_radius + 1;
        workspace.noise_taps.resize((pad - 1) * taps);
        for (std::size_t r = 1; r < pad; ++r) {
            for (std::size_t t = 0; t < taps; ++t) {
                const double x =
                    (static_cast<double>(t) - static_cast<double>(interp_radius)) *
                        static_cast<double>(pad) -
                    static_cast<double>(r);
                const double theta = x / static_cast<double>(padded);
                const double magnitude =
                    std::sin(std::numbers::pi * x / static_cast<double>(pad)) /
                    std::sin(std::numbers::pi * theta);
                workspace.noise_taps[(r - 1) * taps + t] =
                    std::polar(magnitude / static_cast<double>(n),
                               std::numbers::pi * (static_cast<double>(n) - 1.0) *
                                   theta);
            }
        }
    }

    const double sigma_grid =
        std::sqrt(static_cast<double>(n)) * sigma;  // on-grid DFT sample std dev
    for (std::size_t k = 0; k < total_spectra; ++k) {
        cvec& spectrum = workspace.symbol_spectra[k];
        spectrum.resize(padded);
        if (!banded) {
            // Exact path: zero-padded FFT of time-domain white noise.
            for (std::size_t i = 0; i < n; ++i) {
                spectrum[i] = cplx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
            }
            std::fill(spectrum.begin() + static_cast<std::ptrdiff_t>(n),
                      spectrum.end(), cplx{0.0, 0.0});
            ns::dsp::fft_inplace(spectrum);
            continue;
        }
        // On-grid draws with ±R wrap margins so the banded interpolation
        // never takes a modulo in its inner loop.
        const std::size_t taps = 2 * interp_radius + 1;
        cvec& grid = workspace.noise_bins;
        grid.resize(n + 2 * interp_radius);
        for (std::size_t q = 0; q < n; ++q) {
            grid[interp_radius + q] =
                cplx{rng.gaussian(0.0, sigma_grid), rng.gaussian(0.0, sigma_grid)};
        }
        for (std::size_t t = 0; t < interp_radius; ++t) {
            grid[t] = grid[n + t];                                // wrap low side
            grid[n + interp_radius + t] = grid[interp_radius + t];  // wrap high side
        }
        for (std::size_t q = 0; q < n; ++q) {
            spectrum[pad * q] = grid[interp_radius + q];
        }
        for (std::size_t r = 1; r < pad; ++r) {
            const cplx* coeffs = workspace.noise_taps.data() + (r - 1) * taps;
            for (std::size_t q = 0; q < n; ++q) {
                const cplx* window = grid.data() + q;
                cplx acc{0.0, 0.0};
                for (std::size_t t = 0; t < taps; ++t) {
                    acc += coeffs[t] * window[t];
                }
                spectrum[pad * q + r] = acc;
            }
        }
    }

    // --- Devices: one Dirichlet kernel each, re-phased per ON symbol ----
    // The batch is bracketed by a wall-clock probe (phy.kernel_sum_s)
    // and a hardware-counter probe (perf.kernel_sum.*); together with
    // the deterministic element count below they parameterize the
    // roofline model (obs/roofline.hpp). Both probes are inert when
    // their handles are unset and record nothing into simulation state.
    ns::obs::scoped_timer batch_timer(
        workspace.metrics != nullptr
            ? workspace.metrics->get_histogram("phy.kernel_sum_s")
            : nullptr);
    ns::obs::perf_scope batch_perf(workspace.perf, &workspace.perf_kernel_sum);
    std::uint64_t kernels_summed = 0;
    std::uint64_t window_elems = 0;
    for (const auto& packet : packets) {
        const double power = config.noise_power * ns::util::db_to_linear(packet.snr_db);
        const double amplitude = std::sqrt(power);
        const double phase0 =
            packet.random_phase ? rng.uniform(0.0, 2.0 * std::numbers::pi) : 0.0;

        const double tone_hz = equivalent_tone_shift_hz(
            params, packet.timing_offset_s, packet.frequency_offset_hz);
        const double tone_bins = tone_hz / params.bin_spacing_hz();
        const double position_bins =
            static_cast<double>(packet.cyclic_shift) + tone_bins;

        // The kernel's complex values are identical for every ON symbol
        // of the device; only the leading scalar A·e^{jφ_g} rotates with
        // the global symbol index g (the tone's phase advances across
        // the whole packet, downchirps included). A multipath device uses
        // the tap-enveloped window instead of the bare Dirichlet one —
        // the taps' per-symbol effect is identical too (each tap is a
        // fixed-bin cyclic shift), so the same scalar applies.
        std::size_t first;
        const cvec* window;
        if (packet.taps.empty()) {
            first = ns::phy::make_dechirped_tone_kernel(
                workspace.kernel, position_bins, n, sd.zero_padding,
                sd.kernel_radius_bins);
            window = &workspace.kernel;
        } else {
            first = ns::phy::make_multipath_tone_kernel(
                workspace.envelope, packet.taps, packet.cyclic_shift, tone_bins, n,
                sd.zero_padding, sd.kernel_radius_bins, workspace.kernel);
            window = &workspace.envelope;
        }
        const double symbol_phase_step =
            2.0 * std::numbers::pi * tone_hz * static_cast<double>(n) /
            params.bandwidth_hz;
        const auto symbol_scalar = [&](std::size_t global_symbol) {
            return std::polar(amplitude,
                              phase0 + symbol_phase_step *
                                           static_cast<double>(global_symbol));
        };

        std::uint64_t packet_kernels = sd.preamble_upchirps;
        for (std::size_t k = 0; k < sd.preamble_upchirps; ++k) {
            add_kernel_at(workspace.symbol_spectra[k], *window, first,
                          symbol_scalar(k));
        }
        const std::size_t on_bits =
            std::min(packet.frame_bits.size(), sd.payload_symbols);
        for (std::size_t i = 0; i < on_bits; ++i) {
            if (packet.frame_bits[i] == 0) continue;
            add_kernel_at(workspace.symbol_spectra[sd.preamble_upchirps + i],
                          *window, first,
                          symbol_scalar(sd.preamble_symbols + i));
            ++packet_kernels;
        }
        kernels_summed += packet_kernels;
        // Accumulated window elements — the deterministic input of the
        // roofline traffic model (48 B and 8 flops per element, see
        // obs/roofline.hpp). Counts the actual window size so multipath
        // envelopes (wider than the bare Dirichlet window) are charged
        // at their real cost.
        window_elems += packet_kernels * window->size();
    }

    if (workspace.metrics != nullptr) {
        workspace.metrics->get_counter("phy.fast_packets")->add(packets.size());
        workspace.metrics->get_counter("phy.kernels_summed")->add(kernels_summed);
        workspace.metrics->get_counter("phy.noise_symbols")->add(total_spectra);
        workspace.metrics->get_counter("phy.kernel_window_elems")
            ->add(window_elems);
    }
}

}  // namespace ns::channel
