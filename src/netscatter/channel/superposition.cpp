#include "netscatter/channel/superposition.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/util/units.hpp"

namespace ns::channel {

cvec combine(const std::vector<tx_contribution>& contributions, std::size_t length,
             const ns::phy::css_params& params, const channel_config& config,
             ns::util::rng& rng) {
    cvec received(length, cplx{0.0, 0.0});

    for (const auto& tx : contributions) {
        // Amplitude from SNR relative to the configured noise power.
        const double power = config.noise_power * ns::util::db_to_linear(tx.snr_db);
        const double amplitude = std::sqrt(power);

        cvec waveform = tx.waveform;

        // Residual sub-sample timing offset and CFO act as a common tone
        // shift after dechirping; apply it to the time-domain waveform.
        const double tone_hz =
            equivalent_tone_shift_hz(params, tx.timing_offset_s, tx.frequency_offset_hz);
        if (tone_hz != 0.0) {
            waveform = ns::dsp::frequency_shift(waveform, tone_hz, params.bandwidth_hz);
        }

        if (config.enable_multipath) {
            const cvec taps = config.multipath.sample_taps(params.bandwidth_hz, rng);
            waveform = apply_multipath(waveform, taps);
        }

        cplx gain{amplitude, 0.0};
        if (tx.random_phase) {
            gain = std::polar(amplitude, rng.uniform(0.0, 2.0 * std::numbers::pi));
        }
        ns::dsp::scale(waveform, gain);

        ns::dsp::accumulate_at(received, waveform, tx.sample_delay);
    }

    add_noise(received, config.noise_power, rng);
    return received;
}

}  // namespace ns::channel
