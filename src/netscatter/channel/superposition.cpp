#include "netscatter/channel/superposition.hpp"

#include <cmath>
#include <numbers>
#include <span>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::channel {

const cvec& combine(std::span<const tx_contribution> contributions, std::size_t length,
                    const ns::phy::css_params& params, const channel_config& config,
                    ns::util::rng& rng, channel_workspace& workspace) {
    cvec& received = workspace.received;
    received.assign(length, cplx{0.0, 0.0});

    for (const auto& tx : contributions) {
        // Amplitude from SNR relative to the configured noise power.
        const double power = config.noise_power * ns::util::db_to_linear(tx.snr_db);
        const double amplitude = std::sqrt(power);

        // View the contribution's samples; stage a modified copy only
        // when a transform actually rewrites them. The common case (no
        // shift, no multipath) used to deep-copy the full packet per
        // device — the dominant allocation of a high-concurrency round.
        std::span<const cplx> source = tx.waveform;

        // Residual sub-sample timing offset and CFO act as a common tone
        // shift after dechirping; apply it to the time-domain waveform.
        const double tone_hz =
            equivalent_tone_shift_hz(params, tx.timing_offset_s, tx.frequency_offset_hz);

        const bool filtered = config.enable_multipath || !tx.taps.empty();
        if (filtered) {
            if (tone_hz != 0.0) {
                ns::dsp::frequency_shift_into(source, tone_hz, params.bandwidth_hz,
                                              workspace.staged);
                source = workspace.staged;
            }
            if (!tx.taps.empty()) {
                // Explicit per-device taps (e.g. a tap_delay_line whose
                // state persists across rounds).
                apply_multipath_into(source, tx.taps, workspace.filtered);
            } else {
                const cvec taps = config.multipath.sample_taps(params.bandwidth_hz, rng);
                apply_multipath_into(source, taps, workspace.filtered);
            }
            source = workspace.filtered;
        }

        cplx gain{amplitude, 0.0};
        if (tx.random_phase) {
            gain = std::polar(amplitude, rng.uniform(0.0, 2.0 * std::numbers::pi));
        }

        if (!filtered && tone_hz != 0.0) {
            // Fused shift + scale + accumulate: bit-identical to the
            // staged sequence, without the intermediate buffer.
            ns::dsp::accumulate_scaled_shifted(received, source, gain, tone_hz,
                                               params.bandwidth_hz, tx.sample_delay);
        } else {
            ns::dsp::accumulate_scaled(received, source, gain, tx.sample_delay);
        }
    }

    add_noise(received, config.noise_power, rng);
    if (workspace.obs.metrics != nullptr) {
        workspace.obs.metrics->get_counter("phy.sample_waveforms")
            ->add(contributions.size());
    }
    return received;
}

namespace {

/// Independent noise seed for one symbol of one round — the same
/// splitmix chaining as engine::split_seed (not included here to keep
/// channel below engine in the layering). Deriving noise from (round
/// seed, symbol index) instead of a shared stream is what makes the
/// symbol sweep order-free: any partition of symbols over threads draws
/// the identical noise.
std::uint64_t symbol_noise_seed(std::uint64_t round_seed, std::uint64_t symbol) {
    std::uint64_t state = round_seed;
    const std::uint64_t out = ns::util::splitmix64_next(state);
    state ^= out ^ (symbol * 0x94d049bb133111ebULL);
    return ns::util::splitmix64_next(state);
}

/// Everything a symbol-block sweep needs, shared read-only across
/// blocks (mutable state — spectra, grids, per-block timing slots — is
/// indexed by symbol or block, never shared).
struct sweep_context {
    channel_workspace* ws = nullptr;
    std::uint64_t round_seed = 0;
    std::size_t n = 0;
    std::size_t pad = 0;
    std::size_t total_spectra = 0;
    std::size_t num_blocks = 0;
    std::size_t interp_radius = 0;
    double sigma = 0.0;
    double sigma_grid = 0.0;
    bool banded = false;
    bool time_sweep = false;
};

/// Fills `spectrum` with one symbol's thermal noise (overwrites every
/// padded bin). Identical math to the pre-batch serial path; only the
/// generator is per-symbol now.
void synthesize_noise(const sweep_context& c, cvec& spectrum, cvec& grid,
                      ns::util::rng& srng) {
    const std::size_t n = c.n;
    const std::size_t pad = c.pad;
    if (!c.banded) {
        // Exact path: zero-padded FFT of time-domain white noise.
        for (std::size_t i = 0; i < n; ++i) {
            spectrum[i] =
                cplx{srng.gaussian(0.0, c.sigma), srng.gaussian(0.0, c.sigma)};
        }
        std::fill(spectrum.begin() + static_cast<std::ptrdiff_t>(n),
                  spectrum.end(), cplx{0.0, 0.0});
        ns::dsp::fft_inplace(spectrum);
        return;
    }
    // On-grid draws with ±R wrap margins so the banded interpolation
    // never takes a modulo in its inner loop.
    const std::size_t interp_radius = c.interp_radius;
    for (std::size_t q = 0; q < n; ++q) {
        grid[interp_radius + q] = cplx{srng.gaussian(0.0, c.sigma_grid),
                                       srng.gaussian(0.0, c.sigma_grid)};
    }
    for (std::size_t t = 0; t < interp_radius; ++t) {
        grid[t] = grid[n + t];                                  // wrap low side
        grid[n + interp_radius + t] = grid[interp_radius + t];  // wrap high side
    }
    // One fused pass over the padded spectrum: the on-grid scatter plus
    // every fractional-offset residue's FIR over the wrapped grid,
    // swept by the dispatched vector backend (bit-identical to the
    // scalar loop) — each grid element is loaded once and the spectrum
    // is written front to back.
    interpolate_bands(spectrum.data(), pad, grid.data(), interp_radius,
                      c.ws->noise_taps.data(), n);
}

/// One block of the accumulation stage: noise + kernel sweep for a
/// contiguous symbol range. Runs on block_runner workers or inline;
/// per-symbol seeding makes the result independent of the partition.
void sweep_block(void* context, std::size_t block) {
    const auto& c = *static_cast<const sweep_context*>(context);
    const std::size_t begin = block * c.total_spectra / c.num_blocks;
    const std::size_t end = (block + 1) * c.total_spectra / c.num_blocks;
    cvec& grid = c.ws->noise_grids[block];
    std::uint64_t sweep_ns = 0;
    for (std::size_t k = begin; k < end; ++k) {
        cvec& spectrum = c.ws->symbol_spectra[k];
        ns::util::rng srng(symbol_noise_seed(c.round_seed, k));
        synthesize_noise(c, spectrum, grid, srng);
        const std::uint64_t t0 = c.time_sweep ? ns::obs::now_ns() : 0;
        accumulate_symbol(c.ws->batch, k, spectrum);
        if (c.time_sweep) sweep_ns += ns::obs::now_ns() - t0;
    }
    c.ws->block_kernel_ns[block] = sweep_ns;
}

}  // namespace

void combine_symbol_domain(std::span<const packet_contribution> packets,
                           const ns::phy::css_params& params,
                           const channel_config& config,
                           const symbol_domain_params& sd, ns::util::rng& rng,
                           channel_workspace& workspace) {
    ns::util::require(!config.enable_multipath,
                      "combine_symbol_domain: config-level random multipath is "
                      "sample-only; pass deterministic per-device taps via "
                      "packet_contribution::taps instead");
    ns::util::require(sd.zero_padding >= 1 &&
                          ns::dsp::is_power_of_two(sd.zero_padding),
                      "combine_symbol_domain: zero_padding must be a power of two");
    ns::util::require(sd.preamble_symbols >= sd.preamble_upchirps,
                      "combine_symbol_domain: preamble shorter than its upchirps");

    const std::size_t n = params.samples_per_symbol();
    const std::size_t padded = n * sd.zero_padding;
    const std::size_t total_spectra = sd.preamble_upchirps + sd.payload_symbols;

    // =====================================================================
    // Planning stage — serial, on the caller's thread. Grows every buffer
    // the sweep will touch (so worker threads never allocate and the
    // alloc.* counters are identical at any thread count), derives the
    // round's noise seed, and flattens all kernel placements into the SoA
    // batch.
    // =====================================================================
    workspace.symbol_spectra.resize(total_spectra);
    for (auto& spectrum : workspace.symbol_spectra) {
        spectrum.resize(padded);
    }
    const double sigma = std::sqrt(config.noise_power / 2.0);
    const std::size_t pad = sd.zero_padding;
    const std::size_t interp_radius = sd.noise_interp_radius_bins;
    const bool banded = pad > 1 && interp_radius > 0 && interp_radius < n / 2;

    // Thermal noise is drawn in the frequency domain: the receiver's
    // spectrum of a pure-noise symbol is FFT(noise · downchirp)
    // zero-padded; the unit-modulus dechirp leaves circular Gaussian
    // noise circular, so a spectrum with the identical distribution can
    // be drawn directly — its N on-grid samples are i.i.d.
    // CN(0, N·noise_power) (the unnormalized DFT of white noise) and the
    // off-grid padded bins are their Dirichlet interpolation, either
    // exact (one FFT per symbol) or banded to ±R chip bins.
    if (banded) {
        // C[(r-1)·(2R+1) + t] interpolates offset r in (0, pad) from the
        // on-grid neighbour t - R chip bins away: the device kernel
        // evaluated at x = (t - R)·pad - r padded bins, scaled by 1/N
        // (the IDFT normalization).
        const std::size_t taps = 2 * interp_radius + 1;
        workspace.noise_taps.resize((pad - 1) * taps);
        for (std::size_t r = 1; r < pad; ++r) {
            for (std::size_t t = 0; t < taps; ++t) {
                const double x =
                    (static_cast<double>(t) - static_cast<double>(interp_radius)) *
                        static_cast<double>(pad) -
                    static_cast<double>(r);
                const double theta = x / static_cast<double>(padded);
                const double magnitude =
                    std::sin(std::numbers::pi * x / static_cast<double>(pad)) /
                    std::sin(std::numbers::pi * theta);
                workspace.noise_taps[(r - 1) * taps + t] =
                    std::polar(magnitude / static_cast<double>(n),
                               std::numbers::pi * (static_cast<double>(n) - 1.0) *
                                   theta);
            }
        }
    }

    // One raw draw seeds every symbol's noise generator; consuming it
    // before the per-packet phase draws keeps the caller's stream layout
    // fixed regardless of the packet count.
    const std::uint64_t round_seed = rng();

    // --- Plan the device kernels into the SoA batch ---------------------
    // One window per packet (its complex values are identical for every
    // ON symbol; only the leading scalar A·e^{jφ_g} rotates with the
    // global symbol index g — the tone's phase advances across the whole
    // packet, downchirps included), one placement per ON symbol. A
    // multipath device uses the tap-enveloped window instead of the bare
    // Dirichlet one — the taps' per-symbol effect is identical too (each
    // tap is a fixed-bin cyclic shift), so the same scalar applies.
    kernel_batch& batch = workspace.batch;
    batch.begin(total_spectra);
    std::uint64_t kernels_summed = 0;
    std::uint64_t window_elems = 0;
    const bool timed = workspace.obs.metrics != nullptr;
    const std::uint64_t plan_t0 = timed ? ns::obs::now_ns() : 0;
    for (const auto& packet : packets) {
        const double power = config.noise_power * ns::util::db_to_linear(packet.snr_db);
        const double amplitude = std::sqrt(power);
        const double phase0 =
            packet.random_phase ? rng.uniform(0.0, 2.0 * std::numbers::pi) : 0.0;

        const double tone_hz = equivalent_tone_shift_hz(
            params, packet.timing_offset_s, packet.frequency_offset_hz);
        const double tone_bins = tone_hz / params.bin_spacing_hz();
        const double position_bins =
            static_cast<double>(packet.cyclic_shift) + tone_bins;

        std::size_t first;
        const cvec* window;
        if (packet.taps.empty()) {
            first = ns::phy::make_dechirped_tone_kernel(
                workspace.kernel, position_bins, n, sd.zero_padding,
                sd.kernel_radius_bins);
            window = &workspace.kernel;
        } else {
            first = ns::phy::make_multipath_tone_kernel(
                workspace.envelope, packet.taps, packet.cyclic_shift, tone_bins, n,
                sd.zero_padding, sd.kernel_radius_bins, workspace.kernel);
            window = &workspace.envelope;
        }
        const std::uint32_t window_id = batch.add_window(*window);
        const double symbol_phase_step =
            2.0 * std::numbers::pi * tone_hz * static_cast<double>(n) /
            params.bandwidth_hz;
        const auto symbol_scalar = [&](std::size_t global_symbol) {
            return std::polar(amplitude,
                              phase0 + symbol_phase_step *
                                           static_cast<double>(global_symbol));
        };

        std::uint64_t packet_kernels = sd.preamble_upchirps;
        for (std::size_t k = 0; k < sd.preamble_upchirps; ++k) {
            batch.place(static_cast<std::uint32_t>(k), window_id,
                        static_cast<std::uint32_t>(first), symbol_scalar(k));
        }
        const std::size_t on_bits =
            std::min(packet.frame_bits.size(), sd.payload_symbols);
        for (std::size_t i = 0; i < on_bits; ++i) {
            if (packet.frame_bits[i] == 0) continue;
            batch.place(static_cast<std::uint32_t>(sd.preamble_upchirps + i),
                        window_id, static_cast<std::uint32_t>(first),
                        symbol_scalar(sd.preamble_symbols + i));
            ++packet_kernels;
        }
        kernels_summed += packet_kernels;
        // Accumulated window elements — the deterministic input of the
        // roofline traffic model (48 B and 8 flops per element, see
        // obs/roofline.hpp). Counts the actual window size so multipath
        // envelopes (wider than the bare Dirichlet window) are charged
        // at their real cost.
        window_elems += packet_kernels * window->size();
    }
    batch.seal();
    if (timed) {
        workspace.obs.metrics->get_histogram("phy.kernel_plan_s")
            ->record_ns(ns::obs::now_ns() - plan_t0);
    }

    // =====================================================================
    // Accumulation stage — symbols are self-contained (own noise
    // generator, own placement bucket, own spectrum), so contiguous
    // symbol blocks fan out across the workspace's block_runner when one
    // is attached. Any thread count — including the inline serial sweep —
    // produces bit-identical spectra.
    // =====================================================================
    ns::engine::block_runner* pool = workspace.block_pool;
    const std::size_t pool_threads = pool != nullptr ? pool->size() : 1;
    std::size_t num_blocks = 1;
    if (pool_threads > 1 && total_spectra > 1) {
        // More blocks than threads smooths the load (payload symbols
        // carry different kernel counts); the partition never changes
        // results, only scheduling.
        num_blocks = std::min(total_spectra, pool_threads * 2);
    }
    workspace.noise_grids.resize(num_blocks);
    if (banded) {
        for (auto& grid : workspace.noise_grids) {
            grid.resize(n + 2 * interp_radius);
        }
    }
    workspace.block_kernel_ns.assign(num_blocks, 0);

    sweep_context ctx;
    ctx.ws = &workspace;
    ctx.round_seed = round_seed;
    ctx.n = n;
    ctx.pad = pad;
    ctx.total_spectra = total_spectra;
    ctx.num_blocks = num_blocks;
    ctx.interp_radius = interp_radius;
    ctx.sigma = sigma;
    ctx.sigma_grid = std::sqrt(static_cast<double>(n)) * sigma;
    ctx.banded = banded;
    ctx.time_sweep = workspace.obs.metrics != nullptr;

    {
        // The hardware-counter probe wraps the whole stage from the
        // calling thread (perf counters are thread-pinned, so with a
        // pool attached it attributes the caller's share of the sweep);
        // the wall-clock probe below sums each block's sweep time
        // instead, so phy.kernel_sum_s stays the roofline denominator —
        // busy time of the accumulation loops, noise excluded — at any
        // thread count.
        ns::obs::perf_scope batch_perf(workspace.obs.perf,
                                       &workspace.obs.perf_kernel_sum);
        if (pool != nullptr && num_blocks > 1) {
            pool->run(num_blocks, &sweep_block, &ctx);
        } else {
            for (std::size_t block = 0; block < num_blocks; ++block) {
                sweep_block(&ctx, block);
            }
        }
    }

    if (workspace.obs.metrics != nullptr) {
        ns::obs::metrics_registry& metrics = *workspace.obs.metrics;
        ns::obs::histogram* sweep_hist =
            metrics.get_histogram("phy.kernel_sum_s");
        // Per-block sweep times merge deterministically: recorded by the
        // calling thread, in block order, after the join.
        for (std::size_t block = 0; block < num_blocks; ++block) {
            sweep_hist->record_ns(workspace.block_kernel_ns[block]);
        }
        metrics.get_counter("phy.fast_packets")->add(packets.size());
        metrics.get_counter("phy.kernels_summed")->add(kernels_summed);
        metrics.get_counter("phy.noise_symbols")->add(total_spectra);
        metrics.get_counter("phy.kernel_window_elems")->add(window_elems);
    }
}

}  // namespace ns::channel
