#include "netscatter/channel/superposition.hpp"

#include <span>

#include <cmath>
#include <numbers>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/util/units.hpp"

namespace ns::channel {

cvec combine(const std::vector<tx_contribution>& contributions, std::size_t length,
             const ns::phy::css_params& params, const channel_config& config,
             ns::util::rng& rng) {
    cvec received(length, cplx{0.0, 0.0});

    for (const auto& tx : contributions) {
        // Amplitude from SNR relative to the configured noise power.
        const double power = config.noise_power * ns::util::db_to_linear(tx.snr_db);
        const double amplitude = std::sqrt(power);

        // View the contribution's samples; stage a modified copy only
        // when a transform actually rewrites them. The common case (no
        // shift, no multipath) used to deep-copy the full packet per
        // device — the dominant allocation of a high-concurrency round.
        std::span<const cplx> source = tx.waveform;
        cvec staged;

        // Residual sub-sample timing offset and CFO act as a common tone
        // shift after dechirping; apply it to the time-domain waveform.
        const double tone_hz =
            equivalent_tone_shift_hz(params, tx.timing_offset_s, tx.frequency_offset_hz);

        if (config.enable_multipath) {
            if (tone_hz != 0.0) {
                staged = ns::dsp::frequency_shift(source, tone_hz, params.bandwidth_hz);
                source = staged;
            }
            const cvec taps = config.multipath.sample_taps(params.bandwidth_hz, rng);
            cvec filtered = apply_multipath(source, taps);
            staged = std::move(filtered);
            source = staged;
        }

        cplx gain{amplitude, 0.0};
        if (tx.random_phase) {
            gain = std::polar(amplitude, rng.uniform(0.0, 2.0 * std::numbers::pi));
        }

        if (!config.enable_multipath && tone_hz != 0.0) {
            // Fused shift + scale + accumulate: bit-identical to the
            // staged sequence, without the intermediate buffer.
            ns::dsp::accumulate_scaled_shifted(received, source, gain, tone_hz,
                                               params.bandwidth_hz, tx.sample_delay);
        } else {
            ns::dsp::accumulate_scaled(received, source, gain, tx.sample_delay);
        }
    }

    add_noise(received, config.noise_power, rng);
    return received;
}

}  // namespace ns::channel
