#include "netscatter/channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::channel {

double oneway_loss_db(const pathloss_params& params, double distance_m, int walls) {
    ns::util::require(distance_m > 0.0, "oneway_loss_db: distance must be positive");
    const double d = std::max(distance_m, params.reference_distance_m);
    return params.reference_loss_db +
           10.0 * params.exponent * std::log10(d / params.reference_distance_m) +
           params.wall_loss_db * static_cast<double>(walls);
}

double oneway_loss_db(const pathloss_params& params, double distance_m, int walls,
                      ns::util::rng& rng) {
    return oneway_loss_db(params, distance_m, walls) +
           rng.gaussian(0.0, params.shadowing_sigma_db);
}

double backscatter_loss_db(const pathloss_params& params, double distance_m, int walls,
                           double conversion_loss_db) {
    return 2.0 * oneway_loss_db(params, distance_m, walls) + conversion_loss_db;
}

double backscatter_rx_power_dbm(double ap_tx_dbm, double device_gain_db,
                                double roundtrip_loss_db) {
    return ap_tx_dbm + device_gain_db - roundtrip_loss_db;
}

double gudmundson_shadowing_step_db(const pathloss_params& params, double shadow_db,
                                    double moved_m, ns::util::rng& rng) {
    ns::util::require(params.shadowing_decorrelation_m > 0.0,
                      "gudmundson: decorrelation distance must be positive");
    ns::util::require(moved_m >= 0.0, "gudmundson: moved distance must be >= 0");
    const double rho = std::exp(-moved_m / params.shadowing_decorrelation_m);
    const double innovation =
        params.shadowing_sigma_db * std::sqrt(std::max(0.0, 1.0 - rho * rho));
    return rho * shadow_db + rng.gaussian(0.0, innovation);
}

}  // namespace ns::channel
