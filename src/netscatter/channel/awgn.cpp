#include "netscatter/channel/awgn.hpp"

#include <cmath>

#include "netscatter/util/units.hpp"

namespace ns::channel {

cvec make_noise(std::size_t n, double noise_power, ns::util::rng& rng) {
    cvec noise(n);
    const double sigma = std::sqrt(noise_power / 2.0);
    for (auto& sample : noise) {
        sample = cplx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
    }
    return noise;
}

void add_noise(cvec& signal, double noise_power, ns::util::rng& rng) {
    const double sigma = std::sqrt(noise_power / 2.0);
    for (auto& sample : signal) {
        sample += cplx{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};
    }
}

void add_noise_for_unit_signal_snr(cvec& signal, double snr_db, ns::util::rng& rng) {
    add_noise(signal, ns::util::db_to_linear(-snr_db), rng);
}

double noise_power_for_snr(double signal_power, double snr_db) {
    return signal_power / ns::util::db_to_linear(snr_db);
}

}  // namespace ns::channel
