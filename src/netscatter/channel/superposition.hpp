// Multi-device superposition channel — the substitute for the over-the-air
// combining of hundreds of concurrent backscatter transmissions.
//
// Each device contributes its waveform scaled to its received amplitude,
// rotated by a random carrier phase, displaced by its residual timing /
// frequency offset (applied as the equivalent post-dechirp tone shift,
// see impairments.hpp), optionally filtered by a multipath tap line, and
// the AP adds thermal noise. Powers are expressed relative to the noise
// floor (i.e. per-device SNR in dB), which keeps the simulation unitless
// and matches how the paper reports Fig. 12.
//
// Two synthesis domains are provided:
//  * combine() — sample domain: sums time-domain waveforms into the AP's
//    received baseband. Fully general (multipath, foreign interferers,
//    arbitrary sample delays), cost O(devices x samples).
//  * combine_symbol_domain() — the §3.2 dechirp-to-tone identity run in
//    reverse: a standard packet's post-dechirp spectrum is a Dirichlet
//    kernel at bin shift + fractional offset(CFO, STO, Doppler), so each
//    device is summed directly into the receiver's per-symbol FFT
//    accumulator. Skips time-domain synthesis, the per-device forward
//    FFT and every intermediate buffer; cost O(devices x ON-symbols x
//    kernel window), independent of the symbol length.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/kernel_batch.hpp"
#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/obs/sink.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::engine {
class block_runner;
}  // namespace ns::engine

namespace ns::channel {

/// Non-owning view of a contribution's baseband samples. Constructed
/// from an explicit span (`std::span<const cplx>(storage)`); the
/// deleted rvalue overload keeps the pre-refactor idiom
/// `tx.waveform = mod.modulate_packet(bits)` a compile error instead
/// of a dangling view — the storage must outlive combine(). The old
/// `const cvec&` converting constructor is gone: one conversion surface,
/// and the span spelling makes the borrow visible at the call site.
class waveform_view {
public:
    waveform_view() = default;
    waveform_view(cvec&& samples) = delete;
    waveform_view(std::span<const cplx> samples) : span_(samples) {}

    operator std::span<const cplx>() const { return span_; }
    std::size_t size() const { return span_.size(); }
    bool empty() const { return span_.empty(); }

private:
    std::span<const cplx> span_;
};

/// One device's contribution to a concurrent transmission round.
///
/// `waveform` is a non-owning view: the caller keeps the sample storage
/// alive until combine() returns (simulators stage packets in a
/// channel_workspace pool; tests typically view locally-owned cvecs).
struct tx_contribution {
    waveform_view waveform;         ///< unit-amplitude baseband samples
    double snr_db = 0.0;            ///< received SNR (per-sample, pre-despreading)
    double timing_offset_s = 0.0;   ///< residual hardware+propagation delay
    double frequency_offset_hz = 0.0;  ///< residual CFO (crystal + Doppler)
    bool random_phase = true;       ///< rotate by a uniform carrier phase
    std::size_t sample_delay = 0;   ///< integer-sample misalignment (coarse)
    /// Explicit per-device multipath taps (tap i delayed i samples;
    /// non-owning — e.g. a tap_delay_line's span). When non-empty they
    /// are convolved onto the waveform and take precedence over
    /// channel_config::enable_multipath's per-round random draw.
    std::span<const cplx> taps;
};

/// Symbolic description of one standard NetScatter packet (preamble at
/// the assigned shift + ON-OFF keyed payload) for the symbol-domain fast
/// path: everything needed to synthesize the post-dechirp spectrum
/// without ever materializing time-domain samples.
struct packet_contribution {
    std::uint32_t cyclic_shift = 0;
    /// Payload+CRC bits (one ON-OFF symbol per bit), non-owning. 0/1.
    std::span<const std::uint8_t> frame_bits;
    double snr_db = 0.0;
    double timing_offset_s = 0.0;
    double frequency_offset_hz = 0.0;
    bool random_phase = true;
    /// Per-device multipath taps (non-owning; empty = flat channel).
    /// The fast path folds them into a spectral envelope on the Dirichlet
    /// window (phy::make_multipath_tone_kernel), so multipath rounds stay
    /// symbol-domain.
    std::span<const cplx> taps;
};

/// Superposition channel configuration.
struct channel_config {
    double noise_power = 1.0;       ///< AP thermal noise power (linear)
    bool enable_multipath = false;  ///< draw a tap line per device
    multipath_model multipath;      ///< used when enable_multipath
};

/// Symbol-domain synthesis parameters. The spectra produced match what
/// the receiver's demodulator computes from the sample-domain stream
/// (dechirp + zero-padded FFT) exactly, up to the kernel truncation.
struct symbol_domain_params {
    std::size_t zero_padding = 8;     ///< receiver FFT padding factor
    std::size_t preamble_upchirps = 6;
    std::size_t preamble_symbols = 8;  ///< upchirps + downchirps (phase bookkeeping)
    std::size_t payload_symbols = 40;  ///< payload+CRC bits on the air
    /// Dirichlet kernel truncation radius in chip bins. Sidelobes beyond
    /// Δ chip bins are ~-(13 + 20·log10(Δ)) dB below the device's peak;
    /// the default keeps everything above ~-37 dB, which the fidelity
    /// equivalence tests bound against the sample path.
    std::size_t kernel_radius_bins = 16;
    /// Thermal-noise synthesis. The zero-padded spectrum of a noise
    /// symbol is fully determined by its N on-grid frequency samples
    /// (i.i.d. complex Gaussians — the DFT of white noise); off-grid
    /// padded bins are their Dirichlet interpolation. A banded
    /// interpolation of ±noise_interp_radius_bins chip bins replaces the
    /// per-symbol FFT at ~-(13 + 20·log10(π·R)) dB truncation error on
    /// the noise values — the same tolerance class as the device
    /// kernels, at a fraction of the cost. 0 = exact (FFT per symbol).
    std::size_t noise_interp_radius_bins = 4;
};

/// Reusable per-round scratch of the superposition channel. One instance
/// per simulator (NOT thread-safe); steady-state rounds allocate nothing
/// once the buffers are warm.
struct channel_workspace {
    cvec received;                  ///< combine() output buffer
    cvec staged;                    ///< frequency-shift staging (multipath path)
    cvec filtered;                  ///< multipath staging
    std::vector<cvec> symbol_spectra;  ///< per-symbol accumulators (fast path):
                                       ///< preamble upchirps then payload symbols
    cvec kernel;                    ///< per-device Dirichlet window
    cvec envelope;                  ///< multipath-enveloped kernel window
    cvec noise_taps;                ///< banded interpolation coefficients
    /// SoA kernel placements: planned serially, swept per symbol.
    kernel_batch batch;
    /// Per-block on-grid noise draws + wrap margins (one grid per
    /// symbol block so blocks never share mutable scratch).
    std::vector<cvec> noise_grids;
    /// Per-block accumulation-sweep nanoseconds, recorded into
    /// phy.kernel_sum_s in block order after the join.
    std::vector<std::uint64_t> block_kernel_ns;
    /// Sample-path per-device packet buffers (span-stable handout; see
    /// cvec_pool). Release at the start of each round.
    ns::dsp::cvec_pool packet_pool;
    /// Observability handles (non-owning; see obs_sink). When
    /// obs.metrics is set, the combiners count phy.kernels_summed /
    /// phy.fast_packets / phy.noise_symbols (fast path) and
    /// phy.sample_waveforms (sample path); a wired obs.perf_kernel_sum
    /// attributes the device-kernel batch (perf.kernel_sum.*) — the
    /// denominator of the roofline model. Same thread-confinement rule
    /// as the workspace itself.
    ns::obs::obs_sink obs;
    /// Optional intra-round fan-out (non-owning). When set,
    /// combine_symbol_domain sweeps symbol blocks across the runner's
    /// threads; spectra are bit-identical at any thread count (noise is
    /// seeded per symbol, kernel order is fixed per symbol). Null =
    /// fully serial. The runner must be distinct from any pool the
    /// caller itself runs on (the simulator owns a dedicated one).
    ns::engine::block_runner* block_pool = nullptr;
};

/// Combines all contributions into the AP's received baseband of length
/// `length` samples and adds noise. Sub-sample timing offsets and CFO are
/// applied via the equivalent tone shift; integer `sample_delay` shifts
/// the waveform within the capture window. Returns a reference to
/// `workspace.received` (valid until the next combine on the workspace).
const cvec& combine(std::span<const tx_contribution> contributions, std::size_t length,
                    const ns::phy::css_params& params, const channel_config& config,
                    ns::util::rng& rng, channel_workspace& workspace);

/// Symbol-domain fast path: fills `workspace.symbol_spectra` with the
/// post-dechirp zero-padded spectra of every decode-relevant symbol
/// (preamble_upchirps preamble spectra followed by payload_symbols
/// payload spectra; the two preamble downchirps are skipped — the
/// decoder never inspects them at a known packet start). Each spectrum
/// holds thermal noise (drawn in the frequency domain via one FFT per
/// symbol — distribution-identical to dechirped time-domain noise) plus
/// one truncated Dirichlet kernel per ON symbol per device — or, for
/// packets carrying explicit multipath taps, one enveloped kernel (the
/// tap-weighted sum of the window at integer-bin offsets, see
/// phy::make_multipath_tone_kernel). Requires config.enable_multipath ==
/// false: the config-level switch draws RANDOM taps per device per round
/// in a sample-path-specific order and stays sample-only; deterministic
/// per-device taps flow through packet_contribution::taps instead and
/// keep the round on the fast path.
///
/// Internally the round runs as a kernel_batch: a serial planning stage
/// draws one round seed plus every per-packet phase from `rng`, builds
/// each packet's window once and flattens all placements into SoA
/// arrays bucketed by symbol; the accumulation stage then synthesizes
/// each symbol's noise from a generator derived from (round seed,
/// symbol index) and sweeps its placements with the dispatched
/// vectorized loop. Because every symbol is self-contained, the sweep
/// fans out across workspace.block_pool when set — with spectra
/// bit-identical at any thread count, including fully serial.
void combine_symbol_domain(std::span<const packet_contribution> packets,
                           const ns::phy::css_params& params,
                           const channel_config& config,
                           const symbol_domain_params& sd, ns::util::rng& rng,
                           channel_workspace& workspace);

}  // namespace ns::channel
