// Multi-device superposition channel — the substitute for the over-the-air
// combining of hundreds of concurrent backscatter transmissions.
//
// Each device contributes its waveform scaled to its received amplitude,
// rotated by a random carrier phase, displaced by its residual timing /
// frequency offset (applied as the equivalent post-dechirp tone shift,
// see impairments.hpp), optionally filtered by a multipath tap line, and
// the AP adds thermal noise. Powers are expressed relative to the noise
// floor (i.e. per-device SNR in dB), which keeps the simulation unitless
// and matches how the paper reports Fig. 12.
#pragma once

#include <vector>

#include "netscatter/channel/impairments.hpp"
#include "netscatter/dsp/fft.hpp"
#include "netscatter/phy/css_params.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::channel {

/// One device's contribution to a concurrent transmission round.
struct tx_contribution {
    cvec waveform;                  ///< unit-amplitude baseband samples
    double snr_db = 0.0;            ///< received SNR (per-sample, pre-despreading)
    double timing_offset_s = 0.0;   ///< residual hardware+propagation delay
    double frequency_offset_hz = 0.0;  ///< residual CFO (crystal + Doppler)
    bool random_phase = true;       ///< rotate by a uniform carrier phase
    std::size_t sample_delay = 0;   ///< integer-sample misalignment (coarse)
};

/// Superposition channel configuration.
struct channel_config {
    double noise_power = 1.0;       ///< AP thermal noise power (linear)
    bool enable_multipath = false;  ///< draw a tap line per device
    multipath_model multipath;      ///< used when enable_multipath
};

/// Combines all contributions into the AP's received baseband of length
/// `length` samples and adds noise. Sub-sample timing offsets and CFO are
/// applied via the equivalent tone shift; integer `sample_delay` shifts
/// the waveform within the capture window.
cvec combine(const std::vector<tx_contribution>& contributions, std::size_t length,
             const ns::phy::css_params& params, const channel_config& config,
             ns::util::rng& rng);

}  // namespace ns::channel
