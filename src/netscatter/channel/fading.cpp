#include "netscatter/channel/fading.hpp"

#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::channel {

gauss_markov_fading::gauss_markov_fading(double sigma_db, double correlation,
                                         ns::util::rng rng)
    : sigma_db_(sigma_db), rho_(correlation), current_db_(0.0), rng_(rng) {
    ns::util::require(sigma_db >= 0.0, "gauss_markov_fading: sigma must be >= 0");
    ns::util::require(correlation >= 0.0 && correlation < 1.0,
                      "gauss_markov_fading: correlation must be in [0,1)");
    // Start from the stationary distribution.
    current_db_ = rng_.gaussian(0.0, sigma_db_);
}

double gauss_markov_fading::next_db() {
    const double innovation = std::sqrt(1.0 - rho_ * rho_) * sigma_db_;
    current_db_ = rho_ * current_db_ + rng_.gaussian(0.0, innovation);
    return current_db_;
}

}  // namespace ns::channel
