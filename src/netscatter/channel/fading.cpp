#include "netscatter/channel/fading.hpp"

#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::channel {

gauss_markov_fading::gauss_markov_fading(double sigma_db, double correlation,
                                         ns::util::rng rng)
    : sigma_db_(sigma_db), rho_(correlation), current_db_(0.0), rng_(rng) {
    ns::util::require(sigma_db >= 0.0, "gauss_markov_fading: sigma must be >= 0");
    ns::util::require(correlation >= 0.0 && correlation < 1.0,
                      "gauss_markov_fading: correlation must be in [0,1)");
    // Start from the stationary distribution.
    current_db_ = rng_.gaussian(0.0, sigma_db_);
}

double gauss_markov_fading::next_db() {
    const double innovation = std::sqrt(1.0 - rho_ * rho_) * sigma_db_;
    current_db_ = rho_ * current_db_ + rng_.gaussian(0.0, innovation);
    return current_db_;
}

void gauss_markov_fading::skip(std::uint64_t steps) {
    if (steps == 0) return;
    const double decay = std::pow(rho_, static_cast<double>(steps));
    const double innovation = std::sqrt(1.0 - decay * decay) * sigma_db_;
    current_db_ = decay * current_db_ + rng_.gaussian(0.0, innovation);
}

tap_delay_line::tap_delay_line(const multipath_model& model, double sample_rate_hz,
                               double correlation, ns::util::rng rng)
    : rho_(correlation), powers_(model.tap_powers(sample_rate_hz)), rng_(rng) {
    ns::util::require(correlation >= 0.0 && correlation < 1.0,
                      "tap_delay_line: correlation must be in [0,1)");
    // Start from the stationary distribution (the same draw sequence as
    // multipath_model::sample_taps).
    taps_.resize(powers_.size());
    taps_[0] = std::polar(std::sqrt(powers_[0]),
                          rng_.uniform(0.0, 2.0 * 3.141592653589793));
    for (std::size_t i = 1; i < powers_.size(); ++i) {
        const double sigma = std::sqrt(powers_[i] / 2.0);
        taps_[i] = cplx{rng_.gaussian(0.0, sigma), rng_.gaussian(0.0, sigma)};
    }
}

std::span<const cplx> tap_delay_line::next() {
    const double innovation_scale = std::sqrt(1.0 - rho_ * rho_);
    for (std::size_t i = 1; i < taps_.size(); ++i) {
        const double sigma = innovation_scale * std::sqrt(powers_[i] / 2.0);
        taps_[i] = rho_ * taps_[i] +
                   cplx{rng_.gaussian(0.0, sigma), rng_.gaussian(0.0, sigma)};
    }
    return taps_;
}

void tap_delay_line::skip(std::uint64_t rounds) {
    if (rounds == 0) return;
    const double decay = std::pow(rho_, static_cast<double>(rounds));
    const double innovation_scale = std::sqrt(1.0 - decay * decay);
    for (std::size_t i = 1; i < taps_.size(); ++i) {
        const double sigma = innovation_scale * std::sqrt(powers_[i] / 2.0);
        taps_[i] = decay * taps_[i] +
                   cplx{rng_.gaussian(0.0, sigma), rng_.gaussian(0.0, sigma)};
    }
}

}  // namespace ns::channel
