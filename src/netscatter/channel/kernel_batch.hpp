// SoA kernel batch for the symbol-domain fast path (§3.2).
//
// combine_symbol_domain used to walk packets one at a time, scattering
// each packet's truncated Dirichlet window into every ON symbol straight
// from AoS packet structs. The batch splits the round into two stages:
//
//  * planning — flatten every placement (symbol index, window reference,
//    first padded bin, complex amplitude) into contiguous arrays, then
//    bucket them by symbol with a stable counting sort;
//  * accumulation — sweep one symbol's placements with a vectorized
//    inner loop (AVX2/NEON, runtime-dispatched, scalar reference kept
//    for bit-comparison and as the -DNS_SIMD=OFF fallback).
//
// Bucketing by symbol makes each spectrum an independent unit of work,
// which is what lets one round fan out across threads while staying
// bit-identical to the serial sweep: within a symbol the stable sort
// preserves packet order, so the floating-point accumulation order is
// fixed regardless of how symbols are assigned to threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netscatter/dsp/fft.hpp"

namespace ns::channel {

using ns::dsp::cplx;
using ns::dsp::cvec;

/// Flattened per-round kernel placements, bucketed by symbol. Owned by a
/// channel_workspace; all buffers reach a steady-state capacity after
/// the first few rounds and are reused allocation-free thereafter.
struct kernel_batch {
    // -- window table: each packet contributes one window of complex
    //    values (bare Dirichlet kernel or multipath envelope), stored
    //    back to back and referenced by id from the placements.
    cvec window_values;
    std::vector<std::uint32_t> window_offset;
    std::vector<std::uint32_t> window_length;

    // -- placements sorted by symbol (stable within a symbol = packet
    //    order); symbol k's range is [symbol_begin[k], symbol_begin[k+1])
    std::vector<std::uint32_t> first_bin;
    std::vector<std::uint32_t> window_id;
    std::vector<cplx> scale;
    std::vector<std::uint32_t> symbol_begin;

    /// Resets the batch for a round of `num_symbols` spectra. Keeps
    /// capacity.
    void begin(std::size_t num_symbols);

    /// Appends a window (copied into the flat table) and returns its id.
    std::uint32_t add_window(std::span<const cplx> values);

    /// Stages one placement: window `id` lands in `symbol`'s spectrum at
    /// padded bin `first` (cyclic), scaled by `amplitude`.
    void place(std::uint32_t symbol, std::uint32_t id, std::uint32_t first,
               cplx amplitude);

    /// Buckets the staged placements by symbol (stable counting sort).
    /// Must be called once, after the last place() and before any
    /// accumulate_symbol().
    void seal();

    std::size_t num_symbols() const { return symbol_begin.empty() ? 0 : symbol_begin.size() - 1; }
    std::size_t num_placements() const { return stage_symbol.size(); }

    /// Window elements that accumulate_symbol will touch for symbol k —
    /// the deterministic input of the roofline traffic model.
    std::uint64_t symbol_window_elems(std::size_t symbol) const;

private:
    // staging (packet order) + counting-sort scratch
    std::vector<std::uint32_t> stage_symbol;
    std::vector<std::uint32_t> stage_first;
    std::vector<std::uint32_t> stage_window;
    std::vector<cplx> stage_scale;
    std::vector<std::uint32_t> counts;
};

/// Sweeps symbol `symbol`'s placements into `spectrum` (cyclic over
/// spectrum.size() padded bins) using the dispatched inner loop.
void accumulate_symbol(const kernel_batch& batch, std::size_t symbol,
                       cvec& spectrum);

/// dst[i] += window[i] * scale for i in [0, count) — the scalar
/// reference the vector backends must match bit-for-bit.
void accumulate_run_scalar(cplx* dst, const cplx* window, std::size_t count,
                           cplx scale);

/// Banded noise interpolation, one fused pass over the padded spectrum:
/// for q in [0, count), dst[pad*q] = grid[radius + q] (the on-grid
/// draw), and for each residue r in [1, pad), dst[pad*q + r] =
/// Σ_t coeffs[(r-1)*taps + t] · grid[q + t] with taps = 2*radius + 1.
/// Each grid element is loaded once and feeds every residue's FIR, and
/// the spectrum is written front to back instead of in pad strided
/// sweeps. Dispatched through the same backends and bound by the same
/// bit-identity contract as the kernel accumulation.
void interpolate_bands(cplx* dst, std::size_t pad, const cplx* grid,
                       std::size_t radius, const cplx* coeffs,
                       std::size_t count);

/// Scalar reference for interpolate_bands.
void interpolate_bands_scalar(cplx* dst, std::size_t pad, const cplx* grid,
                              std::size_t radius, const cplx* coeffs,
                              std::size_t count);

/// Test hook: pins the accumulation inner loop to the scalar reference
/// (force_scalar = true) or restores runtime dispatch (false).
void force_scalar_accumulation(bool force_scalar);

/// Name of the inner loop the next accumulate_symbol call will run:
/// "avx2", "neon", or "scalar".
const char* kernel_accumulate_backend();

}  // namespace ns::channel
