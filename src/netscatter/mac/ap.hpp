// Access-point control plane (§3.3).
//
// The AP owns the device table, runs the association handshake
// (Fig. 10), performs power-aware cyclic-shift assignment — incremental
// when possible, full reassignment via the 256!-ordering message when the
// incremental allocator fails (§3.3.3) — and groups devices by signal
// strength when the population exceeds one group's concurrency (§3.3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netscatter/mac/allocator.hpp"
#include "netscatter/mac/query_message.hpp"

namespace ns::mac {

/// Per-device record in the AP's table.
struct device_record {
    std::uint32_t device_id = 0;
    std::uint8_t network_id = 0;
    std::uint32_t cyclic_shift = 0;
    double rx_power_dbm = 0.0;   ///< backscatter strength measured at association
    bool acked = false;          ///< association ACK received
    std::uint8_t group_id = 0;   ///< concurrency group (by signal strength)
};

/// Decoded association request as seen by the AP.
struct association_request {
    std::uint32_t device_id = 0;   ///< resolved after the ACK in reality;
                                   ///< carried explicitly in simulation
    ns::device::snr_region region = ns::device::snr_region::high;
    double rx_power_dbm = 0.0;     ///< measured strength of the request
};

/// Access point.
class access_point {
public:
    explicit access_point(allocation_params params);

    /// Handles one decoded association request: assigns a cyclic shift
    /// (incremental placement; falls back to a full reassignment when the
    /// allocator cannot fit the newcomer) and returns the piggybacked
    /// response for the next query. The device is not considered a member
    /// until its ACK arrives.
    association_response handle_association_request(const association_request& request);

    /// Marks a pending device as fully associated after its ACK.
    ///
    /// Robust to control-plane noise: an ACK for a device the table does
    /// not hold (a stale retransmission after eviction, or corruption of
    /// the id field) and a duplicate ACK for an already-acked member are
    /// counted no-ops — see unknown_acks() / duplicate_acks() — never
    /// errors, since a lossy channel can always replay or orphan an ACK.
    void handle_association_ack(std::uint32_t device_id);

    /// ACKs received for devices absent from the table.
    std::size_t unknown_acks() const { return unknown_acks_; }
    /// ACKs received for devices that had already completed association.
    std::size_t duplicate_acks() const { return duplicate_acks_; }

    /// Builds the next query. When a full reassignment is pending the
    /// query carries the 1728-bit ordering field (Config 2-style).
    query_message build_query(std::uint8_t group_id = 0);

    /// Pending association response that the next query will carry (the
    /// AP repeats it until the ACK arrives, §3.3.4).
    std::optional<association_response> pending_response() const { return pending_response_; }

    /// The device table.
    const std::unordered_map<std::uint32_t, device_record>& devices() const {
        return table_;
    }

    /// Current shift of a device, if associated.
    std::optional<std::uint32_t> shift_of(std::uint32_t device_id) const;

    /// Splits the population into groups of at most `group_capacity`
    /// devices with similar signal strengths (§3.3.3), reassigning
    /// group_id on every record. Returns the number of groups.
    std::size_t regroup(std::size_t group_capacity);

    /// Number of full reassignments performed so far.
    std::size_t full_reassignments() const { return full_reassignments_; }

    const shift_allocator& allocator() const { return allocator_; }

private:
    void run_full_reassignment();

    allocation_params params_;
    shift_allocator allocator_;
    std::unordered_map<std::uint32_t, device_record> table_;
    std::optional<association_response> pending_response_;
    std::optional<std::uint32_t> pending_device_;
    bool reassignment_pending_ = false;
    std::size_t full_reassignments_ = 0;
    std::size_t unknown_acks_ = 0;
    std::size_t duplicate_acks_ = 0;
    std::uint8_t next_network_id_ = 0;
};

}  // namespace ns::mac
