#include "netscatter/mac/query_message.hpp"

#include <cmath>

#include "netscatter/util/bits.hpp"
#include "netscatter/util/crc.hpp"

namespace ns::mac {

namespace {

constexpr std::uint8_t sync_byte = 0xA5;

// Flag bits inside the 8-bit flags field.
constexpr std::uint8_t flag_has_response = 0x01;
constexpr std::uint8_t flag_full_reassignment = 0x02;

}  // namespace

std::size_t query_message::length_bits() const {
    std::size_t bits = query_header_bits;
    if (response.has_value()) bits += 16;  // network ID + shift slot
    if (full_reassignment) bits += reassignment_field_bits;
    return bits;
}

double query_message::airtime_s() const {
    return static_cast<double>(length_bits()) / downlink_bitrate_bps;
}

std::vector<bool> serialize(const query_message& query) {
    std::vector<bool> bits;
    ns::util::append_uint(bits, sync_byte, 8);
    ns::util::append_uint(bits, query.group_id, 8);
    std::uint8_t flags = 0;
    if (query.response.has_value()) flags |= flag_has_response;
    if (query.full_reassignment) flags |= flag_full_reassignment;
    ns::util::append_uint(bits, flags, 8);
    if (query.response.has_value()) {
        ns::util::append_uint(bits, query.response->network_id, 8);
        ns::util::append_uint(bits, query.response->shift_slot, 8);
    }
    if (query.full_reassignment) {
        // 216-byte ordering field; we carry the low 64 bits of the index
        // and zero-pad the rest (a real AP would fill all 1684 bits).
        ns::util::append_uint(bits, query.reassignment_index_low64, 64);
        for (std::size_t i = 64; i < reassignment_field_bits; ++i) bits.push_back(false);
    }
    // CRC-8 over everything so far completes the 32-bit header budget.
    return ns::util::append_crc8(std::move(bits));
}

std::optional<query_message> parse_query(const std::vector<bool>& bits) {
    if (bits.size() < query_header_bits) return std::nullopt;
    if (!ns::util::check_crc8(bits)) return std::nullopt;
    const std::vector<bool> body = ns::util::strip_crc8(bits);

    std::size_t offset = 0;
    if (ns::util::read_uint(body, offset, 8) != sync_byte) return std::nullopt;
    query_message query;
    query.group_id = static_cast<std::uint8_t>(ns::util::read_uint(body, offset, 8));
    const auto flags = static_cast<std::uint8_t>(ns::util::read_uint(body, offset, 8));
    if ((flags & flag_has_response) != 0) {
        if (body.size() < offset + 16) return std::nullopt;
        association_response response;
        response.network_id = static_cast<std::uint8_t>(ns::util::read_uint(body, offset, 8));
        response.shift_slot = static_cast<std::uint8_t>(ns::util::read_uint(body, offset, 8));
        query.response = response;
    }
    if ((flags & flag_full_reassignment) != 0) {
        if (body.size() < offset + reassignment_field_bits) return std::nullopt;
        query.full_reassignment = true;
        query.reassignment_index_low64 = ns::util::read_uint(body, offset, 64);
    }
    return query;
}

std::size_t permutation_index_bits(std::size_t n) {
    if (n <= 1) return 0;
    double log2_factorial = 0.0;
    for (std::size_t k = 2; k <= n; ++k) log2_factorial += std::log2(static_cast<double>(k));
    return static_cast<std::size_t>(std::ceil(log2_factorial));
}

}  // namespace ns::mac
