#include "netscatter/mac/scheduler.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::mac {

group_scheduler::group_scheduler(scheduler_params params) : params_(params) {
    ns::util::require(params_.group_capacity >= 1, "group_scheduler: capacity >= 1");
    ns::util::require(params_.max_dynamic_range_db > 0.0,
                      "group_scheduler: dynamic range must be positive");
}

std::vector<device_group> group_scheduler::partition(
    std::vector<device_power> devices) const {
    std::sort(devices.begin(), devices.end(),
              [](const device_power& a, const device_power& b) {
                  if (a.rx_power_dbm != b.rx_power_dbm) {
                      return a.rx_power_dbm > b.rx_power_dbm;
                  }
                  return a.device_id < b.device_id;
              });

    std::vector<device_group> groups;
    for (const device_power& device : devices) {
        const bool need_new_group =
            groups.empty() || groups.back().size() >= params_.group_capacity ||
            (groups.back().max_power_dbm - device.rx_power_dbm) >
                params_.max_dynamic_range_db;
        if (need_new_group) {
            device_group group;
            group.group_id = static_cast<std::uint8_t>(groups.size());
            group.max_power_dbm = device.rx_power_dbm;
            group.min_power_dbm = device.rx_power_dbm;
            groups.push_back(std::move(group));
        }
        device_group& group = groups.back();
        group.device_ids.push_back(device.device_id);
        group.min_power_dbm = device.rx_power_dbm;  // sorted descending
    }
    return groups;
}

std::uint8_t group_scheduler::group_for_round(std::size_t round_index,
                                              std::size_t num_groups) {
    ns::util::require(num_groups >= 1, "group_for_round: need >= 1 group");
    return static_cast<std::uint8_t>(round_index % num_groups);
}

std::optional<std::size_t> group_scheduler::admit(
    const std::vector<group_span>& groups, double power_dbm) const {
    std::optional<std::size_t> best;
    double best_stretch = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const group_span& span = groups[g];
        if (span.members >= params_.group_capacity) continue;
        double stretch = 0.0;
        if (span.members > 0) {
            const double new_min = std::min(span.min_power_dbm, power_dbm);
            const double new_max = std::max(span.max_power_dbm, power_dbm);
            if (new_max - new_min > params_.max_dynamic_range_db) continue;
            stretch = (new_max - new_min) -
                      (span.max_power_dbm - span.min_power_dbm);
        }
        if (!best || stretch < best_stretch) {
            best = g;
            best_stretch = stretch;
        }
    }
    return best;
}

}  // namespace ns::mac
