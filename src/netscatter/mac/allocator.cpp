#include "netscatter/mac/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "netscatter/util/error.hpp"

namespace ns::mac {

shift_allocator::shift_allocator(allocation_params params) : params_(params) {
    ns::util::require(params_.skip >= 1, "shift_allocator: SKIP must be >= 1");
    const auto num_bins = static_cast<std::uint32_t>(params_.phy.num_bins());
    ns::util::require(params_.skip < num_bins, "shift_allocator: SKIP too large");
    const std::uint32_t num_slots = num_bins / params_.skip;
    ns::util::require(params_.num_association_slots <= num_slots,
                      "shift_allocator: more association slots than slots");

    // Slot k occupies shift k*SKIP. Placement order = increasing circular
    // distance from bin 0: slot 0, then +-1, +-2, ... around the circle.
    std::vector<std::uint32_t> order;
    order.reserve(num_slots);
    order.push_back(0);
    for (std::uint32_t step = 1; order.size() < num_slots; ++step) {
        order.push_back(step);  // clockwise
        if (order.size() < num_slots && step != num_slots - step) {
            order.push_back(num_slots - step);  // counter-clockwise
        }
    }

    // Reserve association slots: the high-SNR one adjacent to bin 0, the
    // low-SNR one at mid-band (§3.3.2). They are removed from the data
    // placement order; the SKIP spacing provides their guard bins.
    std::vector<std::uint32_t> reserved_slots;
    if (params_.num_association_slots >= 1) reserved_slots.push_back(order[1 % order.size()]);
    if (params_.num_association_slots >= 2) reserved_slots.push_back(num_slots / 2);
    assoc_shift_high_ = reserved_slots.empty() ? 0 : reserved_slots[0] * params_.skip;
    assoc_shift_low_ =
        reserved_slots.size() < 2 ? assoc_shift_high_ : reserved_slots[1] * params_.skip;

    for (std::uint32_t slot : order) {
        if (std::find(reserved_slots.begin(), reserved_slots.end(), slot) !=
            reserved_slots.end()) {
            continue;
        }
        data_slot_shifts_.push_back(slot * params_.skip);
    }
}

std::uint32_t shift_allocator::association_shift(ns::device::snr_region region) const {
    ns::util::require(params_.num_association_slots >= 1,
                      "association_shift: no association slots configured");
    if (region == ns::device::snr_region::high || params_.num_association_slots < 2) {
        return assoc_shift_high_;
    }
    return assoc_shift_low_;
}

std::uint32_t shift_allocator::circular_distance(std::uint32_t a, std::uint32_t b) const {
    const auto num_bins = static_cast<std::uint32_t>(params_.phy.num_bins());
    const std::uint32_t diff = a > b ? a - b : b - a;
    return std::min(diff, num_bins - diff);
}

allocation_result shift_allocator::allocate(std::vector<device_power> devices) const {
    ns::util::require(devices.size() <= data_slot_shifts_.size(),
                      "shift_allocator: more devices than data slots");
    // Strongest devices closest to bin 0 (spectrum edges), weakest at
    // mid-band; ties broken by device id for determinism.
    std::sort(devices.begin(), devices.end(), [](const device_power& a, const device_power& b) {
        if (a.rx_power_dbm != b.rx_power_dbm) return a.rx_power_dbm > b.rx_power_dbm;
        return a.device_id < b.device_id;
    });
    // When the population is below capacity, select an evenly-strided
    // subset of the slot circle so devices spread out — the effective
    // inter-device spacing grows (the paper observes that below 128
    // devices the effective SKIP is >= 3, §4.4), which widens the
    // tolerable power difference between neighbours. The selected slots
    // are then handed out in order of circular distance from bin 0, so
    // the strongest devices still cluster at the spectrum edges.
    const std::size_t num_slots = data_slot_shifts_.size();
    const std::size_t stride =
        devices.empty() ? 1 : std::max<std::size_t>(1, num_slots / devices.size());

    std::vector<std::uint32_t> by_shift = data_slot_shifts_;
    std::sort(by_shift.begin(), by_shift.end());
    std::vector<std::uint32_t> selected;
    selected.reserve(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) selected.push_back(by_shift[i * stride]);
    std::sort(selected.begin(), selected.end(), [&](std::uint32_t a, std::uint32_t b) {
        const std::uint32_t da = circular_distance(a, 0);
        const std::uint32_t db = circular_distance(b, 0);
        if (da != db) return da < db;
        return a < b;
    });

    allocation_result result;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        result.shifts[devices[i].device_id] = selected[i];
    }
    return result;
}

std::optional<std::uint32_t> shift_allocator::assign_incremental(
    double new_device_power_dbm,
    const std::vector<std::pair<std::uint32_t, double>>& occupied_shift_powers) const {
    // Among feasible slots (the power difference to EVERY occupied shift
    // stays within the side-lobe tolerance of their separation), prefer
    // the slot whose circularly-nearest occupied neighbour is closest in
    // power — "FFT bins corresponding to the lower-SNR devices are close
    // to each other" (§3.2.3). Ties break on safety margin.
    double best_neighbour_gap = std::numeric_limits<double>::infinity();
    double best_margin = -std::numeric_limits<double>::infinity();
    std::optional<std::uint32_t> best_shift;

    for (std::uint32_t candidate : data_slot_shifts_) {
        const bool taken = std::any_of(
            occupied_shift_powers.begin(), occupied_shift_powers.end(),
            [&](const auto& entry) { return entry.first == candidate; });
        if (taken) continue;

        double margin = std::numeric_limits<double>::infinity();
        std::uint32_t nearest_separation = std::numeric_limits<std::uint32_t>::max();
        double neighbour_gap = 0.0;
        for (const auto& [shift, power] : occupied_shift_powers) {
            const std::uint32_t separation = circular_distance(candidate, shift);
            const double tolerable = tolerable_power_difference_db(params_.phy, separation);
            const double difference = std::abs(new_device_power_dbm - power);
            margin = std::min(margin, tolerable - difference);
            if (separation < nearest_separation) {
                nearest_separation = separation;
                neighbour_gap = difference;
            }
        }
        if (margin < 0.0) continue;  // infeasible slot
        const bool better = neighbour_gap < best_neighbour_gap - 1e-12 ||
                            (std::abs(neighbour_gap - best_neighbour_gap) <= 1e-12 &&
                             margin > best_margin);
        if (better) {
            best_neighbour_gap = neighbour_gap;
            best_margin = margin;
            best_shift = candidate;
        }
    }
    return best_shift;
}

double tolerable_power_difference_db(const ns::phy::css_params& params,
                                     std::uint32_t separation_bins,
                                     double practical_cap_db) {
    if (separation_bins == 0) return 0.0;  // same bin: never tolerable
    // Worst-case Dirichlet-kernel side-lobe envelope of the interferer at
    // the victim's bin: residual jitter can move the interferer's peak up
    // to half a bin toward the victim, so evaluate at (s - 0.5) bins.
    // |D(x)| = |sin(pi x)| / (N sin(pi x / N)) <= 1 / (N sin(pi x / N)).
    const double n = static_cast<double>(params.num_bins());
    const double x = std::max(0.5, static_cast<double>(separation_bins) - 0.5);
    const double envelope = 1.0 / (n * std::sin(std::numbers::pi * x / n));
    const double tolerable_db = -20.0 * std::log10(envelope);
    return std::min(tolerable_db, practical_cap_db);
}

}  // namespace ns::mac
