#include "netscatter/mac/ap.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::mac {

access_point::access_point(allocation_params params)
    : params_(params), allocator_(params) {}

association_response access_point::handle_association_request(
    const association_request& request) {
    // Collect the occupied shifts with their powers for the incremental
    // allocator.
    std::vector<std::pair<std::uint32_t, double>> occupied;
    occupied.reserve(table_.size());
    for (const auto& [id, record] : table_) {
        occupied.emplace_back(record.cyclic_shift, record.rx_power_dbm);
    }

    std::optional<std::uint32_t> shift =
        allocator_.assign_incremental(request.rx_power_dbm, occupied);

    device_record record;
    record.device_id = request.device_id;
    record.network_id = next_network_id_++;
    record.rx_power_dbm = request.rx_power_dbm;
    record.acked = false;

    if (shift.has_value()) {
        record.cyclic_shift = *shift;
        table_[request.device_id] = record;
    } else {
        // No compatible free slot: admit the device, then rebuild the
        // whole map power-aware (§3.3.3). The next query carries the
        // full-reassignment field.
        record.cyclic_shift = 0;  // placeholder until reassignment below
        table_[request.device_id] = record;
        run_full_reassignment();
    }

    association_response response;
    response.network_id = table_[request.device_id].network_id;
    response.shift_slot = static_cast<std::uint8_t>(
        table_[request.device_id].cyclic_shift / params_.skip);
    pending_response_ = response;
    pending_device_ = request.device_id;
    return response;
}

void access_point::handle_association_ack(std::uint32_t device_id) {
    auto it = table_.find(device_id);
    if (it == table_.end()) {
        // A stale or corrupted ACK (e.g. replayed after the device was
        // evicted): count and ignore. If it matches the pending replay's
        // device the response is still cleared — that handshake is over
        // from the device's side, so repeating the response forever
        // would burn every future query's piggyback slot.
        ++unknown_acks_;
        if (pending_device_ == device_id) {
            pending_response_.reset();
            pending_device_.reset();
        }
        return;
    }
    if (it->second.acked) ++duplicate_acks_;
    it->second.acked = true;
    if (pending_device_ == device_id) {
        pending_response_.reset();
        pending_device_.reset();
    }
}

query_message access_point::build_query(std::uint8_t group_id) {
    query_message query;
    query.group_id = group_id;
    query.response = pending_response_;
    if (reassignment_pending_) {
        query.full_reassignment = true;
        query.reassignment_index_low64 = full_reassignments_;
        reassignment_pending_ = false;
    }
    return query;
}

std::optional<std::uint32_t> access_point::shift_of(std::uint32_t device_id) const {
    const auto it = table_.find(device_id);
    if (it == table_.end()) return std::nullopt;
    return it->second.cyclic_shift;
}

std::size_t access_point::regroup(std::size_t group_capacity) {
    ns::util::require(group_capacity >= 1, "regroup: capacity must be >= 1");
    // Sort by power so each group spans the smallest possible dynamic
    // range, which is exactly why the paper groups by signal strength.
    std::vector<device_record*> records;
    records.reserve(table_.size());
    for (auto& [id, record] : table_) records.push_back(&record);
    std::sort(records.begin(), records.end(), [](const auto* a, const auto* b) {
        return a->rx_power_dbm > b->rx_power_dbm;
    });
    for (std::size_t i = 0; i < records.size(); ++i) {
        records[i]->group_id = static_cast<std::uint8_t>(i / group_capacity);
    }
    return records.empty() ? 0 : (records.size() - 1) / group_capacity + 1;
}

void access_point::run_full_reassignment() {
    std::vector<device_power> devices;
    devices.reserve(table_.size());
    for (const auto& [id, record] : table_) {
        devices.push_back({id, record.rx_power_dbm});
    }
    const allocation_result result = allocator_.allocate(std::move(devices));
    for (auto& [id, record] : table_) {
        record.cyclic_shift = result.shifts.at(id);
    }
    reassignment_pending_ = true;
    ++full_reassignments_;
}

}  // namespace ns::mac
