// AP query message (Fig. 11, §3.3.3).
//
// The AP transmits an ASK-modulated query at 160 kbps that (a) time-
// synchronizes all participating devices, (b) names the group that should
// transmit concurrently, and (c) optionally piggybacks association
// responses (8-bit network ID + 8-bit cyclic-shift slot) or a full
// cyclic-shift reassignment for all 256 devices, encoded as one of the
// 256! orderings in ceil(log2(256!)) = 1684 bits, padded to 216 bytes.
//
// The two evaluation configurations (§4.4):
//   Config 1: 32-bit query (no optional fields) — assignments were all
//             made during association.
//   Config 2: query carries the full assignment table -> 1760 bits.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace ns::mac {

/// Downlink ASK bitrate, bits/second (§3.3.3).
inline constexpr double downlink_bitrate_bps = 160e3;

/// Mandatory query header size in bits (Config 1 length).
inline constexpr std::size_t query_header_bits = 32;

/// Size of the full-reassignment field in bits: ceil(log2(256!)) = 1684,
/// padded to a byte boundary inside a 216-byte field, giving the paper's
/// 1760-bit Config 2 query (32 + 1728).
inline constexpr std::size_t reassignment_field_bits = 1728;

/// One piggybacked association response (Fig. 11 optional fields).
struct association_response {
    std::uint8_t network_id = 0;   ///< identity assigned to the new device
    std::uint8_t shift_slot = 0;   ///< allocated slot index (shift = slot * SKIP)
};

/// An AP query message.
struct query_message {
    std::uint8_t group_id = 0;  ///< which set of <=256 devices transmits (0 here)
    std::optional<association_response> response;  ///< piggybacked assignment
    bool full_reassignment = false;  ///< carries the 256!-ordering field
    std::uint64_t reassignment_index_low64 = 0;  ///< low bits of the ordering id

    /// Total length on the air in bits.
    std::size_t length_bits() const;

    /// Airtime at the 160 kbps ASK downlink, seconds.
    double airtime_s() const;
};

/// Serializes a query to bits (sync byte, group ID, flags, payloads, CRC-8).
std::vector<bool> serialize(const query_message& query);

/// Parses a serialized query. Returns std::nullopt when the CRC fails or
/// the structure is malformed.
std::optional<query_message> parse_query(const std::vector<bool>& bits);

/// Number of bits needed to index every ordering of n devices:
/// ceil(log2(n!)). Computed in floating point via lgamma; exact for the
/// n <= 512 range we use.
std::size_t permutation_index_bits(std::size_t n);

/// LoRa-backscatter comparator: the sequential query used by [25] when
/// polling each device individually, 28 bits long (§4.4).
inline constexpr std::size_t lora_backscatter_query_bits = 28;

}  // namespace ns::mac
