#include "netscatter/mac/aloha.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::mac {

aloha_backoff::aloha_backoff(std::uint32_t initial_window, std::uint32_t max_window,
                             ns::util::rng rng)
    : initial_window_(initial_window),
      max_window_(max_window),
      window_(initial_window),
      rng_(rng) {
    ns::util::require(initial_window >= 1, "aloha_backoff: window must be >= 1");
    ns::util::require(max_window >= initial_window,
                      "aloha_backoff: max window smaller than initial");
    draw_counter();
}

void aloha_backoff::draw_counter() {
    counter_ = static_cast<std::uint32_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(window_) - 1));
}

bool aloha_backoff::should_transmit() {
    if (counter_ == 0) return true;
    --counter_;
    return false;
}

void aloha_backoff::on_collision() {
    window_ = std::min(window_ * 2, max_window_);
    draw_counter();
}

void aloha_backoff::on_success() {
    window_ = initial_window_;
    draw_counter();
}

}  // namespace ns::mac
