#include "netscatter/mac/aloha.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::mac {

aloha_backoff::aloha_backoff(std::uint32_t initial_window, std::uint32_t max_window,
                             ns::util::rng rng)
    : initial_window_(initial_window),
      max_window_(max_window),
      window_(initial_window),
      rng_(rng) {
    ns::util::require(initial_window >= 1, "aloha_backoff: window must be >= 1");
    ns::util::require(max_window >= initial_window,
                      "aloha_backoff: max window smaller than initial");
    draw_counter();
}

void aloha_backoff::draw_counter() {
    counter_ = static_cast<std::uint32_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(window_) - 1));
}

bool aloha_backoff::should_transmit() {
    if (counter_ == 0) return true;
    --counter_;
    return false;
}

void aloha_backoff::on_collision() {
    window_ = std::min(window_ * 2, max_window_);
    draw_counter();
}

void aloha_backoff::on_success() {
    window_ = initial_window_;
    draw_counter();
}

aloha_contention::aloha_contention(std::uint32_t initial_window,
                                   std::uint32_t max_window)
    : initial_window_(initial_window), max_window_(max_window) {}

void aloha_contention::add(std::uint32_t device_id, ns::device::snr_region region,
                           ns::util::rng rng) {
    contenders_.push_back(contender{
        .device_id = device_id,
        .region = region,
        .backoff = aloha_backoff(initial_window_, max_window_, rng),
    });
}

void aloha_contention::remove(std::uint32_t device_id) {
    for (std::size_t i = 0; i < contenders_.size(); ++i) {
        if (contenders_[i].device_id == device_id) {
            contenders_.erase(contenders_.begin() + static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

bool aloha_contention::contains(std::uint32_t device_id) const {
    for (const contender& dev : contenders_) {
        if (dev.device_id == device_id) return true;
    }
    return false;
}

contention_round aloha_contention::step(std::size_t max_grants) {
    contention_round round;

    // Every contender draws its Aloha slot; transmitters bucket onto
    // their region's association shift.
    std::vector<std::size_t> high_tx, low_tx;
    for (std::size_t c = 0; c < contenders_.size(); ++c) {
        if (!contenders_[c].backoff.should_transmit()) continue;
        ++round.requests;
        (contenders_[c].region == ns::device::snr_region::high ? high_tx : low_tx)
            .push_back(c);
    }

    // Per shift: exactly one request decodes; two or more share the FFT
    // bin, collide, and all back off. A lone requester beyond the grant
    // budget retries next round without penalty.
    std::vector<std::size_t> granted_indices;
    for (auto* bucket : {&high_tx, &low_tx}) {
        if (bucket->empty()) continue;
        if (bucket->size() >= 2) {
            round.collisions += bucket->size();
            for (std::size_t c : *bucket) contenders_[c].backoff.on_collision();
            continue;
        }
        if (granted_indices.size() >= max_grants) continue;
        granted_indices.push_back(bucket->front());
    }

    for (std::size_t c : granted_indices) {
        contenders_[c].backoff.on_success();
        round.granted.push_back(contenders_[c].device_id);
    }
    // Erase in descending index order so earlier indices stay valid.
    std::sort(granted_indices.rbegin(), granted_indices.rend());
    for (std::size_t c : granted_indices) {
        contenders_.erase(contenders_.begin() + static_cast<std::ptrdiff_t>(c));
    }
    return round;
}

}  // namespace ns::mac
