// Power-aware cyclic-shift allocation (§3.2.3).
//
// The dechirped spectrum of a strong device has sinc side lobes (Fig. 8)
// that can drown a weak device parked in a nearby bin: at SKIP=2 the
// first side lobe sits ~13.5 dB down, decaying toward mid-band where the
// tolerable power difference reaches ~35 dB (Fig. 15b, symmetric because
// the spectrum is circular). The allocator therefore:
//   * quantizes the shift space into slots SKIP bins apart (guard bins
//     absorb hardware timing jitter, §3.2.1);
//   * reserves Nassoc slots for association — one in the high-SNR region
//     (near bin 0) and one in the low-SNR region (mid-band), §3.3.2;
//   * sorts devices by received power and places them by increasing
//     circular distance from bin 0: strongest at the (circularly
//     contiguous) spectrum edges, weakest at mid-band. Similar-SNR
//     devices end up adjacent, so no device sits inside a much stronger
//     neighbour's side lobes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netscatter/device/backscatter_device.hpp"
#include "netscatter/phy/css_params.hpp"

namespace ns::mac {

/// Allocation configuration.
struct allocation_params {
    ns::phy::css_params phy{};
    std::uint32_t skip = 2;      ///< bins per slot (SKIP-1 guard bins), >= 1
    std::uint32_t num_association_slots = 2;  ///< reserved for association
};

/// A device observation the allocator works from.
struct device_power {
    std::uint32_t device_id = 0;
    double rx_power_dbm = 0.0;  ///< backscatter signal strength at the AP
};

/// Result of a batch allocation.
struct allocation_result {
    /// device_id -> assigned cyclic shift (slot * SKIP).
    std::unordered_map<std::uint32_t, std::uint32_t> shifts;
};

/// Power-aware cyclic-shift allocator.
class shift_allocator {
public:
    explicit shift_allocator(allocation_params params);

    /// Total data slots available (capacity for concurrent devices).
    std::size_t num_data_slots() const { return data_slot_shifts_.size(); }

    /// Cyclic shift reserved for association requests from the given
    /// region.
    std::uint32_t association_shift(ns::device::snr_region region) const;

    /// All data-slot shifts ordered by increasing circular distance from
    /// bin 0 (i.e. strongest-first placement order).
    const std::vector<std::uint32_t>& placement_order() const { return data_slot_shifts_; }

    /// Batch (re)allocation: sorts by descending power and assigns slots
    /// in placement order. Throws when there are more devices than slots.
    allocation_result allocate(std::vector<device_power> devices) const;

    /// Incremental assignment for one joining device given the powers of
    /// devices already placed: picks the free slot whose neighbours are
    /// closest in power (minimizes the max |power difference| to the
    /// devices already occupying adjacent slots). Returns std::nullopt
    /// when the network is full — the AP then performs a full
    /// reassignment (§3.3.3).
    std::optional<std::uint32_t> assign_incremental(
        double new_device_power_dbm,
        const std::vector<std::pair<std::uint32_t, double>>& occupied_shift_powers) const;

    /// Circular distance between two shifts, in bins.
    std::uint32_t circular_distance(std::uint32_t a, std::uint32_t b) const;

    const allocation_params& params() const { return params_; }

private:
    allocation_params params_;
    std::vector<std::uint32_t> data_slot_shifts_;  // placement order
    std::uint32_t assoc_shift_high_ = 0;
    std::uint32_t assoc_shift_low_ = 0;
};

/// Tolerable interferer-over-victim power difference (dB) as a function
/// of their bin separation, from the zero-padded sinc side-lobe envelope
/// of Fig. 8: a victim survives when it stays above the interferer's
/// side-lobe level at its bin. `separation_bins` is circular.
double tolerable_power_difference_db(const ns::phy::css_params& params,
                                     std::uint32_t separation_bins,
                                     double practical_cap_db = 35.0);

}  // namespace ns::mac
