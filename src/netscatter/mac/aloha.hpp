// Slotted-Aloha association contention with binary exponential backoff.
//
// §3.3.2: "to support scenarios where more than one device want to
// associate at the same time, one can use Aloha protocol with binary
// exponential back-off in the association process. Our deployment does
// not implement this option" — we implement it as the paper's suggested
// extension, so large populations can join without manual sequencing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netscatter/device/backscatter_device.hpp"
#include "netscatter/util/rng.hpp"

namespace ns::mac {

/// Per-device backoff state for association attempts.
class aloha_backoff {
public:
    /// `initial_window` and `max_window` bound the contention window size
    /// (in query rounds).
    aloha_backoff(std::uint32_t initial_window, std::uint32_t max_window,
                  ns::util::rng rng);

    /// Called at each query round while the device wants to associate.
    /// Returns true when the device should transmit its request this
    /// round.
    bool should_transmit();

    /// Reports a collision (request not acknowledged): doubles the window
    /// up to the maximum and draws a new backoff counter.
    void on_collision();

    /// Reports success: resets the window.
    void on_success();

    std::uint32_t current_window() const { return window_; }

private:
    void draw_counter();

    std::uint32_t initial_window_;
    std::uint32_t max_window_;
    std::uint32_t window_;
    std::uint32_t counter_ = 0;
    ns::util::rng rng_;
};

/// Outcome of one contention round.
struct contention_round {
    /// Devices granted an association response this round, in grant
    /// order (high-SNR region first). At most `max_grants` entries.
    std::vector<std::uint32_t> granted;
    std::size_t requests = 0;    ///< association requests transmitted
    std::size_t collisions = 0;  ///< same-shift simultaneous requests
};

/// A pool of devices contending for the two reserved association shifts
/// via slotted Aloha (§3.3.2). One contender per unassociated device;
/// each round every contender whose backoff expires transmits on its SNR
/// region's shift. Two or more requests on the same shift land in the
/// same FFT bin and are undecodable (§2.2, constraint 3): all collide
/// and back off. A lone request decodes, but the query can only carry
/// `max_grants` piggybacked responses (Fig. 11 carries one), so an
/// ungranted lone requester simply retries — no backoff penalty.
///
/// The standalone association-phase simulator (sim/association_sim) and
/// the scenario churn process (scenario/churn) both run their contention
/// through this pool, so re-association latency under churn is shaped by
/// exactly the collision/backoff dynamics of the association phase.
class aloha_contention {
public:
    aloha_contention(std::uint32_t initial_window, std::uint32_t max_window);

    /// Enters `device_id` into contention. `rng` seeds the device's
    /// private backoff stream (fork it from the caller's stream so
    /// contenders stay independent). Insertion order is the transmit
    /// evaluation order — keep it deterministic.
    void add(std::uint32_t device_id, ns::device::snr_region region,
             ns::util::rng rng);

    /// Runs one query round of contention. Granted devices leave the
    /// pool; collided and deferred devices stay.
    contention_round step(std::size_t max_grants);

    /// Abandons contention (e.g. the device left the universe again).
    void remove(std::uint32_t device_id);

    bool contains(std::uint32_t device_id) const;
    std::size_t size() const { return contenders_.size(); }
    bool empty() const { return contenders_.empty(); }

private:
    struct contender {
        std::uint32_t device_id;
        ns::device::snr_region region;
        aloha_backoff backoff;
    };

    std::uint32_t initial_window_;
    std::uint32_t max_window_;
    std::vector<contender> contenders_;  ///< insertion order
};

}  // namespace ns::mac
