// Slotted-Aloha association contention with binary exponential backoff.
//
// §3.3.2: "to support scenarios where more than one device want to
// associate at the same time, one can use Aloha protocol with binary
// exponential back-off in the association process. Our deployment does
// not implement this option" — we implement it as the paper's suggested
// extension, so large populations can join without manual sequencing.
#pragma once

#include <cstdint>

#include "netscatter/util/rng.hpp"

namespace ns::mac {

/// Per-device backoff state for association attempts.
class aloha_backoff {
public:
    /// `initial_window` and `max_window` bound the contention window size
    /// (in query rounds).
    aloha_backoff(std::uint32_t initial_window, std::uint32_t max_window,
                  ns::util::rng rng);

    /// Called at each query round while the device wants to associate.
    /// Returns true when the device should transmit its request this
    /// round.
    bool should_transmit();

    /// Reports a collision (request not acknowledged): doubles the window
    /// up to the maximum and draws a new backoff counter.
    void on_collision();

    /// Reports success: resets the window.
    void on_success();

    std::uint32_t current_window() const { return window_; }

private:
    void draw_counter();

    std::uint32_t initial_window_;
    std::uint32_t max_window_;
    std::uint32_t window_;
    std::uint32_t counter_ = 0;
    ns::util::rng rng_;
};

}  // namespace ns::mac
