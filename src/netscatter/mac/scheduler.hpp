// Group scheduling (§3.3.3).
//
// Networks can exceed what one concurrent round supports — either more
// devices than 2^SF/SKIP slots, or a signal-strength spread beyond the
// ~35 dB dynamic range (Fig. 15b). The AP therefore partitions devices
// into groups of similar signal strength ("devices that have a similar
// signal strength are grouped into the same group to enable concurrent
// transmissions while further minimizing the near-far problem") and
// addresses one group per query via the group ID field (Fig. 11).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netscatter/mac/allocator.hpp"

namespace ns::mac {

/// One scheduled group.
struct device_group {
    std::uint8_t group_id = 0;
    std::vector<std::uint32_t> device_ids;  ///< strongest first
    double max_power_dbm = 0.0;             ///< strongest member
    double min_power_dbm = 0.0;             ///< weakest member

    double dynamic_range_db() const { return max_power_dbm - min_power_dbm; }
    std::size_t size() const { return device_ids.size(); }
};

/// Partitioning policy.
struct scheduler_params {
    std::size_t group_capacity = 256;     ///< slots per concurrent round
    double max_dynamic_range_db = 35.0;   ///< Fig. 15b limit per group
};

/// Live occupancy of one group as it evolves under churn: the member
/// count plus the power span, which only stretches on admissions (a
/// departure does not shrink it — the AP re-tightens spans at the next
/// full regroup).
struct group_span {
    std::size_t members = 0;
    double min_power_dbm = 0.0;
    double max_power_dbm = 0.0;
};

/// Signal-strength-aware group scheduler.
class group_scheduler {
public:
    explicit group_scheduler(scheduler_params params);

    /// Partitions the population: sorts by descending power and opens a
    /// new group whenever the current one is full or admitting the next
    /// device would stretch the group's dynamic range past the limit.
    /// Produces the minimum number of groups for this greedy order.
    std::vector<device_group> partition(std::vector<device_power> devices) const;

    /// Round-robin schedule over `num_groups` groups starting from group
    /// 0: the group transmitting in round `round_index`.
    static std::uint8_t group_for_round(std::size_t round_index, std::size_t num_groups);

    /// Incremental admission for one joining device: among the groups
    /// with free capacity whose power span, stretched to cover
    /// `power_dbm`, stays within the dynamic-range limit, returns the
    /// one needing the least stretch (ties break toward the lowest group
    /// index; an emptied group admits with zero stretch). Returns
    /// std::nullopt when no existing group can take the device — the AP
    /// then opens a new group or triggers a full regroup.
    std::optional<std::size_t> admit(const std::vector<group_span>& groups,
                                     double power_dbm) const;

    const scheduler_params& params() const { return params_; }

private:
    scheduler_params params_;
};

}  // namespace ns::mac
