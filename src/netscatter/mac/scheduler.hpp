// Group scheduling (§3.3.3).
//
// Networks can exceed what one concurrent round supports — either more
// devices than 2^SF/SKIP slots, or a signal-strength spread beyond the
// ~35 dB dynamic range (Fig. 15b). The AP therefore partitions devices
// into groups of similar signal strength ("devices that have a similar
// signal strength are grouped into the same group to enable concurrent
// transmissions while further minimizing the near-far problem") and
// addresses one group per query via the group ID field (Fig. 11).
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/mac/allocator.hpp"

namespace ns::mac {

/// One scheduled group.
struct device_group {
    std::uint8_t group_id = 0;
    std::vector<std::uint32_t> device_ids;  ///< strongest first
    double max_power_dbm = 0.0;             ///< strongest member
    double min_power_dbm = 0.0;             ///< weakest member

    double dynamic_range_db() const { return max_power_dbm - min_power_dbm; }
    std::size_t size() const { return device_ids.size(); }
};

/// Partitioning policy.
struct scheduler_params {
    std::size_t group_capacity = 256;     ///< slots per concurrent round
    double max_dynamic_range_db = 35.0;   ///< Fig. 15b limit per group
};

/// Signal-strength-aware group scheduler.
class group_scheduler {
public:
    explicit group_scheduler(scheduler_params params);

    /// Partitions the population: sorts by descending power and opens a
    /// new group whenever the current one is full or admitting the next
    /// device would stretch the group's dynamic range past the limit.
    /// Produces the minimum number of groups for this greedy order.
    std::vector<device_group> partition(std::vector<device_power> devices) const;

    /// Round-robin schedule over `num_groups` groups starting from group
    /// 0: the group transmitting in round `round_index`.
    static std::uint8_t group_for_round(std::size_t round_index, std::size_t num_groups);

    const scheduler_params& params() const { return params_; }

private:
    scheduler_params params_;
};

}  // namespace ns::mac
