// Receiver sensitivity and SNR model for CSS links.
//
// Sensitivity follows the standard LoRa link-budget model
//     S = -174 + 10 log10(BW) + NF + SNR_min(SF)    [dBm]
// with the demodulation SNR floor SNR_min(SF) from the SX1276 datasheet
// family ([4] in the paper). With NF = 6 dB this reproduces the paper's
// anchor (500 kHz, SF 9) -> -123 dBm and the other Table 1 rows to within
// 1 dB (the paper's SF 6 row is ~4 dB more conservative; see
// EXPERIMENTS.md).
#pragma once

#include <vector>

#include "netscatter/phy/css_params.hpp"

namespace ns::phy {

/// Receiver noise figure assumed throughout the reproduction, dB.
inline constexpr double default_noise_figure_db = 6.0;

/// Minimum demodulation SNR for a given spreading factor, dB
/// (-2.5 dB per SF step, anchored at SF 9 -> -12.5 dB).
/// Valid for SF in [5, 12].
double snr_min_db(int spreading_factor);

/// Receiver sensitivity in dBm for the given CSS parameters.
double sensitivity_dbm(const css_params& params,
                       double noise_figure_db = default_noise_figure_db);

/// One rate-adaptation option: a CSS configuration with the SNR it
/// requires (relative to the noise floor in its own bandwidth) and the
/// LoRa bitrate it delivers.
struct rate_option {
    css_params params;
    double required_rssi_dbm = 0.0;  ///< sensitivity of this configuration
    double bitrate_bps = 0.0;        ///< LoRa bitrate (SF bits/symbol)
};

/// The rate-adaptation table used for the "LoRa backscatter with rate
/// adaptation" baseline (§4.4): all (BW, SF) pairs with BW in {125, 250,
/// 500} kHz and SF in [6, 12], sorted by descending bitrate and capped at
/// the paper's stated 32 kbps maximum LoRa bitrate.
std::vector<rate_option> rate_adaptation_table();

/// Best achievable LoRa bitrate for a device whose received signal
/// strength is `rssi_dbm`: the highest-bitrate option whose sensitivity
/// is met. Returns 0 when even the most robust option fails.
double best_bitrate_bps(double rssi_dbm);

/// Maximum LoRa bitrate the paper allows rate adaptation to pick (§4.4).
inline constexpr double max_lora_bitrate_bps = 32e3;

/// §2.2's multi-spreading-factor analysis: two (BW, SF) pairs can only be
/// concurrently decoded when their chirp slopes BW^2/2^SF differ ([24]);
/// over the LoRa bandwidth family (7.8125..500 kHz in power-of-two
/// steps) and SF 6..12 there are exactly 19 distinct slopes, and
/// "requiring receiver sensitivity better than -123 dBm and bit rates of
/// at least 1 kbps limits these concurrent configurations to only 8".
struct concurrency_analysis {
    std::size_t distinct_slope_classes = 0;  ///< paper: 19
    std::size_t usable_classes = 0;          ///< paper: 8
    /// One representative per usable class (the highest-bitrate member
    /// meeting both constraints).
    std::vector<css_params> usable_representatives;
};

/// Enumerates the slope classes and counts those with at least one member
/// meeting the sensitivity and bitrate constraints.
concurrency_analysis analyze_concurrent_configs(double min_sensitivity_dbm = -123.0,
                                                double min_bitrate_bps = 1000.0);

}  // namespace ns::phy
