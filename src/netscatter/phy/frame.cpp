#include "netscatter/phy/frame.hpp"

#include "netscatter/util/crc.hpp"
#include "netscatter/util/error.hpp"

namespace ns::phy {

std::vector<bool> build_frame_bits(const frame_format& format,
                                   const std::vector<bool>& payload) {
    std::vector<bool> out;
    build_frame_bits_into(format, payload, out);
    return out;
}

void build_frame_bits_into(const frame_format& format, const std::vector<bool>& payload,
                           std::vector<bool>& out) {
    ns::util::require(payload.size() == format.payload_bits,
                      "build_frame_bits: payload size mismatch");
    ns::util::require(format.crc_bits == 8, "build_frame_bits: only CRC-8 is supported");
    const std::uint8_t crc = ns::util::crc8(payload);
    out.assign(payload.begin(), payload.end());
    for (int i = 7; i >= 0; --i) out.push_back(((crc >> i) & 1) != 0);
}

frame_check_result check_frame_bits(const frame_format& format,
                                    const std::vector<bool>& bits) {
    frame_check_result result;
    if (bits.size() != format.payload_plus_crc_bits()) return result;
    if (!ns::util::check_crc8(bits)) return result;
    result.ok = true;
    result.payload = ns::util::strip_crc8(bits);
    return result;
}

}  // namespace ns::phy
