#include "netscatter/phy/frame.hpp"

#include "netscatter/util/crc.hpp"
#include "netscatter/util/error.hpp"

namespace ns::phy {

std::vector<bool> build_frame_bits(const frame_format& format,
                                   const std::vector<bool>& payload) {
    ns::util::require(payload.size() == format.payload_bits,
                      "build_frame_bits: payload size mismatch");
    ns::util::require(format.crc_bits == 8, "build_frame_bits: only CRC-8 is supported");
    return ns::util::append_crc8(payload);
}

frame_check_result check_frame_bits(const frame_format& format,
                                    const std::vector<bool>& bits) {
    frame_check_result result;
    if (bits.size() != format.payload_plus_crc_bits()) return result;
    if (!ns::util::check_crc8(bits)) return result;
    result.ok = true;
    result.payload = ns::util::strip_crc8(bits);
    return result;
}

}  // namespace ns::phy
