// ASK downlink (§3.3.3, Fig. 11).
//
// The AP's query message is amplitude-shift keyed at 160 kbps on the
// 900 MHz carrier; backscatter devices recover it with a passive
// envelope detector (§4.1). At complex baseband the modulation is
// ON-OFF keying of the carrier amplitude; the device-side demodulator is
// an integrate-and-dump over each bit period of the envelope, sliced at
// half the ON level — exactly what an RC-filtered envelope detector and
// comparator implement in hardware.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "netscatter/dsp/fft.hpp"

namespace ns::phy {

/// ASK downlink configuration.
struct ask_params {
    double bitrate_bps = 160e3;     ///< §3.3.3: 160 kbps ASK
    double sample_rate_hz = 4e6;    ///< baseband simulation rate
    double on_amplitude = 1.0;      ///< carrier amplitude for a '1'
    double off_amplitude = 0.1;     ///< residual carrier for a '0' (the AP
                                    ///< keeps some carrier so backscatter
                                    ///< devices can keep reflecting)

    /// Samples per bit (rounded down; must be >= 2).
    std::size_t samples_per_bit() const {
        return static_cast<std::size_t>(sample_rate_hz / bitrate_bps);
    }
};

/// Modulates a bit sequence to complex baseband (constant phase).
dsp::cvec ask_modulate(const ask_params& params, const std::vector<bool>& bits);

/// Envelope-detector demodulation of a sample-aligned ASK burst:
/// integrate |x| over each bit period and slice at the midpoint between
/// the observed high and low levels. Returns std::nullopt when the
/// envelope carries no discernible keying (max/min contrast below 3 dB)
/// or fewer than `num_bits` periods fit.
std::optional<std::vector<bool>> ask_demodulate(const ask_params& params,
                                                const dsp::cvec& samples,
                                                std::size_t num_bits);

/// Airtime of `num_bits` bits, seconds.
double ask_airtime_s(const ask_params& params, std::size_t num_bits);

}  // namespace ns::phy
