// Link-layer packet structure (§3.3.1, §4.4).
//
// A NetScatter device packet is:
//   [6 upchirp + 2 downchirp preamble, at the device's assigned shift]
//   [payload bits][CRC-8]
// The evaluation uses a 40-bit payload+CRC budget (32 payload + 8 CRC) for
// the link-layer figures and 5-byte payloads for the PHY-rate figure.
#pragma once

#include <cstddef>
#include <vector>

#include "netscatter/phy/css_params.hpp"

namespace ns::phy {

/// Frame layout constants from the paper's evaluation.
struct frame_format {
    std::size_t preamble_symbols = 8;  ///< 6 upchirps + 2 downchirps
    std::size_t payload_bits = 32;     ///< useful payload bits
    std::size_t crc_bits = 8;          ///< CRC-8 checksum

    /// Total protected bits on the air after the preamble.
    std::size_t payload_plus_crc_bits() const { return payload_bits + crc_bits; }

    /// Symbols occupied by one NetScatter packet (one bit per symbol).
    std::size_t netscatter_symbols() const {
        return preamble_symbols + payload_plus_crc_bits();
    }

    /// Airtime of one NetScatter packet in seconds for the given CSS
    /// parameters.
    double netscatter_airtime_s(const css_params& params) const {
        return static_cast<double>(netscatter_symbols()) * params.symbol_duration_s();
    }

    /// Symbols occupied by one classic-CSS (LoRa) packet carrying the same
    /// bits: SF bits per payload symbol, same preamble length.
    std::size_t lora_symbols(const css_params& params) const {
        const auto sf = static_cast<std::size_t>(params.spreading_factor);
        const std::size_t payload_symbols = (payload_plus_crc_bits() + sf - 1) / sf;
        return preamble_symbols + payload_symbols;
    }

    /// Airtime of one LoRa packet in seconds.
    double lora_airtime_s(const css_params& params) const {
        return static_cast<double>(lora_symbols(params)) * params.symbol_duration_s();
    }
};

/// The link-layer format used by Figs. 18/19 (40-bit payload+CRC).
inline frame_format linklayer_format() {
    return frame_format{.preamble_symbols = 8, .payload_bits = 32, .crc_bits = 8};
}

/// The PHY-rate format used by Fig. 17 (five-byte payload).
inline frame_format phy_format() {
    return frame_format{.preamble_symbols = 8, .payload_bits = 40, .crc_bits = 8};
}

/// Builds the on-air bit sequence for a payload: payload followed by its
/// CRC-8. Requires payload.size() == format.payload_bits.
std::vector<bool> build_frame_bits(const frame_format& format, const std::vector<bool>& payload);

/// build_frame_bits into a caller-provided vector (resized; capacity
/// reuse makes repeated calls allocation-free). `out` must not alias
/// `payload`.
void build_frame_bits_into(const frame_format& format, const std::vector<bool>& payload,
                           std::vector<bool>& out);

/// Validates and strips the CRC of a received bit sequence. Returns the
/// payload bits, or an empty optional-like flag via `ok`.
struct frame_check_result {
    bool ok = false;              ///< CRC matched
    std::vector<bool> payload;    ///< payload bits when ok
};

/// Checks a received payload+CRC bit sequence of the given format.
frame_check_result check_frame_bits(const frame_format& format, const std::vector<bool>& bits);

}  // namespace ns::phy
