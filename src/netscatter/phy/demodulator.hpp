// CSS demodulation primitives (§2.1, §3.1, §3.2.3).
//
// Demodulation of one symbol is: dechirp (multiply by the baseline
// downchirp) then FFT. The same single FFT output serves every concurrent
// device — the receiver just inspects different bins. Zero-padding before
// the FFT interpolates the spectrum for sub-bin peak location (the
// receiver "has to achieve a sub-FFT bin resolution", §3.2.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netscatter/dsp/peak.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/css_params.hpp"

namespace ns::phy {

/// Shared demodulation front end: dechirps a symbol and exposes the
/// (optionally zero-padded) power spectrum. Constructed once; the
/// downchirp reference is cached.
class demodulator {
public:
    /// `zero_padding_factor` multiplies the FFT size (1 = no padding);
    /// must be a power of two. The deployed receiver uses 10x-equivalent
    /// resolution; we default to 8 (power of two) which gives 1/8-bin
    /// granularity.
    explicit demodulator(css_params params, std::size_t zero_padding_factor = 8);

    /// Dechirp + FFT + |.|^2. Returns 2^SF * zero_padding_factor bins.
    /// Requires symbol.size() == params.samples_per_symbol().
    std::vector<double> symbol_power_spectrum(const cvec& symbol) const;

    /// Dechirp + zero-padded FFT, complex output (phase preserved). The
    /// receiver estimates per-device residual frequency offsets from the
    /// phase progression of the preamble peaks across symbols (§4.2's
    /// measurement method).
    cvec symbol_spectrum(const cvec& symbol) const;

    /// symbol_spectrum into a caller-provided buffer (resized; capacity
    /// reuse makes repeated calls allocation-free). Identical arithmetic
    /// to symbol_spectrum / symbol_power_spectrum, so the three paths
    /// stay bit-identical. `out` must not alias `symbol`.
    void symbol_spectrum_into(std::span<const cplx> symbol, cvec& out) const;

    /// Classic CSS hard decision: the strongest padded bin, mapped back to
    /// a symbol value in [0, 2^SF) by rounding to the nearest chip bin.
    std::uint32_t demodulate_lora_symbol(const cvec& symbol) const;

    /// Strongest peak with fractional-bin resolution in *chip-bin* units
    /// (i.e. divided by the padding factor); used by the Choir baseline
    /// and the offset-measurement experiments.
    ns::dsp::peak find_symbol_peak(const cvec& symbol) const;

    /// Power observed at the padded bin corresponding to chip bin `bin`:
    /// the maximum over the padded bins within +-`search_radius_padded`
    /// padded bins of the nominal location, so a device displaced by
    /// residual timing/frequency offset still credits its own bin. The
    /// default radius of half a chip bin suits isolated devices; the
    /// NetScatter receiver widens it to the SKIP guard region (Table 1
    /// tolerates a full +-1-bin displacement at SKIP = 2). Pass 0 to use
    /// the default.
    double power_at_bin(const std::vector<double>& padded_spectrum, std::uint32_t bin,
                        std::size_t search_radius_padded = 0) const;

    /// Location and power of the strongest padded bin within
    /// +-`search_radius_padded` of chip bin `bin`. The offset is in padded
    /// bins relative to the nominal location. Receivers lock a device's
    /// offset from its preamble (the residual displacement is constant
    /// within a packet) and then read payload symbols in a narrow window
    /// around the locked location, which keeps interference from leaking
    /// into the wide guard window during OFF symbols.
    struct windowed_peak {
        std::ptrdiff_t offset = 0;  ///< padded bins from the nominal location
        double power = 0.0;
    };
    windowed_peak peak_in_window(const std::vector<double>& padded_spectrum,
                                 std::uint32_t bin, std::size_t search_radius_padded) const;

    /// Maximum power within +-`radius` padded bins of (bin's nominal
    /// location + `offset` padded bins); used for payload slicing at a
    /// preamble-locked location.
    double power_at_offset(const std::vector<double>& padded_spectrum, std::uint32_t bin,
                           std::ptrdiff_t offset, std::size_t radius = 1) const;

    /// Number of padded FFT bins per chip bin.
    std::size_t padding_factor() const { return padding_; }

    /// Size of the padded FFT.
    std::size_t padded_size() const { return params_.num_bins() * padding_; }

    const css_params& params() const { return params_; }

private:
    css_params params_;
    std::size_t padding_;
    cvec downchirp_;
};

}  // namespace ns::phy
