#include "netscatter/phy/demodulator.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/engine/fft_plan.hpp"
#include "netscatter/util/error.hpp"

namespace ns::phy {

demodulator::demodulator(css_params params, std::size_t zero_padding_factor)
    : params_(params), padding_(zero_padding_factor) {
    ns::util::require(ns::dsp::is_power_of_two(padding_),
                      "demodulator: zero padding factor must be a power of two");
    downchirp_ = dechirp_reference(params_);
}

std::vector<double> demodulator::symbol_power_spectrum(const cvec& symbol) const {
    // Payload-slicing hot path: dechirp straight into the per-thread
    // scratch buffer, zero-pad, transform in place. Same arithmetic as
    // symbol_spectrum (so powers are bit-identical), minus one padded
    // complex allocation per symbol.
    ns::util::require(symbol.size() == params_.samples_per_symbol(),
                      "demodulator: symbol length mismatch");
    ns::dsp::cvec& scratch = ns::engine::fft_plan_cache::thread_scratch(padded_size());
    for (std::size_t i = 0; i < symbol.size(); ++i) {
        scratch[i] = symbol[i] * downchirp_[i];
    }
    std::fill(scratch.begin() + static_cast<std::ptrdiff_t>(symbol.size()),
              scratch.end(), ns::dsp::cplx{0.0, 0.0});
    ns::dsp::fft_inplace(scratch);
    return ns::dsp::power_spectrum(scratch);
}

cvec demodulator::symbol_spectrum(const cvec& symbol) const {
    cvec out;
    symbol_spectrum_into(symbol, out);
    return out;
}

void demodulator::symbol_spectrum_into(std::span<const cplx> symbol, cvec& out) const {
    ns::util::require(symbol.size() == params_.samples_per_symbol(),
                      "demodulator: symbol length mismatch");
    out.resize(padded_size());
    for (std::size_t i = 0; i < symbol.size(); ++i) {
        out[i] = symbol[i] * downchirp_[i];
    }
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(symbol.size()), out.end(),
              ns::dsp::cplx{0.0, 0.0});
    ns::dsp::fft_inplace(out);
}

std::uint32_t demodulator::demodulate_lora_symbol(const cvec& symbol) const {
    const std::vector<double> power = symbol_power_spectrum(symbol);
    const std::size_t bin = ns::dsp::argmax(power);
    // Round the padded bin to the nearest chip bin, wrapping at the top.
    const std::size_t chip = (bin + padding_ / 2) / padding_ % params_.num_bins();
    return static_cast<std::uint32_t>(chip);
}

ns::dsp::peak demodulator::find_symbol_peak(const cvec& symbol) const {
    const std::vector<double> power = symbol_power_spectrum(symbol);
    ns::dsp::peak p = ns::dsp::find_peak(power);
    // Express locations in chip-bin units.
    p.fractional_bin /= static_cast<double>(padding_);
    p.bin = p.bin / padding_ % params_.num_bins();
    return p;
}

demodulator::windowed_peak demodulator::peak_in_window(
    const std::vector<double>& padded_spectrum, std::uint32_t bin,
    std::size_t search_radius_padded) const {
    ns::util::require(padded_spectrum.size() == padded_size(),
                      "peak_in_window: spectrum size mismatch");
    ns::util::require(bin < params_.num_bins(), "peak_in_window: bin out of range");
    const std::size_t n = padded_spectrum.size();
    const std::size_t centre = static_cast<std::size_t>(bin) * padding_;
    windowed_peak best;
    best.power = -1.0;
    const auto radius = static_cast<std::ptrdiff_t>(search_radius_padded);
    for (std::ptrdiff_t off = -radius; off <= radius; ++off) {
        const std::size_t idx =
            (centre + n + static_cast<std::size_t>(off + static_cast<std::ptrdiff_t>(n))) % n;
        if (padded_spectrum[idx] > best.power) {
            best.power = padded_spectrum[idx];
            best.offset = off;
        }
    }
    return best;
}

double demodulator::power_at_offset(const std::vector<double>& padded_spectrum,
                                    std::uint32_t bin, std::ptrdiff_t offset,
                                    std::size_t radius) const {
    ns::util::require(padded_spectrum.size() == padded_size(),
                      "power_at_offset: spectrum size mismatch");
    ns::util::require(bin < params_.num_bins(), "power_at_offset: bin out of range");
    const std::size_t n = padded_spectrum.size();
    const auto base = static_cast<std::ptrdiff_t>(static_cast<std::size_t>(bin) * padding_) +
                      offset;
    double best = 0.0;
    for (std::ptrdiff_t k = -static_cast<std::ptrdiff_t>(radius);
         k <= static_cast<std::ptrdiff_t>(radius); ++k) {
        const std::size_t idx = static_cast<std::size_t>(
            ((base + k) % static_cast<std::ptrdiff_t>(n) + static_cast<std::ptrdiff_t>(n)) %
            static_cast<std::ptrdiff_t>(n));
        best = std::max(best, padded_spectrum[idx]);
    }
    return best;
}

double demodulator::power_at_bin(const std::vector<double>& padded_spectrum,
                                 std::uint32_t bin,
                                 std::size_t search_radius_padded) const {
    ns::util::require(padded_spectrum.size() == padded_size(),
                      "power_at_bin: spectrum size mismatch");
    ns::util::require(bin < params_.num_bins(), "power_at_bin: bin out of range");
    // Search the padded bins within the radius of the nominal location,
    // circularly, and report the maximum. This credits a device whose
    // residual time/frequency offset moved its peak off-centre.
    const std::size_t n = padded_spectrum.size();
    const std::size_t centre = static_cast<std::size_t>(bin) * padding_;
    const std::size_t half =
        search_radius_padded == 0 ? padding_ / 2 : search_radius_padded;
    double best = 0.0;
    for (std::size_t k = 0; k <= 2 * half; ++k) {
        const std::size_t idx = (centre + n - half + k) % n;
        best = std::max(best, padded_spectrum[idx]);
    }
    return best;
}

}  // namespace ns::phy
