#include "netscatter/phy/chirp.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/util/error.hpp"

namespace ns::phy {

namespace {

// Shared chirp synthesis. The instantaneous frequency ramps from
// (f0 - BW/2) to (f0 + BW/2) over the symbol for an upchirp (slope +1) or
// the reverse for a downchirp (slope -1); sampling at fs == BW aliases
// out-of-band frequencies back into band, realizing the cyclic wrap.
//
// Phase is the exact discrete integral of the instantaneous frequency:
//   phi[n] = 2*pi * ( (f0/fs) * n + slope * (n^2/(2N) - n/2) ).
cvec make_chirp(const css_params& params, double cyclic_shift, double slope) {
    const auto n_samples = params.samples_per_symbol();
    const double n_bins = static_cast<double>(params.num_bins());
    ns::util::require(std::abs(cyclic_shift) < n_bins + 1.0,
                      "make_chirp: cyclic shift out of range");
    const double f0_norm = cyclic_shift / n_bins;  // f0 / fs

    cvec chirp(n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) {
        const double n = static_cast<double>(i);
        const double phase =
            2.0 * std::numbers::pi *
            (f0_norm * n + slope * (n * n / (2.0 * n_bins) - n / 2.0));
        chirp[i] = std::polar(1.0, phase);
    }
    return chirp;
}

}  // namespace

cvec make_upchirp(const css_params& params, double cyclic_shift) {
    return make_chirp(params, cyclic_shift, +1.0);
}

cvec make_downchirp(const css_params& params, double cyclic_shift) {
    return make_chirp(params, cyclic_shift, -1.0);
}

cvec dechirp_reference(const css_params& params) {
    return make_downchirp(params, 0.0);
}

cvec make_upchirp_time_rotated(const css_params& params, std::size_t shift) {
    ns::util::require(shift < params.num_bins(),
                      "make_upchirp_time_rotated: shift out of range");
    const cvec base = make_upchirp(params, 0.0);
    const std::size_t n = base.size();
    cvec rotated(n);
    for (std::size_t i = 0; i < n; ++i) rotated[i] = base[(i + shift) % n];
    return rotated;
}

std::size_t make_dechirped_tone_kernel(cvec& kernel, double position_bins,
                                       std::size_t num_bins, std::size_t padding,
                                       std::size_t radius_bins) {
    ns::util::require(num_bins >= 2 && padding >= 1,
                      "tone_kernel: need at least two bins and padding >= 1");
    const std::size_t m_total = num_bins * padding;
    const double n = static_cast<double>(num_bins);
    const double m_real = static_cast<double>(m_total);

    // Wrap the peak position into [0, M) padded bins. The kernel is
    // 1-periodic in θ for even N (both sin terms and the phase factor
    // flip sign together), so evaluating with the unwrapped offset x is
    // exact for every cyclic bin index.
    double p = position_bins * static_cast<double>(padding);
    p -= std::floor(p / m_real) * m_real;

    const std::size_t half =
        std::min(radius_bins * padding, m_total / 2);
    const std::size_t window = std::min(2 * half + 1, m_total);
    kernel.resize(window);

    const auto centre = static_cast<std::ptrdiff_t>(std::llround(p));
    const std::ptrdiff_t first_signed = centre - static_cast<std::ptrdiff_t>(half);
    for (std::size_t w = 0; w < window; ++w) {
        const double x =
            p - static_cast<double>(first_signed + static_cast<std::ptrdiff_t>(w));
        const double theta = x / m_real;
        const double denominator = std::sin(std::numbers::pi * theta);
        double magnitude;
        if (std::abs(denominator) < 1e-12) {
            magnitude = n;  // θ -> 0 limit (the on-peak bin)
        } else {
            magnitude =
                std::sin(std::numbers::pi * x / static_cast<double>(padding)) /
                denominator;
        }
        kernel[w] = std::polar(magnitude, std::numbers::pi * (n - 1.0) * theta);
    }

    const std::ptrdiff_t m_signed = static_cast<std::ptrdiff_t>(m_total);
    return static_cast<std::size_t>(((first_signed % m_signed) + m_signed) % m_signed);
}

std::size_t make_multipath_tone_kernel(cvec& envelope, std::span<const cplx> taps,
                                       std::uint32_t cyclic_shift, double tone_bins,
                                       std::size_t num_bins, std::size_t padding,
                                       std::size_t radius_bins, cvec& kernel_scratch) {
    ns::util::require(!taps.empty(), "multipath_tone_kernel: need at least one tap");
    const std::size_t m_total = num_bins * padding;
    const std::size_t spread = (taps.size() - 1) * padding;
    ns::util::require(spread < m_total,
                      "multipath_tone_kernel: more taps than the spectrum has bins");
    // Clamp the per-tap window so window + tap spread fits the spectrum —
    // the same silent clamping make_dechirped_tone_kernel applies at
    // radius >= num_bins/2, extended by the spread the taps add.
    const std::size_t max_radius = ((m_total - spread - 1) / 2) / padding;
    const double position = static_cast<double>(cyclic_shift) + tone_bins;
    const std::size_t first_p = make_dechirped_tone_kernel(
        kernel_scratch, position, num_bins, padding,
        std::min(radius_bins, max_radius));

    const std::size_t window = kernel_scratch.size();
    envelope.assign(window + spread, cplx{0.0, 0.0});

    const double n = static_cast<double>(num_bins);
    const double omega = 2.0 * std::numbers::pi * tone_bins / n;  // rad/sample
    for (std::size_t t = 0; t < taps.size(); ++t) {
        if (taps[t] == cplx{0.0, 0.0}) continue;
        const double td = static_cast<double>(t);
        // Constant phase of the t-sample delay: the cyclic-shift identity
        // β_t plus the residual tone's e^{-jωt} (the tone is applied to
        // the waveform before the channel delays it).
        const double beta =
            2.0 * std::numbers::pi *
                (td / 2.0 + td * td / (2.0 * n) -
                 static_cast<double>(cyclic_shift) * td / n) -
            omega * td;
        const cplx gain = taps[t] * std::polar(1.0, beta);
        // Tap t's kernel sits t·padding padded bins below the LoS peak;
        // envelope[0] anchors at first_p - spread.
        const std::size_t base = spread - t * padding;
        for (std::size_t w = 0; w < window; ++w) {
            envelope[base + w] += gain * kernel_scratch[w];
        }
    }
    return (first_p + m_total - spread) % m_total;
}

cvec dechirp(const css_params& params, const cvec& symbol) {
    ns::util::require(symbol.size() == params.samples_per_symbol(),
                      "dechirp: symbol length mismatch");
    // Multiplying by the downchirp (== conjugate of the baseline upchirp)
    // collapses each device's chirp into a constant-frequency tone.
    const cvec down = dechirp_reference(params);
    return ns::dsp::multiply(symbol, down);
}

}  // namespace ns::phy
