#include "netscatter/phy/chirp.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/util/error.hpp"

namespace ns::phy {

namespace {

// Shared chirp synthesis. The instantaneous frequency ramps from
// (f0 - BW/2) to (f0 + BW/2) over the symbol for an upchirp (slope +1) or
// the reverse for a downchirp (slope -1); sampling at fs == BW aliases
// out-of-band frequencies back into band, realizing the cyclic wrap.
//
// Phase is the exact discrete integral of the instantaneous frequency:
//   phi[n] = 2*pi * ( (f0/fs) * n + slope * (n^2/(2N) - n/2) ).
cvec make_chirp(const css_params& params, double cyclic_shift, double slope) {
    const auto n_samples = params.samples_per_symbol();
    const double n_bins = static_cast<double>(params.num_bins());
    ns::util::require(std::abs(cyclic_shift) < n_bins + 1.0,
                      "make_chirp: cyclic shift out of range");
    const double f0_norm = cyclic_shift / n_bins;  // f0 / fs

    cvec chirp(n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) {
        const double n = static_cast<double>(i);
        const double phase =
            2.0 * std::numbers::pi *
            (f0_norm * n + slope * (n * n / (2.0 * n_bins) - n / 2.0));
        chirp[i] = std::polar(1.0, phase);
    }
    return chirp;
}

}  // namespace

cvec make_upchirp(const css_params& params, double cyclic_shift) {
    return make_chirp(params, cyclic_shift, +1.0);
}

cvec make_downchirp(const css_params& params, double cyclic_shift) {
    return make_chirp(params, cyclic_shift, -1.0);
}

cvec dechirp_reference(const css_params& params) {
    return make_downchirp(params, 0.0);
}

cvec make_upchirp_time_rotated(const css_params& params, std::size_t shift) {
    ns::util::require(shift < params.num_bins(),
                      "make_upchirp_time_rotated: shift out of range");
    const cvec base = make_upchirp(params, 0.0);
    const std::size_t n = base.size();
    cvec rotated(n);
    for (std::size_t i = 0; i < n; ++i) rotated[i] = base[(i + shift) % n];
    return rotated;
}

cvec dechirp(const css_params& params, const cvec& symbol) {
    ns::util::require(symbol.size() == params.samples_per_symbol(),
                      "dechirp: symbol length mismatch");
    // Multiplying by the downchirp (== conjugate of the baseline upchirp)
    // collapses each device's chirp into a constant-frequency tone.
    const cvec down = dechirp_reference(params);
    return ns::dsp::multiply(symbol, down);
}

}  // namespace ns::phy
