#include "netscatter/phy/css_params.hpp"

#include "netscatter/phy/sensitivity.hpp"

namespace ns::phy {

modulation_config make_modulation_config(const css_params& params) {
    modulation_config config;
    config.params = params;
    // One FFT bin of slack each way before adjacent devices collide
    // (Table 1 lists the mismatch that moves the peak by one bin).
    config.max_time_variation_s = params.time_per_bin_s();
    config.max_frequency_variation_hz = params.bin_spacing_hz();
    config.bitrate_bps = params.onoff_bitrate_bps();
    config.sensitivity_dbm = sensitivity_dbm(params);
    return config;
}

std::vector<modulation_config> table1_configs() {
    const std::vector<css_params> rows = {
        {.bandwidth_hz = 500e3, .spreading_factor = 9},
        {.bandwidth_hz = 500e3, .spreading_factor = 8},
        {.bandwidth_hz = 250e3, .spreading_factor = 8},
        {.bandwidth_hz = 250e3, .spreading_factor = 7},
        {.bandwidth_hz = 125e3, .spreading_factor = 7},
        {.bandwidth_hz = 125e3, .spreading_factor = 6},
    };
    std::vector<modulation_config> configs;
    configs.reserve(rows.size());
    for (const auto& row : rows) configs.push_back(make_modulation_config(row));
    return configs;
}

}  // namespace ns::phy
