// Chirp waveform generation (§2.1).
//
// At the critically-sampled rate (fs == BW), a cyclic time shift of the
// baseline upchirp is exactly equivalent to an initial-frequency shift:
// frequencies above BW/2 alias down to -BW/2 (Fig. 3c). We therefore
// synthesize "cyclic shift s" as an initial-frequency offset of
// s · BW / 2^SF Hz, which (a) is exact for integer s, (b) naturally
// extends to the fractional shifts produced by hardware timing jitter and
// CFO, and (c) after dechirping yields a clean complex tone at FFT bin s.
// A true time-domain rotation is also provided; tests verify the two
// agree for integer shifts.
#pragma once

#include <cstdint>
#include <span>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/phy/css_params.hpp"

namespace ns::phy {

using ns::dsp::cplx;
using ns::dsp::cvec;

/// Generates one upchirp symbol of `params.samples_per_symbol()` samples
/// with the given cyclic shift (may be fractional; must satisfy
/// |shift| < 2^SF+1 for sanity), unit amplitude and zero initial phase.
cvec make_upchirp(const css_params& params, double cyclic_shift = 0.0);

/// Generates one downchirp symbol (conjugate slope). `cyclic_shift` has
/// the same meaning as for upchirps; NetScatter preambles transmit the
/// device's assigned shift on downchirps too (§3.3.1).
cvec make_downchirp(const css_params& params, double cyclic_shift = 0.0);

/// Baseline downchirp used by the receiver for dechirping, i.e.
/// make_downchirp(params, 0). Cache this: it is multiplied against every
/// received symbol.
cvec dechirp_reference(const css_params& params);

/// True time-domain cyclic rotation of a baseline upchirp by an integer
/// number of chips; used by tests to validate the frequency-shift
/// equivalence. Requires 0 <= shift < 2^SF.
cvec make_upchirp_time_rotated(const css_params& params, std::size_t shift);

/// Dechirps one received symbol: element-wise multiplication by the
/// baseline downchirp. Requires symbol.size() == params.samples_per_symbol().
cvec dechirp(const css_params& params, const cvec& symbol);

/// The dechirp-to-tone identity, evaluated analytically (§3.2): a cyclic
/// shift s plus a residual tone displacement δ dechirps to the complex
/// tone e^{j2π (s+δ)/N · n}, whose zero-padded N-point FFT is a Dirichlet
/// kernel centred at padded bin (s+δ)·padding:
///   X[m] = e^{jπ(N-1)θ} · sin(πNθ)/sin(πθ),  θ = ((s+δ)·padding - m)/M
/// with N = num_bins samples, M = N·padding output bins. This writes the
/// kernel values for the window of ±radius_bins chip bins around the
/// peak into `kernel` (resized; capacity reuse makes repeated calls
/// allocation-free) and returns the padded-bin index of kernel[0]
/// (cyclic). A radius of >= num_bins/2 yields the full spectrum, exactly
/// matching fft_zero_padded of the synthesized tone; a truncated radius
/// drops only far sidelobes (|X| ~ N/(π·Δbins) beyond Δ chip bins).
///
/// `position_bins` = s + δ may be any real; it is wrapped modulo num_bins.
std::size_t make_dechirped_tone_kernel(cvec& kernel, double position_bins,
                                       std::size_t num_bins, std::size_t padding,
                                       std::size_t radius_bins);

/// Frequency-selective multipath on the fast path. A tap delaying the
/// chirp by t samples is — at the critical sampling rate — exactly a
/// -t-bin cyclic shift with a constant, shift-dependent phase:
///   x_s[n - t] = x_{s-t}[n] · e^{jβ_t},   β_t = 2π(t/2 + t²/2N − s·t/N),
/// so the post-dechirp spectrum of a multipath chirp is the tap-weighted
/// sum of the SAME Dirichlet window at integer-bin offsets. (Dual view:
/// an LTI channel multiplies a chirp pointwise in time by its frequency
/// response sampled along the sweep, and after dechirping time maps to
/// frequency — the taps become a spectral envelope on the kernel.)
///
/// Writes the combined window for taps `taps` (tap i delayed i samples)
/// of a device at integer shift `cyclic_shift` with residual tone
/// displacement `tone_bins` chip bins into `envelope` (window size
/// kernel + (taps-1)·padding; resized, capacity reuse) and returns the
/// padded-bin index of envelope[0]. The residual tone — applied to the
/// waveform BEFORE the channel — adds e^{-jωt} per tap
/// (ω = 2π·tone_bins/N rad/sample). `kernel_scratch` holds the
/// single-tap window. With taps == {1} this reduces exactly to
/// make_dechirped_tone_kernel. Exact up to the kernel truncation and
/// the t-sample symbol-boundary effect of linear (vs cyclic) tap
/// convolution, both below the truncation tolerance class.
std::size_t make_multipath_tone_kernel(cvec& envelope, std::span<const cplx> taps,
                                       std::uint32_t cyclic_shift, double tone_bins,
                                       std::size_t num_bins, std::size_t padding,
                                       std::size_t radius_bins, cvec& kernel_scratch);

}  // namespace ns::phy
