#include "netscatter/phy/aggregation.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/util/error.hpp"

namespace ns::phy {

namespace {

// Chirp sampled at the aggregate rate fs = num_bands * BW with initial
// frequency f0 (Hz) and slope +-BW/T. Sampling aliases any sweep beyond
// +-fs/2 back into band, which realizes the Fig. 5 wrap.
dsp::cvec make_chirp_at(const aggregate_params& params, double f0_hz, double slope_sign) {
    const double fs = params.sample_rate_hz();
    const double symbol_t = params.chirp.symbol_duration_s();
    const double slope = slope_sign * params.chirp.bandwidth_hz / symbol_t;  // Hz/s
    const std::size_t n = params.samples_per_symbol();

    dsp::cvec chirp(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / fs;
        const double phase = 2.0 * std::numbers::pi * (f0_hz * t + 0.5 * slope * t * t);
        chirp[i] = std::polar(1.0, phase);
    }
    return chirp;
}

}  // namespace

dsp::cvec make_aggregate_upchirp(const aggregate_params& params, std::size_t band,
                                 double shift) {
    ns::util::require(band < params.num_bands, "make_aggregate_upchirp: band out of range");
    ns::util::require(std::abs(shift) < static_cast<double>(params.chirp.num_bins()) + 1.0,
                      "make_aggregate_upchirp: shift out of range");
    const double f0 = -params.sample_rate_hz() / 2.0 +
                      static_cast<double>(band) * params.chirp.bandwidth_hz +
                      shift * params.chirp.bin_spacing_hz();
    return make_chirp_at(params, f0, +1.0);
}

dsp::cvec aggregate_dechirp_reference(const aggregate_params& params) {
    // Conjugate of the band-0, shift-0 upchirp.
    const double f0 = -params.sample_rate_hz() / 2.0;
    return make_chirp_at(params, -f0, -1.0);
}

std::vector<double> aggregate_symbol_power_spectrum(const aggregate_params& params,
                                                    const dsp::cvec& symbol) {
    ns::util::require(symbol.size() == params.samples_per_symbol(),
                      "aggregate_symbol_power_spectrum: symbol length mismatch");
    const dsp::cvec reference = aggregate_dechirp_reference(params);
    const dsp::cvec dechirped = ns::dsp::multiply(symbol, reference);
    return ns::dsp::power_spectrum(ns::dsp::fft(dechirped));
}

}  // namespace ns::phy
