// Bandwidth aggregation (§3.1, Fig. 5).
//
// To double both the device count and keep per-device bitrate, NetScatter
// doubles the *total* band while each device keeps its chirp bandwidth
// BW and SF: a device in sub-band b sweeps from its band edge and aliases
// down to -BW_total/2 when the chirp frequency hits the top. The receiver
// multiplies the whole aggregate band by one downchirp and performs a
// single (num_bands * 2^SF)-point FFT: device (band b, shift s) appears
// at aggregate bin b * 2^SF + s. No per-band filters or extra FFTs.
#pragma once

#include <cstdint>

#include "netscatter/dsp/fft.hpp"
#include "netscatter/phy/css_params.hpp"

namespace ns::phy {

/// Aggregate-band configuration: `chirp` is the per-band CSS parameter
/// set (each device still uses chirp.bandwidth_hz and chirp SF).
struct aggregate_params {
    css_params chirp{};
    std::size_t num_bands = 2;

    /// Complex sample rate of the aggregate capture: num_bands * BW.
    double sample_rate_hz() const {
        return static_cast<double>(num_bands) * chirp.bandwidth_hz;
    }

    /// Samples per symbol (symbol duration is unchanged: 2^SF / BW).
    std::size_t samples_per_symbol() const { return num_bands * chirp.num_bins(); }

    /// Total FFT bins = concurrent-device capacity before SKIP.
    std::size_t total_bins() const { return num_bands * chirp.num_bins(); }

    /// Aggregate FFT bin of a device in `band` using cyclic shift `shift`.
    std::size_t bin_of(std::size_t band, std::uint32_t shift) const {
        return band * chirp.num_bins() + shift;
    }
};

/// Upchirp of a device in sub-band `band` with cyclic shift `shift`
/// (fractional allowed), sampled at the aggregate rate. Out-of-band sweep
/// tops alias automatically (Fig. 5).
dsp::cvec make_aggregate_upchirp(const aggregate_params& params, std::size_t band,
                                 double shift);

/// The single downchirp reference the receiver multiplies the aggregate
/// band by.
dsp::cvec aggregate_dechirp_reference(const aggregate_params& params);

/// Dechirp + single FFT + |.|^2 over the aggregate band.
std::vector<double> aggregate_symbol_power_spectrum(const aggregate_params& params,
                                                    const dsp::cvec& symbol);

}  // namespace ns::phy
