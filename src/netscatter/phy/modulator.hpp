// CSS modulators.
//
// Two transmitter flavours share the chirp generator:
//  * lora_modulator — classic CSS (LoRa backscatter [25]): one device
//    conveys SF bits per symbol by choosing one of 2^SF cyclic shifts.
//  * distributed_modulator — NetScatter's distributed CSS coding (§3.1):
//    a device owns ONE assigned cyclic shift and ON-OFF keys it, sending
//    the chirp for '1' and silence for '0'; all devices transmit
//    concurrently and superpose over the air.
#pragma once

#include <cstdint>
#include <vector>

#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/css_params.hpp"

namespace ns::phy {

/// Classic CSS modulator: each symbol value in [0, 2^SF) selects a cyclic
/// shift of the upchirp.
class lora_modulator {
public:
    explicit lora_modulator(css_params params);

    /// Modulates one symbol value into 2^SF samples.
    cvec modulate_symbol(std::uint32_t value) const;

    /// Modulates a symbol sequence (concatenated symbols).
    cvec modulate(const std::vector<std::uint32_t>& symbols) const;

    /// Packs a bit sequence into SF-bit symbol values (MSB-first; the
    /// final symbol is zero-padded) and modulates it.
    cvec modulate_bits(const std::vector<bool>& bits) const;

    /// Converts bits to SF-bit symbol values without modulating.
    std::vector<std::uint32_t> bits_to_symbols(const std::vector<bool>& bits) const;

    /// Converts symbol values back to bits (inverse of bits_to_symbols);
    /// `bit_count` trims the zero-padding of the final symbol.
    std::vector<bool> symbols_to_bits(const std::vector<std::uint32_t>& symbols,
                                      std::size_t bit_count) const;

    const css_params& params() const { return params_; }

private:
    css_params params_;
};

/// NetScatter distributed-CSS modulator for a single device.
///
/// The device is assigned one cyclic shift at association (§3.3.2); each
/// payload bit maps to one symbol period: the assigned upchirp for '1',
/// silence for '0'. The preamble (6 upchirps + 2 downchirps, §3.3.1) also
/// uses the assigned shift.
class distributed_modulator {
public:
    /// `cyclic_shift` is the device's assigned shift in [0, 2^SF).
    distributed_modulator(css_params params, std::uint32_t cyclic_shift);

    /// Samples for one ON symbol (the assigned upchirp).
    const cvec& on_symbol() const { return on_symbol_; }

    /// Modulates a payload bit sequence: one symbol period per bit.
    cvec modulate_payload(const std::vector<bool>& bits) const;

    /// Modulates the 6-up + 2-down preamble at the assigned shift.
    cvec modulate_preamble() const;

    /// Full packet: preamble followed by payload bits (the caller appends
    /// CRC to the bits beforehand; see ns::phy::frame).
    cvec modulate_packet(const std::vector<bool>& payload_bits) const;

    /// modulate_packet into a caller-provided buffer (resized; capacity
    /// reuse makes repeated calls allocation-free — the simulator stages
    /// each round's packets in a reusable pool instead of allocating one
    /// buffer per device per round).
    void modulate_packet_into(const std::vector<bool>& payload_bits, cvec& out) const;

    std::uint32_t cyclic_shift() const { return cyclic_shift_; }
    const css_params& params() const { return params_; }

    /// Preamble length in symbols (6 upchirps + 2 downchirps).
    static constexpr std::size_t preamble_upchirps = 6;
    static constexpr std::size_t preamble_downchirps = 2;
    static constexpr std::size_t preamble_symbols =
        preamble_upchirps + preamble_downchirps;

private:
    css_params params_;
    std::uint32_t cyclic_shift_;
    cvec on_symbol_;
    cvec down_symbol_;
};

}  // namespace ns::phy
