#include "netscatter/phy/sensitivity.hpp"

#include <algorithm>
#include <map>

#include "netscatter/util/error.hpp"
#include "netscatter/util/units.hpp"

namespace ns::phy {

double snr_min_db(int spreading_factor) {
    ns::util::require(spreading_factor >= 5 && spreading_factor <= 12,
                      "snr_min_db: SF out of supported range [5,12]");
    // -2.5 dB per SF step, anchored at SF 9 -> -12.5 dB (SX1276 family).
    return -2.5 * static_cast<double>(spreading_factor) + 10.0;
}

double sensitivity_dbm(const css_params& params, double noise_figure_db) {
    return ns::util::noise_floor_dbm(params.bandwidth_hz, noise_figure_db) +
           snr_min_db(params.spreading_factor);
}

std::vector<rate_option> rate_adaptation_table() {
    std::vector<rate_option> options;
    for (double bw : {125e3, 250e3, 500e3}) {
        for (int sf = 6; sf <= 12; ++sf) {
            css_params p{.bandwidth_hz = bw, .spreading_factor = sf};
            rate_option option;
            option.params = p;
            option.required_rssi_dbm = sensitivity_dbm(p);
            option.bitrate_bps = std::min(p.lora_bitrate_bps(), max_lora_bitrate_bps);
            options.push_back(option);
        }
    }
    std::sort(options.begin(), options.end(), [](const rate_option& a, const rate_option& b) {
        if (a.bitrate_bps != b.bitrate_bps) return a.bitrate_bps > b.bitrate_bps;
        return a.required_rssi_dbm < b.required_rssi_dbm;  // prefer more robust on ties
    });
    return options;
}

concurrency_analysis analyze_concurrent_configs(double min_sensitivity_dbm,
                                                double min_bitrate_bps) {
    // Slope classes are indexed by 2*log2(BW) - SF, an integer over the
    // power-of-two bandwidth family, so exact keying is safe.
    struct class_entry {
        bool usable = false;
        double best_bitrate = 0.0;
        css_params representative{};
    };
    std::map<long, class_entry> classes;
    for (int bw_step = 0; bw_step < 7; ++bw_step) {
        const double bw = 500e3 / static_cast<double>(1 << bw_step);
        for (int sf = 6; sf <= 12; ++sf) {
            const css_params p{.bandwidth_hz = bw, .spreading_factor = sf};
            // 2*log2(bw/7812.5) is 2*(6-bw_step): integer class key.
            const long key = 2L * (6 - bw_step) - sf;
            class_entry& entry = classes[key];
            const bool meets = sensitivity_dbm(p) <= min_sensitivity_dbm &&
                               p.lora_bitrate_bps() >= min_bitrate_bps;
            if (meets && p.lora_bitrate_bps() > entry.best_bitrate) {
                entry.usable = true;
                entry.best_bitrate = p.lora_bitrate_bps();
                entry.representative = p;
            }
        }
    }
    concurrency_analysis analysis;
    analysis.distinct_slope_classes = classes.size();
    for (const auto& [key, entry] : classes) {
        if (entry.usable) {
            ++analysis.usable_classes;
            analysis.usable_representatives.push_back(entry.representative);
        }
    }
    return analysis;
}

double best_bitrate_bps(double rssi_dbm) {
    static const std::vector<rate_option> options = rate_adaptation_table();
    for (const auto& option : options) {
        if (rssi_dbm >= option.required_rssi_dbm) return option.bitrate_bps;
    }
    return 0.0;
}

}  // namespace ns::phy
