#include "netscatter/phy/ask.hpp"

#include <algorithm>
#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::phy {

dsp::cvec ask_modulate(const ask_params& params, const std::vector<bool>& bits) {
    const std::size_t spb = params.samples_per_bit();
    ns::util::require(spb >= 2, "ask_modulate: need >= 2 samples per bit");
    dsp::cvec out;
    out.reserve(bits.size() * spb);
    for (bool bit : bits) {
        const double amplitude = bit ? params.on_amplitude : params.off_amplitude;
        out.insert(out.end(), spb, dsp::cplx{amplitude, 0.0});
    }
    return out;
}

std::optional<std::vector<bool>> ask_demodulate(const ask_params& params,
                                                const dsp::cvec& samples,
                                                std::size_t num_bits) {
    const std::size_t spb = params.samples_per_bit();
    ns::util::require(spb >= 2, "ask_demodulate: need >= 2 samples per bit");
    if (samples.size() < num_bits * spb) return std::nullopt;

    // Integrate-and-dump the envelope per bit period.
    std::vector<double> levels(num_bits, 0.0);
    for (std::size_t b = 0; b < num_bits; ++b) {
        double acc = 0.0;
        for (std::size_t i = 0; i < spb; ++i) acc += std::abs(samples[b * spb + i]);
        levels[b] = acc / static_cast<double>(spb);
    }

    const auto [lo_it, hi_it] = std::minmax_element(levels.begin(), levels.end());
    const double lo = *lo_it;
    const double hi = *hi_it;
    // No keying contrast (all-ones / all-zeros bursts excepted): require
    // >= 3 dB between the extremes, otherwise slice against half the
    // high level (covers constant bursts).
    double threshold;
    if (hi > 2.0 * std::max(lo, 1e-30)) {
        threshold = (hi + lo) / 2.0;
    } else if (hi <= 0.0) {
        return std::nullopt;
    } else {
        threshold = hi / 2.0;
    }

    std::vector<bool> bits(num_bits);
    for (std::size_t b = 0; b < num_bits; ++b) bits[b] = levels[b] > threshold;
    return bits;
}

double ask_airtime_s(const ask_params& params, std::size_t num_bits) {
    return static_cast<double>(num_bits) / params.bitrate_bps;
}

}  // namespace ns::phy
