#include "netscatter/phy/modulator.hpp"

#include <algorithm>

#include "netscatter/util/error.hpp"

namespace ns::phy {

lora_modulator::lora_modulator(css_params params) : params_(params) {}

cvec lora_modulator::modulate_symbol(std::uint32_t value) const {
    ns::util::require(value < params_.num_bins(), "lora_modulator: symbol out of range");
    return make_upchirp(params_, static_cast<double>(value));
}

cvec lora_modulator::modulate(const std::vector<std::uint32_t>& symbols) const {
    cvec out;
    out.reserve(symbols.size() * params_.samples_per_symbol());
    for (std::uint32_t value : symbols) {
        const cvec symbol = modulate_symbol(value);
        out.insert(out.end(), symbol.begin(), symbol.end());
    }
    return out;
}

std::vector<std::uint32_t> lora_modulator::bits_to_symbols(const std::vector<bool>& bits) const {
    const int sf = params_.spreading_factor;
    std::vector<std::uint32_t> symbols;
    symbols.reserve((bits.size() + static_cast<std::size_t>(sf) - 1) /
                    static_cast<std::size_t>(sf));
    std::uint32_t current = 0;
    int filled = 0;
    for (bool bit : bits) {
        current = (current << 1) | (bit ? 1u : 0u);
        if (++filled == sf) {
            symbols.push_back(current);
            current = 0;
            filled = 0;
        }
    }
    if (filled > 0) symbols.push_back(current << (sf - filled));  // zero-pad final symbol
    return symbols;
}

std::vector<bool> lora_modulator::symbols_to_bits(const std::vector<std::uint32_t>& symbols,
                                                  std::size_t bit_count) const {
    const int sf = params_.spreading_factor;
    std::vector<bool> bits;
    bits.reserve(symbols.size() * static_cast<std::size_t>(sf));
    for (std::uint32_t value : symbols) {
        for (int i = sf - 1; i >= 0; --i) bits.push_back(((value >> i) & 1u) != 0);
    }
    ns::util::require(bit_count <= bits.size(), "symbols_to_bits: bit_count too large");
    bits.resize(bit_count);
    return bits;
}

cvec lora_modulator::modulate_bits(const std::vector<bool>& bits) const {
    return modulate(bits_to_symbols(bits));
}

distributed_modulator::distributed_modulator(css_params params, std::uint32_t cyclic_shift)
    : params_(params), cyclic_shift_(cyclic_shift) {
    ns::util::require(cyclic_shift < params.num_bins(),
                      "distributed_modulator: cyclic shift out of range");
    on_symbol_ = make_upchirp(params_, static_cast<double>(cyclic_shift_));
    down_symbol_ = make_downchirp(params_, static_cast<double>(cyclic_shift_));
}

cvec distributed_modulator::modulate_payload(const std::vector<bool>& bits) const {
    const std::size_t sps = params_.samples_per_symbol();
    cvec out(bits.size() * sps, cplx{0.0, 0.0});
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) {
            std::copy(on_symbol_.begin(), on_symbol_.end(),
                      out.begin() + static_cast<std::ptrdiff_t>(i * sps));
        }
    }
    return out;
}

cvec distributed_modulator::modulate_preamble() const {
    cvec out;
    out.reserve(preamble_symbols * params_.samples_per_symbol());
    for (std::size_t i = 0; i < preamble_upchirps; ++i) {
        out.insert(out.end(), on_symbol_.begin(), on_symbol_.end());
    }
    for (std::size_t i = 0; i < preamble_downchirps; ++i) {
        out.insert(out.end(), down_symbol_.begin(), down_symbol_.end());
    }
    return out;
}

cvec distributed_modulator::modulate_packet(const std::vector<bool>& payload_bits) const {
    cvec packet;
    modulate_packet_into(payload_bits, packet);
    return packet;
}

void distributed_modulator::modulate_packet_into(const std::vector<bool>& payload_bits,
                                                 cvec& out) const {
    const std::size_t sps = params_.samples_per_symbol();
    out.resize((preamble_symbols + payload_bits.size()) * sps);
    auto cursor = out.begin();
    for (std::size_t i = 0; i < preamble_upchirps; ++i) {
        cursor = std::copy(on_symbol_.begin(), on_symbol_.end(), cursor);
    }
    for (std::size_t i = 0; i < preamble_downchirps; ++i) {
        cursor = std::copy(down_symbol_.begin(), down_symbol_.end(), cursor);
    }
    for (std::size_t i = 0; i < payload_bits.size(); ++i) {
        if (payload_bits[i]) {
            cursor = std::copy(on_symbol_.begin(), on_symbol_.end(), cursor);
        } else {
            cursor = std::fill_n(cursor, sps, cplx{0.0, 0.0});
        }
    }
}

}  // namespace ns::phy
