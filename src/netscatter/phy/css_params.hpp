// Chirp-spread-spectrum parameterization (§2.1, Table 1).
//
// A CSS link is characterized by two parameters: chirp bandwidth BW
// (equal to the sampling rate) and spreading factor SF. Everything else
// derives from them:
//   N               = 2^SF chips per symbol (and FFT bins)
//   symbol duration = 2^SF / BW
//   LoRa bitrate    = SF * BW / 2^SF        (SF bits per symbol)
//   NetScatter per-device bitrate = BW / 2^SF (1 ON-OFF bit per symbol)
//   FFT bin spacing = BW / 2^SF Hz
//   time per bin    = 1 / BW  (ΔFFTbin = Δt * BW, §3.2.1)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ns::phy {

/// CSS modulation parameters shared by the modulator, demodulator,
/// channel models and protocol layers.
struct css_params {
    double bandwidth_hz = 500e3;  ///< chirp bandwidth == complex sample rate
    int spreading_factor = 9;     ///< SF; number of bits per classic CSS symbol

    /// Number of chips / FFT bins / samples per symbol: 2^SF.
    std::size_t num_bins() const { return std::size_t{1} << spreading_factor; }

    /// Samples per symbol at the critically-sampled rate (== num_bins()).
    std::size_t samples_per_symbol() const { return num_bins(); }

    /// Symbol duration in seconds: 2^SF / BW.
    double symbol_duration_s() const {
        return static_cast<double>(num_bins()) / bandwidth_hz;
    }

    /// Symbol rate in symbols/second: BW / 2^SF.
    double symbol_rate_hz() const { return bandwidth_hz / static_cast<double>(num_bins()); }

    /// Classic CSS (LoRa) bitrate: SF bits per symbol.
    double lora_bitrate_bps() const {
        return symbol_rate_hz() * static_cast<double>(spreading_factor);
    }

    /// NetScatter per-device bitrate: one ON-OFF bit per symbol (§3.1).
    double onoff_bitrate_bps() const { return symbol_rate_hz(); }

    /// FFT bin spacing of the dechirped spectrum, in Hz: BW / 2^SF.
    double bin_spacing_hz() const { return bandwidth_hz / static_cast<double>(num_bins()); }

    /// Timing offset that moves the dechirped peak by exactly one FFT bin:
    /// 1/BW seconds (ΔFFTbin = Δt·BW, §3.2.1).
    double time_per_bin_s() const { return 1.0 / bandwidth_hz; }

    /// FFT bin displacement caused by a timing offset of `dt` seconds.
    double bins_from_time_offset(double dt_s) const { return dt_s * bandwidth_hz; }

    /// FFT bin displacement caused by a carrier/baseband frequency offset
    /// of `df` Hz: ΔFFTbin = 2^SF · Δf / BW (§3.2.2).
    double bins_from_frequency_offset(double df_hz) const {
        return df_hz / bin_spacing_hz();
    }

    /// Chirp slope BW / T = BW^2 / 2^SF in Hz/s. Two (BW, SF) pairs with
    /// equal slope cannot be concurrently decoded (§2.2, [24]).
    double chirp_slope_hz_per_s() const {
        return bandwidth_hz * bandwidth_hz / static_cast<double>(num_bins());
    }

    bool operator==(const css_params&) const = default;
};

/// The deployed NetScatter configuration: BW = 500 kHz, SF = 9 (§4.2),
/// supporting 256 devices at SKIP = 2 with ~976 bps per device.
inline css_params deployed_params() {
    return css_params{.bandwidth_hz = 500e3, .spreading_factor = 9};
}

/// One row of Table 1: a modulation configuration and the maximum
/// time/frequency mismatch it tolerates (one FFT bin each way).
struct modulation_config {
    css_params params;
    double max_time_variation_s = 0.0;   ///< timing mismatch for 1-bin shift
    double max_frequency_variation_hz = 0.0;  ///< frequency mismatch for 1-bin shift
    double bitrate_bps = 0.0;            ///< per-device ON-OFF bitrate
    double sensitivity_dbm = 0.0;        ///< receiver sensitivity (model, §"sensitivity")
};

/// Builds one Table 1 row for the given parameters.
modulation_config make_modulation_config(const css_params& params);

/// The six configurations of Table 1 in paper order:
/// (500,9) (500,8) (250,8) (250,7) (125,7) (125,6).
std::vector<modulation_config> table1_configs();

}  // namespace ns::phy
