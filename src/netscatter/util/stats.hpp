// Small statistics toolkit: running moments, percentiles and empirical
// CDFs. The paper reports most results as CDF / 1-CDF plots (Figs 4, 9,
// 14, 15a); `empirical_cdf` produces exactly those series.
#pragma once

#include <cstddef>
#include <vector>

namespace ns::util {

/// Accumulates count/mean/variance/min/max in a single pass
/// (Welford's algorithm, numerically stable).
class running_stats {
public:
    /// Adds one observation.
    void add(double x);

    /// Number of observations so far.
    std::size_t count() const { return count_; }

    /// Sample mean; 0 when empty.
    double mean() const { return mean_; }

    /// Unbiased sample variance; 0 with fewer than two observations.
    double variance() const;

    /// Square root of variance().
    double stddev() const;

    /// Smallest observation; +inf when empty.
    double min() const { return min_; }

    /// Largest observation; -inf when empty.
    double max() const { return max_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;

public:
    running_stats();
};

/// Returns the q-quantile (0 <= q <= 1) of `samples` by linear
/// interpolation between order statistics. Copies and sorts internally.
/// Requires a non-empty sample set.
double percentile(std::vector<double> samples, double q);

/// One (x, F(x)) point of an empirical CDF.
struct cdf_point {
    double x;           ///< sample value
    double probability; ///< fraction of samples <= x
};

/// Empirical CDF of `samples` evaluated at every distinct sample value
/// (sorted ascending). Requires a non-empty sample set.
std::vector<cdf_point> empirical_cdf(std::vector<double> samples);

/// Fraction of samples that are <= x (empirical CDF evaluated at x).
double cdf_at(const std::vector<double>& samples, double x);

/// Fraction of samples that are > x (1 - CDF, i.e. the complementary CDF
/// used by the paper's Figs 14b and 15a).
double ccdf_at(const std::vector<double>& samples, double x);

/// Sample mean of a vector; 0 when empty.
double mean_of(const std::vector<double>& samples);

/// Unbiased sample variance of a vector; 0 with fewer than two samples.
double variance_of(const std::vector<double>& samples);

}  // namespace ns::util
