#include "netscatter/util/rng.hpp"

#include <cmath>

#include "netscatter/util/error.hpp"

namespace ns::util {

std::uint64_t splitmix64_next(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

// --- Ziggurat tables for the standard normal (Marsaglia & Tsang) -----
// 128 equal-area layers over f(x) = exp(-x^2/2). Layer i >= 1 is the
// rectangle [0, x[i]] x [y[i], y[i+1]]; layer 0 is the base rectangle
// [0, r] x [0, f(r)] plus the tail x > r, handled through the pseudo
// width x[0] = v/f(r). The recurrence is the published one; r and v are
// the canonical 128-layer constants.
constexpr int zig_layers = 128;
constexpr double zig_r = 3.442619855899;       // rightmost layer edge
constexpr double zig_v = 9.91256303526217e-3;  // per-layer area

struct zig_tables {
    double x[zig_layers + 1];  // layer widths; x[zig_layers] = 0
    double y[zig_layers + 1];  // y[i] = f(x[i]); y[zig_layers] = 1
};

zig_tables make_zig_tables() {
    zig_tables t;
    const double f_r = std::exp(-0.5 * zig_r * zig_r);
    t.x[0] = zig_v / f_r;
    t.y[0] = 0.0;
    t.x[1] = zig_r;
    t.y[1] = f_r;
    for (int i = 1; i < zig_layers - 1; ++i) {
        t.y[i + 1] = t.y[i] + zig_v / t.x[i];
        t.x[i + 1] = std::sqrt(-2.0 * std::log(t.y[i + 1]));
    }
    t.x[zig_layers] = 0.0;
    t.y[zig_layers] = 1.0;
    return t;
}

const zig_tables g_zig = make_zig_tables();

}  // namespace

rng::rng(std::uint64_t seed) {
    // Expand the seed; xoshiro requires a not-all-zero state, which
    // splitmix64 guarantees with overwhelming probability. Guard anyway.
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64_next(s);
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 1;
    }
}

rng::result_type rng::operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() {
    // 53 high-quality bits -> double in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "rng::uniform_int: lo must be <= hi");
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t value = (*this)();
    while (value >= limit) value = (*this)();
    return lo + static_cast<std::int64_t>(value % range);
}

double rng::gaussian() {
    // Ziggurat: one raw draw supplies the layer (low 7 bits), the sign
    // (bit 7) and a 53-bit magnitude uniform (bits 11..63) — disjoint
    // bit fields, so index and magnitude are independent.
    for (;;) {
        const std::uint64_t bits = (*this)();
        const int i = static_cast<int>(bits & 127);
        const double sign = (bits & 128) ? -1.0 : 1.0;
        const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
        const double x = u * g_zig.x[i];
        // Strictly inside the next-narrower layer: under the curve for
        // every y of this layer (and inside the base rectangle for i=0).
        if (x < g_zig.x[i + 1]) return sign * x;
        if (i == 0) {
            // Tail beyond r (Marsaglia's exponential wrap); u1 in (0,1]
            // so the logs stay finite.
            for (;;) {
                const double xt = -std::log(1.0 - uniform()) / zig_r;
                const double yt = -std::log(1.0 - uniform());
                if (yt + yt >= xt * xt) return sign * (zig_r + xt);
            }
        }
        // Wedge between x[i+1] and x[i]: exact accept/reject against f.
        const double y = g_zig.y[i] + uniform() * (g_zig.y[i + 1] - g_zig.y[i]);
        if (y < std::exp(-0.5 * x * x)) return sign * x;
    }
}

double rng::gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
}

double rng::exponential(double mean) {
    require(mean > 0.0, "rng::exponential: mean must be positive");
    return -mean * std::log(1.0 - uniform());
}

std::uint64_t rng::poisson(double mean) {
    require(mean >= 0.0, "rng::poisson: mean must be >= 0");
    // Knuth's product method: O(mean) uniforms per sample, and
    // exp(-mean) underflows to 0 near mean ~745 (the loop would then cap
    // every sample at the product's underflow point — silently wrong).
    // The per-round arrival/churn rates this serves are << 100.
    require(mean <= 500.0, "rng::poisson: mean too large for the product method");
    if (mean == 0.0) return 0;
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
        ++count;
        product *= uniform();
    }
    return count;
}

bool rng::bernoulli(double p) {
    return uniform() < p;
}

std::vector<bool> rng::bits(std::size_t n) {
    std::vector<bool> out;
    fill_bits(n, out);
    return out;
}

void rng::fill_bits(std::size_t n, std::vector<bool>& out) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = bernoulli(0.5);
}

rng rng::fork() {
    return rng((*this)());
}

}  // namespace ns::util
