#include "netscatter/util/rng.hpp"

#include <cmath>
#include <numbers>

#include "netscatter/util/error.hpp"

namespace ns::util {

std::uint64_t splitmix64_next(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
    // Expand the seed; xoshiro requires a not-all-zero state, which
    // splitmix64 guarantees with overwhelming probability. Guard anyway.
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64_next(s);
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 1;
    }
}

rng::result_type rng::operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() {
    // 53 high-quality bits -> double in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "rng::uniform_int: lo must be <= hi");
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t value = (*this)();
    while (value >= limit) value = (*this)();
    return lo + static_cast<std::int64_t>(value % range);
}

double rng::gaussian() {
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    // Box-Muller; u1 in (0,1] so log is finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

double rng::gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
}

double rng::exponential(double mean) {
    require(mean > 0.0, "rng::exponential: mean must be positive");
    return -mean * std::log(1.0 - uniform());
}

std::uint64_t rng::poisson(double mean) {
    require(mean >= 0.0, "rng::poisson: mean must be >= 0");
    // Knuth's product method: O(mean) uniforms per sample, and
    // exp(-mean) underflows to 0 near mean ~745 (the loop would then cap
    // every sample at the product's underflow point — silently wrong).
    // The per-round arrival/churn rates this serves are << 100.
    require(mean <= 500.0, "rng::poisson: mean too large for the product method");
    if (mean == 0.0) return 0;
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
        ++count;
        product *= uniform();
    }
    return count;
}

bool rng::bernoulli(double p) {
    return uniform() < p;
}

std::vector<bool> rng::bits(std::size_t n) {
    std::vector<bool> out;
    fill_bits(n, out);
    return out;
}

void rng::fill_bits(std::size_t n, std::vector<bool>& out) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = bernoulli(0.5);
}

rng rng::fork() {
    return rng((*this)());
}

}  // namespace ns::util
