// Bit/byte packing helpers shared by the PHY framer and the MAC message
// serializers (the AP query message of Fig. 11 is specified in bits).
#pragma once

#include <cstdint>
#include <vector>

namespace ns::util {

/// Converts bytes to bits, MSB-first within each byte.
std::vector<bool> bytes_to_bits(const std::vector<std::uint8_t>& bytes);

/// Converts bits to bytes, MSB-first; the bit count must be a multiple of 8.
std::vector<std::uint8_t> bits_to_bytes(const std::vector<bool>& bits);

/// Appends the low `width` bits of `value` to `bits`, MSB-first.
/// Requires 0 < width <= 64.
void append_uint(std::vector<bool>& bits, std::uint64_t value, int width);

/// Reads `width` bits starting at `offset` as an unsigned integer,
/// MSB-first, and advances `offset` past them. Requires the bits to exist.
std::uint64_t read_uint(const std::vector<bool>& bits, std::size_t& offset, int width);

/// Number of differing positions between two equal-length bit vectors.
std::size_t hamming_distance(const std::vector<bool>& a, const std::vector<bool>& b);

}  // namespace ns::util
