// Bit/byte packing helpers shared by the PHY framer and the MAC message
// serializers (the AP query message of Fig. 11 is specified in bits).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ns::util {

/// Converts bytes to bits, MSB-first within each byte.
std::vector<bool> bytes_to_bits(const std::vector<std::uint8_t>& bytes);

/// Converts bits to bytes, MSB-first; the bit count must be a multiple of 8.
std::vector<std::uint8_t> bits_to_bytes(const std::vector<bool>& bits);

/// Appends the low `width` bits of `value` to `bits`, MSB-first.
/// Requires 0 < width <= 64.
void append_uint(std::vector<bool>& bits, std::uint64_t value, int width);

/// Reads `width` bits starting at `offset` as an unsigned integer,
/// MSB-first, and advances `offset` past them. Requires the bits to exist.
std::uint64_t read_uint(const std::vector<bool>& bits, std::size_t& offset, int width);

/// Number of differing positions between two equal-length bit vectors.
std::size_t hamming_distance(const std::vector<bool>& a, const std::vector<bool>& b);

/// hamming_distance against a flat 0/1 byte row (the simulator's
/// allocation-free sent-bit storage). Requires equal lengths.
std::size_t hamming_distance(const std::vector<bool>& a, std::span<const std::uint8_t> b);

/// Whether a bit vector equals a flat 0/1 byte row (lengths included).
bool bits_equal(const std::vector<bool>& a, std::span<const std::uint8_t> b);

/// Number of set bits in a flat 0/1 byte row.
std::size_t count_ones(std::span<const std::uint8_t> bits);

}  // namespace ns::util
