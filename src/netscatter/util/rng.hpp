// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// simulations, tests and benchmarks are exactly reproducible. We implement
// xoshiro256** (public domain, Blackman & Vigna) seeded via splitmix64
// rather than relying on std::mt19937, whose distributions are not
// guaranteed to be bit-identical across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ns::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full
/// xoshiro256** state. Returns the next value and advances `state`.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Deterministic, portable random number generator (xoshiro256**).
///
/// Satisfies the subset of the UniformRandomBitGenerator requirements we
/// need, plus convenience samplers for the distributions used throughout
/// the simulator. All samplers are implemented on top of the raw 64-bit
/// output with fixed algorithms, so results are identical on every
/// platform and standard library.
class rng {
public:
    using result_type = std::uint64_t;

    /// Constructs the generator from a 64-bit seed. Two generators built
    /// from the same seed produce identical streams forever.
    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /// Next raw 64-bit value.
    result_type operator()();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal sample (ziggurat, 128 layers). One raw 64-bit
    /// draw and one multiply on the ~98% fast path; transcendentals only
    /// in the wedge/tail rejection branches.
    double gaussian();

    /// Normal sample with the given mean and standard deviation.
    double gaussian(double mean, double stddev);

    /// Exponential sample with the given mean. Requires mean > 0.
    double exponential(double mean);

    /// Poisson sample with the given mean (Knuth's product method; meant
    /// for the small rates of the scenario traffic/churn processes).
    /// Requires mean >= 0.
    std::uint64_t poisson(double mean);

    /// Bernoulli sample: true with probability p.
    bool bernoulli(double p);

    /// Random bit vector of length n (each bit i.i.d. fair).
    std::vector<bool> bits(std::size_t n);

    /// bits() into a caller-provided vector (resized; capacity reuse
    /// makes repeated calls allocation-free). Draws the identical stream
    /// as bits(), so the two are interchangeable mid-sequence.
    void fill_bits(std::size_t n, std::vector<bool>& out);

    /// Forks an independent child generator. The child stream is decorrelated
    /// from the parent by hashing the parent's next output through splitmix64.
    rng fork();

private:
    std::array<std::uint64_t, 4> state_{};
};

}  // namespace ns::util
