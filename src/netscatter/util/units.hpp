// Unit conversions used throughout the library: decibel <-> linear power
// ratios, dBm <-> watts, and a few physical constants.
#pragma once

#include <cmath>

namespace ns::util {

/// Speed of light in metres per second.
inline constexpr double speed_of_light_mps = 299'792'458.0;

/// Thermal noise power spectral density at 290 K, in dBm/Hz.
inline constexpr double thermal_noise_dbm_per_hz = -174.0;

/// Converts a power ratio in dB to a linear ratio.
inline double db_to_linear(double db) {
    return std::pow(10.0, db / 10.0);
}

/// Converts a linear power ratio to dB. Requires linear > 0.
inline double linear_to_db(double linear) {
    return 10.0 * std::log10(linear);
}

/// Converts an amplitude ratio in dB to a linear amplitude ratio
/// (20 dB per decade).
inline double db_to_amplitude(double db) {
    return std::pow(10.0, db / 20.0);
}

/// Converts a linear amplitude ratio to dB.
inline double amplitude_to_db(double amplitude) {
    return 20.0 * std::log10(amplitude);
}

/// Converts power in dBm to watts.
inline double dbm_to_watt(double dbm) {
    return std::pow(10.0, (dbm - 30.0) / 10.0);
}

/// Converts power in watts to dBm. Requires watt > 0.
inline double watt_to_dbm(double watt) {
    return 10.0 * std::log10(watt) + 30.0;
}

/// Thermal noise floor in dBm for the given bandwidth (Hz) and receiver
/// noise figure (dB): -174 + 10*log10(BW) + NF.
inline double noise_floor_dbm(double bandwidth_hz, double noise_figure_db = 6.0) {
    return thermal_noise_dbm_per_hz + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

}  // namespace ns::util
