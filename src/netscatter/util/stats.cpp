#include "netscatter/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "netscatter/util/error.hpp"

namespace ns::util {

running_stats::running_stats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void running_stats::add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double running_stats::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const {
    return std::sqrt(variance());
}

double percentile(std::vector<double> samples, double q) {
    require(!samples.empty(), "percentile: empty sample set");
    require(q >= 0.0 && q <= 1.0, "percentile: q out of [0,1]");
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1) return samples.front();
    const double position = q * static_cast<double>(samples.size() - 1);
    const auto lower = static_cast<std::size_t>(position);
    const double fraction = position - static_cast<double>(lower);
    if (lower + 1 >= samples.size()) return samples.back();
    return samples[lower] * (1.0 - fraction) + samples[lower + 1] * fraction;
}

std::vector<cdf_point> empirical_cdf(std::vector<double> samples) {
    require(!samples.empty(), "empirical_cdf: empty sample set");
    std::sort(samples.begin(), samples.end());
    std::vector<cdf_point> points;
    const double n = static_cast<double>(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        // Emit one point per distinct value, at its last occurrence, so the
        // CDF is right-continuous and ends at probability 1.
        if (i + 1 == samples.size() || samples[i + 1] != samples[i]) {
            points.push_back({samples[i], static_cast<double>(i + 1) / n});
        }
    }
    return points;
}

double cdf_at(const std::vector<double>& samples, double x) {
    if (samples.empty()) return 0.0;
    std::size_t count = 0;
    for (double s : samples) {
        if (s <= x) ++count;
    }
    return static_cast<double>(count) / static_cast<double>(samples.size());
}

double ccdf_at(const std::vector<double>& samples, double x) {
    return 1.0 - cdf_at(samples, x);
}

double mean_of(const std::vector<double>& samples) {
    running_stats stats;
    for (double s : samples) stats.add(s);
    return stats.mean();
}

double variance_of(const std::vector<double>& samples) {
    running_stats stats;
    for (double s : samples) stats.add(s);
    return stats.variance();
}

}  // namespace ns::util
