// Cyclic redundancy checks for link-layer packets.
//
// NetScatter packets carry "payload and the checksum" (§3.3.1); the
// evaluation uses a 40-bit payload+CRC budget (§4.4). We provide CRC-8
// (poly 0x07) for the deployed 8-bit checksum and CRC-16-CCITT for larger
// payloads, both bit-oriented so they work on the bit vectors our PHY
// produces.
#pragma once

#include <cstdint>
#include <vector>

namespace ns::util {

/// CRC-8 (polynomial x^8+x^2+x+1 = 0x07, init 0x00) over a bit sequence,
/// MSB-first. Returns the 8-bit remainder.
std::uint8_t crc8(const std::vector<bool>& bits);

/// CRC-16-CCITT (polynomial 0x1021, init 0xFFFF) over a bit sequence,
/// MSB-first. Returns the 16-bit remainder.
std::uint16_t crc16_ccitt(const std::vector<bool>& bits);

/// Appends the CRC-8 of `payload_bits` to it, MSB-first, and returns the
/// protected sequence (payload followed by 8 CRC bits).
std::vector<bool> append_crc8(std::vector<bool> payload_bits);

/// Checks a sequence produced by append_crc8: returns true when the last
/// 8 bits equal the CRC-8 of the preceding bits. Sequences shorter than
/// 8 bits fail the check.
bool check_crc8(const std::vector<bool>& protected_bits);

/// CRC-8 over the first `length` bits only (no copy — the allocation-free
/// form the receiver's steady-state CRC validation uses). Requires
/// length <= bits.size().
std::uint8_t crc8_prefix(const std::vector<bool>& bits, std::size_t length);

/// Splits a CRC-8-protected sequence back into its payload (drops the
/// trailing 8 CRC bits). Requires the sequence to be at least 8 bits.
std::vector<bool> strip_crc8(const std::vector<bool>& protected_bits);

}  // namespace ns::util
