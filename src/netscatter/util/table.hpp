// Plain-text table and series printers used by the benchmark harness to
// emit the rows/series of each paper table and figure in a uniform,
// grep-friendly format (also CSV for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ns::util {

/// Column-aligned text table with a title, header row and data rows.
class text_table {
public:
    /// Creates a table titled `title` with the given column headers.
    text_table(std::string title, std::vector<std::string> headers);

    /// Appends one data row; must have exactly one cell per header.
    void add_row(std::vector<std::string> cells);

    /// Convenience: formats each double with `precision` digits. (Named
    /// differently from add_row to avoid overload ambiguity with braced
    /// initializer lists.)
    void add_numeric_row(const std::vector<double>& cells, int precision = 3);

    /// Renders the table with aligned columns.
    void print(std::ostream& os) const;

    /// Renders the table as CSV (header row then data rows).
    void print_csv(std::ostream& os) const;

    /// Number of data rows added so far.
    std::size_t row_count() const { return rows_.size(); }

private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of significant decimal digits.
std::string format_double(double value, int precision = 3);

}  // namespace ns::util
