#include "netscatter/util/crc.hpp"

#include "netscatter/util/error.hpp"

namespace ns::util {

std::uint8_t crc8(const std::vector<bool>& bits) {
    return crc8_prefix(bits, bits.size());
}

std::uint8_t crc8_prefix(const std::vector<bool>& bits, std::size_t length) {
    ns::util::require(length <= bits.size(), "crc8_prefix: length exceeds bit count");
    std::uint8_t crc = 0x00;
    for (std::size_t i = 0; i < length; ++i) {
        const bool top = (crc & 0x80) != 0;
        crc = static_cast<std::uint8_t>(crc << 1);
        if (top != bits[i]) crc ^= 0x07;
    }
    return crc;
}

std::uint16_t crc16_ccitt(const std::vector<bool>& bits) {
    std::uint16_t crc = 0xFFFF;
    for (bool bit : bits) {
        const bool top = (crc & 0x8000) != 0;
        crc = static_cast<std::uint16_t>(crc << 1);
        if (top != bit) crc ^= 0x1021;
    }
    return crc;
}

std::vector<bool> append_crc8(std::vector<bool> payload_bits) {
    const std::uint8_t crc = crc8(payload_bits);
    for (int i = 7; i >= 0; --i) payload_bits.push_back(((crc >> i) & 1) != 0);
    return payload_bits;
}

bool check_crc8(const std::vector<bool>& protected_bits) {
    if (protected_bits.size() < 8) return false;
    std::vector<bool> payload(protected_bits.begin(), protected_bits.end() - 8);
    const std::uint8_t expected = crc8(payload);
    std::uint8_t received = 0;
    for (std::size_t i = protected_bits.size() - 8; i < protected_bits.size(); ++i) {
        received = static_cast<std::uint8_t>((received << 1) | (protected_bits[i] ? 1 : 0));
    }
    return expected == received;
}

std::vector<bool> strip_crc8(const std::vector<bool>& protected_bits) {
    require(protected_bits.size() >= 8, "strip_crc8: sequence shorter than CRC");
    return std::vector<bool>(protected_bits.begin(), protected_bits.end() - 8);
}

}  // namespace ns::util
