// Error types for the NetScatter library.
//
// Per C++ Core Guidelines E.2 we throw exceptions for contract violations
// (programming errors, impossible configurations), and use status/optional
// return values for *expected* runtime outcomes such as CRC failure or a
// missed packet detection.
#pragma once

#include <stdexcept>
#include <string>

namespace ns::util {

/// Base class for all exceptions thrown by the NetScatter library.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented contract
/// (e.g. a non-power-of-two FFT size, a cyclic shift outside [0, 2^SF)).
class invalid_argument : public error {
public:
    explicit invalid_argument(const std::string& what) : error(what) {}
};

/// Thrown when an object is used in a state that does not permit the
/// requested operation (e.g. demodulating before association).
class invalid_state : public error {
public:
    explicit invalid_state(const std::string& what) : error(what) {}
};

/// Throws ns::util::invalid_argument with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
    if (!condition) throw invalid_argument(message);
}

/// Literal-message overload: contract checks sit on per-bin hot paths
/// (peak searches run two per device per symbol), and the std::string
/// overload would heap-allocate the message on EVERY call, success
/// included. This one materializes the string only on failure.
inline void require(bool condition, const char* message) {
    if (!condition) throw invalid_argument(message);
}

}  // namespace ns::util
