#include "netscatter/util/bits.hpp"

#include "netscatter/util/error.hpp"

namespace ns::util {

std::vector<bool> bytes_to_bits(const std::vector<std::uint8_t>& bytes) {
    std::vector<bool> bits;
    bits.reserve(bytes.size() * 8);
    for (std::uint8_t byte : bytes) {
        for (int i = 7; i >= 0; --i) bits.push_back(((byte >> i) & 1) != 0);
    }
    return bits;
}

std::vector<std::uint8_t> bits_to_bytes(const std::vector<bool>& bits) {
    require(bits.size() % 8 == 0, "bits_to_bytes: bit count not a multiple of 8");
    std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) bytes[i / 8] = static_cast<std::uint8_t>(bytes[i / 8] | (1u << (7 - i % 8)));
    }
    return bytes;
}

void append_uint(std::vector<bool>& bits, std::uint64_t value, int width) {
    require(width > 0 && width <= 64, "append_uint: width out of range");
    for (int i = width - 1; i >= 0; --i) bits.push_back(((value >> i) & 1) != 0);
}

std::uint64_t read_uint(const std::vector<bool>& bits, std::size_t& offset, int width) {
    require(width > 0 && width <= 64, "read_uint: width out of range");
    require(offset + static_cast<std::size_t>(width) <= bits.size(),
            "read_uint: not enough bits");
    std::uint64_t value = 0;
    for (int i = 0; i < width; ++i) {
        value = (value << 1) | (bits[offset + static_cast<std::size_t>(i)] ? 1 : 0);
    }
    offset += static_cast<std::size_t>(width);
    return value;
}

std::size_t hamming_distance(const std::vector<bool>& a, const std::vector<bool>& b) {
    require(a.size() == b.size(), "hamming_distance: length mismatch");
    std::size_t count = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) ++count;
    }
    return count;
}

std::size_t hamming_distance(const std::vector<bool>& a, std::span<const std::uint8_t> b) {
    require(a.size() == b.size(), "hamming_distance: length mismatch");
    std::size_t count = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != (b[i] != 0)) ++count;
    }
    return count;
}

bool bits_equal(const std::vector<bool>& a, std::span<const std::uint8_t> b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != (b[i] != 0)) return false;
    }
    return true;
}

std::size_t count_ones(std::span<const std::uint8_t> bits) {
    std::size_t count = 0;
    for (std::uint8_t bit : bits) count += bit != 0 ? 1 : 0;
    return count;
}

}  // namespace ns::util
