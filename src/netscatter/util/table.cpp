#include "netscatter/util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "netscatter/util/error.hpp"

namespace ns::util {

std::string format_double(double value, int precision) {
    std::ostringstream out;
    out.precision(precision);
    out << std::fixed << value;
    std::string s = out.str();
    // Trim trailing zeros (but keep at least one digit after the point).
    if (s.find('.') != std::string::npos) {
        while (s.size() > 1 && s.back() == '0') s.pop_back();
        if (s.back() == '.') s.pop_back();
    }
    return s;
}

text_table::text_table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
    require(!headers_.empty(), "text_table: need at least one column");
}

void text_table::add_row(std::vector<std::string> cells) {
    require(cells.size() == headers_.size(), "text_table: cell count mismatch");
    rows_.push_back(std::move(cells));
}

void text_table::add_numeric_row(const std::vector<double>& cells, int precision) {
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double c : cells) formatted.push_back(format_double(c, precision));
    add_row(std::move(formatted));
}

void text_table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    os << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

void text_table::print_csv(std::ostream& os) const {
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) os << ',';
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
}

}  // namespace ns::util
