#!/usr/bin/env python3
"""Bench regression guard.

Compares a fresh bench JSON (any report with a "points" array) against
the committed baseline and fails when any matched metric regresses by
more than the tolerance.

Points are matched on a key field (default: num_devices); compared on a
metric field (default: phy_rate_kbps). Regressions are one-sided and
direction-aware:

  --direction higher (default): the metric is a good thing (PHY rate,
      link-layer rate); a drop below baseline*(1 - tolerance) fails.
      A faster/better run never fails, because the upside is bounded by
      the ideal curve while a drop means a decode path broke.
  --direction lower: the metric is a cost (latency); a rise above
      baseline*(1 + tolerance) fails and improvements pass.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json \
      [--key num_devices] [--metric phy_rate_kbps] [--tolerance 0.15] \
      [--direction higher|lower]
"""

import argparse
import json
import sys


def load_points(path: str) -> list:
    with open(path) as fh:
        doc = json.load(fh)
    points = doc.get("points", [])
    if not points:
        sys.exit(f"error: {path} has no points")
    return points


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--key", default="num_devices")
    parser.add_argument("--metric", default="phy_rate_kbps")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drift from baseline")
    parser.add_argument("--direction", choices=("higher", "lower"),
                        default="higher",
                        help="whether higher or lower metric values are better")
    args = parser.parse_args()

    current = {p[args.key]: p for p in load_points(args.current) if args.key in p}
    baseline = {p[args.key]: p for p in load_points(args.baseline) if args.key in p}

    failures = []
    compared = 0
    for key, base_point in sorted(baseline.items()):
        if key not in current:
            failures.append(f"{args.key}={key}: point missing from current run")
            continue
        base = base_point.get(args.metric)
        now = current[key].get(args.metric)
        if base is None or now is None:
            failures.append(f"{args.key}={key}: metric {args.metric} missing")
            continue
        compared += 1
        status = "ok"
        # One-sided allowed band: [lo, hi] with the unconstrained side
        # open (improvements never fail).
        if args.direction == "higher":
            lo, hi = base * (1.0 - args.tolerance), float("inf")
        else:
            lo, hi = float("-inf"), base * (1.0 + args.tolerance)
        if not lo <= now <= hi:
            status = "REGRESSION"
            failures.append(
                f"{args.key}={key}: {args.metric} observed {now:.6g} vs "
                f"baseline {base:.6g}; allowed band [{lo:.6g}, {hi:.6g}] "
                f"(direction={args.direction}, tolerance={args.tolerance:.0%})")
        print(f"  {args.key}={key}: {args.metric} {now:.6g} vs baseline "
              f"{base:.6g}, allowed [{lo:.6g}, {hi:.6g}]  [{status}]")

    if compared == 0:
        print("error: no comparable points", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} points within {args.tolerance:.0%} of baseline "
          f"({args.direction} is better)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
