#!/usr/bin/env python3
"""Bench regression guard.

Compares a fresh bench JSON (any report with a "points" array) against
the committed baseline and fails when any matched metric regresses by
more than the tolerance.

Points are matched on a key field (default: num_devices); compared on a
metric field (default: phy_rate_kbps). Regressions are one-sided and
direction-aware:

  --direction higher (default): the metric is a good thing (PHY rate,
      link-layer rate); a drop below baseline*(1 - tolerance) fails.
      A faster/better run never fails, because the upside is bounded by
      the ideal curve while a drop means a decode path broke.
  --direction lower: the metric is a cost (latency); a rise above
      baseline*(1 + tolerance) fails and improvements pass.

Every gated point is printed as one row of a markdown summary table
(key, observed, baseline, allowed band, status) so the CI log reads as
a report, not a scroll of prose.

Exit codes distinguish the failure modes:
  0  every baseline point matched and sits inside its band
  1  at least one point is OUT OF BAND (a real perf/metric regression)
  2  data is MISSING — a baseline point or metric absent from the
     current run, an unreadable/point-free input file, or nothing
     comparable at all. Missing data wins over out-of-band when both
     occur: a sweep that silently dropped points must never read as a
     mere regression.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json \
      [--key num_devices] [--metric phy_rate_kbps] [--tolerance 0.15] \
      [--direction higher|lower]
"""

import argparse
import json
import sys

EXIT_OK = 0
EXIT_OUT_OF_BAND = 1
EXIT_MISSING = 2


def load_points(path: str) -> list:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(EXIT_MISSING)
    points = doc.get("points", [])
    if not points:
        print(f"error: {path} has no points", file=sys.stderr)
        sys.exit(EXIT_MISSING)
    return points


def fmt(value) -> str:
    if isinstance(value, (int, float)):
        return f"{value:.6g}"
    return str(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--key", default="num_devices")
    parser.add_argument("--metric", default="phy_rate_kbps")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drift from baseline")
    parser.add_argument("--direction", choices=("higher", "lower"),
                        default="higher",
                        help="whether higher or lower metric values are better")
    args = parser.parse_args()

    current = {p[args.key]: p for p in load_points(args.current) if args.key in p}
    baseline = {p[args.key]: p for p in load_points(args.baseline) if args.key in p}

    rows = []
    out_of_band = []
    missing = []
    compared = 0
    for key, base_point in sorted(baseline.items()):
        if key not in current:
            missing.append(f"{args.key}={key}: point missing from current run")
            rows.append((key, "-", fmt(base_point.get(args.metric)), "-",
                         "MISSING"))
            continue
        base = base_point.get(args.metric)
        now = current[key].get(args.metric)
        if base is None or now is None:
            missing.append(f"{args.key}={key}: metric {args.metric} missing")
            rows.append((key, fmt(now) if now is not None else "-",
                         fmt(base) if base is not None else "-", "-",
                         "MISSING"))
            continue
        compared += 1
        # One-sided allowed band: [lo, hi] with the unconstrained side
        # open (improvements never fail).
        if args.direction == "higher":
            lo, hi = base * (1.0 - args.tolerance), float("inf")
        else:
            lo, hi = float("-inf"), base * (1.0 + args.tolerance)
        status = "ok"
        if not lo <= now <= hi:
            status = "OUT OF BAND"
            out_of_band.append(
                f"{args.key}={key}: {args.metric} observed {now:.6g} vs "
                f"baseline {base:.6g}; allowed band [{lo:.6g}, {hi:.6g}] "
                f"(direction={args.direction}, tolerance={args.tolerance:.0%})")
        rows.append((key, fmt(now), fmt(base), f"[{lo:.6g}, {hi:.6g}]",
                     status))

    # Markdown summary of every gated point.
    print(f"| {args.key} | observed {args.metric} | baseline | "
          f"allowed band | status |")
    print("| --- | --- | --- | --- | --- |")
    for key, now, base, band, status in rows:
        print(f"| {fmt(key)} | {now} | {base} | {band} | {status} |")

    if compared == 0 and not missing:
        print("error: no comparable points", file=sys.stderr)
        return EXIT_MISSING
    for label, failures in (("missing data point(s)", missing),
                            ("out-of-band point(s)", out_of_band)):
        if failures:
            print(f"\n{len(failures)} {label}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
    if missing:
        return EXIT_MISSING
    if out_of_band:
        return EXIT_OUT_OF_BAND
    print(f"\nall {compared} points within {args.tolerance:.0%} of baseline "
          f"({args.direction} is better)")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
