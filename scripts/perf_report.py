#!/usr/bin/env python3
"""Merge METRICS_*/BENCH_*.json artifacts into one perf report.

Reads the JSON files the benches and `netscatter_sim --metrics` emit
(the bench_report flat schema: top-level scalars, a "points" array,
named section arrays) — plus any .csv input (e.g. netscatter_sweep's
aggregate SWEEP_*.csv, ingested as a generic point series) — and
writes:

  * a markdown report (--output, default PERF_REPORT.md): per-file
    scalar tables, the hardware-counter phase attribution ("perf"
    sections), the roofline attribution ("roofline" sections and the
    bench_roofline sweep), and every other point series as a generic
    table;
  * a tidy long-format CSV (--csv): one row per (file, section, point,
    field) — trivially joinable across PRs;
  * an append-only history file (--history): one row per top-level
    numeric scalar, labelled with --label (CI passes the commit SHA),
    giving every future SIMD PR a one-command before/after trajectory.

No dependencies beyond the standard library; exits non-zero only on
unreadable input.

Usage:
  perf_report.py [files...] [--output PERF_REPORT.md]
                 [--csv PERF_REPORT.csv] [--history bench_history.csv]
                 [--label REF]

With no files, globs METRICS_*.json and BENCH_*.json in the working
directory.
"""

import argparse
import csv
import glob
import json
import sys


def load_csv_report(path):
    """A .csv input (e.g. netscatter_sweep's SWEEP_*.csv aggregate)
    becomes a synthetic report: one generic "points" series, numeric
    cells parsed as numbers."""
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    points = []
    for row in rows:
        point = {}
        for key, value in row.items():
            if key is None or value is None:
                continue
            try:
                point[key] = float(value)
            except ValueError:
                point[key] = value
        points.append(point)
    return {"bench": path, "points": points}


def load_reports(paths):
    reports = []
    for path in sorted(paths):
        try:
            if path.endswith(".csv"):
                data = load_csv_report(path)
            else:
                with open(path) as handle:
                    data = json.load(handle)
        except (OSError, json.JSONDecodeError, csv.Error) as error:
            print(f"perf_report: cannot read {path}: {error}", file=sys.stderr)
            return None
        if not isinstance(data, dict):
            print(f"perf_report: {path}: not a JSON object", file=sys.stderr)
            return None
        reports.append((path, data))
    return reports


def split_report(data):
    """Returns (scalars, sections) where sections maps name -> point list."""
    scalars = {}
    sections = {}
    for key, value in data.items():
        if isinstance(value, list):
            sections[key] = [p for p in value if isinstance(p, dict)]
        else:
            scalars[key] = value
    return scalars, sections


def fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    if value is None:
        return "-"
    return str(value)


def markdown_table(rows, columns):
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join(" --- " for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c)) for c in columns) + " |")
    return lines


def point_columns(points):
    """Union of keys in first-appearance order."""
    columns = []
    for point in points:
        for key in point:
            if key not in columns:
                columns.append(key)
    return columns


def render_markdown(reports, label):
    lines = ["# Performance report", ""]
    if label:
        lines += [f"Label: `{label}`", ""]
    for path, data in reports:
        scalars, sections = split_report(data)
        bench = scalars.get("bench", path)
        lines += [f"## {bench}", "", f"Source: `{path}`", ""]

        numeric = {k: v for k, v in scalars.items()
                   if isinstance(v, (int, float)) and k != "bench"}
        if numeric:
            lines += markdown_table(
                [{"scalar": k, "value": v} for k, v in numeric.items()],
                ["scalar", "value"])
            lines.append("")

        # Named sections first, in a stable didactic order; everything
        # else (including "points") follows generically.
        preferred = ["perf", "roofline"]
        ordered = [s for s in preferred if s in sections]
        ordered += [s for s in sections if s not in preferred]
        for section in ordered:
            points = sections[section]
            if not points:
                continue
            title = {"perf": "Hardware counters by phase",
                     "roofline": "Roofline attribution",
                     "points": "Points"}.get(section, section)
            lines += [f"### {title}", ""]
            lines += markdown_table(points, point_columns(points))
            lines.append("")
    return "\n".join(lines) + "\n"


def write_csv(reports, path):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "bench", "section", "point", "field",
                         "value"])
        for source, data in reports:
            scalars, sections = split_report(data)
            bench = scalars.get("bench", source)
            for key, value in scalars.items():
                if key == "bench":
                    continue
                writer.writerow([source, bench, "", "", key, value])
            for section, points in sections.items():
                for index, point in enumerate(points):
                    for field, value in point.items():
                        writer.writerow(
                            [source, bench, section, index, field, value])


def append_history(reports, path, label):
    """One row per top-level numeric scalar, appended — the trajectory
    file CI accumulates across commits."""
    rows = []
    for source, data in reports:
        scalars, _ = split_report(data)
        bench = scalars.get("bench", source)
        for key, value in scalars.items():
            if isinstance(value, (int, float)):
                rows.append([label, bench, key, value])
    try:
        with open(path) as handle:
            needs_header = not handle.readline().startswith("label,")
    except OSError:
        needs_header = True
    with open(path, "a", newline="") as handle:
        writer = csv.writer(handle)
        if needs_header:
            writer.writerow(["label", "bench", "scalar", "value"])
        writer.writerows(rows)


def main():
    parser = argparse.ArgumentParser(
        description="merge METRICS_*/BENCH_*.json into a perf report")
    parser.add_argument("files", nargs="*",
                        help="input JSON files (default: METRICS_*.json + "
                             "BENCH_*.json in the working directory)")
    parser.add_argument("--output", default="PERF_REPORT.md",
                        help="markdown report path")
    parser.add_argument("--csv", default=None,
                        help="tidy long-format CSV path")
    parser.add_argument("--history", default=None,
                        help="append-only scalar trajectory CSV")
    parser.add_argument("--label", default="",
                        help="row label for --history (e.g. the commit SHA)")
    args = parser.parse_args()

    paths = args.files or (glob.glob("METRICS_*.json") +
                           glob.glob("BENCH_*.json"))
    if not paths:
        print("perf_report: no input files", file=sys.stderr)
        return 1
    reports = load_reports(paths)
    if reports is None:
        return 1

    with open(args.output, "w") as handle:
        handle.write(render_markdown(reports, args.label))
    print(f"wrote {args.output} ({len(reports)} input files)")
    if args.csv:
        write_csv(reports, args.csv)
        print(f"wrote {args.csv}")
    if args.history:
        append_history(reports, args.history, args.label)
        print(f"appended {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
