// netscatter_sweep — Cartesian parameter products over scenario specs.
//
// Takes a base workload (--spec FILE or --scenario NAME), varies any
// spec keys over value lists or integer ranges, and runs the full
// product through the deterministic sweep engine (ns::spec::run_sweep):
// every (cell, replica) task fans out over one mc_runner pool and
// merges in fixed order, so the whole product is bit-identical at any
// --threads. Outputs: one scenario JSON per cell (the exact shape
// netscatter_sim writes, plus the cell coordinates), an aggregate JSON
// in bench_report shape, and an aggregate CSV — both digestible by
// scripts/perf_report.py.
//
// Usage:
//   netscatter_sweep --spec specs/office-256.spec
//     --vary geometry.num_devices=100,1000,10000
//     --vary sim.phy.spreading_factor=9..12
//     --out-dir sweep_out --strip-wallclock     (one line)
//   netscatter_sweep --scenario office-256 --vary sim.skip=2,4 --list-cells
//   netscatter_sweep --schema        (the full key reference)
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/alloc_hook.hpp"
#include "apps/cli.hpp"
#include "apps/scenario_report.hpp"
#include "netscatter/obs/trace.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/spec/spec_codec.hpp"
#include "netscatter/spec/sweep.hpp"
#include "netscatter/util/table.hpp"

namespace {

struct sweep_options {
    std::string spec_file;
    std::string scenario;
    std::vector<std::string> vary;
    std::string out_dir = ".";
    std::string name;      ///< sweep label; default = base spec name
    std::string csv_path;  ///< default <out-dir>/SWEEP_<name>.csv
    bool list_cells = false;
    bool schema = false;
    ns::apps::common_options common;
};

std::string format_number(double v) {
    char buf[64];
    const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    return std::string(buf, p);
}

/// Axis values ride into JSON as numbers when they parse as one (so
/// perf_report.py can plot them), verbatim strings otherwise.
bench::json_value axis_value(const std::string& text) {
    double v{};
    const char* const end = text.data() + text.size();
    const auto [p, ec] = std::from_chars(text.data(), end, v);
    if (ec == std::errc{} && p == end) return v;
    return text;
}

/// "out/metrics.json" + cell 7 -> "out/metrics_cell007.json".
std::string with_cell_suffix(const std::string& path, std::size_t cell) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "_cell%03zu", cell);
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + suffix;
    }
    return path.substr(0, dot) + suffix + path.substr(dot);
}

std::string csv_escape(const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) return text;
    std::string out = "\"";
    for (char c : text) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out += "\"";
    return out;
}

void print_schema() {
    ns::util::text_table table("Scenario spec keys",
                               {"key", "type", "domain", "default"});
    for (const auto& info : ns::spec::spec_schema()) {
        table.add_row({info.key, info.type,
                       info.domain.empty() ? "-" : info.domain,
                       info.default_value});
    }
    table.print(std::cout);
}

/// The headline metrics every aggregate row carries, harvested from a
/// merged cell result. Timing-named entries are dropped from the CSV
/// under --strip-wallclock (the aggregate JSON strips via bench_report's
/// shared predicate).
std::vector<std::pair<std::string, double>> cell_metrics(
    const ns::scenario::scenario_result& result) {
    return {
        {"delivery_rate", result.sim.delivery_rate()},
        {"loss_rate", result.loss_rate()},
        {"ber", result.sim.ber()},
        {"throughput_bps", result.throughput_bps()},
        {"mean_delivered_per_round", result.sim.mean_delivered_per_round()},
        {"num_groups", static_cast<double>(result.num_groups)},
        {"fast_path_rounds", static_cast<double>(result.sim.fast_path_rounds)},
        {"joins", static_cast<double>(result.sim.total_joins)},
        {"leaves", static_cast<double>(result.sim.total_leaves)},
        {"round_time_s", result.round_time_s},
        {"wall_clock_s", result.wall_clock_s},
    };
}

int run(const sweep_options& options) {
    // Resolve the base workload.
    ns::scenario::scenario_spec base;
    if (!options.spec_file.empty()) {
        base = ns::spec::load_spec_file(options.spec_file);
    } else {
        const auto found = ns::scenario::find_scenario(options.scenario);
        if (!found) {
            std::cerr << "unknown scenario: " << options.scenario
                      << " (see netscatter_sim --list)\n";
            return 1;
        }
        base = *found;
    }
    options.common.apply_overrides(base);
    base.sim.obs.trace = !options.common.trace_path.empty();
    base.sim.obs.perf = options.common.perf;

    std::vector<ns::spec::sweep_axis> axes;
    for (const std::string& text : options.vary) {
        axes.push_back(ns::spec::parse_sweep_axis(text));
    }
    const std::vector<ns::spec::sweep_cell> cells =
        ns::spec::expand_sweep(base, axes);
    const std::string name = options.name.empty() ? base.name : options.name;

    if (options.list_cells) {
        ns::util::text_table table("sweep cells: " + name,
                                   {"cell", "assignment"});
        for (const auto& cell : cells) {
            table.add_row({std::to_string(cell.index),
                           cell.label.empty() ? "(base)" : cell.label});
        }
        table.print(std::cout);
        return 0;
    }

    std::filesystem::create_directories(options.out_dir);
    const std::vector<ns::scenario::scenario_result> results =
        ns::spec::run_sweep(cells, {.num_threads = options.common.threads,
                                    .parallel = options.common.parallel});

    // Per-cell scenario JSON, cell coordinates leading.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& cell = cells[i];
        std::vector<std::pair<std::string, bench::json_value>> extras = {
            {"cell", static_cast<double>(cell.index)}};
        for (const auto& [key, value] : cell.assignment) {
            extras.emplace_back("vary." + key, axis_value(value));
        }
        char index_text[32];
        std::snprintf(index_text, sizeof(index_text), "%03zu", cell.index);
        const std::string path = options.out_dir + "/SWEEP_" + name + "_cell" +
                                 index_text + ".json";
        ns::apps::write_scenario_json(results[i], path,
                                      options.common.strip_wallclock, extras);
        if (options.common.perf) ns::apps::print_perf_table(results[i]);
        if (!options.common.metrics_path.empty()) {
            ns::apps::write_metrics_json(
                results[i],
                with_cell_suffix(options.common.metrics_path, cell.index),
                options.common.strip_wallclock);
        }
        if (!options.common.trace_path.empty()) {
            const std::string trace_path =
                with_cell_suffix(options.common.trace_path, cell.index);
            if (!ns::obs::write_chrome_trace(results[i].sim.trace,
                                             trace_path)) {
                std::cerr << "could not write " << trace_path << "\n";
                return 1;
            }
        }
    }

    // Aggregate JSON: one bench_report point per cell, same scalars the
    // CSV carries, strip handled by the shared predicate.
    {
        bench::bench_report report("sweep_" + name);
        report.set_strip_timing(options.common.strip_wallclock);
        report.set_scalar("base", base.name);
        report.set_scalar("cells", static_cast<double>(cells.size()));
        for (std::size_t a = 0; a < axes.size(); ++a) {
            report.set_scalar("axis_" + std::to_string(a), axes[a].key);
        }
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::vector<std::pair<std::string, bench::json_value>> point = {
                {"cell", static_cast<double>(cells[i].index)}};
            for (const auto& [key, value] : cells[i].assignment) {
                point.emplace_back(key, axis_value(value));
            }
            for (const auto& [key, value] : cell_metrics(results[i])) {
                point.emplace_back(key, value);
            }
            report.add_point(std::move(point));
        }
        const std::string path =
            options.common.json_path.empty()
                ? options.out_dir + "/SWEEP_" + name + ".json"
                : options.common.json_path;
        report.write(path);
    }

    // Aggregate CSV: cell, axis columns, headline metrics.
    {
        const std::string path =
            options.csv_path.empty()
                ? options.out_dir + "/SWEEP_" + name + ".csv"
                : options.csv_path;
        std::ofstream out(path);
        if (!out) {
            std::cerr << "could not write " << path << "\n";
            return 1;
        }
        out << "cell";
        for (const auto& axis : axes) out << "," << csv_escape(axis.key);
        const auto metric_names = cell_metrics(results.front());
        for (const auto& [key, value] : metric_names) {
            if (options.common.strip_wallclock && ns::obs::is_timing_name(key)) {
                continue;
            }
            out << "," << key;
        }
        out << "\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i].index;
            for (const auto& [key, value] : cells[i].assignment) {
                out << "," << csv_escape(value);
            }
            for (const auto& [key, value] : cell_metrics(results[i])) {
                if (options.common.strip_wallclock &&
                    ns::obs::is_timing_name(key)) {
                    continue;
                }
                out << "," << format_number(value);
            }
            out << "\n";
        }
    }

    // Stdout summary.
    ns::util::text_table table(
        "netscatter_sweep: " + name,
        {"cell", "assignment", "delivery", "thpt [kbps]", "joins/leaves"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        table.add_row(
            {std::to_string(cells[i].index),
             cells[i].label.empty() ? "(base)" : cells[i].label,
             ns::util::format_double(100.0 * results[i].sim.delivery_rate(), 1) +
                 " %",
             ns::util::format_double(results[i].throughput_bps() / 1e3, 1),
             std::to_string(results[i].sim.total_joins) + "/" +
                 std::to_string(results[i].sim.total_leaves)});
    }
    table.print(std::cout);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    sweep_options options;
    ns::apps::arg_parser parser(
        "netscatter_sweep",
        "(--spec FILE | --scenario NAME) [--vary KEY=VALUES]... [options]");
    parser.add_option("--spec", "FILE", "base workload from a spec file",
                      [&](const std::string& v) {
                          options.spec_file = v;
                          return !v.empty();
                      });
    parser.add_option("--scenario", "NAME",
                      "base workload from the registry",
                      [&](const std::string& v) {
                          options.scenario = v;
                          return !v.empty();
                      });
    parser.add_option(
        "--vary", "KEY=VALUES",
        "vary a spec key over comma-separated values; integer ranges "
        "lo..hi[..step] expand inclusively (repeatable; the product is "
        "row-major, last axis fastest)",
        [&](const std::string& v) {
            options.vary.push_back(v);
            return !v.empty();
        });
    parser.add_option("--out-dir", "DIR",
                      "output directory for per-cell and aggregate files "
                      "(default .)",
                      [&](const std::string& v) {
                          options.out_dir = v;
                          return !v.empty();
                      });
    parser.add_option("--name", "LABEL",
                      "sweep label used in file names (default: base spec "
                      "name)",
                      [&](const std::string& v) {
                          options.name = v;
                          return !v.empty();
                      });
    parser.add_option("--csv", "PATH",
                      "aggregate CSV path (default "
                      "<out-dir>/SWEEP_<name>.csv)",
                      [&](const std::string& v) {
                          options.csv_path = v;
                          return !v.empty();
                      });
    parser.add_flag("--list-cells",
                    "print the expanded product and exit without running",
                    [&] { options.list_cells = true; });
    parser.add_flag("--schema",
                    "print the full spec key reference (key, type, domain, "
                    "default) and exit",
                    [&] { options.schema = true; });
    options.common.mount_override_flags(parser);
    options.common.mount_execution_flags(parser);
    options.common.mount_output_flags(parser);

    switch (parser.parse(argc, argv)) {
        case ns::apps::arg_parser::status::help: return 0;
        case ns::apps::arg_parser::status::error: return 1;
        case ns::apps::arg_parser::status::ok: break;
    }
    if (options.schema) {
        print_schema();
        return 0;
    }
    if (options.spec_file.empty() == options.scenario.empty()) {
        std::cerr << "netscatter_sweep: exactly one of --spec or --scenario "
                     "is required\n"
                  << parser.usage();
        return 1;
    }

    try {
        return run(options);
    } catch (const std::exception& error) {
        std::cerr << "netscatter_sweep: " << error.what() << "\n";
        return 1;
    }
}
