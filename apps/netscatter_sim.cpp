// netscatter_sim — the unified scenario CLI.
//
// Lists and runs scenarios — registered (scenario/scenario_registry,
// loaded from the committed specs/*.spec files) or ad-hoc (--spec FILE)
// — through the deterministic scenario runner, prints the network
// metrics as a table, and writes a bench_report-style JSON file per
// scenario (scalars + a per-round "points" series) so CI can track
// every workload's trajectory next to the paper-figure benches.
//
// The flag surface is the shared one (apps/cli.hpp): netscatter_sweep
// mounts the same option set with the same meanings.
//
// Usage:
//   netscatter_sim --list
//   netscatter_sim --scenario warehouse-1k --rounds 200 --threads 8
//                  --seed 3 --json out.json   (one line)
//   netscatter_sim --spec specs/office-256.spec --rounds 10
//   netscatter_sim --dump-spec office-256   (canonical serialization)
//   netscatter_sim --all --rounds 10
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "apps/alloc_hook.hpp"
#include "apps/cli.hpp"
#include "apps/scenario_report.hpp"
#include "netscatter/obs/trace.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/spec/spec_codec.hpp"
#include "netscatter/util/table.hpp"

namespace {

struct sim_options {
    bool list = false;
    bool all = false;
    std::vector<std::string> scenarios;   ///< registry names (--scenario)
    std::vector<std::string> spec_files;  ///< spec file paths (--spec)
    std::string dump_spec;                ///< --dump-spec NAME
    ns::apps::common_options common;
};

void list_scenarios() {
    ns::util::text_table table(
        "Registered scenarios (" + ns::spec::spec_dir() + ")",
        {"name", "devices", "rounds x replicas", "source", "description"});
    const auto& registry = ns::scenario::registry();
    const auto& sources = ns::scenario::registry_sources();
    for (std::size_t i = 0; i < registry.size(); ++i) {
        const auto& spec = registry[i];
        const std::string& source = sources[i];
        const std::string source_name =
            source == "<builtin>"
                ? source
                : std::filesystem::path(source).filename().string();
        table.add_row({spec.name, std::to_string(spec.geometry.num_devices),
                       std::to_string(spec.sim.rounds) + " x " +
                           std::to_string(spec.replicas),
                       source_name, spec.description});
    }
    table.print(std::cout);
}

int run(const sim_options& options) {
    std::vector<ns::scenario::scenario_spec> specs;
    if (options.all) {
        specs = ns::scenario::registry();
    } else {
        for (const auto& name : options.scenarios) {
            const auto spec = ns::scenario::find_scenario(name);
            if (!spec) {
                std::cerr << "unknown scenario: " << name
                          << " (see --list)\n";
                return 1;
            }
            specs.push_back(*spec);
        }
        for (const auto& path : options.spec_files) {
            specs.push_back(ns::spec::load_spec_file(path));
        }
    }
    if (specs.empty()) return 1;
    if (!options.common.json_path.empty() && specs.size() > 1) {
        std::cerr << "--json applies to a single scenario; "
                     "multi-scenario runs write SCENARIO_<name>.json each\n";
        return 1;
    }
    if ((!options.common.metrics_path.empty() ||
         !options.common.trace_path.empty()) &&
        specs.size() > 1) {
        std::cerr << "--metrics/--trace apply to a single scenario\n";
        return 1;
    }

    ns::util::text_table table(
        "netscatter_sim",
        {"scenario", "devices", "groups", "delivery", "thpt [kbps]", "skip", "idle",
         "joins/leaves", "realloc", "latency [rd]"});

    for (auto spec : specs) {
        options.common.apply_overrides(spec);
        spec.sim.obs.trace = !options.common.trace_path.empty();
        spec.sim.obs.perf = options.common.perf;

        const auto result = ns::scenario::run_scenario(
            spec, {.num_threads = options.common.threads,
                   .parallel = options.common.parallel});

        table.add_row(
            {spec.name, std::to_string(spec.geometry.num_devices),
             result.num_groups == 0 ? "-" : std::to_string(result.num_groups),
             ns::util::format_double(100.0 * result.sim.delivery_rate(), 1) + " %",
             ns::util::format_double(result.throughput_bps() / 1e3, 1),
             ns::util::format_double(100.0 * result.sim.skip_rate(), 1) + " %",
             ns::util::format_double(100.0 * result.sim.idle_rate(), 1) + " %",
             std::to_string(result.sim.total_joins) + "/" +
                 std::to_string(result.sim.total_leaves),
             std::to_string(result.sim.total_realloc_events),
             ns::util::format_double(result.stats.mean_join_latency_rounds(), 2)});

        if (options.common.perf) ns::apps::print_perf_table(result);

        const std::string path = options.common.json_path.empty()
                                     ? "SCENARIO_" + spec.name + ".json"
                                     : options.common.json_path;
        ns::apps::write_scenario_json(result, path,
                                      options.common.strip_wallclock);
        if (!options.common.metrics_path.empty()) {
            ns::apps::write_metrics_json(result, options.common.metrics_path,
                                         options.common.strip_wallclock);
        }
        if (!options.common.trace_path.empty()) {
            if (ns::obs::write_chrome_trace(result.sim.trace,
                                            options.common.trace_path)) {
                std::cout << "wrote " << options.common.trace_path << " ("
                          << result.sim.trace.size() << " spans";
                if (result.sim.trace_dropped > 0) {
                    std::cout << ", " << result.sim.trace_dropped << " dropped";
                }
                std::cout << ")\n";
            } else {
                std::cerr << "could not write " << options.common.trace_path
                          << "\n";
                return 1;
            }
        }
    }
    table.print(std::cout);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    sim_options options;
    ns::apps::arg_parser parser(
        "netscatter_sim",
        "(--list | --scenario NAME | --spec FILE | --all) [options]");
    parser.add_flag("--list",
                    "list registered scenarios with their source files",
                    [&] { options.list = true; });
    parser.add_option("--scenario", "NAME",
                      "run one registered scenario (repeatable)",
                      [&](const std::string& v) {
                          options.scenarios.push_back(v);
                          return !v.empty();
                      });
    parser.add_option("--spec", "FILE",
                      "run a scenario from a spec file (repeatable)",
                      [&](const std::string& v) {
                          options.spec_files.push_back(v);
                          return !v.empty();
                      });
    parser.add_flag("--all", "run every registered scenario",
                    [&] { options.all = true; });
    parser.add_option(
        "--dump-spec", "NAME",
        "print the canonical spec serialization of a registered scenario "
        "and exit (what specs/<NAME>.spec must equal byte-for-byte)",
        [&](const std::string& v) {
            options.dump_spec = v;
            return !v.empty();
        });
    options.common.mount_override_flags(parser);
    options.common.mount_execution_flags(parser);
    options.common.mount_output_flags(parser);

    switch (parser.parse(argc, argv)) {
        case ns::apps::arg_parser::status::help: return 0;
        case ns::apps::arg_parser::status::error: return 1;
        case ns::apps::arg_parser::status::ok: break;
    }

    try {
        if (options.list) {
            list_scenarios();
            return 0;
        }
        if (!options.dump_spec.empty()) {
            const auto spec = ns::scenario::find_scenario(options.dump_spec);
            if (!spec) {
                std::cerr << "unknown scenario: " << options.dump_spec
                          << " (see --list)\n";
                return 1;
            }
            std::cout << ns::spec::serialize_spec(*spec);
            return 0;
        }
        if (!options.all && options.scenarios.empty() &&
            options.spec_files.empty()) {
            std::cerr << parser.usage();
            return 1;
        }
        return run(options);
    } catch (const std::exception& error) {
        // Bad spec files and out-of-domain option values (e.g.
        // --rounds 0 via a spec) surface here as spec_error /
        // sim_config::validate() contract violations.
        std::cerr << "netscatter_sim: " << error.what() << "\n";
        return 1;
    }
}
