// netscatter_sim — the unified scenario CLI.
//
// Lists and runs the registered scenarios (scenario/scenario_registry)
// through the deterministic scenario runner, prints the network metrics
// as a table, and writes a bench_report-style JSON file per scenario
// (scalars + a per-round "points" series) so CI can track every
// workload's trajectory next to the paper-figure benches.
//
// Usage:
//   netscatter_sim --list
//   netscatter_sim --scenario warehouse-1k --rounds 200 --threads 8
//                  --seed 3 --json out.json   (one line)
//   netscatter_sim --all --rounds 10
//
// Options:
//   --scenario NAME   run one registered scenario
//   --all             run every registered scenario
//   --rounds N        override the spec's per-replica round count
//   --replicas N      override the spec's replica count
//   --seed S          override the spec's base seed
//   --threads N       worker threads (0 = all cores)
//   --round-threads N intra-round symbol-sweep threads (determinism-safe)
//   --serial          run the serial reference order (same results)
//   --json PATH       output path (single scenario only; default
//                     SCENARIO_<name>.json in the working directory)
//   --metrics PATH    full metrics-registry JSON (single scenario only)
//   --trace PATH      Chrome/Perfetto trace JSON (single scenario only)
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_report.hpp"
#include "netscatter/engine/fft_plan.hpp"
#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/obs/perf_counters.hpp"
#include "netscatter/obs/roofline.hpp"
#include "netscatter/obs/trace.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/sim/timeline.hpp"
#include "netscatter/util/table.hpp"
#include "netscatter/util/units.hpp"

// Global allocation hook: every operator new in this binary is tallied
// into the thread-local obs counters, which is what gives --metrics its
// alloc.* values. Replacement is binary-local by design — the library
// never forces the hook on other consumers.
//
// GCC cannot prove that the replaced malloc-backed operator new pairs
// with the free() in the replaced delete when only one side of the pair
// is inlined at a call site, so -Wmismatched-new-delete is a false
// positive here and is silenced for the hook definitions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
    ns::obs::record_allocation(size);
    if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

struct cli_options {
    bool list = false;
    bool all = false;
    std::vector<std::string> scenarios;
    std::optional<std::size_t> rounds;
    std::optional<std::size_t> replicas;
    std::optional<std::uint64_t> seed;
    std::optional<ns::sim::phy_fidelity> fidelity;
    std::size_t threads = 0;
    std::optional<std::size_t> round_threads;
    bool parallel = true;
    bool strip_wallclock = false;
    bool perf = false;
    std::string json_path;
    std::string metrics_path;
    std::string trace_path;
};

void print_usage() {
    std::cout
        << "usage: netscatter_sim (--list | --scenario NAME | --all) [options]\n"
           "  --rounds N     override per-replica rounds\n"
           "  --replicas N   override replica count\n"
           "  --seed S       override base seed\n"
           "  --threads N    worker threads (0 = all cores)\n"
           "  --round-threads N  intra-round symbol-sweep threads per\n"
           "                 replica (default 1; results identical at any N)\n"
           "  --serial       serial reference execution (identical results)\n"
           "  --fidelity F   PHY channel fidelity: sample | symbol | auto\n"
           "  --json PATH    JSON output path (single scenario only)\n"
           "  --metrics PATH write the full metrics registry (counters,\n"
           "                 gauges, per-phase histograms, process stats)\n"
           "                 as JSON (single scenario only)\n"
           "  --trace PATH   record per-round phase spans and write them\n"
           "                 as Chrome/Perfetto trace JSON (single\n"
           "                 scenario only; load at ui.perfetto.dev)\n"
           "  --perf         open hardware perf counters per replica and\n"
           "                 print per-phase cycles/instructions/IPC\n"
           "                 (degrades to available=false where\n"
           "                 perf_event_open is denied; never changes\n"
           "                 simulation results)\n"
           "  --strip-wallclock  omit every timing field from the JSON\n"
           "                     (shared is_timing_name predicate) so\n"
           "                     reports from different thread counts\n"
           "                     diff clean\n";
}

std::optional<cli_options> parse(int argc, char** argv) {
    cli_options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::optional<std::string> {
            if (i + 1 >= argc) return std::nullopt;
            return std::string(argv[++i]);
        };
        if (arg == "--list") {
            options.list = true;
        } else if (arg == "--all") {
            options.all = true;
        } else if (arg == "--scenario") {
            const auto name = value();
            if (!name) return std::nullopt;
            options.scenarios.push_back(*name);
        } else if (arg == "--rounds") {
            const auto text = value();
            if (!text) return std::nullopt;
            options.rounds = static_cast<std::size_t>(std::atoll(text->c_str()));
        } else if (arg == "--replicas") {
            const auto text = value();
            if (!text) return std::nullopt;
            options.replicas = static_cast<std::size_t>(std::atoll(text->c_str()));
        } else if (arg == "--seed") {
            const auto text = value();
            if (!text) return std::nullopt;
            options.seed = static_cast<std::uint64_t>(std::atoll(text->c_str()));
        } else if (arg == "--threads") {
            const auto text = value();
            if (!text) return std::nullopt;
            options.threads = static_cast<std::size_t>(std::atoll(text->c_str()));
        } else if (arg == "--round-threads") {
            const auto text = value();
            if (!text) return std::nullopt;
            options.round_threads =
                static_cast<std::size_t>(std::atoll(text->c_str()));
        } else if (arg == "--fidelity") {
            const auto text = value();
            if (!text) return std::nullopt;
            if (*text == "sample") {
                options.fidelity = ns::sim::phy_fidelity::sample;
            } else if (*text == "symbol") {
                options.fidelity = ns::sim::phy_fidelity::symbol;
            } else if (*text == "auto") {
                options.fidelity = ns::sim::phy_fidelity::automatic;
            } else {
                std::cerr << "unknown fidelity: " << *text
                          << " (sample | symbol | auto)\n";
                return std::nullopt;
            }
        } else if (arg == "--serial") {
            options.parallel = false;
        } else if (arg == "--perf") {
            options.perf = true;
        } else if (arg == "--strip-wallclock") {
            options.strip_wallclock = true;
        } else if (arg == "--json") {
            const auto path = value();
            if (!path) return std::nullopt;
            options.json_path = *path;
        } else if (arg == "--metrics") {
            const auto path = value();
            if (!path) return std::nullopt;
            options.metrics_path = *path;
        } else if (arg == "--trace") {
            const auto path = value();
            if (!path) return std::nullopt;
            options.trace_path = *path;
        } else if (arg == "--help" || arg == "-h") {
            print_usage();
            std::exit(0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return std::nullopt;
        }
    }
    return options;
}

void list_scenarios() {
    ns::util::text_table table("Registered scenarios",
                               {"name", "devices", "rounds x replicas", "description"});
    for (const auto& spec : ns::scenario::registry()) {
        table.add_row({spec.name, std::to_string(spec.geometry.num_devices),
                       std::to_string(spec.sim.rounds) + " x " +
                           std::to_string(spec.replicas),
                       spec.description});
    }
    table.print(std::cout);
}

const char* fidelity_name(ns::sim::phy_fidelity fidelity) {
    switch (fidelity) {
        case ns::sim::phy_fidelity::sample: return "sample";
        case ns::sim::phy_fidelity::symbol: return "symbol";
        case ns::sim::phy_fidelity::automatic: return "auto";
    }
    return "auto";
}

void write_json(const ns::scenario::scenario_result& result,
                const std::string& path, bool strip_wallclock) {
    bench::bench_report report("scenario_" + result.spec.name);
    // One shared predicate (ns::obs::is_timing_name) decides what
    // "timing" means: the report writer drops every timing-named scalar
    // and point field at write() time, so synth_wall_s, decode_wall_s
    // and the per-round query_time_s all strip together — a new timer
    // anywhere in the stack can never regress a determinism diff.
    report.set_strip_timing(strip_wallclock);
    report.set_scalar("scenario", result.spec.name);
    report.set_scalar("description", result.spec.description);
    report.set_scalar("num_devices",
                      static_cast<double>(result.spec.geometry.num_devices));
    report.set_scalar("rounds_per_replica",
                      static_cast<double>(result.spec.sim.rounds));
    report.set_scalar("replicas", static_cast<double>(result.replicas));
    report.set_scalar("seed", static_cast<double>(result.spec.sim.seed));
    report.set_scalar("round_time_s", result.round_time_s);
    report.set_scalar("delivery_rate", result.sim.delivery_rate());
    report.set_scalar("loss_rate", result.loss_rate());
    report.set_scalar("ber", result.sim.ber());
    report.set_scalar("mean_delivered_per_round",
                      result.sim.mean_delivered_per_round());
    report.set_scalar("throughput_bps", result.throughput_bps());
    report.set_scalar("skip_rate", result.sim.skip_rate());
    report.set_scalar("idle_rate", result.sim.idle_rate());
    report.set_scalar("offered_load", result.stats.offered_load());
    report.set_scalar("join_requests", static_cast<double>(result.stats.join_requests));
    report.set_scalar("joins", static_cast<double>(result.sim.total_joins));
    report.set_scalar("leaves", static_cast<double>(result.sim.total_leaves));
    report.set_scalar("rejected_joins",
                      static_cast<double>(result.sim.total_rejected_joins));
    report.set_scalar("reassociations",
                      static_cast<double>(result.sim.total_reassociations));
    report.set_scalar("realloc_events",
                      static_cast<double>(result.sim.total_realloc_events));
    report.set_scalar("full_reassignments",
                      static_cast<double>(result.sim.total_full_reassignments));
    report.set_scalar("mean_reassoc_latency_rounds",
                      result.stats.mean_join_latency_rounds());
    report.set_scalar("reassoc_latency_p50_rounds",
                      result.stats.join_wait_percentile(50.0));
    report.set_scalar("reassoc_latency_p95_rounds",
                      result.stats.join_wait_percentile(95.0));
    report.set_scalar("association_tx",
                      static_cast<double>(result.stats.association_tx));
    report.set_scalar("association_collisions",
                      static_cast<double>(result.stats.association_collisions));
    report.set_scalar("interference_events",
                      static_cast<double>(result.stats.interference_events));
    report.set_scalar("network_id",
                      static_cast<double>(result.spec.sim.network_id));
    report.set_scalar("cross_tx", static_cast<double>(result.sim.total_cross_tx));
    report.set_scalar("cross_collisions",
                      static_cast<double>(result.sim.total_cross_collisions));
    report.set_scalar("cross_collided_delivered",
                      static_cast<double>(result.sim.total_cross_collided_delivered));
    report.set_scalar("num_groups", static_cast<double>(result.num_groups));
    report.set_scalar("regroups", static_cast<double>(result.sim.total_regroups));
    report.set_scalar("control_overhead_s", result.control_overhead_s);
    report.set_scalar("network_latency_s", result.network_latency_s());
    report.set_scalar("fidelity", fidelity_name(result.spec.sim.fidelity));
    report.set_scalar("fast_path_rounds",
                      static_cast<double>(result.sim.fast_path_rounds));
    report.set_scalar("wall_clock_s", result.wall_clock_s);
    // Host-time split of the round loop (transmit-side synthesis vs
    // receiver decode), summed over all replica rounds — registry-backed
    // (sums of the round.*_s phase histograms).
    report.set_scalar("synth_wall_s", result.sim.synth_wall_s);
    report.set_scalar("decode_wall_s", result.sim.decode_wall_s);
    // Fault/recovery scalars appear only when the spec injects faults:
    // a fault-free run's JSON stays byte-for-byte what it was before the
    // fault layer existed.
    const bool faults_on = result.spec.faults.enabled();
    if (faults_on) {
        report.set_scalar("fault_query_losses",
                          static_cast<double>(result.sim.total_query_losses));
        report.set_scalar("fault_ack_losses",
                          static_cast<double>(result.sim.total_ack_losses));
        report.set_scalar("fault_ack_timeouts",
                          static_cast<double>(result.sim.total_ack_timeouts));
        report.set_scalar("fault_reboots",
                          static_cast<double>(result.sim.total_reboots));
        report.set_scalar("fault_down_events",
                          static_cast<double>(result.sim.total_down_events));
        report.set_scalar("fault_lease_evictions",
                          static_cast<double>(result.sim.total_lease_evictions));
        report.set_scalar("fault_desyncs",
                          static_cast<double>(result.sim.total_desyncs));
        report.set_scalar("fault_resyncs",
                          static_cast<double>(result.sim.total_resyncs));
        report.set_scalar("fault_recoveries",
                          static_cast<double>(result.sim.total_recoveries));
        report.set_scalar("fault_orphan_tx",
                          static_cast<double>(result.sim.total_orphan_tx));
        report.set_scalar(
            "fault_orphan_collisions",
            static_cast<double>(result.sim.total_orphan_collisions));
        report.set_scalar("fault_blackout_rounds",
                          static_cast<double>(result.sim.total_blackout_rounds));
        report.set_scalar("fault_devices_down_at_end",
                          static_cast<double>(result.sim.devices_down_at_end));
        report.set_scalar(
            "fault_recovery_ratio",
            result.sim.total_down_events == 0
                ? 1.0
                : static_cast<double>(result.sim.total_recoveries) /
                      static_cast<double>(result.sim.total_down_events));
    }

    const double payload_bits =
        static_cast<double>(result.spec.sim.frame.payload_bits);
    const std::size_t rounds_per_replica = result.spec.sim.rounds;
    const double config1_query_s = result.config1_query_time_s;
    const double config2_query_s = result.config2_query_time_s;
    for (std::size_t i = 0; i < result.sim.rounds.size(); ++i) {
        const auto& round = result.sim.rounds[i];
        const double throughput =
            result.round_time_s > 0.0
                ? static_cast<double>(round.delivered) * payload_bits /
                      result.round_time_s
                : 0.0;
        const double loss =
            round.transmitting > 0
                ? 1.0 - static_cast<double>(round.delivered) /
                            static_cast<double>(round.transmitting)
                : 0.0;
        const double reassoc_latency =
            i < result.stats.join_latency_series.size()
                ? result.stats.join_latency_series[i]
                : 0.0;
        // Query-overhead timeline (the same rule control_overhead_s sums).
        const double query_time_s = ns::scenario::carries_config2_query(round)
                                        ? config2_query_s
                                        : config1_query_s;
        // The merged series concatenates replicas; index each point by
        // (replica, round) so consumers never stitch independent
        // timelines together.
        std::vector<std::pair<std::string, bench::json_value>> point = {
            {"replica", static_cast<double>(i / rounds_per_replica)},
            {"round", static_cast<double>(i % rounds_per_replica)},
            {"active", static_cast<double>(round.active)},
            {"scheduled_group", static_cast<double>(round.scheduled_group)},
            {"scheduled", static_cast<double>(round.scheduled)},
            {"transmitting", static_cast<double>(round.transmitting)},
            {"delivered", static_cast<double>(round.delivered)},
            {"skipped", static_cast<double>(round.skipped)},
            {"idle", static_cast<double>(round.idle)},
            {"joins", static_cast<double>(round.joins)},
            {"leaves", static_cast<double>(round.leaves)},
            {"realloc_events", static_cast<double>(round.realloc_events)},
            {"regroups", static_cast<double>(round.regroups)},
            {"cross_tx", static_cast<double>(round.cross_tx)},
            {"cross_collisions", static_cast<double>(round.cross_collisions)},
            {"query_time_s", query_time_s},
            {"reassoc_latency_rounds", reassoc_latency},
            {"throughput_bps", throughput},
            {"loss_rate", loss}};
        if (faults_on) {
            point.push_back(
                {"query_losses", static_cast<double>(round.query_losses)});
            point.push_back(
                {"ack_losses", static_cast<double>(round.ack_losses)});
            point.push_back({"reboots", static_cast<double>(round.reboots)});
            point.push_back(
                {"down_events", static_cast<double>(round.down_events)});
            point.push_back({"lease_evictions",
                             static_cast<double>(round.lease_evictions)});
            point.push_back({"desyncs", static_cast<double>(round.desyncs)});
            point.push_back({"resyncs", static_cast<double>(round.resyncs)});
            point.push_back(
                {"recoveries", static_cast<double>(round.recoveries)});
            point.push_back(
                {"orphan_tx", static_cast<double>(round.orphan_tx)});
            point.push_back({"blackout", round.blackout ? 1.0 : 0.0});
        }
        report.add_point(std::move(point));
    }
    // Per-group breakdown (§3.3.3), keyed by scheduling slot and merged
    // across replicas by group id. Counters span the whole run (all
    // partitions a regroup produced); members and the power span
    // describe the final partition.
    for (std::size_t g = 0; g < result.sim.groups.size(); ++g) {
        const ns::sim::group_metrics& group = result.sim.groups[g];
        report.add_section_point(
            "groups",
            {{"group", static_cast<double>(g)},
             {"members", static_cast<double>(group.members)},
             {"scheduled_rounds", static_cast<double>(group.scheduled_rounds)},
             {"transmitting", static_cast<double>(group.transmitting)},
             {"delivered", static_cast<double>(group.delivered)},
             {"delivery_rate", group.delivery_rate()},
             {"bits_sent", static_cast<double>(group.bits_sent)},
             {"bit_errors", static_cast<double>(group.bit_errors)},
             {"min_power_dbm", group.min_power_dbm},
             {"max_power_dbm", group.max_power_dbm},
             {"dynamic_range_db", group.max_power_dbm - group.min_power_dbm}});
    }
    // Deterministic slice of the metrics registry: counters and gauges
    // are pure functions of (spec, seed), so they diff clean across
    // thread counts. Host-execution metrics (the timing histograms, the
    // perf.* hardware counters, process-wide stats) stay out of the
    // scenario report unconditionally — the shared is_host_metric_name
    // predicate is what keeps this JSON bit-identical with and without
    // --perf (use --metrics for the full registry).
    for (const auto& counter : result.sim.metrics.counters) {
        if (ns::obs::is_host_metric_name(counter.name)) continue;
        report.add_section_point("metrics",
                                 {{"name", counter.name},
                                  {"value", static_cast<double>(counter.value)}});
    }
    for (const auto& gauge : result.sim.metrics.gauges) {
        if (ns::obs::is_host_metric_name(gauge.name)) continue;
        report.add_section_point(
            "metrics_gauges",
            {{"name", gauge.name}, {"last", gauge.last}, {"max", gauge.max}});
    }
    report.write(path);
}

/// Round-loop phases carrying perf.<phase>.* attribution (the five
/// simulator phases plus the kernel-sum batch inside synth/superpose).
constexpr const char* perf_phases[] = {"plan",      "grouping",   "synth",
                                       "superpose", "decode",     "kernel_sum"};

/// True when the merged snapshot says at least one replica opened its
/// hardware counter group.
bool perf_available(const ns::obs::metrics_snapshot& metrics) {
    const ns::obs::gauge_sample* available = metrics.find_gauge("perf.available");
    return available != nullptr && available->max > 0.0;
}

/// Prints the per-phase hardware-counter table for --perf, or the clean
/// degradation message when no replica could open perf events.
void print_perf_table(const ns::scenario::scenario_result& result) {
    const ns::obs::metrics_snapshot& metrics = result.sim.metrics;
    if (!perf_available(metrics)) {
        std::cout << "perf counters (" << result.spec.name
                  << "): available=false — perf_event_open denied "
                     "(kernel.perf_event_paranoid, seccomp, NS_PERF_DISABLE "
                     "or NS_OBS=OFF); simulation results are unaffected\n";
        return;
    }
    ns::util::text_table table(
        "hardware counters: " + result.spec.name,
        {"phase", "cycles [M]", "instr [M]", "IPC", "LLC miss", "br miss/kI"});
    for (const char* phase : perf_phases) {
        const std::string prefix = std::string("perf.") + phase;
        const std::uint64_t cycles = metrics.counter_value(prefix + ".cycles");
        const std::uint64_t instructions =
            metrics.counter_value(prefix + ".instructions");
        if (cycles == 0 && instructions == 0) continue;
        const std::uint64_t llc_loads =
            metrics.counter_value(prefix + ".llc_loads");
        const std::uint64_t llc_misses =
            metrics.counter_value(prefix + ".llc_misses");
        const std::uint64_t branch_misses =
            metrics.counter_value(prefix + ".branch_misses");
        table.add_row(
            {phase, ns::util::format_double(static_cast<double>(cycles) / 1e6, 1),
             ns::util::format_double(static_cast<double>(instructions) / 1e6, 1),
             ns::util::format_double(ns::obs::perf_ipc(instructions, cycles), 2),
             ns::util::format_double(
                 100.0 * ns::obs::perf_miss_rate(llc_misses, llc_loads), 1) +
                 " %",
             ns::util::format_double(
                 instructions == 0
                     ? 0.0
                     : 1e3 * static_cast<double>(branch_misses) /
                           static_cast<double>(instructions),
                 2)});
    }
    table.print(std::cout);
}

/// Writes the merged metrics registry as JSON. Counters go into the
/// top-level "points" array as {name, value} rows — the exact shape
/// scripts/check_bench_regression.py gates on (--key name --metric
/// value). Gauges, histograms (with log2-bucket percentiles) and the
/// process-wide engine stats follow as sections. With `strip`, the
/// shared predicate drops the timing histograms and the host-execution
/// process section so two metrics files from different thread counts
/// diff clean.
void write_metrics_json(const ns::scenario::scenario_result& result,
                        const std::string& path, bool strip) {
    bench::bench_report report("metrics_" + result.spec.name);
    report.set_strip_timing(strip);
    report.set_scalar("scenario", result.spec.name);
    report.set_scalar("replicas", static_cast<double>(result.replicas));
    report.set_scalar("seed", static_cast<double>(result.spec.sim.seed));
    report.set_scalar("wall_clock_s", result.wall_clock_s);

    const ns::obs::metrics_snapshot& metrics = result.sim.metrics;
    for (const auto& counter : metrics.counters) {
        if (strip && ns::obs::is_host_metric_name(counter.name)) continue;
        report.add_point({{"name", counter.name},
                          {"value", static_cast<double>(counter.value)}});
    }
    if (result.spec.faults.enabled()) {
        // Derived recovery-quality points in the same {name, value} shape
        // the counters use, so check_bench_regression.py gates them with
        // the one --key name --metric value invocation. Both are pure
        // functions of (spec, seed): safe to pin at --tolerance 0.
        double recovery_p95 = 0.0;
        for (const auto& hist : metrics.histograms) {
            if (hist.name == "fault.recovery_rounds") {
                recovery_p95 = hist.percentile(95.0);
                break;
            }
        }
        report.add_point(
            {{"name", "fault.recovery_rounds.p95"}, {"value", recovery_p95}});
        report.add_point(
            {{"name", "fault.recovery_ratio"},
             {"value",
              result.sim.total_down_events == 0
                  ? 1.0
                  : static_cast<double>(result.sim.total_recoveries) /
                        static_cast<double>(result.sim.total_down_events)}});
    }
    for (const auto& gauge : metrics.gauges) {
        if (strip && ns::obs::is_host_metric_name(gauge.name)) continue;
        report.add_section_point(
            "gauges",
            {{"name", gauge.name}, {"last", gauge.last}, {"max", gauge.max}});
    }
    for (const auto& hist : metrics.histograms) {
        if (strip && ns::obs::is_host_metric_name(hist.name)) continue;
        // Unsuffixed field names: units follow the histogram (seconds
        // for the *_s phase probes, plain counts for round.allocs).
        report.add_section_point(
            "histograms",
            {{"name", hist.name},
             {"count", static_cast<double>(hist.count)},
             {"sum", hist.sum},
             {"min", hist.min},
             {"max", hist.max},
             {"mean", hist.mean()},
             {"p50", hist.percentile(50.0)},
             {"p95", hist.percentile(95.0)},
             {"p99", hist.percentile(99.0)}});
    }
    // Roofline attribution of the kernel-accumulation loop. The model
    // itself (elements, bytes, flops, intensity) is deterministic —
    // derived from the phy.kernel_window_elems counter — and is emitted
    // even under strip; the time-derived achieved rates are host facts
    // and only appear in unstripped output.
    const ns::obs::kernel_loop_model model =
        ns::obs::kernel_loop_model_from(metrics);
    if (model.window_elems > 0) {
        std::vector<std::pair<std::string, bench::json_value>> roofline = {
            {"window_elems", static_cast<double>(model.window_elems)},
            {"bytes", model.bytes()},
            {"flops", model.flops()},
            {"arithmetic_intensity", model.arithmetic_intensity()},
        };
        if (!strip) {
            const double seconds = metrics.histogram_sum("phy.kernel_sum_s");
            roofline.push_back({"kernel_sum_wall_s", seconds});
            roofline.push_back({"achieved_gbps", model.achieved_gbps(seconds)});
            roofline.push_back(
                {"achieved_gflops", model.achieved_gflops(seconds)});
        }
        report.add_section_point("roofline", roofline);
    }
    if (!strip) {
        // Per-phase hardware counters (--perf). Same availability
        // contract as the stdout table: a denied perf_event_open leaves
        // the section empty apart from the available flag.
        if (metrics.find_gauge("perf.available") != nullptr) {
            report.set_scalar("perf_available",
                              perf_available(metrics) ? 1.0 : 0.0);
        }
        for (const char* phase : perf_phases) {
            const std::string prefix = std::string("perf.") + phase;
            const std::uint64_t cycles =
                metrics.counter_value(prefix + ".cycles");
            const std::uint64_t instructions =
                metrics.counter_value(prefix + ".instructions");
            if (cycles == 0 && instructions == 0) continue;
            const std::uint64_t llc_loads =
                metrics.counter_value(prefix + ".llc_loads");
            const std::uint64_t llc_misses =
                metrics.counter_value(prefix + ".llc_misses");
            report.add_section_point(
                "perf",
                {{"phase", phase},
                 {"cycles", static_cast<double>(cycles)},
                 {"instructions", static_cast<double>(instructions)},
                 {"ipc", ns::obs::perf_ipc(instructions, cycles)},
                 {"llc_loads", static_cast<double>(llc_loads)},
                 {"llc_misses", static_cast<double>(llc_misses)},
                 {"llc_miss_rate",
                  ns::obs::perf_miss_rate(llc_misses, llc_loads)},
                 {"branch_misses",
                  static_cast<double>(
                      metrics.counter_value(prefix + ".branch_misses"))}});
        }
        // Host-execution stats (process-wide, thread-count dependent by
        // nature — never part of determinism comparisons).
        const auto fft = ns::engine::fft_plan_cache::stats();
        const auto pool = ns::engine::thread_pool::stats();
        const ns::obs::process_usage usage = ns::obs::current_process_usage();
        const std::vector<std::pair<const char*, std::uint64_t>> process = {
            {"fft_cache.hits", fft.hits},
            {"fft_cache.misses", fft.misses},
            {"fft_cache.memo_hits", fft.memo_hits},
            {"fft_cache.scratch_requests", fft.scratch_requests},
            {"thread_pool.tasks_submitted", pool.tasks_submitted},
            {"thread_pool.tasks_executed", pool.tasks_executed},
            {"thread_pool.queue_peak", pool.queue_peak},
            {"peak_rss_bytes", usage.peak_rss_bytes},
            {"minor_page_faults", usage.minor_page_faults},
            {"major_page_faults", usage.major_page_faults},
            {"voluntary_ctx_switches", usage.voluntary_ctx_switches},
            {"involuntary_ctx_switches", usage.involuntary_ctx_switches},
        };
        for (const auto& [name, value] : process) {
            report.add_section_point(
                "process",
                {{"name", name}, {"value", static_cast<double>(value)}});
        }
    }
    report.write(path);
}

int run(const cli_options& options) {
    std::vector<ns::scenario::scenario_spec> specs;
    if (options.all) {
        specs = ns::scenario::registry();
    } else {
        for (const auto& name : options.scenarios) {
            const auto spec = ns::scenario::find_scenario(name);
            if (!spec) {
                std::cerr << "unknown scenario: " << name
                          << " (see --list)\n";
                return 1;
            }
            specs.push_back(*spec);
        }
    }
    if (specs.empty()) {
        print_usage();
        return 1;
    }
    if (!options.json_path.empty() && specs.size() > 1) {
        std::cerr << "--json applies to a single scenario; "
                     "multi-scenario runs write SCENARIO_<name>.json each\n";
        return 1;
    }
    if ((!options.metrics_path.empty() || !options.trace_path.empty()) &&
        specs.size() > 1) {
        std::cerr << "--metrics/--trace apply to a single scenario\n";
        return 1;
    }

    ns::util::text_table table(
        "netscatter_sim",
        {"scenario", "devices", "groups", "delivery", "thpt [kbps]", "skip", "idle",
         "joins/leaves", "realloc", "latency [rd]"});

    for (auto spec : specs) {
        if (options.rounds) spec.sim.rounds = *options.rounds;
        if (options.replicas) spec.replicas = *options.replicas;
        if (options.seed) spec.sim.seed = *options.seed;
        if (options.fidelity) spec.sim.fidelity = *options.fidelity;
        if (options.round_threads) {
            spec.sim.intra_round_threads = *options.round_threads;
        }
        spec.sim.obs.trace = !options.trace_path.empty();
        spec.sim.obs.perf = options.perf;

        const auto result = ns::scenario::run_scenario(
            spec, {.num_threads = options.threads, .parallel = options.parallel});

        table.add_row(
            {spec.name, std::to_string(spec.geometry.num_devices),
             result.num_groups == 0 ? "-" : std::to_string(result.num_groups),
             ns::util::format_double(100.0 * result.sim.delivery_rate(), 1) + " %",
             ns::util::format_double(result.throughput_bps() / 1e3, 1),
             ns::util::format_double(100.0 * result.sim.skip_rate(), 1) + " %",
             ns::util::format_double(100.0 * result.sim.idle_rate(), 1) + " %",
             std::to_string(result.sim.total_joins) + "/" +
                 std::to_string(result.sim.total_leaves),
             std::to_string(result.sim.total_realloc_events),
             ns::util::format_double(result.stats.mean_join_latency_rounds(), 2)});

        if (options.perf) print_perf_table(result);

        const std::string path = options.json_path.empty()
                                     ? "SCENARIO_" + spec.name + ".json"
                                     : options.json_path;
        write_json(result, path, options.strip_wallclock);
        if (!options.metrics_path.empty()) {
            write_metrics_json(result, options.metrics_path,
                               options.strip_wallclock);
        }
        if (!options.trace_path.empty()) {
            if (ns::obs::write_chrome_trace(result.sim.trace,
                                            options.trace_path)) {
                std::cout << "wrote " << options.trace_path << " ("
                          << result.sim.trace.size() << " spans";
                if (result.sim.trace_dropped > 0) {
                    std::cout << ", " << result.sim.trace_dropped << " dropped";
                }
                std::cout << ")\n";
            } else {
                std::cerr << "could not write " << options.trace_path << "\n";
                return 1;
            }
        }
    }
    table.print(std::cout);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = parse(argc, argv);
    if (!options) {
        print_usage();
        return 1;
    }
    if (options->list) {
        list_scenarios();
        return 0;
    }
    try {
        return run(*options);
    } catch (const std::exception& error) {
        // Out-of-domain option values (e.g. --rounds 0) surface here as
        // sim_config::validate() contract violations.
        std::cerr << "netscatter_sim: " << error.what() << "\n";
        return 1;
    }
}
