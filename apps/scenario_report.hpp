// Shared scenario report writers for the CLI tools.
//
// netscatter_sim and netscatter_sweep emit the exact same bench_report
// JSON shapes (scenario report, metrics registry, perf table) through
// these helpers, so a sweep cell's file diffs clean against a single
// run of the same spec and every determinism gate (--strip-wallclock,
// is_host_metric_name fencing) applies identically to both binaries.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_report.hpp"
#include "netscatter/engine/fft_plan.hpp"
#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/obs/perf_counters.hpp"
#include "netscatter/obs/roofline.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/util/table.hpp"
#include "netscatter/util/units.hpp"

namespace ns::apps {

inline const char* fidelity_name(ns::sim::phy_fidelity fidelity) {
    switch (fidelity) {
        case ns::sim::phy_fidelity::sample: return "sample";
        case ns::sim::phy_fidelity::symbol: return "symbol";
        case ns::sim::phy_fidelity::automatic: return "auto";
    }
    return "auto";
}

/// Writes the per-scenario report JSON (scalars + per-round "points" +
/// groups/metrics sections). `extra_scalars` lets a sweep prepend its
/// cell coordinates; an empty list reproduces the historic single-run
/// output byte-for-byte.
inline void write_scenario_json(
    const ns::scenario::scenario_result& result, const std::string& path,
    bool strip_wallclock,
    const std::vector<std::pair<std::string, bench::json_value>>&
        extra_scalars = {}) {
    bench::bench_report report("scenario_" + result.spec.name);
    // One shared predicate (ns::obs::is_timing_name) decides what
    // "timing" means: the report writer drops every timing-named scalar
    // and point field at write() time, so synth_wall_s, decode_wall_s
    // and the per-round query_time_s all strip together — a new timer
    // anywhere in the stack can never regress a determinism diff.
    report.set_strip_timing(strip_wallclock);
    report.set_scalar("scenario", result.spec.name);
    report.set_scalar("description", result.spec.description);
    for (const auto& [key, value] : extra_scalars) {
        report.set_scalar(key, value);
    }
    report.set_scalar("num_devices",
                      static_cast<double>(result.spec.geometry.num_devices));
    report.set_scalar("rounds_per_replica",
                      static_cast<double>(result.spec.sim.rounds));
    report.set_scalar("replicas", static_cast<double>(result.replicas));
    report.set_scalar("seed", static_cast<double>(result.spec.sim.seed));
    report.set_scalar("round_time_s", result.round_time_s);
    report.set_scalar("delivery_rate", result.sim.delivery_rate());
    report.set_scalar("loss_rate", result.loss_rate());
    report.set_scalar("ber", result.sim.ber());
    report.set_scalar("mean_delivered_per_round",
                      result.sim.mean_delivered_per_round());
    report.set_scalar("throughput_bps", result.throughput_bps());
    report.set_scalar("skip_rate", result.sim.skip_rate());
    report.set_scalar("idle_rate", result.sim.idle_rate());
    report.set_scalar("offered_load", result.stats.offered_load());
    report.set_scalar("join_requests", static_cast<double>(result.stats.join_requests));
    report.set_scalar("joins", static_cast<double>(result.sim.total_joins));
    report.set_scalar("leaves", static_cast<double>(result.sim.total_leaves));
    report.set_scalar("rejected_joins",
                      static_cast<double>(result.sim.total_rejected_joins));
    report.set_scalar("reassociations",
                      static_cast<double>(result.sim.total_reassociations));
    report.set_scalar("realloc_events",
                      static_cast<double>(result.sim.total_realloc_events));
    report.set_scalar("full_reassignments",
                      static_cast<double>(result.sim.total_full_reassignments));
    report.set_scalar("mean_reassoc_latency_rounds",
                      result.stats.mean_join_latency_rounds());
    report.set_scalar("reassoc_latency_p50_rounds",
                      result.stats.join_wait_percentile(50.0));
    report.set_scalar("reassoc_latency_p95_rounds",
                      result.stats.join_wait_percentile(95.0));
    report.set_scalar("association_tx",
                      static_cast<double>(result.stats.association_tx));
    report.set_scalar("association_collisions",
                      static_cast<double>(result.stats.association_collisions));
    report.set_scalar("interference_events",
                      static_cast<double>(result.stats.interference_events));
    report.set_scalar("network_id",
                      static_cast<double>(result.spec.sim.network_id));
    report.set_scalar("cross_tx", static_cast<double>(result.sim.total_cross_tx));
    report.set_scalar("cross_collisions",
                      static_cast<double>(result.sim.total_cross_collisions));
    report.set_scalar("cross_collided_delivered",
                      static_cast<double>(result.sim.total_cross_collided_delivered));
    report.set_scalar("num_groups", static_cast<double>(result.num_groups));
    report.set_scalar("regroups", static_cast<double>(result.sim.total_regroups));
    report.set_scalar("control_overhead_s", result.control_overhead_s);
    report.set_scalar("network_latency_s", result.network_latency_s());
    report.set_scalar("fidelity", fidelity_name(result.spec.sim.fidelity));
    report.set_scalar("fast_path_rounds",
                      static_cast<double>(result.sim.fast_path_rounds));
    report.set_scalar("wall_clock_s", result.wall_clock_s);
    // Host-time split of the round loop (transmit-side synthesis vs
    // receiver decode), summed over all replica rounds — registry-backed
    // (sums of the round.*_s phase histograms).
    report.set_scalar("synth_wall_s", result.sim.synth_wall_s);
    report.set_scalar("decode_wall_s", result.sim.decode_wall_s);
    // Fault/recovery scalars appear only when the spec injects faults:
    // a fault-free run's JSON stays byte-for-byte what it was before the
    // fault layer existed.
    const bool faults_on = result.spec.faults.enabled();
    if (faults_on) {
        report.set_scalar("fault_query_losses",
                          static_cast<double>(result.sim.total_query_losses));
        report.set_scalar("fault_ack_losses",
                          static_cast<double>(result.sim.total_ack_losses));
        report.set_scalar("fault_ack_timeouts",
                          static_cast<double>(result.sim.total_ack_timeouts));
        report.set_scalar("fault_reboots",
                          static_cast<double>(result.sim.total_reboots));
        report.set_scalar("fault_down_events",
                          static_cast<double>(result.sim.total_down_events));
        report.set_scalar("fault_lease_evictions",
                          static_cast<double>(result.sim.total_lease_evictions));
        report.set_scalar("fault_desyncs",
                          static_cast<double>(result.sim.total_desyncs));
        report.set_scalar("fault_resyncs",
                          static_cast<double>(result.sim.total_resyncs));
        report.set_scalar("fault_recoveries",
                          static_cast<double>(result.sim.total_recoveries));
        report.set_scalar("fault_orphan_tx",
                          static_cast<double>(result.sim.total_orphan_tx));
        report.set_scalar(
            "fault_orphan_collisions",
            static_cast<double>(result.sim.total_orphan_collisions));
        report.set_scalar("fault_blackout_rounds",
                          static_cast<double>(result.sim.total_blackout_rounds));
        report.set_scalar("fault_devices_down_at_end",
                          static_cast<double>(result.sim.devices_down_at_end));
        report.set_scalar(
            "fault_recovery_ratio",
            result.sim.total_down_events == 0
                ? 1.0
                : static_cast<double>(result.sim.total_recoveries) /
                      static_cast<double>(result.sim.total_down_events));
    }

    const double payload_bits =
        static_cast<double>(result.spec.sim.frame.payload_bits);
    const std::size_t rounds_per_replica = result.spec.sim.rounds;
    const double config1_query_s = result.config1_query_time_s;
    const double config2_query_s = result.config2_query_time_s;
    for (std::size_t i = 0; i < result.sim.rounds.size(); ++i) {
        const auto& round = result.sim.rounds[i];
        const double throughput =
            result.round_time_s > 0.0
                ? static_cast<double>(round.delivered) * payload_bits /
                      result.round_time_s
                : 0.0;
        const double loss =
            round.transmitting > 0
                ? 1.0 - static_cast<double>(round.delivered) /
                            static_cast<double>(round.transmitting)
                : 0.0;
        const double reassoc_latency =
            i < result.stats.join_latency_series.size()
                ? result.stats.join_latency_series[i]
                : 0.0;
        // Query-overhead timeline (the same rule control_overhead_s sums).
        const double query_time_s = ns::scenario::carries_config2_query(round)
                                        ? config2_query_s
                                        : config1_query_s;
        // The merged series concatenates replicas; index each point by
        // (replica, round) so consumers never stitch independent
        // timelines together.
        std::vector<std::pair<std::string, bench::json_value>> point = {
            {"replica", static_cast<double>(i / rounds_per_replica)},
            {"round", static_cast<double>(i % rounds_per_replica)},
            {"active", static_cast<double>(round.active)},
            {"scheduled_group", static_cast<double>(round.scheduled_group)},
            {"scheduled", static_cast<double>(round.scheduled)},
            {"transmitting", static_cast<double>(round.transmitting)},
            {"delivered", static_cast<double>(round.delivered)},
            {"skipped", static_cast<double>(round.skipped)},
            {"idle", static_cast<double>(round.idle)},
            {"joins", static_cast<double>(round.joins)},
            {"leaves", static_cast<double>(round.leaves)},
            {"realloc_events", static_cast<double>(round.realloc_events)},
            {"regroups", static_cast<double>(round.regroups)},
            {"cross_tx", static_cast<double>(round.cross_tx)},
            {"cross_collisions", static_cast<double>(round.cross_collisions)},
            {"query_time_s", query_time_s},
            {"reassoc_latency_rounds", reassoc_latency},
            {"throughput_bps", throughput},
            {"loss_rate", loss}};
        if (faults_on) {
            point.push_back(
                {"query_losses", static_cast<double>(round.query_losses)});
            point.push_back(
                {"ack_losses", static_cast<double>(round.ack_losses)});
            point.push_back({"reboots", static_cast<double>(round.reboots)});
            point.push_back(
                {"down_events", static_cast<double>(round.down_events)});
            point.push_back({"lease_evictions",
                             static_cast<double>(round.lease_evictions)});
            point.push_back({"desyncs", static_cast<double>(round.desyncs)});
            point.push_back({"resyncs", static_cast<double>(round.resyncs)});
            point.push_back(
                {"recoveries", static_cast<double>(round.recoveries)});
            point.push_back(
                {"orphan_tx", static_cast<double>(round.orphan_tx)});
            point.push_back({"blackout", round.blackout ? 1.0 : 0.0});
        }
        report.add_point(std::move(point));
    }
    // Per-group breakdown (§3.3.3), keyed by scheduling slot and merged
    // across replicas by group id. Counters span the whole run (all
    // partitions a regroup produced); members and the power span
    // describe the final partition.
    for (std::size_t g = 0; g < result.sim.groups.size(); ++g) {
        const ns::sim::group_metrics& group = result.sim.groups[g];
        report.add_section_point(
            "groups",
            {{"group", static_cast<double>(g)},
             {"members", static_cast<double>(group.members)},
             {"scheduled_rounds", static_cast<double>(group.scheduled_rounds)},
             {"transmitting", static_cast<double>(group.transmitting)},
             {"delivered", static_cast<double>(group.delivered)},
             {"delivery_rate", group.delivery_rate()},
             {"bits_sent", static_cast<double>(group.bits_sent)},
             {"bit_errors", static_cast<double>(group.bit_errors)},
             {"min_power_dbm", group.min_power_dbm},
             {"max_power_dbm", group.max_power_dbm},
             {"dynamic_range_db", group.max_power_dbm - group.min_power_dbm}});
    }
    // Deterministic slice of the metrics registry: counters and gauges
    // are pure functions of (spec, seed), so they diff clean across
    // thread counts. Host-execution metrics (the timing histograms, the
    // perf.* hardware counters, process-wide stats) stay out of the
    // scenario report unconditionally — the shared is_host_metric_name
    // predicate is what keeps this JSON bit-identical with and without
    // --perf (use --metrics for the full registry).
    for (const auto& counter : result.sim.metrics.counters) {
        if (ns::obs::is_host_metric_name(counter.name)) continue;
        report.add_section_point("metrics",
                                 {{"name", counter.name},
                                  {"value", static_cast<double>(counter.value)}});
    }
    for (const auto& gauge : result.sim.metrics.gauges) {
        if (ns::obs::is_host_metric_name(gauge.name)) continue;
        report.add_section_point(
            "metrics_gauges",
            {{"name", gauge.name}, {"last", gauge.last}, {"max", gauge.max}});
    }
    report.write(path);
}

/// Round-loop phases carrying perf.<phase>.* attribution (the five
/// simulator phases plus the kernel-sum batch inside synth/superpose).
inline constexpr const char* perf_phases[] = {"plan",      "grouping",
                                              "synth",     "superpose",
                                              "decode",    "kernel_sum"};

/// True when the merged snapshot says at least one replica opened its
/// hardware counter group.
inline bool perf_available(const ns::obs::metrics_snapshot& metrics) {
    const ns::obs::gauge_sample* available = metrics.find_gauge("perf.available");
    return available != nullptr && available->max > 0.0;
}

/// Prints the per-phase hardware-counter table for --perf, or the clean
/// degradation message when no replica could open perf events.
inline void print_perf_table(const ns::scenario::scenario_result& result) {
    const ns::obs::metrics_snapshot& metrics = result.sim.metrics;
    if (!perf_available(metrics)) {
        std::cout << "perf counters (" << result.spec.name
                  << "): available=false — perf_event_open denied "
                     "(kernel.perf_event_paranoid, seccomp, NS_PERF_DISABLE "
                     "or NS_OBS=OFF); simulation results are unaffected\n";
        return;
    }
    ns::util::text_table table(
        "hardware counters: " + result.spec.name,
        {"phase", "cycles [M]", "instr [M]", "IPC", "LLC miss", "br miss/kI"});
    for (const char* phase : perf_phases) {
        const std::string prefix = std::string("perf.") + phase;
        const std::uint64_t cycles = metrics.counter_value(prefix + ".cycles");
        const std::uint64_t instructions =
            metrics.counter_value(prefix + ".instructions");
        if (cycles == 0 && instructions == 0) continue;
        const std::uint64_t llc_loads =
            metrics.counter_value(prefix + ".llc_loads");
        const std::uint64_t llc_misses =
            metrics.counter_value(prefix + ".llc_misses");
        const std::uint64_t branch_misses =
            metrics.counter_value(prefix + ".branch_misses");
        table.add_row(
            {phase, ns::util::format_double(static_cast<double>(cycles) / 1e6, 1),
             ns::util::format_double(static_cast<double>(instructions) / 1e6, 1),
             ns::util::format_double(ns::obs::perf_ipc(instructions, cycles), 2),
             ns::util::format_double(
                 100.0 * ns::obs::perf_miss_rate(llc_misses, llc_loads), 1) +
                 " %",
             ns::util::format_double(
                 instructions == 0
                     ? 0.0
                     : 1e3 * static_cast<double>(branch_misses) /
                           static_cast<double>(instructions),
                 2)});
    }
    table.print(std::cout);
}

/// Writes the merged metrics registry as JSON. Counters go into the
/// top-level "points" array as {name, value} rows — the exact shape
/// scripts/check_bench_regression.py gates on (--key name --metric
/// value). Gauges, histograms (with log2-bucket percentiles) and the
/// process-wide engine stats follow as sections. With `strip`, the
/// shared predicate drops the timing histograms and the host-execution
/// process section so two metrics files from different thread counts
/// diff clean.
inline void write_metrics_json(const ns::scenario::scenario_result& result,
                               const std::string& path, bool strip) {
    bench::bench_report report("metrics_" + result.spec.name);
    report.set_strip_timing(strip);
    report.set_scalar("scenario", result.spec.name);
    report.set_scalar("replicas", static_cast<double>(result.replicas));
    report.set_scalar("seed", static_cast<double>(result.spec.sim.seed));
    report.set_scalar("wall_clock_s", result.wall_clock_s);

    const ns::obs::metrics_snapshot& metrics = result.sim.metrics;
    for (const auto& counter : metrics.counters) {
        if (strip && ns::obs::is_host_metric_name(counter.name)) continue;
        report.add_point({{"name", counter.name},
                          {"value", static_cast<double>(counter.value)}});
    }
    if (result.spec.faults.enabled()) {
        // Derived recovery-quality points in the same {name, value} shape
        // the counters use, so check_bench_regression.py gates them with
        // the one --key name --metric value invocation. Both are pure
        // functions of (spec, seed): safe to pin at --tolerance 0.
        double recovery_p95 = 0.0;
        for (const auto& hist : metrics.histograms) {
            if (hist.name == "fault.recovery_rounds") {
                recovery_p95 = hist.percentile(95.0);
                break;
            }
        }
        report.add_point(
            {{"name", "fault.recovery_rounds.p95"}, {"value", recovery_p95}});
        report.add_point(
            {{"name", "fault.recovery_ratio"},
             {"value",
              result.sim.total_down_events == 0
                  ? 1.0
                  : static_cast<double>(result.sim.total_recoveries) /
                        static_cast<double>(result.sim.total_down_events)}});
    }
    for (const auto& gauge : metrics.gauges) {
        if (strip && ns::obs::is_host_metric_name(gauge.name)) continue;
        report.add_section_point(
            "gauges",
            {{"name", gauge.name}, {"last", gauge.last}, {"max", gauge.max}});
    }
    for (const auto& hist : metrics.histograms) {
        if (strip && ns::obs::is_host_metric_name(hist.name)) continue;
        // Unsuffixed field names: units follow the histogram (seconds
        // for the *_s phase probes, plain counts for round.allocs).
        report.add_section_point(
            "histograms",
            {{"name", hist.name},
             {"count", static_cast<double>(hist.count)},
             {"sum", hist.sum},
             {"min", hist.min},
             {"max", hist.max},
             {"mean", hist.mean()},
             {"p50", hist.percentile(50.0)},
             {"p95", hist.percentile(95.0)},
             {"p99", hist.percentile(99.0)}});
    }
    // Roofline attribution of the kernel-accumulation loop. The model
    // itself (elements, bytes, flops, intensity) is deterministic —
    // derived from the phy.kernel_window_elems counter — and is emitted
    // even under strip; the time-derived achieved rates are host facts
    // and only appear in unstripped output.
    const ns::obs::kernel_loop_model model =
        ns::obs::kernel_loop_model_from(metrics);
    if (model.window_elems > 0) {
        std::vector<std::pair<std::string, bench::json_value>> roofline = {
            {"window_elems", static_cast<double>(model.window_elems)},
            {"bytes", model.bytes()},
            {"flops", model.flops()},
            {"arithmetic_intensity", model.arithmetic_intensity()},
        };
        if (!strip) {
            const double seconds = metrics.histogram_sum("phy.kernel_sum_s");
            roofline.push_back({"kernel_sum_wall_s", seconds});
            roofline.push_back({"achieved_gbps", model.achieved_gbps(seconds)});
            roofline.push_back(
                {"achieved_gflops", model.achieved_gflops(seconds)});
        }
        report.add_section_point("roofline", roofline);
    }
    if (!strip) {
        // Per-phase hardware counters (--perf). Same availability
        // contract as the stdout table: a denied perf_event_open leaves
        // the section empty apart from the available flag.
        if (metrics.find_gauge("perf.available") != nullptr) {
            report.set_scalar("perf_available",
                              perf_available(metrics) ? 1.0 : 0.0);
        }
        for (const char* phase : perf_phases) {
            const std::string prefix = std::string("perf.") + phase;
            const std::uint64_t cycles =
                metrics.counter_value(prefix + ".cycles");
            const std::uint64_t instructions =
                metrics.counter_value(prefix + ".instructions");
            if (cycles == 0 && instructions == 0) continue;
            const std::uint64_t llc_loads =
                metrics.counter_value(prefix + ".llc_loads");
            const std::uint64_t llc_misses =
                metrics.counter_value(prefix + ".llc_misses");
            report.add_section_point(
                "perf",
                {{"phase", phase},
                 {"cycles", static_cast<double>(cycles)},
                 {"instructions", static_cast<double>(instructions)},
                 {"ipc", ns::obs::perf_ipc(instructions, cycles)},
                 {"llc_loads", static_cast<double>(llc_loads)},
                 {"llc_misses", static_cast<double>(llc_misses)},
                 {"llc_miss_rate",
                  ns::obs::perf_miss_rate(llc_misses, llc_loads)},
                 {"branch_misses",
                  static_cast<double>(
                      metrics.counter_value(prefix + ".branch_misses"))}});
        }
        // Host-execution stats (process-wide, thread-count dependent by
        // nature — never part of determinism comparisons).
        const auto fft = ns::engine::fft_plan_cache::stats();
        const auto pool = ns::engine::thread_pool::stats();
        const ns::obs::process_usage usage = ns::obs::current_process_usage();
        const std::vector<std::pair<const char*, std::uint64_t>> process = {
            {"fft_cache.hits", fft.hits},
            {"fft_cache.misses", fft.misses},
            {"fft_cache.memo_hits", fft.memo_hits},
            {"fft_cache.scratch_requests", fft.scratch_requests},
            {"thread_pool.tasks_submitted", pool.tasks_submitted},
            {"thread_pool.tasks_executed", pool.tasks_executed},
            {"thread_pool.queue_peak", pool.queue_peak},
            {"peak_rss_bytes", usage.peak_rss_bytes},
            {"minor_page_faults", usage.minor_page_faults},
            {"major_page_faults", usage.major_page_faults},
            {"voluntary_ctx_switches", usage.voluntary_ctx_switches},
            {"involuntary_ctx_switches", usage.involuntary_ctx_switches},
        };
        for (const auto& [name, value] : process) {
            report.add_section_point(
                "process",
                {{"name", name}, {"value", static_cast<double>(value)}});
        }
    }
    report.write(path);
}

}  // namespace ns::apps
