// Shared command-line surface of the netscatter binaries.
//
// One declarative parser (arg_parser) plus the common_options bundle
// both netscatter_sim and netscatter_sweep mount, so --spec / --seed /
// --threads / --round-threads / --json / --metrics / --trace / --perf /
// --strip-wallclock mean exactly the same thing everywhere. Unknown
// flags, missing values and unparsable numbers all fail with a one-line
// error plus the generated usage string — never a silent default.
#pragma once

#include <charconv>
#include <cstdint>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "netscatter/scenario/scenario_spec.hpp"

namespace ns::apps {

/// Strict integer parsing: the whole token must be one base-10 number.
template <typename T>
bool parse_number(const std::string& text, T& out) {
    const char* const end = text.data() + text.size();
    const auto [p, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc{} && p == end;
}

inline bool parse_fidelity(const std::string& text,
                           ns::sim::phy_fidelity& out) {
    if (text == "sample") {
        out = ns::sim::phy_fidelity::sample;
    } else if (text == "symbol") {
        out = ns::sim::phy_fidelity::symbol;
    } else if (text == "auto") {
        out = ns::sim::phy_fidelity::automatic;
    } else {
        return false;
    }
    return true;
}

/// Declarative flag/option table with generated usage text.
class arg_parser {
  public:
    enum class status { ok, help, error };

    arg_parser(std::string program, std::string summary)
        : program_(std::move(program)), summary_(std::move(summary)) {}

    /// A bare flag (no value).
    void add_flag(const std::string& name, const std::string& help,
                  std::function<void()> apply) {
        entries_.push_back({name, "", help,
                            [apply = std::move(apply)](const std::string&) {
                                apply();
                                return true;
                            },
                            false});
    }

    /// An option taking one value; `apply` returns false to reject it.
    void add_option(const std::string& name, const std::string& value_name,
                    const std::string& help,
                    std::function<bool(const std::string&)> apply) {
        entries_.push_back({name, value_name, help, std::move(apply), true});
    }

    std::string usage() const {
        std::ostringstream out;
        out << "usage: " << program_ << " " << summary_ << "\n";
        for (const auto& entry : entries_) {
            std::string head = "  " + entry.name;
            if (entry.takes_value) head += " " + entry.value_name;
            out << head;
            if (head.size() < 22) out << std::string(22 - head.size(), ' ');
            out << " " << entry.help << "\n";
        }
        return out.str();
    }

    /// Parses argv. Unknown flags, missing values and rejected values
    /// print a one-line error plus the usage string to stderr and
    /// return status::error; --help/-h prints usage to stdout and
    /// returns status::help.
    status parse(int argc, char** argv) const {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::cout << usage();
                return status::help;
            }
            const entry* matched = nullptr;
            for (const auto& candidate : entries_) {
                if (candidate.name == arg) {
                    matched = &candidate;
                    break;
                }
            }
            if (matched == nullptr) {
                return fail("unknown option: " + arg);
            }
            std::string value;
            if (matched->takes_value) {
                if (i + 1 >= argc) {
                    return fail("missing value for " + arg);
                }
                value = argv[++i];
            }
            if (!matched->apply(value)) {
                return fail("invalid value for " + arg + ": '" + value + "'");
            }
        }
        return status::ok;
    }

  private:
    struct entry {
        std::string name;
        std::string value_name;
        std::string help;
        std::function<bool(const std::string&)> apply;
        bool takes_value;
    };

    status fail(const std::string& message) const {
        std::cerr << program_ << ": " << message << "\n" << usage();
        return status::error;
    }

    std::string program_;
    std::string summary_;
    std::vector<entry> entries_;
};

/// The flag set shared by netscatter_sim and netscatter_sweep. Mounted
/// in three slices so each binary picks what applies, but a mounted
/// flag always has the same name, value syntax and semantics.
struct common_options {
    // Spec overrides (applied after the spec/registry load).
    std::optional<std::size_t> rounds;
    std::optional<std::size_t> replicas;
    std::optional<std::uint64_t> seed;
    std::optional<ns::sim::phy_fidelity> fidelity;
    std::optional<std::size_t> round_threads;

    // Execution policy.
    std::size_t threads = 0;
    bool parallel = true;

    // Outputs.
    bool strip_wallclock = false;
    bool perf = false;
    std::string json_path;
    std::string metrics_path;
    std::string trace_path;

    /// --rounds/--replicas/--seed/--fidelity/--round-threads.
    void mount_override_flags(arg_parser& parser) {
        parser.add_option("--rounds", "N", "override per-replica rounds",
                          [this](const std::string& v) {
                              std::size_t n{};
                              if (!parse_number(v, n) || n == 0) return false;
                              rounds = n;
                              return true;
                          });
        parser.add_option("--replicas", "N", "override replica count",
                          [this](const std::string& v) {
                              std::size_t n{};
                              if (!parse_number(v, n) || n == 0) return false;
                              replicas = n;
                              return true;
                          });
        parser.add_option("--seed", "S", "override base seed",
                          [this](const std::string& v) {
                              std::uint64_t s{};
                              if (!parse_number(v, s)) return false;
                              seed = s;
                              return true;
                          });
        parser.add_option("--fidelity", "F",
                          "PHY channel fidelity: sample | symbol | auto",
                          [this](const std::string& v) {
                              ns::sim::phy_fidelity f{};
                              if (!parse_fidelity(v, f)) return false;
                              fidelity = f;
                              return true;
                          });
        parser.add_option(
            "--round-threads", "N",
            "intra-round symbol-sweep threads per replica (default 1; "
            "results identical at any N)",
            [this](const std::string& v) {
                std::size_t n{};
                if (!parse_number(v, n) || n == 0) return false;
                round_threads = n;
                return true;
            });
    }

    /// --threads/--serial.
    void mount_execution_flags(arg_parser& parser) {
        parser.add_option("--threads", "N", "worker threads (0 = all cores)",
                          [this](const std::string& v) {
                              return parse_number(v, threads);
                          });
        parser.add_flag("--serial",
                        "serial reference execution (identical results)",
                        [this] { parallel = false; });
    }

    /// --json/--metrics/--trace/--perf/--strip-wallclock.
    void mount_output_flags(arg_parser& parser) {
        parser.add_option("--json", "PATH", "report JSON output path",
                          [this](const std::string& v) {
                              json_path = v;
                              return !v.empty();
                          });
        parser.add_option(
            "--metrics", "PATH",
            "write the full metrics registry (counters, gauges, per-phase "
            "histograms, process stats) as JSON",
            [this](const std::string& v) {
                metrics_path = v;
                return !v.empty();
            });
        parser.add_option(
            "--trace", "PATH",
            "record per-round phase spans and write them as Chrome/Perfetto "
            "trace JSON (load at ui.perfetto.dev)",
            [this](const std::string& v) {
                trace_path = v;
                return !v.empty();
            });
        parser.add_flag(
            "--perf",
            "open hardware perf counters per replica and print per-phase "
            "cycles/instructions/IPC (degrades to available=false where "
            "perf_event_open is denied; never changes simulation results)",
            [this] { perf = true; });
        parser.add_flag(
            "--strip-wallclock",
            "omit every timing field from the JSON (shared is_timing_name "
            "predicate) so reports from different thread counts diff clean",
            [this] { strip_wallclock = true; });
    }

    /// Applies the spec overrides (NOT the obs trace/perf switches —
    /// those are set by the binary right before running, per output
    /// target).
    void apply_overrides(ns::scenario::scenario_spec& spec) const {
        if (rounds) spec.sim.rounds = *rounds;
        if (replicas) spec.replicas = *replicas;
        if (seed) spec.sim.seed = *seed;
        if (fidelity) spec.sim.fidelity = *fidelity;
        if (round_threads) spec.sim.intra_round_threads = *round_threads;
    }
};

}  // namespace ns::apps
