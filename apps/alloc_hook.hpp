// Binary-local allocation hook for the CLI tools.
//
// Every operator new in the including binary is tallied into the
// thread-local obs counters, which is what gives --metrics its alloc.*
// values. Replacement stays binary-local by design — the library never
// forces the hook on other consumers — so this header must be included
// by exactly one translation unit per executable (each app is a single
// .cpp, so including it at the top of main's TU is the whole story).
//
// GCC cannot prove that the replaced malloc-backed operator new pairs
// with the free() in the replaced delete when only one side of the pair
// is inlined at a call site, so -Wmismatched-new-delete is a false
// positive here and is silenced for the hook definitions.
#pragma once

#include <cstdlib>
#include <new>

#include "netscatter/obs/metrics.hpp"

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
    ns::obs::record_allocation(size);
    if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
