// Near-far playground: interactively explore the near-far problem
// (§3.2.3) with two devices.
//
// Device A is strong (near the AP) at cyclic shift 0; device B's shift
// and relative power are swept. The program reports, for each bin
// separation, whether B still decodes — reproducing in miniature the
// dynamic-range behaviour of Fig. 15b and the 13.5 dB SKIP=2 limit.
//
// Usage: ./build/examples/near_far_playground [strong_snr_db] [trials]
#include <cstdlib>
#include <iostream>
#include <span>

#include "netscatter/netscatter.hpp"

namespace {

// Returns the fraction of B's packets that decode at the given geometry.
double weak_delivery_rate(std::uint32_t shift_b, double snr_a_db, double snr_b_db,
                          int trials, ns::util::rng& rng) {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const ns::phy::frame_format frame = ns::phy::linklayer_format();
    ns::rx::receiver receiver({.phy = phy, .frame = frame});
    receiver.set_registered_shifts({0, shift_b});

    int delivered = 0;
    for (int t = 0; t < trials; ++t) {
        std::vector<ns::channel::tx_contribution> txs;
        std::vector<ns::dsp::cvec> waveforms;
        std::vector<bool> payload_b;
        for (int device = 0; device < 2; ++device) {
            const std::vector<bool> payload = rng.bits(frame.payload_bits);
            if (device == 1) payload_b = payload;
            ns::phy::distributed_modulator mod(phy, device == 0 ? 0 : shift_b);
            ns::channel::tx_contribution tx;
            waveforms.push_back(mod.modulate_packet(ns::phy::build_frame_bits(frame, payload)));
            tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
            tx.snr_db = device == 0 ? snr_a_db : snr_b_db;
            // Residual jitter keeps the scenario honest.
            tx.timing_offset_s = rng.uniform(-0.5e-6, 0.5e-6);
            txs.push_back(std::move(tx));
        }
        const std::size_t samples =
            (frame.preamble_symbols + frame.payload_plus_crc_bits()) *
            phy.samples_per_symbol();
        ns::channel::channel_config channel;
        ns::channel::channel_workspace chan_ws;
        const ns::dsp::cvec received = ns::channel::combine(
            std::span<const ns::channel::tx_contribution>(txs), samples, phy,
            channel, rng, chan_ws);
        const auto result = receiver.decode(received, 0);
        if (result.reports[1].crc_ok && result.reports[1].payload == payload_b) {
            ++delivered;
        }
    }
    return static_cast<double>(delivered) / trials;
}

}  // namespace

int main(int argc, char** argv) {
    const double snr_a = argc > 1 ? std::atof(argv[1]) : 20.0;
    const int trials = argc > 2 ? std::atoi(argv[2]) : 5;
    ns::util::rng rng(7);

    std::cout << "Near-far playground: strong device at shift 0, SNR " << snr_a
              << " dB\nweak device swept in shift and power (delivery of the weak "
                 "device)\n\n";

    ns::util::text_table table(
        "weak-device delivery rate vs bin separation and power difference",
        {"separation [bins]", "predicted tolerable [dB]", "diff 10 dB", "diff 20 dB",
         "diff 30 dB"});

    const auto phy = ns::phy::deployed_params();
    for (std::uint32_t separation : {2u, 8u, 32u, 128u, 256u}) {
        std::vector<std::string> row;
        row.push_back(std::to_string(separation));
        row.push_back(ns::util::format_double(
            ns::mac::tolerable_power_difference_db(phy, separation), 1));
        for (double diff : {10.0, 20.0, 30.0}) {
            const double rate =
                weak_delivery_rate(separation, snr_a, snr_a - diff, trials, rng);
            row.push_back(ns::util::format_double(100.0 * rate, 0) + "%");
        }
        table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\nLesson (§3.2.3): park weak devices far (in bins) from strong "
                 "ones — exactly what the power-aware allocator does.\n";
    return 0;
}
