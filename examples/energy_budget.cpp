// Energy budget: what a report costs a device, from the paper's 65nm IC
// numbers (§4.1: 45.2 uW transmitting), and how long a button cell lasts.
//
// Also shows the honest energy trade against polled LoRa backscatter:
// NetScatter devices listen to ONE short query per round (a polled device
// must listen for its turn across the whole epoch), but spend more
// transmit energy because ON-OFF keying uses one symbol per bit.
//
// Usage: ./build/examples/energy_budget [report_period_s] [num_devices]
#include <cstdlib>
#include <iostream>

#include "netscatter/netscatter.hpp"

int main(int argc, char** argv) {
    const double period_s = argc > 1 ? std::atof(argv[1]) : 10.0;
    const std::size_t num_devices =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 256;

    const ns::device::ic_power_model power{};
    const auto phy = ns::phy::deployed_params();
    const auto frame = ns::phy::linklayer_format();

    std::cout << "IC power (TSMC 65nm, SS4.1):\n"
              << "  envelope detector : " << power.envelope_detector_w * 1e6 << " uW\n"
              << "  baseband processor: " << power.baseband_processor_w * 1e6 << " uW\n"
              << "  chirp generator   : " << power.chirp_generator_w * 1e6 << " uW\n"
              << "  switch network    : " << power.switch_network_w * 1e6 << " uW\n"
              << "  total transmitting: " << power.transmit_w() * 1e6 << " uW\n\n";

    const auto netscatter = ns::device::netscatter_round_energy(
        power, phy, frame, 32.0 / ns::mac::downlink_bitrate_bps, period_s);
    const auto polled = ns::device::lora_polled_epoch_energy(
        power, phy, frame, 28.0 / ns::mac::downlink_bitrate_bps, num_devices);

    ns::util::text_table table(
        "energy per delivered report (payload " +
            std::to_string(frame.payload_bits) + " bits)",
        {"", "NetScatter", "LoRa-BS polled (" + std::to_string(num_devices) + " devs)"});
    table.add_row({"listen [uJ]", ns::util::format_double(netscatter.listen_j * 1e6, 3),
                   ns::util::format_double(polled.listen_j * 1e6, 3)});
    table.add_row({"transmit [uJ]",
                   ns::util::format_double(netscatter.transmit_j * 1e6, 3),
                   ns::util::format_double(polled.transmit_j * 1e6, 3)});
    table.add_row({"per payload bit [nJ]",
                   ns::util::format_double(netscatter.per_payload_bit_j * 1e9, 1),
                   ns::util::format_double(polled.per_payload_bit_j * 1e9, 1)});
    table.print(std::cout);

    const double years =
        ns::device::battery_life_years(225.0, 3.0, netscatter.total_j, period_s);
    std::cout << "\na CR2032 (225 mAh) reporting every "
              << ns::util::format_double(period_s, 1) << " s lasts ~"
              << ns::util::format_double(years, 0)
              << " years of active energy — the battery's shelf life, not the "
                 "radio, is the limit (the paper's 'button cell' claim).\n";
    return 0;
}
