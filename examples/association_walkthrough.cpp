// Association walkthrough: a narrated run of the NetScatter network
// protocol (Fig. 10) — queries, association requests on reserved shifts,
// piggybacked assignments, ACKs, power adaptation and re-association.
//
// Usage: ./build/examples/association_walkthrough
#include <iomanip>
#include <iostream>

#include "netscatter/netscatter.hpp"

namespace {

const char* action_name(ns::device::device_action action) {
    switch (action) {
        case ns::device::device_action::none: return "silent (query not heard)";
        case ns::device::device_action::association_request: return "ASSOCIATION REQUEST";
        case ns::device::device_action::association_ack: return "ASSOCIATION ACK";
        case ns::device::device_action::transmit_data: return "DATA";
        case ns::device::device_action::skip: return "skip (power out of tolerance)";
    }
    return "?";
}

}  // namespace

int main() {
    const ns::mac::allocation_params alloc{.phy = ns::phy::deployed_params(),
                                           .skip = 2,
                                           .num_association_slots = 2};
    ns::mac::access_point ap(alloc);

    ns::device::device_params dev_params;
    dev_params.detector.rssi_noise_sigma_db = 0.0;
    dev_params.detector.rssi_step_db = 0.0;

    // Device 1 is near the AP (strong query), device 2 far (weak query).
    ns::device::backscatter_device device1(1, dev_params, 11);
    ns::device::backscatter_device device2(2, dev_params, 22);
    const double rssi1 = -25.0, rssi2 = -45.0;

    std::cout << "== NetScatter association walkthrough (Fig. 10) ==\n";
    std::cout << "reserved association shifts: high-SNR region -> "
              << ap.allocator().association_shift(ns::device::snr_region::high)
              << ", low-SNR region -> "
              << ap.allocator().association_shift(ns::device::snr_region::low) << "\n\n";

    auto narrate = [&](int round, const char* who, const ns::device::transmit_intent& i) {
        std::cout << "  round " << round << " | " << who << ": " << action_name(i.action);
        if (i.action == ns::device::device_action::association_request) {
            std::cout << " (region "
                      << (i.association_region == ns::device::snr_region::high ? "high"
                                                                               : "low")
                      << ", gain " << i.gain_db << " dB)";
        }
        if (i.action == ns::device::device_action::transmit_data ||
            i.action == ns::device::device_action::association_ack) {
            std::cout << " on shift " << i.cyclic_shift << " at gain " << i.gain_db
                      << " dB";
        }
        std::cout << "\n";
    };

    // Round 1: both devices hear the first query and request association.
    std::cout << "AP broadcasts query 1 (" << ap.build_query().length_bits()
              << " bits on the 160 kbps ASK downlink)\n";
    auto intent1 = device1.handle_query(rssi1, std::nullopt);
    auto intent2 = device2.handle_query(rssi2, std::nullopt);
    narrate(1, "device 1 (near)", intent1);
    narrate(1, "device 2 (far) ", intent2);

    // The AP admits device 1 first (deployment turns devices on one at a
    // time, §3.3.2), then device 2.
    const auto response1 = ap.handle_association_request(
        {.device_id = 1, .region = intent1.association_region, .rx_power_dbm = -90.0});
    std::cout << "AP assigns device 1 -> slot " << int{response1.shift_slot}
              << " (shift " << response1.shift_slot * alloc.skip << ")\n";

    intent1 = device1.handle_query(
        rssi1, ns::device::shift_assignment{
                   .network_id = response1.network_id,
                   .cyclic_shift = static_cast<std::uint32_t>(response1.shift_slot *
                                                              alloc.skip)});
    narrate(2, "device 1 (near)", intent1);
    ap.handle_association_ack(1);

    const auto response2 = ap.handle_association_request(
        {.device_id = 2, .region = intent2.association_region, .rx_power_dbm = -108.0});
    std::cout << "AP assigns device 2 -> slot " << int{response2.shift_slot}
              << " (shift " << response2.shift_slot * alloc.skip << ")\n";
    intent2 = device2.handle_query(
        rssi2, ns::device::shift_assignment{
                   .network_id = response2.network_id,
                   .cyclic_shift = static_cast<std::uint32_t>(response2.shift_slot *
                                                              alloc.skip)});
    narrate(2, "device 2 (far) ", intent2);
    ap.handle_association_ack(2);

    // Rounds 3-5: steady-state data with power adaptation. The channel to
    // device 1 strengthens, so it dials its gain down (§3.2.3).
    std::cout << "\nsteady state: both devices transmit concurrently; device 1's "
                 "channel improves by 2 dB\n";
    for (int round = 3; round <= 5; ++round) {
        const double drift = (round - 2) * 1.0;  // downlink strengthens 1 dB/round
        intent1 = device1.handle_query(rssi1 + drift, std::nullopt);
        intent2 = device2.handle_query(rssi2, std::nullopt);
        narrate(round, "device 1 (near)", intent1);
        narrate(round, "device 2 (far) ", intent2);
    }

    // A drastic channel change forces device 1 to re-associate.
    std::cout << "\ndevice 1 moves next to the AP (+10 dB downlink): tolerance "
                 "exceeded -> skip, skip, re-associate (§3.2.3)\n";
    for (int round = 6; round <= 8; ++round) {
        intent1 = device1.handle_query(rssi1 + 10.0, std::nullopt);
        narrate(round, "device 1 (near)", intent1);
    }
    return 0;
}
