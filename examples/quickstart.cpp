// Quickstart: the smallest end-to-end NetScatter example.
//
// Four backscatter devices are assigned cyclic shifts, transmit their
// payloads *concurrently* through a noisy channel, and the receiver
// recovers all four packets from the superposed baseband with one FFT
// per symbol.
//
// Build & run:  ./build/examples/quickstart
#include <cstdint>
#include <iostream>
#include <span>

#include "netscatter/netscatter.hpp"

int main() {
    // 1. PHY configuration: the deployed 500 kHz / SF 9 link (Table 1).
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const ns::phy::frame_format frame = ns::phy::linklayer_format();
    std::cout << "NetScatter quickstart\n"
              << "  bandwidth        : " << phy.bandwidth_hz / 1e3 << " kHz\n"
              << "  spreading factor : " << phy.spreading_factor << "\n"
              << "  per-device rate  : " << phy.onoff_bitrate_bps() << " bps\n"
              << "  concurrent slots : " << phy.num_bins() / 2 << " (SKIP=2)\n\n";

    ns::util::rng rng(2026);

    // 2. Assign cyclic shifts (what the AP does at association) and build
    //    each device's packet: 8-symbol preamble + ON-OFF keyed payload.
    const std::vector<std::uint32_t> shifts = {0, 128, 256, 384};
    std::vector<std::vector<bool>> payloads;
    std::vector<ns::channel::tx_contribution> over_the_air;
    std::vector<ns::dsp::cvec> waveforms;
    for (std::uint32_t shift : shifts) {
        const std::vector<bool> payload = rng.bits(frame.payload_bits);
        payloads.push_back(payload);
        const std::vector<bool> bits = ns::phy::build_frame_bits(frame, payload);

        ns::phy::distributed_modulator modulator(phy, shift);
        ns::channel::tx_contribution tx;
        waveforms.push_back(modulator.modulate_packet(bits));
        tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
        tx.snr_db = -5.0;  // each device 5 dB below the noise floor
        over_the_air.push_back(std::move(tx));
    }

    // 3. The channel superposes all transmissions and adds noise.
    const std::size_t samples =
        (frame.preamble_symbols + frame.payload_plus_crc_bits()) *
        phy.samples_per_symbol();
    ns::channel::channel_config channel;
    ns::channel::channel_workspace chan_ws;
    const ns::dsp::cvec received = ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(over_the_air), samples, phy,
        channel, rng, chan_ws);

    // 4. One receiver decodes everyone.
    ns::rx::receiver receiver({.phy = phy, .frame = frame});
    receiver.set_registered_shifts(shifts);
    const ns::rx::decode_result result = receiver.decode(received, 0);

    std::cout << "decoded " << result.reports.size() << " devices at SNR -5 dB:\n";
    bool all_ok = true;
    for (std::size_t d = 0; d < result.reports.size(); ++d) {
        const auto& report = result.reports[d];
        const bool payload_ok = report.crc_ok && report.payload == payloads[d];
        all_ok = all_ok && payload_ok;
        std::cout << "  device at shift " << report.cyclic_shift
                  << ": detected=" << (report.detected ? "yes" : "no")
                  << " crc=" << (report.crc_ok ? "ok" : "FAIL")
                  << " payload=" << (payload_ok ? "correct" : "WRONG") << "\n";
    }
    std::cout << (all_ok ? "\nall packets recovered from one concurrent round\n"
                         : "\nsome packets were lost — try a different seed\n");
    return all_ok ? 0 : 1;
}
