// Office sensing: the paper's motivating deployment (Fig. 1) in
// simulation — 256 backscatter sensors spread over a multi-room office
// floor, all reporting concurrently to one AP.
//
// The example runs the registered `office-256` scenario through the
// scenario engine — the supported entry point for network-scale
// experiments — then reports the Figs. 17-19 style network metrics.
// Overriding the population, round count and seed shows how any
// registered spec can be customized before running.
//
// Usage: ./build/example_office_sensing [num_devices] [rounds] [seed]
#include <cstdlib>
#include <iostream>

#include "netscatter/netscatter.hpp"

int main(int argc, char** argv) {
    const std::size_t num_devices =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;
    const std::size_t rounds = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;
    const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

    std::cout << "Office deployment: " << num_devices << " devices, " << rounds
              << " concurrent rounds (seed " << seed << ")\n\n";

    // Start from the registered office scenario and customize it.
    ns::scenario::scenario_spec spec =
        *ns::scenario::find_scenario("office-256");
    spec.geometry.num_devices = num_devices;
    spec.sim.rounds = rounds;
    spec.sim.seed = seed;
    spec.replicas = 1;

    // The deployment's link budget (regenerate the same floor the runner
    // will simulate — both are pure functions of the spec).
    const ns::sim::deployment dep(ns::scenario::resolve_geometry(spec.geometry),
                                  num_devices, seed);
    double min_snr = 1e9, max_snr = -1e9;
    for (const auto& device : dep.devices()) {
        min_snr = std::min(min_snr, device.uplink_snr_db);
        max_snr = std::max(max_snr, device.uplink_snr_db);
    }
    std::cout << "uplink SNR across the floor: " << ns::util::format_double(min_snr, 1)
              << " .. " << ns::util::format_double(max_snr, 1)
              << " dB (near-far spread " << ns::util::format_double(max_snr - min_snr, 1)
              << " dB)\n";

    // Run the scenario.
    const ns::scenario::scenario_result result = ns::scenario::run_scenario(spec);

    std::cout << "delivery rate: "
              << ns::util::format_double(100.0 * result.sim.delivery_rate(), 1)
              << " % of transmitted packets (BER "
              << ns::util::format_double(result.sim.ber(), 4) << ", goodput "
              << ns::util::format_double(result.throughput_bps() / 1e3, 1)
              << " kbps)\n\n";

    // Network metrics per round (Fig. 17/18/19 quantities).
    const double delivered = result.sim.mean_delivered_per_round();
    const auto metrics = ns::sim::netscatter_metrics(
        spec.sim.frame, spec.sim.phy, ns::sim::query_config::config1,
        static_cast<std::size_t>(delivered), num_devices);
    const auto lora =
        ns::baseline::fixed_rate_network(spec.sim.frame, num_devices);

    ns::util::text_table table("NetScatter vs LoRa backscatter (query-response TDMA)",
                               {"metric", "NetScatter", "LoRa backscatter", "gain"});
    table.add_row({"network PHY rate [kbps]",
                   ns::util::format_double(metrics.phy_rate_bps / 1e3, 1),
                   ns::util::format_double(lora.phy_rate_bps / 1e3, 1),
                   ns::util::format_double(metrics.phy_rate_bps / lora.phy_rate_bps, 1) + "x"});
    table.add_row({"link-layer rate [kbps]",
                   ns::util::format_double(metrics.linklayer_rate_bps / 1e3, 1),
                   ns::util::format_double(lora.linklayer_rate_bps / 1e3, 1),
                   ns::util::format_double(
                       metrics.linklayer_rate_bps / lora.linklayer_rate_bps, 1) + "x"});
    table.add_row({"network latency [ms]",
                   ns::util::format_double(metrics.latency_s * 1e3, 1),
                   ns::util::format_double(lora.latency_s * 1e3, 1),
                   ns::util::format_double(lora.latency_s / metrics.latency_s, 1) +
                       "x lower"});
    table.print(std::cout);
    return 0;
}
