// Unit tests for ns::rx — the NetScatter receiver: packet-start
// detection, concurrent decoding, thresholding, CRC.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/phy/frame.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/rx/stream_receiver.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using namespace ns::rx;
using ns::dsp::cplx;
using ns::dsp::cvec;

receiver_params default_rx() {
    receiver_params params;
    params.phy = ns::phy::deployed_params();
    params.frame = ns::phy::linklayer_format();
    return params;
}

// Builds the superposed stream of several devices with per-device SNRs
// and random payloads; returns the stream and the sent frame bits.
struct concurrent_setup {
    cvec stream;
    std::vector<std::uint32_t> shifts;
    std::vector<std::vector<bool>> frame_bits;
};

concurrent_setup make_concurrent(const receiver_params& rxp,
                                 const std::vector<std::uint32_t>& shifts,
                                 const std::vector<double>& snrs_db,
                                 ns::util::rng& gen, std::size_t lead_in = 0) {
    concurrent_setup setup;
    setup.shifts = shifts;
    const std::size_t packet_samples =
        (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
        rxp.phy.samples_per_symbol();
    std::vector<ns::channel::tx_contribution> contributions;
    std::vector<ns::dsp::cvec> waveforms;
    for (std::size_t d = 0; d < shifts.size(); ++d) {
        const std::vector<bool> payload = gen.bits(rxp.frame.payload_bits);
        const std::vector<bool> bits = ns::phy::build_frame_bits(rxp.frame, payload);
        setup.frame_bits.push_back(bits);
        ns::phy::distributed_modulator mod(rxp.phy, shifts[d]);
        ns::channel::tx_contribution tx;
        waveforms.push_back(mod.modulate_packet(bits));
        tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
        tx.snr_db = snrs_db[d];
        tx.sample_delay = lead_in;
        contributions.push_back(std::move(tx));
    }
    ns::channel::channel_config config;
    ns::channel::channel_workspace chan_ws;
    setup.stream = ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(contributions),
        packet_samples + lead_in + rxp.phy.samples_per_symbol(), rxp.phy, config,
        gen, chan_ws);
    return setup;
}

TEST(receiver, single_device_clean_decode) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({100});
    ns::util::rng gen(1);
    const auto setup = make_concurrent(rxp, {100}, {10.0}, gen);
    const decode_result result = rx.decode(setup.stream, 0);
    ASSERT_EQ(result.reports.size(), 1u);
    EXPECT_TRUE(result.reports[0].detected);
    EXPECT_TRUE(result.reports[0].crc_ok);
    EXPECT_EQ(result.reports[0].bits, setup.frame_bits[0]);
}

TEST(receiver, decodes_below_noise_floor) {
    // -12 dB per-sample SNR: below the noise floor, inside the SF 9
    // sensitivity budget (SNR_min = -12.5 dB).
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({40});
    ns::util::rng gen(2);
    int delivered = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto setup = make_concurrent(rxp, {40}, {-12.0}, gen);
        const decode_result result = rx.decode(setup.stream, 0);
        if (result.reports[0].crc_ok && result.reports[0].bits == setup.frame_bits[0]) {
            ++delivered;
        }
    }
    EXPECT_GE(delivered, 8);
}

TEST(receiver, eight_concurrent_devices) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    std::vector<std::uint32_t> shifts = {0, 64, 128, 192, 256, 320, 384, 448};
    rx.set_registered_shifts(shifts);
    ns::util::rng gen(3);
    const std::vector<double> snrs(8, 0.0);
    const auto setup = make_concurrent(rxp, shifts, snrs, gen);
    const decode_result result = rx.decode(setup.stream, 0);
    for (std::size_t d = 0; d < 8; ++d) {
        EXPECT_TRUE(result.reports[d].detected) << d;
        EXPECT_TRUE(result.reports[d].crc_ok) << d;
        EXPECT_EQ(result.reports[d].bits, setup.frame_bits[d]) << d;
    }
}

TEST(receiver, absent_device_not_detected) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({100, 300});  // 300 never transmits
    ns::util::rng gen(4);
    const auto setup = make_concurrent(rxp, {100}, {10.0}, gen);
    const decode_result result = rx.decode(setup.stream, 0);
    EXPECT_TRUE(result.reports[0].detected);
    EXPECT_FALSE(result.reports[1].detected);
    EXPECT_FALSE(result.reports[1].crc_ok);
}

TEST(receiver, pure_noise_detects_nothing) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({10, 100, 200});
    ns::util::rng gen(5);
    const std::size_t samples =
        (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
        rxp.phy.samples_per_symbol();
    const cvec noise = ns::channel::make_noise(samples, 1.0, gen);
    const decode_result result = rx.decode(noise, 0);
    for (const auto& report : result.reports) {
        EXPECT_FALSE(report.detected);
    }
}

TEST(receiver, near_far_within_tolerance) {
    // Two devices separated by half the band tolerate ~35 dB (Fig. 15b).
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({2, 258});
    ns::util::rng gen(6);
    int weak_ok = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto setup = make_concurrent(rxp, {2, 258}, {25.0, -8.0}, gen);
        const decode_result result = rx.decode(setup.stream, 0);
        EXPECT_TRUE(result.reports[0].crc_ok);  // the strong one always works
        if (result.reports[1].crc_ok && result.reports[1].bits == setup.frame_bits[1]) {
            ++weak_ok;
        }
    }
    EXPECT_GE(weak_ok, 8);
}

TEST(receiver, detect_packet_start_finds_offset) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({100});
    ns::util::rng gen(7);
    const std::size_t lead_in = 300;  // packet starts 300 samples in
    const auto setup = make_concurrent(rxp, {100}, {10.0}, gen, lead_in);
    const auto start = rx.detect_packet_start(setup.stream);
    ASSERT_TRUE(start.has_value());
    EXPECT_NEAR(static_cast<double>(*start), static_cast<double>(lead_in), 2.0);
}

TEST(receiver, receive_end_to_end_with_offset) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({64, 320});
    ns::util::rng gen(8);
    const auto setup = make_concurrent(rxp, {64, 320}, {8.0, 8.0}, gen, 450);
    const auto result = rx.receive(setup.stream);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->reports[0].crc_ok);
    EXPECT_TRUE(result->reports[1].crc_ok);
    EXPECT_EQ(result->reports[0].bits, setup.frame_bits[0]);
    EXPECT_EQ(result->reports[1].bits, setup.frame_bits[1]);
}

TEST(receiver, detect_returns_nullopt_on_noise) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({100});
    ns::util::rng gen(9);
    const cvec noise = ns::channel::make_noise(40000, 1.0, gen);
    EXPECT_FALSE(rx.detect_packet_start(noise).has_value());
}

TEST(receiver, decode_requires_full_packet) {
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({100});
    EXPECT_THROW(rx.decode(cvec(100), 0), ns::util::invalid_argument);
}

TEST(receiver, rejects_out_of_range_shift) {
    receiver rx(default_rx());
    EXPECT_THROW(rx.set_registered_shifts({512}), ns::util::invalid_argument);
}

TEST(receiver, payload_zero_and_one_runs) {
    // All-ones and all-zeros payloads stress the ON-OFF threshold: the
    // preamble power estimate must hold even when the payload is silent.
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({128});
    ns::util::rng gen(10);
    for (const bool value : {false, true}) {
        const std::vector<bool> payload(rxp.frame.payload_bits, value);
        const std::vector<bool> bits = ns::phy::build_frame_bits(rxp.frame, payload);
        ns::phy::distributed_modulator mod(rxp.phy, 128);
        ns::channel::tx_contribution tx;
        const ns::dsp::cvec waveform = mod.modulate_packet(bits);
        tx.waveform = std::span<const ns::dsp::cplx>(waveform);
        tx.snr_db = 5.0;
        ns::channel::channel_config config;
        ns::channel::channel_workspace chan_ws;
        const cvec stream = ns::channel::combine(
            std::span<const ns::channel::tx_contribution>(&tx, 1),
            tx.waveform.size(), rxp.phy, config, gen, chan_ws);
        const decode_result result = rx.decode(stream, 0);
        EXPECT_TRUE(result.reports[0].crc_ok) << "payload value " << value;
    }
}

TEST(receiver, timing_jitter_within_skip_tolerated) {
    // A residual offset of 0.8 bins stays within the SKIP = 2 guard and
    // must not break decoding (power_at_bin searches +-half a bin, and
    // the neighbouring slot is empty).
    const receiver_params rxp = default_rx();
    receiver rx(rxp);
    rx.set_registered_shifts({100, 102});
    ns::util::rng gen(11);
    ns::phy::distributed_modulator mod_a(rxp.phy, 100);
    ns::phy::distributed_modulator mod_b(rxp.phy, 102);
    const std::vector<bool> payload_a = gen.bits(rxp.frame.payload_bits);
    const std::vector<bool> payload_b = gen.bits(rxp.frame.payload_bits);
    const auto bits_a = ns::phy::build_frame_bits(rxp.frame, payload_a);
    const auto bits_b = ns::phy::build_frame_bits(rxp.frame, payload_b);

    ns::channel::tx_contribution a, b;
    const ns::dsp::cvec wave_a = mod_a.modulate_packet(bits_a);
    const ns::dsp::cvec wave_b = mod_b.modulate_packet(bits_b);
    a.waveform = std::span<const ns::dsp::cplx>(wave_a);
    a.snr_db = 5.0;
    a.timing_offset_s = 0.8e-6;  // 0.4 bins
    b.waveform = std::span<const ns::dsp::cplx>(wave_b);
    b.snr_db = 5.0;
    b.timing_offset_s = -0.8e-6;
    ns::channel::channel_config config;
    const std::array<ns::channel::tx_contribution, 2> txs{a, b};
    ns::channel::channel_workspace chan_ws;
    const cvec stream =
        ns::channel::combine(std::span<const ns::channel::tx_contribution>(txs),
                             a.waveform.size(), rxp.phy, config, gen, chan_ws);
    const decode_result result = rx.decode(stream, 0);
    EXPECT_TRUE(result.reports[0].crc_ok);
    EXPECT_TRUE(result.reports[1].crc_ok);
    EXPECT_EQ(result.reports[0].bits, bits_a);
    EXPECT_EQ(result.reports[1].bits, bits_b);
}

// ------------------------------------------------------ stream_receiver --

std::size_t packet_samples_of(const receiver_params& rxp) {
    return (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
           rxp.phy.samples_per_symbol();
}

TEST(stream_receiver, packet_straddling_chunk_boundary_decodes_once) {
    // The packet begins in the first chunk but its tail arrives in the
    // second: the receiver must hold the partial packet and emit exactly
    // one callback, at the correct absolute offset.
    const receiver_params rxp = default_rx();
    const std::size_t packet_len = packet_samples_of(rxp);

    std::vector<std::size_t> offsets;
    std::size_t crc_ok_count = 0;
    stream_receiver_params params;
    params.rx = rxp;
    stream_receiver stream_rx(params, [&](std::size_t offset, const decode_result& r) {
        offsets.push_back(offset);
        if (!r.reports.empty() && r.reports[0].crc_ok) ++crc_ok_count;
    });
    stream_rx.set_registered_shifts({100});

    ns::util::rng gen(31);
    const std::size_t lead_in = 2000;
    const auto setup = make_concurrent(rxp, {100}, {10.0}, gen, lead_in);
    ASSERT_GT(setup.stream.size(), lead_in + packet_len);

    // First chunk ends mid-packet (but already holds > one packet length,
    // so the detector runs and must wait for the tail).
    const std::size_t cut = lead_in + packet_len - 1500;
    ASSERT_GT(cut, packet_len);
    stream_rx.push_samples(
        std::span<const cplx>(setup.stream.data(), cut));
    EXPECT_EQ(stream_rx.packets_decoded(), 0u);

    stream_rx.push_samples(std::span<const cplx>(setup.stream.data() + cut,
                                                 setup.stream.size() - cut));
    EXPECT_EQ(stream_rx.packets_decoded(), 1u);
    ASSERT_EQ(offsets.size(), 1u);
    EXPECT_NEAR(static_cast<double>(offsets[0]), static_cast<double>(lead_in), 2.0);
    EXPECT_EQ(crc_ok_count, 1u);
    EXPECT_EQ(stream_rx.samples_consumed(), setup.stream.size());

    // More noise afterwards must not re-decode the same packet.
    const cvec noise = ns::channel::make_noise(4096, 1.0, gen);
    stream_rx.push_samples(noise);
    EXPECT_EQ(stream_rx.packets_decoded(), 1u);
}

TEST(stream_receiver, eviction_keeps_stream_offset_accounting) {
    // A long noisy run forces the buffer cap to evict old samples while a
    // packet is partially buffered; the reported absolute offset must
    // stay correct across the eviction.
    const receiver_params rxp = default_rx();
    const std::size_t packet_len = packet_samples_of(rxp);

    std::vector<std::size_t> offsets;
    std::size_t crc_ok_count = 0;
    stream_receiver_params params;
    params.rx = rxp;
    params.max_buffer_samples = 2 * packet_len;  // the minimum allowed cap
    stream_receiver stream_rx(params, [&](std::size_t offset, const decode_result& r) {
        offsets.push_back(offset);
        if (!r.reports.empty() && r.reports[0].crc_ok) ++crc_ok_count;
    });
    stream_rx.set_registered_shifts({100});

    ns::util::rng gen(32);
    // Packet begins deep into a noise run, far beyond the buffer cap.
    const std::size_t lead_in = 110000;
    const auto setup = make_concurrent(rxp, {100}, {10.0}, gen, lead_in);

    // One oversized chunk: noise + the packet head (tail still missing).
    // The detector finds the start, leaves the buffer over the cap, and
    // push_samples must evict the oldest samples without losing the
    // partial packet or corrupting the offset bookkeeping.
    const std::size_t cut = lead_in + packet_len / 2;
    ASSERT_GT(cut, params.max_buffer_samples);
    stream_rx.push_samples(std::span<const cplx>(setup.stream.data(), cut));
    EXPECT_EQ(stream_rx.packets_decoded(), 0u);

    stream_rx.push_samples(std::span<const cplx>(setup.stream.data() + cut,
                                                 setup.stream.size() - cut));
    EXPECT_EQ(stream_rx.packets_decoded(), 1u);
    ASSERT_EQ(offsets.size(), 1u);
    EXPECT_NEAR(static_cast<double>(offsets[0]), static_cast<double>(lead_in), 2.0);
    EXPECT_EQ(crc_ok_count, 1u);
    EXPECT_EQ(stream_rx.samples_consumed(), setup.stream.size());
}

TEST(stream_receiver, rejects_buffer_smaller_than_two_packets) {
    const receiver_params rxp = default_rx();
    stream_receiver_params params;
    params.rx = rxp;
    params.max_buffer_samples = packet_samples_of(rxp);  // too small
    EXPECT_THROW(stream_receiver(params, [](std::size_t, const decode_result&) {}),
                 ns::util::invalid_argument);
}

}  // namespace
