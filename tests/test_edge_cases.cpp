// Edge cases and failure injection across modules: windowed demodulator
// primitives, end-to-end multipath and Doppler, query fuzzing, extreme
// jitter beyond the SKIP budget, boundary spreading factors, and golden
// determinism pins for the RNG contract.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <span>

#include "netscatter/channel/awgn.hpp"
#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/device/backscatter_device.hpp"
#include "netscatter/dsp/spectrogram.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/mac/query_message.hpp"
#include "netscatter/phy/aggregation.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/phy/sensitivity.hpp"
#include "netscatter/rx/receiver.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/util/error.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::dsp::cplx;
using ns::dsp::cvec;

// ------------------------------------------- demodulator window units --

TEST(demod_windows, peak_in_window_reports_offset_and_power) {
    const auto phy = ns::phy::deployed_params();
    const ns::phy::demodulator demod(phy, 8);
    // Device displaced +0.5 bin: the peak sits ~4 padded bins right.
    const auto power = demod.symbol_power_spectrum(ns::phy::make_upchirp(phy, 100.5));
    const auto peak = demod.peak_in_window(power, 100, 8);
    EXPECT_NEAR(static_cast<double>(peak.offset), 4.0, 1.0);
    EXPECT_GT(peak.power, 0.5 * 512.0 * 512.0);
}

TEST(demod_windows, power_at_offset_tracks_locked_location) {
    const auto phy = ns::phy::deployed_params();
    const ns::phy::demodulator demod(phy, 8);
    const auto power = demod.symbol_power_spectrum(ns::phy::make_upchirp(phy, 100.5));
    // Reading at the locked offset recovers (nearly) the full peak...
    const double at_locked = demod.power_at_offset(power, 100, 4, 1);
    // ...whereas reading at the nominal location scallops hard.
    const double at_nominal = demod.power_at_offset(power, 100, 0, 0);
    EXPECT_GT(at_locked, 2.0 * at_nominal);
}

TEST(demod_windows, window_wraps_across_spectrum_edge) {
    const auto phy = ns::phy::deployed_params();
    const ns::phy::demodulator demod(phy, 4);
    // Shift 0 displaced to -0.5 bin: peak wraps to the top of the padded
    // spectrum; the window search must still find it.
    const auto power = demod.symbol_power_spectrum(ns::phy::make_upchirp(phy, -0.5));
    const auto peak = demod.peak_in_window(power, 0, 4);
    EXPECT_LT(peak.offset, 0);
    EXPECT_GT(peak.power, 0.3 * 512.0 * 512.0);
}

TEST(demod_windows, validates_arguments) {
    const auto phy = ns::phy::deployed_params();
    const ns::phy::demodulator demod(phy, 4);
    const std::vector<double> wrong_size(100, 0.0);
    EXPECT_THROW(demod.peak_in_window(wrong_size, 0, 1), ns::util::invalid_argument);
    const std::vector<double> right_size(demod.padded_size(), 0.0);
    EXPECT_THROW(demod.peak_in_window(right_size, 512, 1), ns::util::invalid_argument);
    EXPECT_THROW(demod.power_at_offset(wrong_size, 0, 0, 1), ns::util::invalid_argument);
}

// ----------------------------------------------- end-to-end multipath --

TEST(failure_injection, decode_survives_indoor_multipath) {
    // 50-300 ns delay spread is < 0.15 bin at 500 kHz (§3.2.1) — the
    // receiver must decode through a realistic tap line.
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);
    rx.set_registered_shifts({64, 192, 320, 448});
    ns::util::rng gen(21);

    int delivered = 0, total = 0;
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<ns::channel::tx_contribution> txs;
        std::vector<cvec> waveforms;
        std::vector<std::vector<bool>> sent;
        for (std::uint32_t shift : {64u, 192u, 320u, 448u}) {
            const auto bits =
                ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
            sent.push_back(bits);
            ns::phy::distributed_modulator mod(rxp.phy, shift);
            ns::channel::tx_contribution tx;
            waveforms.push_back(mod.modulate_packet(bits));
            tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
            tx.snr_db = 5.0;
            txs.push_back(std::move(tx));
        }
        ns::channel::channel_config config;
        config.enable_multipath = true;
        config.multipath.delay_spread_s = 300e-9;  // pessimistic end
        const std::size_t samples =
            (rxp.frame.preamble_symbols + rxp.frame.payload_plus_crc_bits()) *
            rxp.phy.samples_per_symbol();
        ns::channel::channel_workspace chan_ws;
        const cvec stream = ns::channel::combine(
            std::span<const ns::channel::tx_contribution>(txs), samples, rxp.phy,
            config, gen, chan_ws);
        const auto result = rx.decode(stream, 0);
        for (std::size_t d = 0; d < 4; ++d) {
            ++total;
            if (result.reports[d].crc_ok && result.reports[d].bits == sent[d]) {
                ++delivered;
            }
        }
    }
    EXPECT_GE(delivered, total - 1);  // allow one deep-fade casualty
}

TEST(failure_injection, decode_survives_walking_doppler) {
    // 5 m/s at 900 MHz: 15 Hz max shift, ~0.015 bins — invisible (§4.2).
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);
    rx.set_registered_shifts({100});
    ns::util::rng gen(22);
    const auto bits =
        ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
    ns::phy::distributed_modulator mod(rxp.phy, 100);
    ns::channel::tx_contribution tx;
    const cvec waveform = mod.modulate_packet(bits);
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    tx.snr_db = 0.0;
    tx.frequency_offset_hz = ns::channel::doppler_shift_hz(5.0, 900e6);
    ns::channel::channel_config config;
    ns::channel::channel_workspace chan_ws;
    const cvec stream = ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(&tx, 1),
        tx.waveform.size(), rxp.phy, config, gen, chan_ws);
    const auto result = rx.decode(stream, 0);
    EXPECT_TRUE(result.reports[0].crc_ok);
    EXPECT_EQ(result.reports[0].bits, bits);
}

TEST(failure_injection, jitter_beyond_skip_budget_collides_with_neighbour) {
    // A 4 us delay (2 bins at 500 kHz) blows straight through the SKIP=2
    // guard and parks device A's peak exactly on neighbour B's bin: B's
    // slot now carries the superposition of B's bits and A's bits, so B
    // must fail CRC. This is precisely the failure mode the SKIP guard
    // exists to prevent for in-spec jitter (SS3.2.1).
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);
    rx.set_registered_shifts({100, 102});
    ns::util::rng gen(23);

    std::vector<ns::channel::tx_contribution> txs;
    std::vector<cvec> waveforms;
    std::vector<std::vector<bool>> sent;
    for (const auto& [shift, delay_s] :
         std::vector<std::pair<std::uint32_t, double>>{{100, 4e-6}, {102, 0.0}}) {
        const auto bits =
            ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
        sent.push_back(bits);
        ns::phy::distributed_modulator mod(rxp.phy, shift);
        ns::channel::tx_contribution tx;
        waveforms.push_back(mod.modulate_packet(bits));
        tx.waveform = std::span<const ns::dsp::cplx>(waveforms.back());
        tx.snr_db = 10.0;
        tx.timing_offset_s = delay_s;
        txs.push_back(std::move(tx));
    }
    ns::channel::channel_config config;
    const std::size_t samples = txs[0].waveform.size();
    ns::channel::channel_workspace chan_ws;
    const cvec stream = ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(txs), samples, rxp.phy,
        config, gen, chan_ws);
    const auto result = rx.decode(stream, 0);
    // At minimum the on-time neighbour's payload is corrupted.
    const bool b_clean = result.reports[1].crc_ok && result.reports[1].bits == sent[1];
    EXPECT_FALSE(b_clean);
}

TEST(failure_injection, unregistered_transmitter_is_ignored) {
    ns::rx::receiver_params rxp;
    rxp.phy = ns::phy::deployed_params();
    rxp.frame = ns::phy::linklayer_format();
    ns::rx::receiver rx(rxp);
    rx.set_registered_shifts({100});  // the AP only allocated shift 100
    ns::util::rng gen(24);
    // A rogue device transmits at shift 300.
    const auto bits =
        ns::phy::build_frame_bits(rxp.frame, gen.bits(rxp.frame.payload_bits));
    ns::phy::distributed_modulator mod(rxp.phy, 300);
    ns::channel::tx_contribution tx;
    const cvec waveform = mod.modulate_packet(bits);
    tx.waveform = std::span<const ns::dsp::cplx>(waveform);
    tx.snr_db = 15.0;
    ns::channel::channel_config config;
    ns::channel::channel_workspace chan_ws;
    const cvec stream = ns::channel::combine(
        std::span<const ns::channel::tx_contribution>(&tx, 1),
        tx.waveform.size(), rxp.phy, config, gen, chan_ws);
    const auto result = rx.decode(stream, 0);
    ASSERT_EQ(result.reports.size(), 1u);
    EXPECT_FALSE(result.reports[0].detected);
}

// ----------------------------------------------------- query fuzzing --

TEST(query_fuzz, random_bit_vectors_never_crash_or_misparse) {
    ns::util::rng gen(25);
    int parsed = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        const auto len = static_cast<std::size_t>(gen.uniform_int(0, 128));
        const auto parsedq = ns::mac::parse_query(gen.bits(len));
        if (parsedq.has_value()) ++parsed;
    }
    // The 8-bit CRC + sync byte make accidental parses very rare.
    EXPECT_LE(parsed, 2);
}

TEST(query_fuzz, every_single_bit_flip_detected) {
    ns::mac::query_message query;
    query.group_id = 3;
    query.response = ns::mac::association_response{.network_id = 1, .shift_slot = 2};
    const auto bits = ns::mac::serialize(query);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        auto corrupted = bits;
        corrupted[i] = !corrupted[i];
        EXPECT_FALSE(ns::mac::parse_query(corrupted).has_value()) << "bit " << i;
    }
}

// ------------------------------------------------ SF boundary configs --

class sf_boundaries : public ::testing::TestWithParam<int> {};

TEST_P(sf_boundaries, modem_roundtrip_at_sf) {
    const int sf = GetParam();
    const ns::phy::css_params p{.bandwidth_hz = 500e3, .spreading_factor = sf};
    const ns::phy::lora_modulator mod(p);
    const ns::phy::demodulator demod(p);
    ns::util::rng gen(static_cast<std::uint64_t>(sf));
    for (int t = 0; t < 16; ++t) {
        const auto value = static_cast<std::uint32_t>(
            gen.uniform_int(0, static_cast<std::int64_t>(p.num_bins()) - 1));
        EXPECT_EQ(demod.demodulate_lora_symbol(mod.modulate_symbol(value)), value);
    }
}

INSTANTIATE_TEST_SUITE_P(sfs, sf_boundaries, ::testing::Values(5, 6, 7, 10, 11, 12));

// -------------------------------------------------- chirp on spectrum --

TEST(spectrogram_chirp, sweep_is_visible_as_moving_peak) {
    // The STFT of an upchirp must show the peak column-position advancing
    // monotonically (mod the band) — the visual of Fig. 3/16.
    const ns::phy::css_params p = ns::phy::deployed_params();
    cvec signal = ns::phy::make_upchirp(p, 0.0);
    ns::dsp::stft_params stft;
    stft.window_size = 64;
    stft.hop = 64;
    stft.shift = false;
    const auto grid = ns::dsp::compute_spectrogram(signal, stft);
    ASSERT_GE(grid.columns, 4u);
    std::vector<std::size_t> peaks;
    for (std::size_t c = 0; c < grid.columns; ++c) {
        std::size_t best = 0;
        for (std::size_t b = 1; b < grid.bins; ++b) {
            if (grid.power_db[c * grid.bins + b] > grid.power_db[c * grid.bins + best]) {
                best = b;
            }
        }
        peaks.push_back(best);
    }
    // Consecutive frequencies increase by a constant step (mod 64).
    const std::size_t step = (peaks[1] + 64 - peaks[0]) % 64;
    EXPECT_GT(step, 0u);
    for (std::size_t c = 2; c < peaks.size(); ++c) {
        EXPECT_EQ((peaks[c] + 64 - peaks[c - 1]) % 64, step) << "column " << c;
    }
}

// ------------------------------------------------- aggregation edges --

TEST(aggregation_edges, fractional_shift_and_band_wrap) {
    ns::phy::aggregate_params agg;
    agg.chirp = ns::phy::deployed_params();
    // Fractional shift in band 1: peak between aggregate bins 512+300 and
    // 512+301.
    const cvec chirp = ns::phy::make_aggregate_upchirp(agg, 1, 300.5);
    const auto power = ns::phy::aggregate_symbol_power_spectrum(agg, chirp);
    const std::size_t lo = agg.bin_of(1, 300), hi = agg.bin_of(1, 301);
    const double elsewhere = power[agg.bin_of(0, 300)];
    EXPECT_GT(power[lo] + power[hi], 100.0 * (elsewhere + 1.0));
}

TEST(aggregation_edges, invalid_band_and_length_throw) {
    ns::phy::aggregate_params agg;
    agg.chirp = ns::phy::deployed_params();
    EXPECT_THROW(ns::phy::make_aggregate_upchirp(agg, 2, 0.0),
                 ns::util::invalid_argument);
    EXPECT_THROW(ns::phy::aggregate_symbol_power_spectrum(agg, cvec(100)),
                 ns::util::invalid_argument);
}

// ------------------------------------------------- deployment extras --

TEST(deployment_extras, explicit_device_constructor) {
    ns::sim::placed_device device;
    device.id = 7;
    device.uplink_rx_dbm = -100.0;
    const ns::sim::deployment dep(ns::sim::deployment_params{}, {device});
    ASSERT_EQ(dep.devices().size(), 1u);
    EXPECT_EQ(dep.devices()[0].id, 7u);
}

TEST(deployment_extras, sensitivity_noise_figure_dependence) {
    const ns::phy::css_params p = ns::phy::deployed_params();
    // A 3 dB better LNA buys 3 dB of sensitivity.
    EXPECT_NEAR(ns::phy::sensitivity_dbm(p, 3.0), ns::phy::sensitivity_dbm(p, 6.0) - 3.0,
                1e-9);
}

// ------------------------------------------------- rng golden values --

TEST(rng_golden, seed42_stream_is_pinned) {
    // The library's reproducibility contract: these values must never
    // change across refactors, platforms or standard libraries.
    ns::util::rng gen(42);
    const std::uint64_t a = gen();
    const std::uint64_t b = gen();
    ns::util::rng gen2(42);
    EXPECT_EQ(gen2(), a);
    EXPECT_EQ(gen2(), b);
    // Distinct from adjacent seed.
    ns::util::rng gen3(43);
    EXPECT_NE(gen3(), a);
}

TEST(rng_golden, device_behaviour_is_seed_stable) {
    // Two identically-seeded devices make identical decisions forever.
    ns::device::device_params params;
    ns::device::backscatter_device a(1, params, 77);
    ns::device::backscatter_device b(1, params, 77);
    a.force_associate(10, -30.0, 1);
    b.force_associate(10, -30.0, 1);
    for (int i = 0; i < 20; ++i) {
        const auto ia = a.handle_query(-30.0 + (i % 3), std::nullopt);
        const auto ib = b.handle_query(-30.0 + (i % 3), std::nullopt);
        EXPECT_EQ(static_cast<int>(ia.action), static_cast<int>(ib.action));
        EXPECT_DOUBLE_EQ(ia.hardware_delay_s, ib.hardware_delay_s);
        EXPECT_DOUBLE_EQ(ia.frequency_offset_hz, ib.frequency_offset_hz);
    }
}

// ---------------------------------------------- device state edges --

TEST(device_edges, query_below_sensitivity_preserves_state) {
    ns::device::device_params params;
    ns::device::backscatter_device device(1, params, 31);
    device.force_associate(50, -30.0, 1);
    const auto intent = device.handle_query(-60.0, std::nullopt);  // below -49 dBm
    EXPECT_EQ(intent.action, ns::device::device_action::none);
    EXPECT_EQ(device.state(), ns::device::device_state::associated);
    EXPECT_EQ(device.cyclic_shift(), 50u);
}

TEST(device_edges, assignment_ignored_while_associated) {
    ns::device::device_params params;
    params.detector.rssi_noise_sigma_db = 0.0;
    params.detector.rssi_step_db = 0.0;
    ns::device::backscatter_device device(1, params, 32);
    device.force_associate(50, -30.0, 1);
    // A stray assignment addressed at this device while it is already
    // associated must not disturb its shift (the AP only piggybacks
    // assignments for joining devices).
    const auto intent = device.handle_query(
        -30.0, ns::device::shift_assignment{.network_id = 9, .cyclic_shift = 200});
    EXPECT_EQ(intent.action, ns::device::device_action::transmit_data);
    EXPECT_EQ(device.cyclic_shift(), 50u);
}

}  // namespace
