// Unit tests for the control-plane fault-injection subsystem: spec
// validation, the deterministic injector streams, the simulator's
// recovery machinery (reboots, leases, missed-query trips, blackouts,
// orphan accounting), and bit-identical fault schedules at any thread
// count for the registered fault scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "netscatter/faults/fault_injector.hpp"
#include "netscatter/faults/fault_spec.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/util/error.hpp"

namespace {

using ns::faults::fault_injector;
using ns::faults::fault_spec;

// ------------------------------------------------------------ fault_spec --

TEST(fault_spec, default_is_inert_and_valid) {
    const fault_spec spec;
    EXPECT_FALSE(spec.enabled());
    EXPECT_NO_THROW(spec.validate());
}

TEST(fault_spec, validate_rejects_out_of_domain_fields) {
    fault_spec bad_query;
    bad_query.query_loss = 1.5;
    EXPECT_THROW(bad_query.validate(), ns::util::invalid_argument);

    fault_spec bad_slope;
    bad_slope.query_loss_rssi_slope = -0.1;
    EXPECT_THROW(bad_slope.validate(), ns::util::invalid_argument);

    fault_spec bad_ack;
    bad_ack.ack_loss = -0.25;
    EXPECT_THROW(bad_ack.validate(), ns::util::invalid_argument);

    fault_spec bad_reboot;
    bad_reboot.reboot_rate_per_round = -1.0;
    EXPECT_THROW(bad_reboot.validate(), ns::util::invalid_argument);

    fault_spec bad_blackout;
    bad_blackout.blackout_probability = 0.5;
    bad_blackout.blackout_rounds = 0;
    EXPECT_THROW(bad_blackout.validate(), ns::util::invalid_argument);

    fault_spec bad_retry;
    bad_retry.ack_loss = 0.5;
    bad_retry.ack_retry_limit = 0;
    EXPECT_THROW(bad_retry.validate(), ns::util::invalid_argument);
}

// -------------------------------------------------------- fault_injector --

TEST(fault_injector, streams_are_seed_deterministic) {
    fault_spec spec;
    spec.query_loss = 0.4;
    spec.ack_loss = 0.3;
    spec.reboot_rate_per_round = 1.0;

    const auto schedule = [&](std::uint64_t seed) {
        fault_injector injector(spec, seed);
        std::ostringstream out;
        for (std::size_t round = 0; round < 8; ++round) {
            injector.begin_round(round);
            for (std::uint32_t id = 0; id < 32; ++id) {
                out << injector.query_lost(id, -45.0);
            }
            out << '|' << injector.ack_lost() << injector.ack_lost() << '|'
                << injector.reboots() << ';';
        }
        return out.str();
    };

    EXPECT_EQ(schedule(42), schedule(42));
    EXPECT_NE(schedule(42), schedule(7));
}

TEST(fault_injector, query_loss_is_stateless_and_order_independent) {
    fault_spec spec;
    spec.query_loss = 0.5;
    spec.ack_loss = 0.5;

    fault_injector forward(spec, 11);
    fault_injector backward(spec, 11);
    for (std::size_t round = 0; round < 5; ++round) {
        forward.begin_round(round);
        backward.begin_round(round);
        std::vector<bool> a;
        for (std::uint32_t id = 0; id < 64; ++id) {
            a.push_back(forward.query_lost(id, -50.0));
        }
        // Reverse order, interleaved with round-stream draws, and asked
        // twice: the stateless hash must not care.
        std::vector<bool> b(64);
        for (std::uint32_t id = 64; id-- > 0;) {
            (void)backward.ack_lost();
            b[id] = backward.query_lost(id, -50.0);
            EXPECT_EQ(backward.query_lost(id, -50.0), b[id]);
        }
        EXPECT_EQ(a, b);
    }
}

TEST(fault_injector, rssi_slope_makes_weak_links_lossier) {
    fault_spec spec;
    spec.query_loss = 0.05;
    spec.query_loss_rssi_slope = 0.01;
    spec.query_loss_ref_rssi_dbm = -30.0;
    fault_injector injector(spec, 3);

    std::size_t strong = 0;
    std::size_t weak = 0;
    for (std::size_t round = 0; round < 400; ++round) {
        injector.begin_round(round);
        for (std::uint32_t id = 0; id < 16; ++id) {
            if (injector.query_lost(id, -25.0)) ++strong;
            if (injector.query_lost(id, -80.0)) ++weak;
        }
    }
    // Weak links carry ~0.55 loss vs the ~0.05 iid floor.
    EXPECT_GT(weak, strong * 4);
}

// ---------------------------------------------------- simulator recovery --

ns::sim::sim_config fault_sim(std::size_t rounds, std::uint64_t seed) {
    ns::sim::sim_config config;
    config.zero_padding = 4;
    config.rounds = rounds;
    config.seed = seed;
    return config;
}

TEST(network_sim_faults, total_query_loss_silences_the_floor) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 16, 41);
    ns::sim::sim_config config = fault_sim(6, 41);
    config.faults.query_loss = 1.0;
    config.faults.missed_query_limit = 2;
    ns::sim::network_simulator sim(dep, config);
    const ns::sim::sim_result result = sim.run();

    EXPECT_EQ(result.total_transmitting, 0u);
    EXPECT_GT(result.total_query_losses, 0u);
    // Every device trips the missed-query counter exactly once, and with
    // no churn driver to rejoin through, all of them stay down.
    EXPECT_EQ(result.total_down_events, 16u);
    EXPECT_EQ(result.total_recoveries, 0u);
    EXPECT_EQ(result.devices_down_at_end, 16u);
}

TEST(network_sim_faults, permanent_blackout_stops_every_transmission) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 16, 42);
    ns::sim::sim_config config = fault_sim(6, 42);
    config.faults.blackout_probability = 1.0;
    config.faults.blackout_rounds = 2;
    ns::sim::network_simulator sim(dep, config);
    const ns::sim::sim_result result = sim.run();

    EXPECT_EQ(result.total_blackout_rounds, result.rounds.size());
    EXPECT_EQ(result.total_transmitting, 0u);
    for (const auto& round : result.rounds) {
        EXPECT_TRUE(round.blackout);
        EXPECT_EQ(round.transmitting, 0u);
    }
}

TEST(network_sim_faults, zero_rate_spec_changes_nothing) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 24, 43);
    ns::sim::sim_config plain = fault_sim(4, 43);
    ns::sim::sim_config with_knobs = plain;
    // Recovery knobs without any injection process: enabled() is false,
    // no injector is built, results stay bit-identical.
    with_knobs.faults.lease_rounds = 3;
    with_knobs.faults.missed_query_limit = 2;
    EXPECT_FALSE(with_knobs.faults.enabled());

    ns::sim::network_simulator a(dep, plain);
    ns::sim::network_simulator b(dep, with_knobs);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.total_transmitting, rb.total_transmitting);
    EXPECT_EQ(ra.total_delivered, rb.total_delivered);
    EXPECT_EQ(ra.total_bit_errors, rb.total_bit_errors);
    EXPECT_EQ(ra.total_down_events, 0u);
    EXPECT_EQ(rb.total_down_events, 0u);
}

// ------------------------------------------------- scenario-level faults --

using namespace ns::scenario;

/// Fingerprint extended with every fault/recovery observable: the
/// fault schedule itself must be bit-identical across thread counts.
std::string fault_fingerprint(const scenario_result& result) {
    std::ostringstream out;
    out.precision(17);
    const auto& s = result.sim;
    out << s.total_transmitting << ' ' << s.total_delivered << ' '
        << s.total_bit_errors << ' ' << s.total_joins << ' ' << s.total_leaves
        << ' ' << s.total_reassociations << ' ' << s.total_query_losses << ' '
        << s.total_ack_losses << ' ' << s.total_ack_timeouts << ' '
        << s.total_reboots << ' ' << s.total_down_events << ' '
        << s.total_lease_evictions << ' ' << s.total_desyncs << ' '
        << s.total_resyncs << ' ' << s.total_recoveries << ' '
        << s.total_orphan_tx << ' ' << s.total_orphan_collisions << ' '
        << s.total_blackout_rounds << ' ' << s.devices_down_at_end << '\n';
    for (const auto& round : s.rounds) {
        out << round.active << ',' << round.transmitting << ','
            << round.delivered << ',' << round.query_losses << ','
            << round.ack_losses << ',' << round.reboots << ','
            << round.down_events << ',' << round.lease_evictions << ','
            << round.desyncs << ',' << round.resyncs << ','
            << round.recoveries << ',' << round.orphan_tx << ','
            << round.blackout << ';';
    }
    out << '\n' << result.stats.join_requests << ' ' << result.stats.joins;
    return out.str();
}

/// Shrinks a registered fault scenario for test speed, keeping the
/// grouped schedule multi-group.
scenario_spec shrink_faulty(scenario_spec spec, std::size_t rounds) {
    spec.sim.rounds = rounds;
    spec.replicas = 2;
    if (spec.geometry.num_devices > 96) {
        spec.geometry.num_devices = 96;
        spec.churn.initial_active = std::min<std::size_t>(spec.churn.initial_active, 48);
        if (spec.sim.grouping.enabled) spec.sim.grouping.group_capacity = 24;
    }
    return spec;
}

TEST(faults_scenario, registry_ships_both_fault_scenarios) {
    for (const char* name : {"lossy-control-1k", "blackout-recovery"}) {
        const auto spec = find_scenario(name);
        ASSERT_TRUE(spec.has_value()) << name;
        EXPECT_TRUE(spec->faults.enabled()) << name;
        EXPECT_NO_THROW(spec->faults.validate()) << name;
    }
}

TEST(faults_scenario, fault_schedules_bit_identical_serial_vs_8_threads) {
    for (const char* name : {"lossy-control-1k", "blackout-recovery"}) {
        const scenario_spec spec = shrink_faulty(*find_scenario(name), 5);
        const auto serial =
            run_scenario(spec, {.num_threads = 1, .parallel = false});
        const auto threaded =
            run_scenario(spec, {.num_threads = 8, .parallel = true});
        EXPECT_EQ(fault_fingerprint(serial), fault_fingerprint(threaded)) << name;
        // Faults touched the shrunk run at all (the fingerprint equality
        // is vacuous otherwise).
        EXPECT_GT(serial.sim.total_query_losses + serial.sim.total_reboots +
                      serial.sim.total_blackout_rounds,
                  0u)
            << name;
    }
}

TEST(faults_scenario, fault_schedules_bit_identical_vs_intra_round_threads) {
    for (const char* name : {"lossy-control-1k", "blackout-recovery"}) {
        const scenario_spec spec = shrink_faulty(*find_scenario(name), 4);
        scenario_spec intra = spec;
        intra.sim.intra_round_threads = 8;
        const auto reference =
            run_scenario(spec, {.num_threads = 1, .parallel = false});
        const auto fanned =
            run_scenario(intra, {.num_threads = 1, .parallel = false});
        EXPECT_EQ(fault_fingerprint(reference), fault_fingerprint(fanned))
            << name;
    }
}

TEST(faults_scenario, lossy_control_recovers_rebooted_devices) {
    scenario_spec spec = *find_scenario("lossy-control-1k");
    spec.geometry.num_devices = 200;
    spec.churn.initial_active = 100;
    spec.sim.grouping.group_capacity = 50;
    spec.sim.rounds = 20;
    spec.replicas = 1;
    const auto result = run_scenario(spec);
    const auto& s = result.sim;

    // The injection processes all fired...
    EXPECT_GT(s.total_query_losses, 0u);
    EXPECT_GT(s.total_reboots, 0u);
    EXPECT_GT(s.total_down_events, 0u);
    // ... and the recovery loop closed: rebooted devices re-associated
    // through the Aloha path, which on a populated floor means their
    // stale shifts were reclaimed and reallocated.
    EXPECT_GT(s.total_recoveries, 0u);
    // Down-episode conservation: every loss either recovered or is still
    // down at the end — nothing double-counted, nothing leaked.
    EXPECT_EQ(s.total_down_events,
              s.total_recoveries + s.devices_down_at_end);
    // Graceful degradation, not collapse: the floor keeps delivering.
    EXPECT_GT(s.total_delivered, 0u);
    EXPECT_LT(s.devices_down_at_end, 100u);
}

TEST(faults_scenario, full_floor_rejoins_only_through_reclaimed_shifts) {
    // Universe == initially active == admission capacity: every
    // re-admission after a reboot is only possible because the zombie
    // entry was evicted and its cyclic shift reclaimed via the
    // allocator. Recoveries > 0 therefore proves shift reuse.
    scenario_spec spec;
    spec.name = "reclaim-test";
    spec.description = "full floor, reboots force shift reclamation";
    spec.geometry.num_devices = 64;
    spec.churn.initial_active = 64;
    spec.faults.reboot_rate_per_round = 2.0;
    spec.faults.lease_rounds = 3;
    spec.sim = ns::sim::sim_config{};
    spec.sim.zero_padding = 4;
    spec.sim.rounds = 16;
    spec.sim.seed = 77;
    spec.sim.grouping.enabled = true;
    spec.sim.grouping.group_capacity = 32;
    const auto result = run_scenario(spec);
    const auto& s = result.sim;

    EXPECT_GT(s.total_reboots, 0u);
    EXPECT_GT(s.total_recoveries, 0u);
    EXPECT_EQ(s.total_down_events,
              s.total_recoveries + s.devices_down_at_end);
}

TEST(faults_scenario, blackout_rounds_carry_no_transmissions) {
    scenario_spec spec = *find_scenario("blackout-recovery");
    spec.geometry.num_devices = 96;
    spec.churn.initial_active = 48;
    spec.faults.blackout_probability = 0.5;  // make windows near-certain
    spec.sim.rounds = 12;
    spec.replicas = 1;
    const auto result = run_scenario(spec);

    std::size_t blacked = 0;
    for (const auto& round : result.sim.rounds) {
        if (round.blackout) {
            ++blacked;
            EXPECT_EQ(round.transmitting, 0u);
            EXPECT_EQ(round.delivered, 0u);
        }
    }
    EXPECT_GT(blacked, 0u);
    EXPECT_EQ(blacked, result.sim.total_blackout_rounds);
}

}  // namespace
