// Symbol-domain fast path (§3.2 dechirp-to-tone identity run in
// reverse): exactness of the analytic Dirichlet kernel against the
// sample-level pipeline, the fractional-bin property under CFO / STO /
// Doppler, statistical equivalence of the two simulator fidelities, and
// the zero-per-device-allocation contract of the steady-state round
// loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "netscatter/channel/impairments.hpp"
#include "netscatter/channel/kernel_batch.hpp"
#include "netscatter/channel/superposition.hpp"
#include "netscatter/engine/thread_pool.hpp"
#include "netscatter/dsp/fft.hpp"
#include "netscatter/dsp/peak.hpp"
#include "netscatter/dsp/vector_ops.hpp"
#include "netscatter/obs/metrics.hpp"
#include "netscatter/phy/chirp.hpp"
#include "netscatter/phy/demodulator.hpp"
#include "netscatter/phy/modulator.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"
#include "netscatter/util/rng.hpp"

namespace {

using ns::dsp::cplx;
using ns::dsp::cvec;

// ------------------------------------------------ allocation counting --
// Global operator new/delete instrumentation for the zero-allocation
// contract. Only the deltas measured inside a single-threaded test body
// are meaningful. The hook also feeds ns::obs::record_allocation, so the
// simulator's alloc.* metrics counters are live in this binary and the
// registry-based contract below observes the same events.
std::atomic<std::size_t> g_allocations{0};

}  // namespace

// noinline: if the inliner sees the std::free inside a delete while
// treating the matching operator new as opaque, GCC pairs free() with
// operator new and -Wmismatched-new-delete misfires.
__attribute__((noinline)) void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    ns::obs::record_allocation(size);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

__attribute__((noinline)) void operator delete(void* p) noexcept {
    std::free(p);
}
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept {
    std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
    std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
    std::free(p);
}

namespace {

// ---------------------------------------------- kernel exactness ------

TEST(tone_kernel, untruncated_kernel_matches_sample_pipeline) {
    // The analytic spectrum of a shifted upchirp under a residual tone
    // offset must equal dechirp + zero-padded FFT of the synthesized
    // time-domain symbol, bin for bin, when the kernel is not truncated.
    const ns::phy::css_params phy{.bandwidth_hz = 500e3, .spreading_factor = 7};
    const std::size_t n = phy.num_bins();
    const std::size_t padding = 8;
    const ns::phy::demodulator demod(phy, padding);

    for (const double shift : {0.0, 17.0, 100.0}) {
        for (const double tone_hz : {0.0, 137.5, -260.0}) {
            cvec symbol = ns::phy::make_upchirp(phy, shift);
            if (tone_hz != 0.0) {
                symbol = ns::dsp::frequency_shift(symbol, tone_hz, phy.bandwidth_hz);
            }
            const cvec expected = demod.symbol_spectrum(symbol);

            cvec kernel;
            const std::size_t first = ns::phy::make_dechirped_tone_kernel(
                kernel, shift + tone_hz / phy.bin_spacing_hz(), n, padding,
                /*radius_bins=*/n / 2);
            ASSERT_EQ(kernel.size(), n * padding);

            double max_error = 0.0;
            for (std::size_t w = 0; w < kernel.size(); ++w) {
                const std::size_t m = (first + w) % (n * padding);
                max_error = std::max(max_error, std::abs(kernel[w] - expected[m]));
            }
            // Peak magnitude is n; demand ~10 digits of agreement.
            EXPECT_LT(max_error, 1e-6 * static_cast<double>(n))
                << "shift " << shift << " tone " << tone_hz;
        }
    }
}

TEST(tone_kernel, truncated_kernel_is_exact_inside_window) {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const std::size_t n = phy.num_bins();
    const std::size_t padding = 4;
    cvec full;
    cvec truncated;
    ns::phy::make_dechirped_tone_kernel(full, 42.3, n, padding, n / 2);
    const std::size_t first =
        ns::phy::make_dechirped_tone_kernel(truncated, 42.3, n, padding, 8);
    const std::size_t first_full = ns::phy::make_dechirped_tone_kernel(
        full, 42.3, n, padding, n / 2);
    // Align: both windows are centred on the same peak.
    const std::size_t m_total = n * padding;
    for (std::size_t w = 0; w < truncated.size(); ++w) {
        const std::size_t m = (first + w) % m_total;
        const std::size_t w_full = (m + m_total - first_full) % m_total;
        ASSERT_LT(w_full, full.size());
        EXPECT_NEAR(std::abs(truncated[w] - full[w_full]), 0.0, 1e-9);
    }
}

TEST(tone_kernel, multipath_envelope_matches_sample_pipeline) {
    // A tap delaying the chirp by t samples is a -t-bin cyclic shift with
    // a constant phase, so the post-dechirp spectrum of a multipath
    // symbol must equal the tap-enveloped kernel bin for bin. Two
    // consecutive identical ON symbols + linear tap convolution make the
    // second symbol exactly the cyclic picture the envelope models.
    const ns::phy::css_params phy{.bandwidth_hz = 500e3, .spreading_factor = 7};
    const std::size_t n = phy.num_bins();
    const std::size_t padding = 4;
    const std::size_t m_total = n * padding;
    const ns::phy::demodulator demod(phy, padding);
    ns::util::rng rng(7);

    for (const std::uint32_t shift : {0u, 23u, 100u}) {
        for (const double tone_hz : {0.0, 170.0, -95.0}) {
            ns::channel::multipath_model model;
            model.num_taps = 3;
            const cvec taps = model.sample_taps(phy.bandwidth_hz, rng);

            const cvec symbol =
                ns::phy::make_upchirp(phy, static_cast<double>(shift));
            cvec stream(2 * n);
            std::copy(symbol.begin(), symbol.end(), stream.begin());
            std::copy(symbol.begin(), symbol.end(),
                      stream.begin() + static_cast<std::ptrdiff_t>(n));
            if (tone_hz != 0.0) {
                stream = ns::dsp::frequency_shift(stream, tone_hz, phy.bandwidth_hz);
            }
            const cvec filtered = ns::channel::apply_multipath(stream, taps);
            const cvec second(filtered.begin() + static_cast<std::ptrdiff_t>(n),
                              filtered.end());
            const cvec expected = demod.symbol_spectrum(second);

            cvec envelope;
            cvec scratch;
            const double tone_bins = tone_hz / phy.bin_spacing_hz();
            // Radius near n/2: the window plus the tap spread must stay
            // within the padded spectrum, so back off a few bins — every
            // covered bin is exact, truncation only drops far sidelobes.
            const std::size_t first = ns::phy::make_multipath_tone_kernel(
                envelope, taps, shift, tone_bins, n, padding, n / 2 - 4, scratch);
            // The stream's residual tone advanced by ω·N samples at the
            // second symbol.
            const cplx rotation = std::polar(
                1.0, 2.0 * std::numbers::pi * tone_hz *
                         static_cast<double>(n) / phy.bandwidth_hz);
            // Exactness holds on the intersection of every tap's window
            // (envelope indices [spread, window)): outside it some tap
            // contributes only its dropped far sidelobe — the documented
            // truncation error, not an envelope defect.
            const std::size_t spread = (taps.size() - 1) * padding;
            const std::size_t window = envelope.size() - spread;
            double max_error = 0.0;
            for (std::size_t w = spread; w < window; ++w) {
                const std::size_t m = (first + w) % m_total;
                max_error = std::max(
                    max_error, std::abs(rotation * envelope[w] - expected[m]));
            }
            EXPECT_LT(max_error, 1e-6 * static_cast<double>(n))
                << "shift " << shift << " tone " << tone_hz;
        }
    }
}

TEST(tone_kernel, oversized_radius_clamps_instead_of_aborting) {
    // The bare kernel silently clamps radius >= num_bins/2; the enveloped
    // kernel must do the same (minus the tap spread), not abort mid-run.
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const std::size_t n = phy.num_bins();
    const cvec taps{cplx{0.8, 0.0}, cplx{0.3, 0.0}, cplx{0.2, 0.0}};
    cvec envelope;
    cvec scratch;
    ns::phy::make_multipath_tone_kernel(envelope, taps, 10, 0.25, n, 8,
                                        /*radius_bins=*/n, scratch);
    EXPECT_LE(envelope.size(), n * 8);
    EXPECT_GT(envelope.size(), 0u);
}

TEST(tone_kernel, single_unit_tap_envelope_reduces_to_bare_kernel) {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const std::size_t n = phy.num_bins();
    const cvec taps{cplx{1.0, 0.0}};
    cvec envelope;
    cvec scratch;
    const std::size_t first_env = ns::phy::make_multipath_tone_kernel(
        envelope, taps, 42, 0.37, n, 8, 16, scratch);
    cvec kernel;
    const std::size_t first_kernel = ns::phy::make_dechirped_tone_kernel(
        kernel, 42.37, n, 8, 16);
    ASSERT_EQ(first_env, first_kernel);
    ASSERT_EQ(envelope.size(), kernel.size());
    for (std::size_t w = 0; w < kernel.size(); ++w) {
        EXPECT_NEAR(std::abs(envelope[w] - kernel[w]), 0.0, 1e-12);
    }
}

// ----------------------------------- dechirp-to-tone fractional bins --

TEST(dechirp_identity, offsets_land_on_predicted_fractional_bin) {
    // Property (§3.2.1/§3.2.2): a cyclic shift s with residual timing
    // offset dt, CFO df and Doppler fd dechirps to a tone whose padded
    // FFT peak sits at s + dt·BW + (df+fd)/bin_spacing chip bins, within
    // the padded-grid resolution.
    const ns::phy::css_params phy = ns::phy::deployed_params();
    const std::size_t padding = 8;
    const ns::phy::demodulator demod(phy, padding);
    ns::util::rng rng(99);

    for (int trial = 0; trial < 12; ++trial) {
        const auto shift = static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(phy.num_bins()) - 1));
        const double dt = rng.uniform(-2e-6, 2e-6);        // up to ±1 bin
        const double cfo = rng.uniform(-150.0, 150.0);     // Fig. 14a range
        const double doppler = rng.uniform(-40.0, 40.0);   // indoor speeds

        const double tone_hz = ns::channel::equivalent_tone_shift_hz(
            phy, dt, cfo + doppler);
        cvec symbol = ns::phy::make_upchirp(phy, static_cast<double>(shift));
        symbol = ns::dsp::frequency_shift(symbol, tone_hz, phy.bandwidth_hz);

        const std::vector<double> power = demod.symbol_power_spectrum(symbol);
        const ns::dsp::peak peak = ns::dsp::find_peak(power);

        const double predicted_bins =
            static_cast<double>(shift) + phy.bins_from_time_offset(dt) +
            phy.bins_from_frequency_offset(cfo + doppler);
        const double n_padded = static_cast<double>(power.size());
        double predicted_padded =
            predicted_bins * static_cast<double>(padding);
        predicted_padded -= std::floor(predicted_padded / n_padded) * n_padded;

        double error = std::abs(peak.fractional_bin - predicted_padded);
        error = std::min(error, n_padded - error);  // cyclic distance
        EXPECT_LT(error, 1.0) << "trial " << trial << " shift " << shift
                              << " dt " << dt << " cfo " << cfo;
    }
}

// ------------------------------- fidelity equivalence (AWGN matrix) ---

struct fidelity_outcome {
    double delivery = 0.0;
    double ber = 0.0;
    std::size_t fast_rounds = 0;
    std::size_t rounds = 0;
};

fidelity_outcome run_sim(std::size_t devices, std::uint64_t seed,
                         ns::sim::phy_fidelity fidelity, std::size_t rounds,
                         bool multipath = false) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, devices, seed);
    ns::sim::sim_config config;
    config.rounds = rounds;
    config.seed = seed + 1;
    config.zero_padding = 4;
    config.fidelity = fidelity;
    config.model_multipath = multipath;
    ns::sim::network_simulator sim(dep, config);
    const ns::sim::sim_result result = sim.run();
    return {result.delivery_rate(), result.ber(), result.fast_path_rounds,
            result.rounds.size()};
}

TEST(fidelity_equivalence, symbol_matches_sample_across_awgn_matrix) {
    // The two synthesis domains are different noise realizations of the
    // same physics: BER and delivery must agree within a statistical
    // tolerance at every operating point of the AWGN device-count sweep.
    for (const std::size_t devices : {8ul, 64ul, 160ul, 256ul}) {
        const fidelity_outcome sample =
            run_sim(devices, 5, ns::sim::phy_fidelity::sample, 6);
        const fidelity_outcome symbol =
            run_sim(devices, 5, ns::sim::phy_fidelity::symbol, 6);
        EXPECT_EQ(sample.fast_rounds, 0u);
        EXPECT_EQ(symbol.fast_rounds, symbol.rounds);
        EXPECT_NEAR(symbol.delivery, sample.delivery, 0.08)
            << devices << " devices";
        EXPECT_NEAR(symbol.ber, sample.ber, 0.02) << devices << " devices";
    }
}

TEST(fidelity_equivalence, symbol_matches_sample_under_multipath) {
    // Frequency-selective multipath is representable on both paths: the
    // sample path convolves the tap lines, the fast path folds them into
    // spectral envelopes. The two are different noise realizations of
    // the same channel, so BER/delivery must agree statistically — and
    // the multipath rounds must actually run symbol-domain.
    for (const std::size_t devices : {32ul, 128ul}) {
        const fidelity_outcome sample =
            run_sim(devices, 11, ns::sim::phy_fidelity::sample, 6, true);
        const fidelity_outcome symbol =
            run_sim(devices, 11, ns::sim::phy_fidelity::symbol, 6, true);
        EXPECT_EQ(sample.fast_rounds, 0u);
        EXPECT_EQ(symbol.fast_rounds, symbol.rounds);
        EXPECT_NEAR(symbol.delivery, sample.delivery, 0.08)
            << devices << " devices";
        EXPECT_NEAR(symbol.ber, sample.ber, 0.02) << devices << " devices";
    }
}

TEST(fidelity_equivalence, multipath_costs_delivery_but_keeps_fast_path) {
    // The frequency-selective channel must actually bite (scattered-tap
    // leakage into neighbouring slots) without knocking rounds off the
    // symbol-domain path.
    const fidelity_outcome flat =
        run_sim(160, 13, ns::sim::phy_fidelity::automatic, 6, false);
    const fidelity_outcome faded =
        run_sim(160, 13, ns::sim::phy_fidelity::automatic, 6, true);
    EXPECT_EQ(faded.fast_rounds, faded.rounds);
    EXPECT_LT(faded.delivery, flat.delivery);
    EXPECT_GT(faded.delivery, 0.4);  // Rician K=9 dB: degraded, not dead
}

TEST(fidelity_equivalence, automatic_takes_fast_path_without_interference) {
    const fidelity_outcome automatic =
        run_sim(32, 7, ns::sim::phy_fidelity::automatic, 4);
    EXPECT_EQ(automatic.fast_rounds, automatic.rounds);
    // And matches the forced-symbol run exactly (same RNG stream).
    const fidelity_outcome symbol =
        run_sim(32, 7, ns::sim::phy_fidelity::symbol, 4);
    EXPECT_DOUBLE_EQ(automatic.delivery, symbol.delivery);
    EXPECT_DOUBLE_EQ(automatic.ber, symbol.ber);
}

TEST(fidelity_equivalence, banded_noise_matches_exact_noise_statistics) {
    // noise_interp_radius_bins = 0 forces the exact per-symbol-FFT noise
    // path; the banded default must land on the same delivery/BER within
    // run-to-run noise.
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 96, 17);
    ns::sim::sim_config config;
    config.rounds = 6;
    config.seed = 3;
    config.zero_padding = 4;
    config.fidelity = ns::sim::phy_fidelity::symbol;
    ns::sim::network_simulator banded_sim(dep, config);
    const auto banded = banded_sim.run();

    // Exercise the exact path through combine_symbol_domain directly on
    // the same statistics question: mean on-grid and off-grid noise bin
    // power must match between the two synthesis modes.
    ns::channel::channel_workspace exact_ws;
    ns::channel::channel_workspace banded_ws;
    ns::channel::channel_config chan;
    ns::channel::symbol_domain_params sd;
    sd.zero_padding = 4;
    sd.payload_symbols = 8;
    ns::util::rng rng_a(21);
    ns::util::rng rng_b(22);
    ns::channel::symbol_domain_params exact_sd = sd;
    exact_sd.noise_interp_radius_bins = 0;
    ns::channel::combine_symbol_domain({}, ns::phy::deployed_params(), chan,
                                       exact_sd, rng_a, exact_ws);
    ns::channel::combine_symbol_domain({}, ns::phy::deployed_params(), chan, sd,
                                       rng_b, banded_ws);
    auto mean_power = [](const std::vector<cvec>& spectra) {
        double total = 0.0;
        std::size_t count = 0;
        for (const cvec& spectrum : spectra) {
            for (const cplx& value : spectrum) {
                total += std::norm(value);
                ++count;
            }
        }
        return total / static_cast<double>(count);
    };
    const double exact_power = mean_power(exact_ws.symbol_spectra);
    const double banded_power = mean_power(banded_ws.symbol_spectra);
    // Expected dechirped noise-bin power is N * noise_power = 512.
    EXPECT_NEAR(exact_power, 512.0, 25.0);
    EXPECT_NEAR(banded_power / exact_power, 1.0, 0.05);
    EXPECT_GT(banded.delivery_rate(), 0.9);
}

// ------------------------------------------- zero-allocation contract --

std::size_t allocations_for_rounds(std::size_t devices, std::size_t rounds,
                                   bool multipath = false) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, devices, 9);
    ns::sim::sim_config config;
    config.rounds = rounds;
    config.seed = 4;
    config.zero_padding = 4;
    config.fidelity = ns::sim::phy_fidelity::symbol;
    config.model_multipath = multipath;
    ns::sim::network_simulator sim(dep, config);
    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    const ns::sim::sim_result result = sim.run();
    const std::size_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(result.fast_path_rounds, rounds);
    return after - before;
}

TEST(fast_path_allocations, steady_state_rounds_allocate_nothing_per_device) {
    // Warm-up rounds populate the workspaces; every round after that
    // must perform zero per-device heap allocations. Comparing the
    // allocation count of an R-round run and an (R+4)-round run isolates
    // the steady-state rounds (construction + warm-up costs cancel), and
    // running at two population sizes shows the steady state is
    // device-independent.
    const std::size_t short_run = allocations_for_rounds(64, 4);
    const std::size_t long_run = allocations_for_rounds(64, 8);
    const std::size_t per_round = (long_run - short_run) / 4;
    // The only steady-state allocation permitted is the per-round
    // outcome bookkeeping (result.rounds was reserved up front, so even
    // that is zero) — allow a tiny constant for standard-library slack.
    EXPECT_LE(per_round, 2u) << "short " << short_run << " long " << long_run;

    const std::size_t short_big = allocations_for_rounds(192, 4);
    const std::size_t long_big = allocations_for_rounds(192, 8);
    const std::size_t per_round_big = (long_big - short_big) / 4;
    EXPECT_LE(per_round_big, 2u)
        << "short " << short_big << " long " << long_big;
}

TEST(fast_path_allocations, multipath_rounds_stay_allocation_free) {
    // The enveloped-kernel path (tap_delay_line advance + envelope
    // window) must not reintroduce per-device steady-state allocations.
    const std::size_t short_run = allocations_for_rounds(64, 4, true);
    const std::size_t long_run = allocations_for_rounds(64, 8, true);
    const std::size_t per_round = (long_run - short_run) / 4;
    EXPECT_LE(per_round, 2u) << "short " << short_run << " long " << long_run;
}

TEST(fast_path_allocations, metrics_report_zero_steady_state_allocations) {
    // Same contract, observed through the metrics registry instead of a
    // test-local diff: the simulator's own per-round allocation metering
    // (operator new above feeds ns::obs::record_allocation) must report
    // zero heap allocations for every round past the warm-up window.
    if (!ns::obs::compiled_in()) GTEST_SKIP() << "built with NS_OBS=OFF";
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 64, 9);
    ns::sim::sim_config config;
    config.rounds = 12;
    config.seed = 4;
    config.zero_padding = 4;
    config.fidelity = ns::sim::phy_fidelity::symbol;
    ns::sim::network_simulator sim(dep, config);
    const ns::sim::sim_result result = sim.run();
    EXPECT_EQ(result.fast_path_rounds, config.rounds);
    EXPECT_EQ(result.metrics.counter_value("alloc.steady_rounds"),
              config.rounds - config.obs.alloc_warmup_rounds);
    EXPECT_EQ(result.metrics.counter_value("alloc.steady_count"), 0u)
        << "steady-state rounds allocated "
        << result.metrics.counter_value("alloc.steady_bytes") << " bytes";
}

// --------------------------- kernel batch: backend & thread identity --

struct batch_round {
    std::vector<std::vector<std::uint8_t>> bits;
    std::vector<ns::channel::packet_contribution> packets;
    ns::channel::symbol_domain_params sd;
};

batch_round make_batch_round(std::size_t devices, std::uint64_t seed) {
    const ns::phy::css_params phy = ns::phy::deployed_params();
    batch_round round;
    round.sd.zero_padding = 4;
    round.sd.payload_symbols = 16;
    ns::util::rng rng(seed);
    round.bits.resize(devices);
    round.packets.resize(devices);
    const std::size_t stride = std::max<std::size_t>(1, phy.num_bins() / devices);
    for (std::size_t d = 0; d < devices; ++d) {
        round.bits[d].resize(round.sd.payload_symbols);
        for (auto& bit : round.bits[d]) {
            bit = static_cast<std::uint8_t>(rng() & 1);
        }
        auto& packet = round.packets[d];
        packet.cyclic_shift =
            static_cast<std::uint32_t>(d * stride % phy.num_bins());
        packet.frame_bits = round.bits[d];
        packet.snr_db = 12.0;
        packet.timing_offset_s = rng.uniform(-1e-6, 1e-6);
        packet.frequency_offset_hz = rng.uniform(-50.0, 50.0);
    }
    return round;
}

std::vector<cvec> run_batch_round(const batch_round& round,
                                  ns::engine::block_runner* pool) {
    ns::channel::channel_workspace ws;
    ws.block_pool = pool;
    ns::channel::channel_config chan;
    ns::util::rng rng(404);  // same stream for every configuration
    ns::channel::combine_symbol_domain(round.packets,
                                       ns::phy::deployed_params(), chan,
                                       round.sd, rng, ws);
    return ws.symbol_spectra;
}

void expect_spectra_bit_identical(const std::vector<cvec>& expected,
                                  const std::vector<cvec>& actual,
                                  const char* label) {
    ASSERT_EQ(expected.size(), actual.size()) << label;
    for (std::size_t s = 0; s < expected.size(); ++s) {
        ASSERT_EQ(expected[s].size(), actual[s].size()) << label;
        for (std::size_t i = 0; i < expected[s].size(); ++i) {
            ASSERT_EQ(expected[s][i], actual[s][i])
                << label << ": symbol " << s << " bin " << i;
        }
    }
}

/// Pins the inner loop to the scalar reference for the enclosing scope.
struct scoped_scalar_accumulation {
    scoped_scalar_accumulation() {
        ns::channel::force_scalar_accumulation(true);
    }
    ~scoped_scalar_accumulation() {
        ns::channel::force_scalar_accumulation(false);
    }
};

TEST(kernel_batch, simd_backend_is_bit_identical_to_scalar_reference) {
    // The vector backends use explicit mul/add with no FMA contraction,
    // so the dispatched sweep must reproduce the scalar reference
    // bit-for-bit, not merely within rounding. On hosts without a vector
    // backend both runs take the scalar loop and the test is a tautology
    // (which is fine: the CI matrix pins at least one leg to each).
    const batch_round round = make_batch_round(48, 31);
    std::vector<cvec> scalar_spectra;
    {
        scoped_scalar_accumulation pin;
        scalar_spectra = run_batch_round(round, nullptr);
    }
    const std::vector<cvec> dispatched = run_batch_round(round, nullptr);
    expect_spectra_bit_identical(scalar_spectra, dispatched,
                                 ns::channel::kernel_accumulate_backend());
}

TEST(kernel_batch, intra_round_threads_are_bit_identical) {
    // Noise is seeded per (round, symbol) and placements are bucketed in
    // packet order, so the spectra must be element-wise bit-identical no
    // matter how symbol blocks land on threads — serial included.
    const batch_round round = make_batch_round(48, 32);
    const std::vector<cvec> serial = run_batch_round(round, nullptr);
    for (const std::size_t threads : {1ul, 2ul, 8ul}) {
        ns::engine::block_runner pool(threads);
        const std::vector<cvec> pooled = run_batch_round(round, &pool);
        expect_spectra_bit_identical(
            serial, pooled,
            threads == 1 ? "1 thread" : (threads == 2 ? "2 threads"
                                                      : "8 threads"));
    }
}

TEST(kernel_batch, warm_planner_allocates_nothing) {
    // The planning stage (window table growth, staging arrays, counting
    // sort, spectra/noise-grid sizing) owns every allocation of the fast
    // path; once the workspace is warm a whole round must run without
    // touching the heap — serial and fanned-out alike, since worker
    // threads only ever write into planner-sized buffers.
    const batch_round round = make_batch_round(64, 33);
    const ns::phy::css_params phy = ns::phy::deployed_params();
    ns::channel::channel_config chan;

    ns::channel::channel_workspace serial_ws;
    ns::util::rng rng(77);
    ns::channel::combine_symbol_domain(round.packets, phy, chan, round.sd,
                                       rng, serial_ws);
    ns::channel::combine_symbol_domain(round.packets, phy, chan, round.sd,
                                       rng, serial_ws);
    const std::size_t serial_before =
        g_allocations.load(std::memory_order_relaxed);
    ns::channel::combine_symbol_domain(round.packets, phy, chan, round.sd,
                                       rng, serial_ws);
    const std::size_t serial_after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(serial_after - serial_before, 0u);

    ns::engine::block_runner pool(4);
    ns::channel::channel_workspace pooled_ws;
    pooled_ws.block_pool = &pool;
    ns::channel::combine_symbol_domain(round.packets, phy, chan, round.sd,
                                       rng, pooled_ws);
    ns::channel::combine_symbol_domain(round.packets, phy, chan, round.sd,
                                       rng, pooled_ws);
    const std::size_t pooled_before =
        g_allocations.load(std::memory_order_relaxed);
    ns::channel::combine_symbol_domain(round.packets, phy, chan, round.sd,
                                       rng, pooled_ws);
    const std::size_t pooled_after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(pooled_after - pooled_before, 0u);
}

TEST(kernel_batch, simulator_thread_counts_agree_exactly) {
    // End-to-end flavour of the same contract: a full simulator run with
    // intra_round_threads = 8 must reproduce the serial run's outcome
    // numbers exactly (same RNG stream, bit-identical spectra, same
    // decoder decisions).
    auto run_with_threads = [](std::size_t threads) {
        const ns::sim::deployment dep(ns::sim::deployment_params{}, 48, 21);
        ns::sim::sim_config config;
        config.rounds = 4;
        config.seed = 6;
        config.zero_padding = 4;
        config.fidelity = ns::sim::phy_fidelity::symbol;
        config.intra_round_threads = threads;
        ns::sim::network_simulator sim(dep, config);
        return sim.run();
    };
    const ns::sim::sim_result serial = run_with_threads(1);
    const ns::sim::sim_result pooled = run_with_threads(8);
    EXPECT_DOUBLE_EQ(serial.delivery_rate(), pooled.delivery_rate());
    EXPECT_DOUBLE_EQ(serial.ber(), pooled.ber());
    EXPECT_EQ(serial.fast_path_rounds, pooled.fast_path_rounds);
}

}  // namespace
