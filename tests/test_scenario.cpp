// Unit tests for the scenario subsystem: registry, traffic/churn/
// mobility/interference models, hook integration with the simulator,
// and — the load-bearing contract — bit-identical results on any
// thread count for every registered scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "netscatter/scenario/churn.hpp"
#include "netscatter/scenario/interference.hpp"
#include "netscatter/scenario/mobility.hpp"
#include "netscatter/scenario/scenario_driver.hpp"
#include "netscatter/scenario/scenario_registry.hpp"
#include "netscatter/scenario/scenario_runner.hpp"
#include "netscatter/scenario/traffic.hpp"
#include "netscatter/sim/deployment.hpp"
#include "netscatter/sim/network_sim.hpp"

namespace {

using namespace ns::scenario;

// ------------------------------------------------------------ registry --

TEST(registry, ships_at_least_eight_unique_runnable_scenarios) {
    const auto& scenarios = registry();
    EXPECT_GE(scenarios.size(), 8u);
    std::set<std::string> names;
    for (const auto& spec : scenarios) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_FALSE(spec.description.empty());
        EXPECT_GT(spec.geometry.num_devices, 0u);
        EXPECT_GT(spec.sim.rounds, 0u);
        EXPECT_GE(spec.replicas, 1u);
        names.insert(spec.name);
        EXPECT_TRUE(find_scenario(spec.name).has_value());
    }
    EXPECT_EQ(names.size(), scenarios.size());
    EXPECT_FALSE(find_scenario("no-such-scenario").has_value());
}

TEST(registry, geometry_presets_resolve_distinctly) {
    geometry_spec office{};
    geometry_spec warehouse{};
    warehouse.preset = geometry_preset::warehouse_aisle;
    geometry_spec field{};
    field.preset = geometry_preset::open_field;
    const auto o = resolve_geometry(office);
    const auto w = resolve_geometry(warehouse);
    const auto f = resolve_geometry(field);
    EXPECT_NE(o.floor_width_m, w.floor_width_m);
    EXPECT_EQ(f.rooms_x * f.rooms_y, 1u);  // no interior walls in the field
    // Overrides win over the preset.
    field.ap_tx_dbm = 12.5;
    EXPECT_DOUBLE_EQ(resolve_geometry(field).ap_tx_dbm, 12.5);
}

// --------------------------------------------------------- determinism --

/// Everything determinism guarantees, as a comparable string (wall clock
/// excluded on purpose).
std::string fingerprint(const scenario_result& result) {
    std::ostringstream out;
    out.precision(17);
    const auto& s = result.sim;
    out << s.total_transmitting << ' ' << s.total_delivered << ' '
        << s.total_detected << ' ' << s.total_bit_errors << ' ' << s.total_bits
        << ' ' << s.total_skipped << ' ' << s.total_idle << ' '
        << s.total_active_rounds << ' ' << s.total_joins << ' ' << s.total_leaves
        << ' ' << s.total_rejected_joins << ' ' << s.total_reassociations << ' '
        << s.total_realloc_events << ' ' << s.total_full_reassignments << '\n';
    for (const auto& round : s.rounds) {
        out << round.active << ',' << round.transmitting << ',' << round.skipped
            << ',' << round.idle << ',' << round.detected << ',' << round.delivered
            << ',' << round.bit_errors << ',' << round.joins << ',' << round.leaves
            << ',' << round.realloc_events << ';';
    }
    out << '\n' << result.stats.join_requests << ' ' << result.stats.joins << ' '
        << result.stats.total_join_wait_rounds << ' ' << result.stats.offered
        << ' ' << result.stats.gated;
    for (const double latency : result.stats.join_latency_series) {
        out << ' ' << latency;
    }
    return out.str();
}

/// Shrinks a spec so the all-scenarios sweep stays fast while still
/// walking every model's code path.
scenario_spec shrink(scenario_spec spec, std::size_t rounds,
                     std::size_t max_devices) {
    spec.sim.rounds = rounds;
    spec.replicas = 2;
    if (spec.geometry.num_devices > max_devices) {
        spec.geometry.num_devices = max_devices;
        spec.churn.initial_active =
            std::min(spec.churn.initial_active, max_devices / 2);
        if (spec.sim.grouping.enabled) {
            // Keep the shrunk population multi-group so the sweep still
            // exercises the scheduled-group path.
            spec.sim.grouping.group_capacity =
                std::max<std::size_t>(1, max_devices / 4);
        }
    }
    return spec;
}

TEST(scenario_runner, every_registered_scenario_is_bit_identical_serial_vs_8_threads) {
    for (const auto& registered : registry()) {
        const scenario_spec spec = shrink(registered, 3, 96);
        const auto serial = run_scenario(spec, {.num_threads = 1, .parallel = false});
        const auto threaded = run_scenario(spec, {.num_threads = 8, .parallel = true});
        EXPECT_EQ(fingerprint(serial), fingerprint(threaded)) << registered.name;
    }
}

TEST(scenario_runner, churn_and_mobility_identical_across_1_2_8_threads) {
    for (const char* name : {"churn-heavy", "commute-mobility"}) {
        const auto registered = find_scenario(name);
        ASSERT_TRUE(registered.has_value());
        scenario_spec spec = *registered;
        spec.sim.rounds = 4;
        spec.replicas = 3;  // more tasks than some thread counts
        const auto t1 = run_scenario(spec, {.num_threads = 1, .parallel = true});
        const auto t2 = run_scenario(spec, {.num_threads = 2, .parallel = true});
        const auto t8 = run_scenario(spec, {.num_threads = 8, .parallel = true});
        EXPECT_EQ(fingerprint(t1), fingerprint(t2)) << name;
        EXPECT_EQ(fingerprint(t2), fingerprint(t8)) << name;
    }
}

TEST(scenario_runner, churn_heavy_drives_reassociation_end_to_end) {
    auto spec = *find_scenario("churn-heavy");
    spec.sim.rounds = 10;
    const auto result = run_scenario(spec);
    EXPECT_GT(result.sim.total_joins, 0u);
    EXPECT_GT(result.sim.total_leaves, 0u);
    EXPECT_GT(result.sim.total_realloc_events, 0u);
    EXPECT_GE(result.stats.mean_join_latency_rounds(), 1.0);
    EXPECT_EQ(result.sim.total_joins, result.stats.joins);
    // The per-round latency series aligns with the concatenated rounds.
    EXPECT_EQ(result.stats.join_latency_series.size(), result.sim.rounds.size());
}

// ---------------------------------------------------- group scheduling --

TEST(scenario_runner, warehouse_grouped_runs_population_as_scheduled_groups) {
    auto spec = *find_scenario("warehouse-1k-grouped");
    spec.sim.rounds = 8;
    spec.replicas = 1;
    const auto result = run_scenario(spec);

    // The acceptance bar: >= 4 scheduled groups, not a join queue — the
    // whole 1k population holds (group, slot) assignments at once.
    EXPECT_GE(result.num_groups, 4u);
    const std::size_t one_round_capacity = concurrency_capacity(spec);
    bool any_round_beyond_one_group = false;
    for (const auto& round : result.sim.rounds) {
        EXPECT_GE(round.scheduled_group, 0);
        EXPECT_LT(static_cast<std::size_t>(round.scheduled_group), result.num_groups);
        EXPECT_LE(round.scheduled, one_round_capacity);
        if (round.active > one_round_capacity) any_round_beyond_one_group = true;
    }
    EXPECT_TRUE(any_round_beyond_one_group);

    // Round-robin: consecutive rounds address consecutive groups.
    ASSERT_GE(result.sim.rounds.size(), 2u);
    EXPECT_NE(result.sim.rounds[0].scheduled_group,
              result.sim.rounds[1].scheduled_group);

    // Per-group metrics decompose the network totals. (groups may hold
    // retired rows beyond num_groups after a shrinking regroup.)
    ASSERT_GE(result.sim.groups.size(), result.num_groups);
    std::size_t delivered = 0, transmitting = 0, members = 0, scheduled_rounds = 0;
    for (const auto& group : result.sim.groups) {
        delivered += group.delivered;
        transmitting += group.transmitting;
        members += group.members;
        scheduled_rounds += group.scheduled_rounds;
        EXPECT_LE(group.max_power_dbm - group.min_power_dbm,
                  spec.sim.grouping.max_dynamic_range_db + 1e-9);
    }
    EXPECT_EQ(delivered, result.sim.total_delivered);
    EXPECT_EQ(transmitting, result.sim.total_transmitting);
    EXPECT_EQ(scheduled_rounds, result.sim.rounds.size());
    // Every active device sits in exactly one group.
    EXPECT_EQ(members, result.sim.rounds.back().active);
}

TEST(scenario_runner, periodic_regroup_keeps_group_ids_stable_and_pays_overhead) {
    // A grouped population without churn: the periodic policy recomputes
    // the partition mid-run; the same population must land in the same
    // number of contiguously-numbered groups, and the regroup's config-2
    // query must show up as control overhead.
    scenario_spec spec;
    spec.name = "regroup-test";
    spec.geometry.preset = geometry_preset::warehouse_aisle;
    spec.geometry.num_devices = 96;
    spec.sim.rounds = 9;
    spec.sim.seed = 21;
    spec.sim.zero_padding = 4;
    spec.sim.grouping.enabled = true;
    spec.sim.grouping.group_capacity = 24;
    spec.sim.grouping.policy = ns::sim::regroup_policy::periodic;
    spec.sim.grouping.regroup_period_rounds = 4;
    spec.replicas = 1;

    const auto result = run_scenario(spec);
    EXPECT_EQ(result.num_groups, 4u);  // 96 / 24, stable across regroups
    EXPECT_EQ(result.sim.groups.size(), 4u);
    EXPECT_EQ(result.sim.total_regroups, 2u);  // rounds 4 and 8
    EXPECT_GT(result.control_overhead_s, 0.0);
    EXPECT_GT(result.sim.total_realloc_events, 0u);
    // Group ids stay contiguous and every device stays grouped.
    std::size_t members = 0;
    for (const auto& group : result.sim.groups) {
        EXPECT_EQ(group.members, 24u);
        members += group.members;
    }
    EXPECT_EQ(members, 96u);
    // Rounds that carried a regroup are marked on the timeline.
    std::size_t regroup_rounds = 0;
    for (const auto& round : result.sim.rounds) regroup_rounds += round.regroups;
    EXPECT_EQ(regroup_rounds, 2u);
}

TEST(scenario_runner, grouped_network_latency_scales_with_group_count) {
    auto spec = shrink(*find_scenario("warehouse-1k-grouped"), 4, 96);
    spec.replicas = 1;
    const auto result = run_scenario(spec);
    ASSERT_GE(result.num_groups, 2u);
    EXPECT_NEAR(result.network_latency_s(),
                result.round_time_s * static_cast<double>(result.num_groups), 1e-12);
}

// --------------------------------------------------- aloha association --

TEST(scenario_runner, aloha_churn_shapes_reassociation_latency) {
    auto spec = *find_scenario("churn-aloha");
    spec.sim.rounds = 25;
    spec.replicas = 2;
    const auto result = run_scenario(spec);

    // Joins happened through contention: requests were transmitted,
    // simultaneous ones collided, and backoff stretched the waits.
    EXPECT_GT(result.sim.total_joins, 0u);
    EXPECT_GT(result.stats.association_tx, 0u);
    EXPECT_GT(result.stats.association_collisions, 0u);
    EXPECT_GE(result.stats.mean_join_latency_rounds(), 1.0);
    // The latency distribution exists and is ordered.
    ASSERT_EQ(result.stats.join_waits.size(), result.sim.total_joins);
    EXPECT_LE(result.stats.join_wait_percentile(50.0),
              result.stats.join_wait_percentile(95.0) + 1e-12);
    // With one grant per query, admissions are serialized.
    for (const auto& round : result.sim.rounds) {
        EXPECT_LE(round.joins, spec.churn.association_grants_per_round);
    }
}

TEST(scenario_runner, aloha_latency_tail_exceeds_queue_under_same_load) {
    // Same churn load through both admission paths, sized so the FIFO
    // queue keeps up (service rate above arrival rate — waits stay near
    // one round). Contention adds collisions and backoff on top, so the
    // Aloha tail must be at least as long.
    scenario_spec base;
    base.name = "admission-compare";
    base.geometry.num_devices = 128;
    base.sim.rounds = 24;
    base.sim.seed = 31;
    base.sim.zero_padding = 4;
    base.churn.join_rate_per_round = 1.5;
    base.churn.leave_rate_per_round = 1.5;
    base.churn.initial_active = 64;
    base.churn.max_joins_per_round = 4;
    base.churn.association_grants_per_round = 4;
    base.replicas = 2;

    scenario_spec queue = base;
    queue.churn.association = association_mode::bounded_queue;
    scenario_spec aloha = base;
    aloha.churn.association = association_mode::slotted_aloha;

    const auto queue_result = run_scenario(queue);
    const auto aloha_result = run_scenario(aloha);
    ASSERT_GT(queue_result.sim.total_joins, 0u);
    ASSERT_GT(aloha_result.sim.total_joins, 0u);
    EXPECT_EQ(queue_result.stats.association_collisions, 0u);
    EXPECT_GT(aloha_result.stats.association_collisions, 0u);
    EXPECT_GE(aloha_result.stats.join_wait_percentile(95.0),
              queue_result.stats.join_wait_percentile(95.0));
    EXPECT_GE(aloha_result.stats.mean_join_latency_rounds(),
              queue_result.stats.mean_join_latency_rounds());
}

TEST(scenario_runner, oversubscribed_universe_respects_capacity) {
    auto spec = *find_scenario("warehouse-1k");
    spec.sim.rounds = 3;
    spec.replicas = 1;
    const auto result = run_scenario(spec);
    const std::size_t capacity = concurrency_capacity(spec);
    ASSERT_LT(capacity, spec.geometry.num_devices);  // genuinely oversubscribed
    for (const auto& round : result.sim.rounds) {
        EXPECT_LE(round.active, capacity);
    }
    EXPECT_GT(result.sim.total_joins, 0u);
}

// ------------------------------------------------------------- traffic --

TEST(traffic, saturated_always_offers) {
    traffic_model model({}, 16, 1);
    for (std::size_t round = 0; round < 8; ++round) {
        for (std::uint32_t id = 0; id < 16; ++id) {
            EXPECT_TRUE(model.offers(round, id));
        }
    }
    EXPECT_DOUBLE_EQ(model.expected_offered_load(), 1.0);
}

TEST(traffic, periodic_duty_cycle_is_exact_over_full_periods) {
    traffic_spec spec;
    spec.kind = traffic_kind::periodic;
    spec.duty_cycle = 0.25;
    spec.period_rounds = 8;
    traffic_model model(spec, 32, 7);
    std::size_t offered = 0;
    const std::size_t rounds = 64;  // 8 full periods
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::uint32_t id = 0; id < 32; ++id) {
            offered += model.offers(round, id) ? 1 : 0;
        }
    }
    EXPECT_DOUBLE_EQ(model.expected_offered_load(), 0.25);
    EXPECT_EQ(offered, static_cast<std::size_t>(0.25 * 32 * rounds));
}

TEST(traffic, poisson_offered_load_within_tolerance) {
    traffic_spec spec;
    spec.kind = traffic_kind::poisson;
    spec.arrivals_per_round = 0.3;
    traffic_model model(spec, 64, 11);
    std::size_t offered = 0;
    const std::size_t rounds = 400;
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::uint32_t id = 0; id < 64; ++id) {
            offered += model.offers(round, id) ? 1 : 0;
        }
    }
    const double load = static_cast<double>(offered) / (64.0 * rounds);
    EXPECT_NEAR(load, model.expected_offered_load(), 0.02);
}

TEST(traffic, bursty_offered_load_within_tolerance) {
    traffic_spec spec;
    spec.kind = traffic_kind::bursty;
    spec.burst_probability = 0.05;
    spec.burst_length = 6;
    traffic_model model(spec, 64, 13);
    std::size_t offered = 0;
    const std::size_t rounds = 1500;
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::uint32_t id = 0; id < 64; ++id) {
            offered += model.offers(round, id) ? 1 : 0;
        }
    }
    const double load = static_cast<double>(offered) / (64.0 * rounds);
    // Renewal argument: busy L rounds, idle 1/p rounds on average.
    EXPECT_NEAR(model.expected_offered_load(), 6.0 / (6.0 + 20.0), 1e-12);
    EXPECT_NEAR(load, model.expected_offered_load(), 0.03);
}

// --------------------------------------------------------------- churn --

TEST(churn, admission_respects_rate_and_capacity) {
    churn_spec spec;
    spec.join_rate_per_round = 5.0;
    spec.leave_rate_per_round = 0.0;
    spec.initial_active = 0;
    spec.max_joins_per_round = 2;
    churn_process churn(spec, 20, 10, 3);
    EXPECT_TRUE(churn.initial_active().empty());
    std::size_t active = 0;
    for (std::size_t round = 0; round < 30; ++round) {
        const churn_events events = churn.step(round);
        EXPECT_LE(events.joins.size(), 2u);
        active += events.joins.size();
        EXPECT_LE(active, 10u);  // never past the allocator capacity
        if (!events.joins.empty()) {
            EXPECT_GE(events.mean_join_latency_rounds, 1.0);
        }
    }
    EXPECT_EQ(active, 10u);  // filled to capacity
    EXPECT_EQ(churn.total_joins(), 10u);
    EXPECT_GT(churn.total_join_requests(), churn.total_joins());
    EXPECT_GT(churn.pending_joins(), 0u);
}

// ------------------------------------------------------------ mobility --

TEST(mobility, movers_stay_in_bounds_with_bounded_doppler) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 32, 5);
    mobility_spec spec;
    spec.mobile_fraction = 1.0;
    spec.speed_mps = 2.0;
    spec.round_period_s = 0.5;  // 1 m per round
    mobility_process mobility(spec, dep, 9);
    ASSERT_EQ(mobility.mobile_count(), 32u);
    const double max_doppler =
        2.0 * spec.speed_mps / 299792458.0 * spec.carrier_hz + 1e-9;
    for (std::size_t round = 0; round < 60; ++round) {
        const auto updates = mobility.step(round);
        ASSERT_EQ(updates.size(), 32u);
        for (const auto& update : updates) {
            EXPECT_TRUE(std::isfinite(update.query_rssi_dbm));
            EXPECT_TRUE(std::isfinite(update.uplink_rx_dbm));
            EXPECT_LT(update.uplink_rx_dbm, update.query_rssi_dbm);
            EXPECT_LE(std::abs(update.doppler_hz), max_doppler);
            EXPECT_GT(update.tof_s, 0.0);
        }
        for (std::size_t i = 0; i < mobility.mobile_count(); ++i) {
            const auto [x, y] = mobility.position(i);
            EXPECT_GE(x, 0.0);
            EXPECT_LE(x, dep.params().floor_width_m);
            EXPECT_GE(y, 0.0);
            EXPECT_LE(y, dep.params().floor_depth_m);
        }
    }
}

TEST(mobility, budgets_actually_move) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 8, 6);
    mobility_spec spec;
    spec.mobile_fraction = 1.0;
    spec.speed_mps = 2.0;
    spec.round_period_s = 1.0;
    mobility_process mobility(spec, dep, 21);
    const auto first = mobility.step(0);
    std::vector<ns::sim::link_update> last;
    for (std::size_t round = 1; round < 20; ++round) last = mobility.step(round);
    bool changed = false;
    for (std::size_t i = 0; i < first.size(); ++i) {
        if (std::abs(first[i].uplink_rx_dbm - last[i].uplink_rx_dbm) > 0.1) {
            changed = true;
        }
    }
    EXPECT_TRUE(changed);
}

TEST(mobility, shadowing_decorrelates_along_the_walk) {
    // Gudmundson model: a mover's shadowing offset must evolve (not stay
    // frozen), with one-step correlation ~ exp(-moved/d_corr) and the
    // stationary variance of the placement's sigma.
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 256, 7);
    mobility_spec spec;
    spec.mobile_fraction = 1.0;
    spec.speed_mps = 2.0;
    spec.round_period_s = 1.0;  // 2 m per round
    mobility_process mobility(spec, dep, 31);
    const std::size_t movers = mobility.mobile_count();
    ASSERT_GT(movers, 200u);

    const double sigma = dep.params().pathloss.shadowing_sigma_db;
    const double d_corr = dep.params().pathloss.shadowing_decorrelation_m;
    const double step_m = spec.speed_mps * spec.round_period_s;
    const double expected_rho = std::exp(-step_m / d_corr);

    // Warm past the (non-stationary) placement offsets, then measure the
    // ensemble one-step correlation and the stationary spread.
    for (std::size_t round = 0; round < 30; ++round) mobility.step(round);
    double num = 0.0;
    double den = 0.0;
    double spread = 0.0;
    std::size_t frozen = 0;
    for (std::size_t round = 0; round < 40; ++round) {
        std::vector<double> before(movers);
        for (std::size_t i = 0; i < movers; ++i) before[i] = mobility.shadow_db(i);
        mobility.step(30 + round);
        for (std::size_t i = 0; i < movers; ++i) {
            const double after = mobility.shadow_db(i);
            num += before[i] * after;
            den += before[i] * before[i];
            spread += after * after;
            if (after == before[i]) ++frozen;
        }
    }
    EXPECT_EQ(frozen, 0u);  // the ROADMAP bug: shadowing froze per device
    EXPECT_NEAR(num / den, expected_rho, 0.05);
    const double measured_sigma =
        std::sqrt(spread / (40.0 * static_cast<double>(movers)));
    EXPECT_NEAR(measured_sigma, sigma, 0.3 * sigma);
}

// -------------------------------------------------------- interference --

TEST(interference, periodic_tone_cadence_and_shape) {
    interference_spec spec;
    spec.kind = interference_kind::periodic_tone;
    spec.period_rounds = 3;
    spec.snr_db = 17.0;
    interference_source source(spec, ns::phy::deployed_params(), 4096, 1);
    std::size_t events = 0;
    for (std::size_t round = 0; round < 9; ++round) {
        const auto contributions = source.step(round);
        if (round % 3 == 0) {
            ASSERT_EQ(contributions.size(), 1u);
            EXPECT_EQ(contributions[0].waveform.size(), 4096u);
            EXPECT_DOUBLE_EQ(contributions[0].snr_db, 17.0);
            ++events;
        } else {
            EXPECT_TRUE(contributions.empty());
        }
    }
    EXPECT_EQ(source.total_events(), events);
}

TEST(interference, lora_frame_covers_window_and_misaligns) {
    interference_spec spec;
    spec.kind = interference_kind::lora_frame;
    spec.burst_probability = 1.0;
    interference_source source(spec, ns::phy::deployed_params(), 10000, 2);
    const auto contributions = source.step(0);
    ASSERT_EQ(contributions.size(), 1u);
    EXPECT_GE(contributions[0].waveform.size(), 10000u);
    EXPECT_GT(contributions[0].timing_offset_s, 0.0);
}

// ----------------------------------------------------------- cochannel --

TEST(cochannel, source_runs_a_grouped_foreign_schedule) {
    cochannel_spec spec;
    spec.enabled = true;
    spec.num_devices = 300;       // > one group at capacity 256
    spec.group_capacity = 128;    // forces >= 3 groups
    spec.duty_cycle = 1.0;
    const ns::phy::css_params phy = ns::phy::deployed_params();
    cochannel_source source(spec, phy, 2, ns::phy::phy_format(),
                            ns::channel::crystal_model{},
                            ns::channel::hardware_delay_model{}, 77);
    EXPECT_GE(source.num_groups(), 3u);
    EXPECT_EQ(source.network_id(), 1u);

    const std::size_t frame_bits = ns::phy::phy_format().payload_plus_crc_bits();
    std::size_t total = 0;
    for (std::size_t round = 0; round < 2 * source.num_groups(); ++round) {
        const auto packets = source.step(round);
        // One group per round: never the whole population at once.
        EXPECT_LE(packets.size(), 128u);
        EXPECT_FALSE(packets.empty());
        for (const auto& packet : packets) {
            EXPECT_LT(packet.cyclic_shift, phy.num_bins());
            EXPECT_EQ(packet.cyclic_shift % 2, 0u);  // skip-spaced slots
            EXPECT_EQ(packet.frame_bits.size(), frame_bits);
            EXPECT_GE(packet.timing_offset_s, 0.0);
        }
        total += packets.size();
    }
    EXPECT_EQ(source.total_tx(), total);
    // Round-robin over the groups covers the full population twice.
    EXPECT_EQ(total, 2 * spec.num_devices);
}

/// Injects one co-channel packet per round at a fixed displacement from
/// victim shift 0 (always-ON payload so the raid has teeth).
class cochannel_probe_hooks final : public ns::sim::round_hooks {
public:
    explicit cochannel_probe_hooks(double offset_bins, double snr_db)
        : offset_bins_(offset_bins), snr_db_(snr_db) {
        bits_.assign(64, 1);
    }
    ns::sim::round_plan plan_round(std::size_t) override {
        ns::sim::round_plan plan;
        ns::channel::packet_contribution packet;
        packet.cyclic_shift = 0;
        // Express the displacement as a pure timing offset: dt·BW bins.
        packet.timing_offset_s = offset_bins_ * 2e-6;  // 1 bin = 2 us at 500 kHz
        packet.snr_db = snr_db_;
        packet.frame_bits = std::span<const std::uint8_t>(bits_.data(), 40);
        plan.cochannel.push_back(packet);
        return plan;
    }

private:
    double offset_bins_;
    double snr_db_;
    std::vector<std::uint8_t> bits_;
};

TEST(cochannel, collision_accounting_and_fast_path_in_simulator) {
    // A foreign packet inside victim slot 0's guard region counts as a
    // cross-network collision; one displaced to the slot midpoint's far
    // side does not. Either way the round stays symbol-domain.
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 16, 21);
    ns::sim::sim_config config;
    config.rounds = 4;
    config.seed = 9;
    config.zero_padding = 4;

    cochannel_probe_hooks on_slot(0.4, 25.0);   // inside the +-1-bin guard
    ns::sim::network_simulator hit_sim(dep, config, &on_slot);
    const auto hit = hit_sim.run();
    EXPECT_EQ(hit.fast_path_rounds, 4u);
    EXPECT_EQ(hit.total_cross_tx, 4u);
    // Shift 0 transmits every round (saturated static sim) and is raided
    // every round.
    EXPECT_EQ(hit.total_cross_collisions, 4u);

    cochannel_probe_hooks off_slot(+1.4, 25.0);  // past the slot midpoint
    ns::sim::network_simulator miss_sim(dep, config, &off_slot);
    const auto miss = miss_sim.run();
    EXPECT_EQ(miss.total_cross_tx, 4u);
    EXPECT_EQ(miss.total_cross_collisions, 0u);

    // The in-guard raid costs the victim network delivery relative to
    // the clean run.
    ns::sim::network_simulator clean_sim(dep, config);
    const auto clean = clean_sim.run();
    EXPECT_LE(hit.total_delivered, clean.total_delivered);
}

TEST(cochannel, registered_scenario_keeps_fast_path_and_counts_raids) {
    auto spec = *find_scenario("cochannel-2ap");
    spec.sim.rounds = 5;
    spec.replicas = 1;
    const auto result = run_scenario(spec);
    EXPECT_EQ(result.sim.fast_path_rounds, 5u);
    EXPECT_GT(result.sim.total_cross_tx, 0u);
    EXPECT_GT(result.sim.total_cross_collisions, 0u);
    // The two populations are both 128 strong at 50-75% duty: raids must
    // actually intersect the victim's transmissions.
    EXPECT_GT(result.sim.delivery_rate(), 0.3);
}

// -------------------------------------------- hooks/simulator coupling --

/// Minimal hooks: devices with odd ids never have data; device 0 leaves
/// in round 1 and rejoins in round 2.
class toy_hooks final : public ns::sim::round_hooks {
public:
    ns::sim::round_plan plan_round(std::size_t round) override {
        ns::sim::round_plan plan;
        if (round == 1) plan.leaves.push_back(0);
        if (round == 2) plan.joins.push_back(0);
        return plan;
    }
    bool offers_traffic(std::size_t, std::uint32_t device_id) override {
        return device_id % 2 == 0;
    }
};

TEST(round_hooks, gating_churn_and_counters_flow_through_simulator) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 8, 12);
    ns::sim::sim_config config;
    config.rounds = 3;
    config.seed = 5;
    config.zero_padding = 4;
    toy_hooks hooks;
    ns::sim::network_simulator sim(dep, config, &hooks);
    const auto result = sim.run();

    ASSERT_EQ(result.rounds.size(), 3u);
    // Odd-id devices are gated every round they are active.
    EXPECT_EQ(result.rounds[0].idle, 4u);
    EXPECT_EQ(result.rounds[0].active, 8u);
    // Round 1: device 0 left before the queries.
    EXPECT_EQ(result.rounds[1].leaves, 1u);
    EXPECT_EQ(result.rounds[1].active, 7u);
    // Round 2: it re-joined through the incremental allocator.
    EXPECT_EQ(result.rounds[2].joins, 1u);
    EXPECT_EQ(result.rounds[2].active, 8u);
    EXPECT_GE(result.total_realloc_events, 1u);
    EXPECT_EQ(sim.active_count(), 8u);
    EXPECT_EQ(sim.allocation().size(), 8u);
}

TEST(round_hooks, default_hooks_match_hookless_simulator) {
    const ns::sim::deployment dep(ns::sim::deployment_params{}, 12, 13);
    ns::sim::sim_config config;
    config.rounds = 3;
    config.seed = 6;
    config.zero_padding = 4;
    ns::sim::network_simulator bare(dep, config);
    ns::sim::round_hooks neutral;
    ns::sim::network_simulator hooked(dep, config, &neutral);
    const auto a = bare.run();
    const auto b = hooked.run();
    EXPECT_EQ(a.total_delivered, b.total_delivered);
    EXPECT_EQ(a.total_transmitting, b.total_transmitting);
    EXPECT_EQ(a.total_bit_errors, b.total_bit_errors);
}

}  // namespace
